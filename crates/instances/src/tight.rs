//! Certified lower-bound instances (Theorem 5 / Lemma 40 / Corollary 41).
//!
//! The tightness construction: take a base instance `(G, c, w)` in which
//! **every** `w`-balanced separation costs at least `b_cost` (with respect
//! to the vertex costs `τ(v) = c(δ(v))`), and form `G̃` from `⌊k/4⌋`
//! disjoint copies. Lemma 40 then shows every *roughly balanced*
//! `k`-coloring of `G̃` — ours, every baseline, anyone's — has average (and
//! hence maximum) boundary cost at least
//!
//! ```text
//! ⌊k/4⌋ · b_cost / (2·φ_ℓ·k)        (explicit-constant form of Lemma 40)
//! ```
//!
//! The certificate `b_cost` comes from two independent sources:
//!
//! * [`min_balanced_separation_cost`] — exact exhaustive search over all
//!   separations, for base graphs with `n ≤ ~14`;
//! * [`grid_separation_lower_bound`] — the isoperimetric argument for unit
//!   `s×s` grids (`s ≥ 6`): fewer than `s/3` separator vertices leave
//!   more than `2s/3` pure rows *and* columns, which forces one side into
//!   an `(s/3)×(s/3)` box — too small to be balanced. Hence `|S| ≥ s/3`
//!   and, with `τ ≥ 2`, cost ≥ `2s/3`.

use mmb_graph::measure::{norm_1, set_sum};
use mmb_graph::union::{disjoint_copies, replicate_measure, DisjointUnion};
use mmb_graph::{Coloring, Graph, VertexSet};
use rayon::prelude::*;

/// Exact minimum cost (w.r.t. `τ(v) = c(δ(v))`) of a `w`-balanced
/// separation of `g`, by exhaustive search over all separator sets.
///
/// A separation `(A, B)` is feasible iff the components of `G − S`
/// (`S = A∩B`) can be grouped into two sides of weight ≤ ⅔·w(V) each.
/// Returns `f64::INFINITY` if no balanced separation exists (cannot happen
/// for `n ≥ 1`: `S = V` is always feasible).
///
/// # Panics
/// Panics if `n > 20` (the search is exponential; lower-bound bases are
/// tiny by design).
pub fn min_balanced_separation_cost(g: &Graph, costs: &[f64], weights: &[f64]) -> f64 {
    let n = g.num_vertices();
    assert!(n <= 20, "exhaustive separation search is limited to n ≤ 20");
    assert_eq!(costs.len(), g.num_edges());
    assert_eq!(weights.len(), n);
    let tau: Vec<f64> = (0..n as u32)
        .map(|v| g.neighbors(v).iter().map(|&(_, e)| costs[e as usize]).sum())
        .collect();
    let total = norm_1(weights);

    (0u32..1 << n)
        .into_par_iter()
        .map(|mask| {
            let sep_cost: f64 = (0..n).filter(|&v| mask >> v & 1 == 1).map(|v| tau[v]).sum();
            if separable_with(g, weights, mask, total) {
                sep_cost
            } else {
                f64::INFINITY
            }
        })
        .reduce(|| f64::INFINITY, f64::min)
}

/// Can the components of `G − S` be split into two sides of weight
/// ≤ ⅔·total each? Exact subset enumeration over component weights.
fn separable_with(g: &Graph, weights: &[f64], sep_mask: u32, total: f64) -> bool {
    let n = g.num_vertices();
    // Component weights of G − S.
    let mut comp_w: Vec<f64> = Vec::new();
    let mut seen = vec![false; n];
    for s in 0..n {
        if sep_mask >> s & 1 == 1 || seen[s] {
            continue;
        }
        let mut w = 0.0;
        let mut stack = vec![s as u32];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            w += weights[v as usize];
            for &(nb, _) in g.neighbors(v) {
                let nbu = nb as usize;
                if sep_mask >> nbu & 1 == 0 && !seen[nbu] {
                    seen[nbu] = true;
                    stack.push(nb);
                }
            }
        }
        comp_w.push(w);
    }
    let bound = 2.0 / 3.0 * total + 1e-12 * (1.0 + total);
    let c = comp_w.len();
    if c == 0 {
        return true;
    }
    if c > 24 {
        // Cannot happen for our n ≤ 20 bases with connected structure, but
        // stay safe: a necessary-only refusal would over-claim the bound,
        // so fail closed (claim separable → bound can only be *under*).
        return true;
    }
    let rest: f64 = comp_w.iter().sum();
    (0u32..1 << c).any(|m| {
        let side: f64 = (0..c).filter(|&i| m >> i & 1 == 1).map(|i| comp_w[i]).sum();
        side <= bound && rest - side <= bound
    })
}

/// Isoperimetric lower bound on balanced-separation cost for the unit
/// `side × side` grid with unit weights and unit costs (valid for
/// `side ≥ 6`; see module docs for the argument).
pub fn grid_separation_lower_bound(side: usize) -> f64 {
    assert!(side >= 6, "the isoperimetric argument needs side ≥ 6");
    2.0 * side as f64 / 3.0
}

/// A certified tight instance `(G̃, c̃, w̃)` for a given `k`.
pub struct TightInstance {
    /// The union graph and replicated costs.
    pub union: DisjointUnion,
    /// Replicated weights `w̃`.
    pub weights: Vec<f64>,
    /// Number of colors the instance is built for.
    pub k: usize,
    /// Certified minimum balanced-separation cost of the base.
    pub base_separation_cost: f64,
    /// Local fluctuation `φ_ℓ` of the base instance.
    pub local_fluctuation: f64,
}

impl TightInstance {
    /// Build from an arbitrary base with an externally certified
    /// `base_separation_cost`.
    pub fn from_base(
        base: &Graph,
        base_costs: &[f64],
        base_weights: &[f64],
        k: usize,
        base_separation_cost: f64,
    ) -> Self {
        assert!(k >= 4, "the construction uses ⌊k/4⌋ ≥ 1 copies");
        let copies = k / 4;
        let union = disjoint_copies(base, base_costs, copies);
        let weights = replicate_measure(base_weights, copies);
        let stats = mmb_graph::stats::InstanceStats::compute(base, base_costs);
        TightInstance {
            union,
            weights,
            k,
            base_separation_cost,
            local_fluctuation: stats.local_fluctuation,
        }
    }

    /// Tight instance whose base is a small graph certified exhaustively.
    pub fn exhaustive(base: &Graph, base_costs: &[f64], base_weights: &[f64], k: usize) -> Self {
        let b = min_balanced_separation_cost(base, base_costs, base_weights);
        Self::from_base(base, base_costs, base_weights, k, b)
    }

    /// Tight instance from a unit `side × side` grid (isoperimetric
    /// certificate; `side ≥ 6`).
    pub fn grid(side: usize, k: usize) -> Self {
        let grid = mmb_graph::gen::grid::GridGraph::lattice(&[side, side]);
        let m = grid.graph.num_edges();
        let n = grid.graph.num_vertices();
        Self::from_base(
            &grid.graph,
            &vec![1.0; m],
            &vec![1.0; n],
            k,
            grid_separation_lower_bound(side),
        )
    }

    /// Lemma 40 (explicit constants): every roughly balanced `k`-coloring
    /// of `G̃` has **average** boundary cost at least this value.
    pub fn avg_boundary_lower_bound(&self) -> f64 {
        let copies = (self.k / 4) as f64;
        copies * self.base_separation_cost / (2.0 * self.local_fluctuation.max(1.0) * self.k as f64)
    }

    /// Whether a coloring is *roughly balanced* in Lemma 40's sense:
    /// `‖w̃χ⁻¹‖∞ ≤ 2·‖w̃‖₁/k`.
    pub fn is_roughly_balanced(&self, chi: &Coloring) -> bool {
        let cm = chi.class_measures(&self.weights);
        let avg = norm_1(&self.weights) / self.k as f64;
        cm.iter().all(|&c| c <= 2.0 * avg + 1e-9 * (1.0 + avg))
    }

    /// Check the lower bound against a coloring: returns
    /// `(avg boundary, lower bound, rough balance ok)`.
    pub fn check(&self, chi: &Coloring) -> (f64, f64, bool) {
        let avg = chi.avg_boundary_cost(&self.union.graph, &self.union.costs);
        (
            avg,
            self.avg_boundary_lower_bound(),
            self.is_roughly_balanced(chi),
        )
    }
}

/// Verify a separator set `S` is a valid balanced separation witness on a
/// small graph (testing aid).
pub fn is_balanced_separator(g: &Graph, weights: &[f64], sep: &VertexSet) -> bool {
    let n = g.num_vertices();
    let mask: u32 = sep.iter().fold(0, |m, v| m | 1 << v);
    let _ = n;
    separable_with(g, weights, mask, norm_1(weights))
}

/// Total `τ`-cost of a separator set.
pub fn separator_tau_cost(g: &Graph, costs: &[f64], sep: &VertexSet) -> f64 {
    set_sum(&mmb_graph::measure::cost_degree_measure(g, costs), sep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::misc::{complete, cycle, path};

    #[test]
    fn path_separation_is_cheap() {
        // A path is separated by one middle vertex: cost = τ(mid) = 2.
        let g = path(9);
        let costs = vec![1.0; 8];
        let w = vec![1.0; 9];
        let b = min_balanced_separation_cost(&g, &costs, &w);
        assert!((b - 2.0).abs() < 1e-9, "got {b}");
    }

    #[test]
    fn cycle_needs_two_cuts_worth() {
        // Separating a cycle into two balanced arcs removes ≥ 2 vertices…
        // actually 1 vertex leaves a path (one component, weight 8/9 > 2/3)
        // so at least 2 vertices with τ = 2 each.
        let g = cycle(9);
        let costs = vec![1.0; 9];
        let w = vec![1.0; 9];
        let b = min_balanced_separation_cost(&g, &costs, &w);
        assert!((b - 4.0).abs() < 1e-9, "got {b}");
    }

    #[test]
    fn clique_separation_is_expensive() {
        // K₆: components only appear after removing nearly everything;
        // every separation must put ≥ n/3 of the weight in the separator….
        let g = complete(6);
        let costs = vec![1.0; g.num_edges()];
        let w = vec![1.0; 6];
        let b = min_balanced_separation_cost(&g, &costs, &w);
        // Removing S leaves a clique on the rest — one component — so the
        // rest must weigh ≤ 2/3·6 = 4, i.e. |S| ≥ 2, τ = 5 each.
        assert!((b - 10.0).abs() < 1e-9, "got {b}");
    }

    #[test]
    fn small_grid_matches_isoperimetry_direction() {
        // Exhaustive on the 4×3 grid: the optimum should be a short column
        // cut (3 vertices × τ≈3) or similar — at least 2·(shorter side)/3.
        let grid = mmb_graph::gen::grid::GridGraph::lattice(&[4, 3]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let w = vec![1.0; 12];
        let b = min_balanced_separation_cost(&grid.graph, &costs, &w);
        assert!(b >= 2.0, "grid separation suspiciously cheap: {b}");
        assert!(b <= 12.0, "grid separation suspiciously expensive: {b}");
    }

    #[test]
    fn weighted_separation_respects_weights() {
        // All weight on the two endpoints of a path. The cheapest balanced
        // separation swallows one weighted endpoint into the separator
        // (separator weight doesn't count against the ⅔ sides): S = {0}
        // costs τ(0) = 1 and leaves one side of weight 1 ≤ ⅔·2.
        let g = path(5);
        let costs = vec![1.0; 4];
        let mut w = vec![0.0; 5];
        w[0] = 1.0;
        w[4] = 1.0;
        let b = min_balanced_separation_cost(&g, &costs, &w);
        assert!((b - 1.0).abs() < 1e-9, "got {b}");
    }

    #[test]
    fn tight_instance_structure() {
        let t = TightInstance::grid(8, 16);
        assert_eq!(t.union.copies, 4);
        assert_eq!(t.union.graph.num_vertices(), 4 * 64);
        assert_eq!(t.weights.len(), 4 * 64);
        assert!(t.base_separation_cost >= 16.0 / 3.0);
        assert!(t.avg_boundary_lower_bound() > 0.0);
    }

    #[test]
    fn lower_bound_holds_for_columnwise_coloring() {
        // A sane hand-rolled coloring (each copy chopped into 4 column
        // blocks) is roughly balanced and must respect the lower bound.
        let t = TightInstance::grid(8, 16);
        let n = t.union.graph.num_vertices();
        let chi = Coloring::from_fn(n, 16, |v| {
            let copy = t.union.copy_of(v) as u32;
            let base = t.union.base_vertex(v);
            let col = base % 8; // lattice x-coordinate ordering
            copy * 4 + col / 2
        });
        let (avg, lower, rough) = t.check(&chi);
        assert!(rough, "columnwise coloring should be roughly balanced");
        assert!(
            avg >= lower - 1e-9,
            "measured avg {avg} violates certified lower bound {lower}"
        );
    }

    #[test]
    fn exhaustive_matches_grid_bound_direction() {
        // For a 6-vertex 3×2 grid, exhaustive search is exact; make sure
        // the isoperimetric *style* bound (2·s/3 with s = 2) is below it.
        let grid = mmb_graph::gen::grid::GridGraph::lattice(&[3, 2]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let w = vec![1.0; 6];
        let b = min_balanced_separation_cost(&grid.graph, &costs, &w);
        assert!(b >= 2.0 * 2.0 / 3.0);
    }
}
