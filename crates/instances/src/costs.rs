//! Edge-cost families with prescribed fluctuation `φ = max c / min c`.
//!
//! Theorem 19's bound grows as `log^{1/d}(φ + 1)`, so the E5/E9 experiments
//! sweep `φ` over orders of magnitude while holding the cost *norm* roughly
//! comparable. All families return costs in `[1, φ]`.
//!
//! Two entry points: [`CostFamily::generate`] for [`GridGraph`]s (the
//! `Gradient` family follows the axis-0 coordinate) and
//! [`CostFamily::generate_for_graph`] for bare [`Graph`]s of any family
//! (the corpus path; `Gradient` follows normalized vertex ids instead).

use mmb_graph::gen::grid::GridGraph;
use mmb_graph::Graph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Named cost families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostFamily {
    /// `c ≡ 1` (φ forced to 1).
    Unit,
    /// Log-uniform in `[1, φ]` — every scale equally represented.
    LogUniform,
    /// Two-level: 90% cheap (1), 10% expensive (φ).
    TwoLevel,
    /// Smooth spatial gradient along axis 0 from 1 to φ (needs coordinates).
    Gradient,
}

/// All families, for sweeps.
pub const ALL_COST_FAMILIES: [CostFamily; 4] = [
    CostFamily::Unit,
    CostFamily::LogUniform,
    CostFamily::TwoLevel,
    CostFamily::Gradient,
];

impl CostFamily {
    /// Short name for report tables.
    pub fn name(self) -> &'static str {
        match self {
            CostFamily::Unit => "unit",
            CostFamily::LogUniform => "loguniform",
            CostFamily::TwoLevel => "twolevel",
            CostFamily::Gradient => "gradient",
        }
    }

    /// Generate costs for a grid graph with target fluctuation `phi ≥ 1`.
    pub fn generate(self, grid: &GridGraph, phi: f64, seed: u64) -> Vec<f64> {
        assert!(phi >= 1.0, "fluctuation must be at least 1");
        let m = grid.graph.num_edges();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA0761D6478BD642F);
        match self {
            CostFamily::Unit => vec![1.0; m],
            CostFamily::LogUniform => (0..m).map(|_| phi.powf(rng.random::<f64>())).collect(),
            CostFamily::TwoLevel => (0..m)
                .map(|_| if rng.random::<f64>() < 0.1 { phi } else { 1.0 })
                .collect(),
            CostFamily::Gradient => {
                let (lo, hi) = grid
                    .graph
                    .vertices()
                    .map(|v| grid.coord(v)[0])
                    .fold((i64::MAX, i64::MIN), |(lo, hi), x| (lo.min(x), hi.max(x)));
                let span = (hi - lo).max(1) as f64;
                grid.graph
                    .edge_list()
                    .iter()
                    .map(|&(u, v)| {
                        let x = (grid.coord(u)[0] + grid.coord(v)[0]) as f64 / 2.0;
                        let t = (x - lo as f64) / span;
                        phi.powf(t)
                    })
                    .collect()
            }
        }
    }

    /// Generate costs for a *bare* graph with target fluctuation
    /// `phi ≥ 1` — the corpus entry point for families without grid
    /// geometry. Same RNG stream as [`CostFamily::generate`] (so
    /// `Unit`/`LogUniform`/`TwoLevel` agree with it on a grid's
    /// underlying graph given the same seed); `Gradient` ramps along
    /// normalized vertex ids — edge `{u, v}` pays
    /// `φ^{(u+v)/(2(n−1))}` — since no coordinates exist.
    pub fn generate_for_graph(self, g: &Graph, phi: f64, seed: u64) -> Vec<f64> {
        assert!(phi >= 1.0, "fluctuation must be at least 1");
        let m = g.num_edges();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA0761D6478BD642F);
        match self {
            CostFamily::Unit => vec![1.0; m],
            CostFamily::LogUniform => (0..m).map(|_| phi.powf(rng.random::<f64>())).collect(),
            CostFamily::TwoLevel => (0..m)
                .map(|_| if rng.random::<f64>() < 0.1 { phi } else { 1.0 })
                .collect(),
            CostFamily::Gradient => {
                let span = (g.num_vertices().saturating_sub(1)).max(1) as f64;
                g.edge_list()
                    .iter()
                    .map(|&(u, v)| {
                        let t = (u as f64 + v as f64) / (2.0 * span);
                        phi.powf(t)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluctuation_within_target() {
        let grid = GridGraph::lattice(&[12, 12]);
        for fam in ALL_COST_FAMILIES {
            for phi in [1.0, 10.0, 1e4] {
                let c = fam.generate(&grid, phi, 5);
                assert_eq!(c.len(), grid.graph.num_edges());
                let cmax = c.iter().cloned().fold(0.0, f64::max);
                let cmin = c.iter().cloned().fold(f64::INFINITY, f64::min);
                assert!(cmin >= 1.0 - 1e-12, "{}: min {cmin}", fam.name());
                assert!(
                    cmax <= phi + 1e-9,
                    "{} phi={phi}: max {cmax} exceeds target",
                    fam.name()
                );
            }
        }
    }

    #[test]
    fn two_level_actually_two_level() {
        let grid = GridGraph::lattice(&[16, 16]);
        let c = CostFamily::TwoLevel.generate(&grid, 100.0, 9);
        assert!(c.iter().all(|&x| x == 1.0 || x == 100.0));
        let expensive = c.iter().filter(|&&x| x == 100.0).count();
        assert!(expensive > 0 && expensive < c.len() / 2);
    }

    #[test]
    fn gradient_monotone_along_axis() {
        let grid = GridGraph::lattice(&[20, 2]);
        let c = CostFamily::Gradient.generate(&grid, 1000.0, 0);
        // The left-most edge must be cheaper than the right-most.
        let mut leftmost = (i64::MAX, 0.0);
        let mut rightmost = (i64::MIN, 0.0);
        for (e, &(u, v)) in grid.graph.edge_list().iter().enumerate() {
            let x = grid.coord(u)[0] + grid.coord(v)[0];
            if x < leftmost.0 {
                leftmost = (x, c[e]);
            }
            if x > rightmost.0 {
                rightmost = (x, c[e]);
            }
        }
        assert!(leftmost.1 < rightmost.1);
    }

    #[test]
    fn deterministic() {
        let grid = GridGraph::lattice(&[8, 8]);
        let a = CostFamily::LogUniform.generate(&grid, 50.0, 3);
        let b = CostFamily::LogUniform.generate(&grid, 50.0, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn graph_variant_agrees_with_grid_variant_where_defined() {
        // Unit/LogUniform/TwoLevel read only the edge count and the RNG
        // stream, so the bare-graph path must be bit-identical to the
        // grid path on the grid's own graph.
        let grid = GridGraph::lattice(&[9, 6]);
        for fam in [
            CostFamily::Unit,
            CostFamily::LogUniform,
            CostFamily::TwoLevel,
        ] {
            let a = fam.generate(&grid, 25.0, 11);
            let b = fam.generate_for_graph(&grid.graph, 25.0, 11);
            assert_eq!(a, b, "{}", fam.name());
        }
    }

    #[test]
    fn graph_variant_bounds_and_gradient() {
        let g = mmb_graph::gen::smallworld::watts_strogatz(40, 2, 0.1, 3);
        for fam in ALL_COST_FAMILIES {
            for phi in [1.0, 16.0] {
                let c = fam.generate_for_graph(&g, phi, 7);
                assert_eq!(c.len(), g.num_edges());
                assert!(c.iter().all(|&x| (1.0 - 1e-12..=phi + 1e-9).contains(&x)));
                assert_eq!(c, fam.generate_for_graph(&g, phi, 7), "{}", fam.name());
            }
        }
        // Id-gradient: the lowest-id edge is cheaper than the highest-id
        // edge for phi > 1.
        let c = CostFamily::Gradient.generate_for_graph(&g, 100.0, 0);
        let lo = g.edge_list().iter().position(|&(u, _)| u == 0).unwrap();
        let hi = g
            .edge_list()
            .iter()
            .enumerate()
            .max_by_key(|(_, &(u, v))| u as u64 + v as u64)
            .unwrap()
            .0;
        assert!(c[lo] < c[hi]);
    }
}
