//! The standard instance corpus: one registry every bench, experiment and
//! test iterates uniformly.
//!
//! A [`CorpusEntry`] bundles a generated graph family with a weight
//! profile ([`crate::weights::WeightFamily`]) and a cost profile
//! ([`crate::costs::CostFamily`]) into a validated
//! [`Instance`], plus the evaluation parameters the harness needs: the
//! class count `k` and the norm exponent `p` at which the Theorem-5
//! right-hand side is computed.
//!
//! ## The exponent convention
//!
//! Theorem 5's RHS `‖c‖_p/k^{1/p} + ‖c‖_∞` is only a (constant-free)
//! upper bound where the instance's splittability `σ_p` is actually
//! bounded. The corpus therefore evaluates every family at `p = 1`: the
//! `p → 1` instantiation `‖c‖₁/k + ‖c‖_∞` is the honest, family-agnostic
//! form (prefix cuts certify `σ₁ = O(1)` on *every* graph), and it is the
//! bound the `reproduce corpus` CI gate enforces at ratio ≤ 1. The
//! sharper natural exponents (`d/(d−1)` on lattices) stay the business of
//! the dedicated experiments E1/E5, whose ratio columns are *bounded*,
//! not ≤ 1, because the theorem's constant is not 1.
//!
//! Four sizes:
//!
//! * [`Corpus::standard`] — the full registry (hundreds of vertices per
//!   entry): every family × two weight/cost profiles;
//! * [`Corpus::quick`] — the same shape at CI-smoke sizes;
//! * [`Corpus::small`] — `n ≤ 10` entries for the exact-oracle
//!   differential suite (the oracle is exponential in `n`);
//! * [`Corpus::medium`] — `16 < n ≤ 20` entries *past* the oracle's hard
//!   cap but within reach of the branch-and-bound engine's default
//!   certification budget, so the certified-gap table has rows proven
//!   optimal at sizes the oracle refuses.

use mmb_core::api::Instance;
use mmb_graph::gen::attachment::preferential_attachment;
use mmb_graph::gen::community::planted_partition;
use mmb_graph::gen::geometric::random_geometric;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::lattice::{hypercube, torus};
use mmb_graph::gen::smallworld::watts_strogatz;
use mmb_graph::gen::tree::random_tree;
use mmb_graph::Graph;

use crate::costs::CostFamily;
use crate::weights::WeightFamily;

/// One named corpus instance: a generated graph paired with weight/cost
/// profiles, plus the harness parameters (`k`, `p`) it is evaluated at.
#[derive(Debug)]
pub struct CorpusEntry {
    /// Unique entry name, e.g. `"pa-uniform-unit"`.
    pub name: String,
    /// Graph family tag: `"pa"`, `"rgg"`, `"ws"`, `"hypercube"`,
    /// `"torus"`, `"sbm"`, `"grid"`, or `"tree"`.
    pub family: &'static str,
    /// Human-readable generator parameters (sizes, probabilities, seed).
    pub params: String,
    /// Class count the harness partitions this entry into.
    pub k: usize,
    /// Norm exponent for the Theorem-5 RHS (the corpus convention is
    /// `p = 1`; see the module docs).
    pub p: f64,
    /// The validated instance (graph + costs + weights).
    pub instance: Instance,
}

/// The corpus: an ordered list of [`CorpusEntry`]s, grouped by family.
#[derive(Debug, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
}

/// The two weight/cost profiles every family is paired with.
const PROFILES: [(WeightFamily, CostFamily, f64); 2] = [
    (WeightFamily::Uniform, CostFamily::Unit, 1.0),
    (WeightFamily::Bimodal, CostFamily::LogUniform, 4.0),
];

impl Corpus {
    /// The standard corpus: every family × the two standard profiles at
    /// full (but still seconds-scale) sizes.
    pub fn standard() -> Self {
        Self::build(false)
    }

    /// The standard corpus at CI-smoke sizes (same families, same
    /// profiles, smaller graphs).
    pub fn quick() -> Self {
        Self::build(true)
    }

    /// Small-`n` corpus for the exact-oracle differential suite: one
    /// graph per family (two for `pa`, distinguished by a name tag) with
    /// `n ≤ 10`, × the two standard profiles.
    pub fn small() -> Self {
        let mut c = Corpus::default();
        let graphs: Vec<(&'static str, &'static str, String, Graph)> = vec![
            (
                "pa",
                "-a1",
                "n=9 attach=1 seed=5".into(),
                preferential_attachment(9, 1, 5),
            ),
            (
                "pa",
                "-a2",
                "n=10 attach=2 seed=6".into(),
                preferential_attachment(10, 2, 6),
            ),
            (
                "rgg",
                "",
                "n=9 r=0.45 seed=2".into(),
                random_geometric(9, 0.45, 2).graph,
            ),
            (
                "ws",
                "",
                "n=10 k_half=1 beta=0.2 seed=3".into(),
                watts_strogatz(10, 1, 0.2, 3),
            ),
            ("hypercube", "", "d=3".into(), hypercube(3)),
            ("torus", "", "dims=[3,3]".into(), torus(&[3, 3])),
            (
                "sbm",
                "",
                "n=10 groups=2 p_in=0.8 p_out=0.15 seed=4".into(),
                planted_partition(10, 2, 0.8, 0.15, 4).graph,
            ),
            (
                "grid",
                "",
                "dims=[5,2]".into(),
                GridGraph::lattice(&[5, 2]).graph,
            ),
            (
                "tree",
                "",
                "n=10 max_deg=3 seed=8".into(),
                random_tree(10, 3, 8),
            ),
        ];
        for (family, tag, params, g) in graphs {
            for (wf, cf, phi) in PROFILES {
                c.push(family, tag, params.clone(), g.clone(), wf, cf, phi, 3, 1.0);
            }
        }
        // Forced-pair entry (appended last, so the seeds of the entries
        // above are unchanged): twin weights make the two endpoints of a
        // tree jointly heavier than any class envelope, the regime the
        // cut-type certifiers price.
        c.push(
            "tree",
            "-twin",
            "n=10 max_deg=3 seed=8".into(),
            random_tree(10, 3, 8),
            WeightFamily::Twin,
            CostFamily::Unit,
            1.0,
            3,
            1.0,
        );
        c
    }

    /// Medium corpus: entries with `16 < n ≤ 20` — beyond the exact
    /// oracle's hard vertex cap, but exhaustible by the branch-and-bound
    /// engine under its default certification budget. These are the rows
    /// that prove the certified-gap table can reach ratio 1.0 past
    /// `n = 16`.
    pub fn medium() -> Self {
        use mmb_graph::gen::misc::{cycle, path};
        let mut c = Corpus::default();
        let graphs: Vec<(
            &'static str,
            String,
            Graph,
            usize,
            WeightFamily,
            CostFamily,
            f64,
        )> = vec![
            (
                "grid",
                "dims=[3,6]".into(),
                GridGraph::lattice(&[3, 6]).graph,
                2,
                WeightFamily::Uniform,
                CostFamily::Unit,
                1.0,
            ),
            (
                "tree",
                "n=18 max_deg=3 seed=11".into(),
                random_tree(18, 3, 11),
                2,
                WeightFamily::Bimodal,
                CostFamily::LogUniform,
                4.0,
            ),
            (
                "cycle",
                "n=18".into(),
                cycle(18),
                2,
                WeightFamily::Uniform,
                CostFamily::Unit,
                1.0,
            ),
            (
                "path",
                "n=17".into(),
                path(17),
                3,
                WeightFamily::Constant,
                CostFamily::Unit,
                1.0,
            ),
        ];
        for (family, params, g, k, wf, cf, phi) in graphs {
            // The "-med" tag keeps these names disjoint from the quick/
            // standard registries (the BENCH gap table matches by name).
            c.push(family, "-med", params, g, wf, cf, phi, k, 1.0);
        }
        c
    }

    fn build(quick: bool) -> Self {
        let mut c = Corpus::default();
        let s = if quick { 1usize } else { 2 }; // size scale
        let graphs: Vec<(&'static str, String, Graph, usize)> = vec![
            (
                "pa",
                format!("n={} attach=2 seed=5", 90 * s),
                preferential_attachment(90 * s, 2, 5),
                2,
            ),
            // The radius sits above the connectivity threshold scale
            // `√(ln n / πn)` at each size: at quick sizes `r = 0.11`
            // fragments into a dozen fine-grained components whose
            // weights admit a zero-cut balanced grouping — a corpus
            // entry with optimum 0 can never certify a positive gap
            // (see the certified-gap gate in `reproduce corpus`).
            (
                "rgg",
                format!("n={} r={} seed=2", 80 * s, if quick { 0.18 } else { 0.11 }),
                random_geometric(80 * s, if quick { 0.18 } else { 0.11 }, 2).graph,
                2,
            ),
            (
                "ws",
                format!("n={} k_half=2 beta=0.08 seed=3", 90 * s),
                watts_strogatz(90 * s, 2, 0.08, 3),
                2,
            ),
            ("hypercube", format!("d={}", 5 + s), hypercube(5 + s), 2),
            (
                "torus",
                format!("dims=[{0},{0}]", 6 + 4 * s),
                torus(&[6 + 4 * s, 6 + 4 * s]),
                2,
            ),
            (
                "sbm",
                format!(
                    "n={} groups=4 p_in={} p_out=0.01 seed=4",
                    80 * s,
                    if quick { 0.16 } else { 0.08 }
                ),
                planted_partition(80 * s, 4, if quick { 0.16 } else { 0.08 }, 0.01, 4).graph,
                2,
            ),
            (
                "grid",
                format!("dims=[{0},{0}]", 8 + 4 * s),
                GridGraph::lattice(&[8 + 4 * s, 8 + 4 * s]).graph,
                3,
            ),
            (
                "tree",
                format!("n={} max_deg=3 seed=8", 90 * s),
                random_tree(90 * s, 3, 8),
                2,
            ),
        ];
        for (family, params, g, k) in graphs {
            for (wf, cf, phi) in PROFILES {
                c.push(family, "", params.clone(), g.clone(), wf, cf, phi, k, 1.0);
            }
        }
        c
    }

    #[allow(clippy::too_many_arguments)] // internal assembly of one entry
    fn push(
        &mut self,
        family: &'static str,
        tag: &str,
        params: String,
        g: Graph,
        wf: WeightFamily,
        cf: CostFamily,
        phi: f64,
        k: usize,
        p: f64,
    ) {
        // Seeds derived from the entry position keep profiles decorrelated
        // across entries while staying fully deterministic.
        let seed = 0xC0FFEE ^ (self.entries.len() as u64);
        let weights = wf.generate(g.num_vertices(), seed);
        let costs = cf.generate_for_graph(&g, phi, seed);
        let name = format!("{family}{tag}-{}-{}", wf.name(), cf.name());
        let instance =
            Instance::new(g, costs, weights).expect("corpus generators produce valid instances");
        self.entries.push(CorpusEntry {
            name,
            family,
            params,
            k,
            p,
            instance,
        });
    }

    /// All entries, in registry order (grouped by family).
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distinct family tags, in first-appearance order.
    pub fn families(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for e in &self.entries {
            if !out.contains(&e.family) {
                out.push(e.family);
            }
        }
        out
    }

    /// Iterate the entries of one family.
    pub fn family_entries<'a>(
        &'a self,
        family: &'a str,
    ) -> impl Iterator<Item = &'a CorpusEntry> + 'a {
        self.entries.iter().filter(move |e| e.family == family)
    }
}

impl<'a> IntoIterator for &'a Corpus {
    type Item = &'a CorpusEntry;
    type IntoIter = std::slice::Iter<'a, CorpusEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_covers_all_families_twice() {
        let c = Corpus::standard();
        let fams = c.families();
        for f in [
            "pa",
            "rgg",
            "ws",
            "hypercube",
            "torus",
            "sbm",
            "grid",
            "tree",
        ] {
            assert!(fams.contains(&f), "missing family {f}");
            assert_eq!(c.family_entries(f).count(), 2, "family {f}");
        }
        assert_eq!(c.len(), 16);
        // Names are unique.
        let mut names: Vec<&str> = c.entries().iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn quick_is_smaller_but_same_shape() {
        let q = Corpus::quick();
        let s = Corpus::standard();
        assert_eq!(q.len(), s.len());
        assert_eq!(q.families(), s.families());
        let qn: usize = q.entries().iter().map(|e| e.instance.num_vertices()).sum();
        let sn: usize = s.entries().iter().map(|e| e.instance.num_vertices()).sum();
        assert!(
            qn < sn,
            "quick ({qn} vertices) should be smaller than standard ({sn})"
        );
    }

    #[test]
    fn small_entries_fit_the_oracle_and_have_unique_names() {
        let c = Corpus::small();
        assert!(c.len() >= 10);
        for e in &c {
            assert!(
                e.instance.num_vertices() <= 10,
                "{} has n = {}",
                e.name,
                e.instance.num_vertices()
            );
            assert!(e.k >= 2);
        }
        // The two pa graphs are disambiguated by their name tags.
        let mut names: Vec<&str> = c.entries().iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len(), "duplicate small-corpus entry names");
    }

    #[test]
    fn every_entry_admits_a_nontrivial_certified_lower_bound() {
        // The corpus-wide gap expectation the `reproduce corpus` gate
        // enforces: each entry (both profiles) must give the
        // `mmb_core::lower_bounds` stack something to certify — an entry
        // with optimum 0 (e.g. a fragmented RGG whose components group
        // into a zero-cut balanced coloring) can never report a finite
        // certified gap and has no place in the registry.
        // All three registries, full sizes included: the full-size rgg
        // sits close to its connectivity threshold, which is exactly
        // where a generator tweak could silently push an entry back to
        // optimum 0.
        for corpus in [
            Corpus::standard(),
            Corpus::quick(),
            Corpus::small(),
            Corpus::medium(),
        ] {
            for e in &corpus {
                let report = mmb_core::lower_bounds::best_lower_bound(&e.instance, e.k);
                assert!(
                    report.value() > 0.0,
                    "{}: no certifier produced a positive bound (ran: {:?})",
                    e.name,
                    report
                        .certificates
                        .iter()
                        .map(|c| c.certifier)
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn medium_entries_sit_past_the_oracle_cap_and_exhaust_under_bnb() {
        let c = Corpus::medium();
        assert!(!c.is_empty());
        for e in &c {
            let n = e.instance.num_vertices();
            assert!(n > 16 && n <= 20, "{}: n = {n} outside (16, 20]", e.name);
            // The oracle must refuse these…
            assert!(
                mmb_core::exact_min_max_boundary(&e.instance, e.k).is_err(),
                "{}",
                e.name
            );
            // …and the engine must exhaust them under its default
            // certification budget (proving the optimum).
            let cert = mmb_core::lower_bounds::LowerBound::certify(
                &mmb_core::BnbBound::default(),
                &e.instance,
                e.k,
            );
            assert!(cert.is_some(), "{}: bnb failed to exhaust", e.name);
        }
        // Unique names here too.
        let mut names: Vec<&str> = c.entries().iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn small_corpus_carries_a_forced_pair_entry() {
        // The twin-weight entry exists precisely so the cut-pair
        // certifier has something to fire on in the differential suite.
        let c = Corpus::small();
        let twin = c
            .entries()
            .iter()
            .find(|e| e.name.contains("twin"))
            .expect("small corpus should carry the twin entry");
        let w = twin.instance.weights();
        let n = twin.instance.num_vertices();
        assert_eq!(w[0], 2.0 * n as f64);
        assert_eq!(w[n - 1], 2.0 * n as f64);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::quick();
        let b = Corpus::quick();
        for (x, y) in a.entries().iter().zip(b.entries()) {
            assert_eq!(x.name, y.name);
            assert_eq!(
                x.instance.graph().edge_list(),
                y.instance.graph().edge_list()
            );
            assert_eq!(x.instance.weights(), y.instance.weights());
            assert_eq!(x.instance.costs(), y.instance.costs());
        }
    }

    #[test]
    fn entries_carry_sane_parameters() {
        for e in &Corpus::standard() {
            assert!(e.k >= 2, "{}", e.name);
            assert!(e.p >= 1.0, "{}", e.name);
            assert!(e.instance.num_vertices() >= e.k, "{}", e.name);
            assert!(!e.params.is_empty());
        }
    }
}
