//! Adversarial vertex-weight families.
//!
//! The min-max boundary decomposition cost (Definition 2) is a supremum
//! over all weight functions `w : V → R+`; these families probe the regimes
//! that stress different parts of the pipeline: heavy single vertices
//! (strict-balance slack), heavy tails (bin-packing), spatial correlation
//! (separator quality), and flat weights (pure boundary minimization).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Named weight families, sweepable in experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightFamily {
    /// `w ≡ 1` — the classical unweighted case.
    Constant,
    /// iid uniform in `[1, 2)`.
    Uniform,
    /// iid exponential-ish tail: `w = ln(1/u)` for `u ~ U(0,1]`, shifted by
    /// 0.05 so weights stay positive.
    Exponential,
    /// Pareto tail `w = u^{−3/4}` — a few very heavy vertices.
    PowerLaw,
    /// Mostly tiny weights with ~1% spikes of weight `n/10`.
    Spike,
    /// Half the vertices weigh 1, half weigh 10 (mixture).
    Bimodal,
    /// Two vertices (the first and last ids) of weight `2n` over a unit
    /// sea: their joint weight exceeds any class envelope, so every
    /// strictly balanced coloring must separate them — the forced-pair
    /// regime the cut-type certifiers price.
    Twin,
}

/// All families, for sweeps.
pub const ALL_FAMILIES: [WeightFamily; 7] = [
    WeightFamily::Constant,
    WeightFamily::Uniform,
    WeightFamily::Exponential,
    WeightFamily::PowerLaw,
    WeightFamily::Spike,
    WeightFamily::Bimodal,
    WeightFamily::Twin,
];

impl WeightFamily {
    /// Short name for report tables.
    pub fn name(self) -> &'static str {
        match self {
            WeightFamily::Constant => "constant",
            WeightFamily::Uniform => "uniform",
            WeightFamily::Exponential => "exponential",
            WeightFamily::PowerLaw => "powerlaw",
            WeightFamily::Spike => "spike",
            WeightFamily::Bimodal => "bimodal",
            WeightFamily::Twin => "twin",
        }
    }

    /// Generate `n` weights deterministically from `seed`.
    pub fn generate(self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1B54A32D192ED03);
        (0..n)
            .map(|i| match self {
                WeightFamily::Constant => 1.0,
                WeightFamily::Uniform => 1.0 + rng.random::<f64>(),
                WeightFamily::Exponential => {
                    let u: f64 = rng.random::<f64>().max(1e-12);
                    0.05 + (1.0 / u).ln()
                }
                WeightFamily::PowerLaw => {
                    let u: f64 = rng.random::<f64>().max(1e-9);
                    u.powf(-0.75)
                }
                WeightFamily::Spike => {
                    if rng.random::<f64>() < 0.01 {
                        n as f64 / 10.0
                    } else {
                        0.1
                    }
                }
                WeightFamily::Bimodal => {
                    if rng.random::<bool>() {
                        1.0
                    } else {
                        10.0
                    }
                }
                WeightFamily::Twin => {
                    if i == 0 || i + 1 == n {
                        2.0 * n as f64
                    } else {
                        1.0
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_positive() {
        for fam in ALL_FAMILIES {
            let a = fam.generate(500, 7);
            let b = fam.generate(500, 7);
            assert_eq!(a, b, "{} not deterministic", fam.name());
            assert!(
                a.iter().all(|&w| w > 0.0 && w.is_finite()),
                "{}",
                fam.name()
            );
        }
    }

    #[test]
    fn families_differ() {
        let c = WeightFamily::Constant.generate(100, 1);
        let p = WeightFamily::PowerLaw.generate(100, 1);
        assert!(c.iter().all(|&x| x == 1.0));
        let pmax = p.iter().cloned().fold(0.0, f64::max);
        let pmin = p.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(pmax / pmin > 2.0, "power law should have a tail");
    }

    #[test]
    fn spike_has_heavy_hitters() {
        let s = WeightFamily::Spike.generate(2000, 3);
        let heavy = s.iter().filter(|&&w| w > 1.0).count();
        assert!(heavy >= 5, "expected some spikes, got {heavy}");
        assert!(heavy <= 100, "too many spikes: {heavy}");
    }
}
