//! The §1 motivating workload: large-scale climate simulation.
//!
//! The paper motivates min-max boundary decomposition with climate codes:
//! the earth's surface is divided into regions (mesh cells); each region is
//! a job whose runtime varies enormously with day-time, local weather and
//! desired accuracy, and neighboring regions exchange data at rates that
//! vary just as much. We model this as a 2D grid "latitude × longitude"
//! patch:
//!
//! * **weights** — a smooth day/night insolation wave along the longitude
//!   axis, plus a few Gaussian "storm systems" that multiply local runtime
//!   by up to `storm_intensity`;
//! * **costs** — coupling proportional to the mean activity of the two
//!   adjacent cells (stormy neighbors exchange much more data).
//!
//! The result is a bounded-degree grid instance with spatially correlated,
//! heavy-tailed weights and costs — exactly the regime where greedy
//! bin packing (balance, terrible boundaries) and plain recursive bisection
//! (decent boundaries, loose balance) both fall short.

use mmb_graph::gen::grid::GridGraph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A generated climate workload.
pub struct ClimateWorkload {
    /// The mesh (a 2D grid graph).
    pub grid: GridGraph,
    /// Per-region simulation time (vertex weights).
    pub weights: Vec<f64>,
    /// Per-dependency communication volume (edge costs).
    pub costs: Vec<f64>,
}

/// Parameters of the climate workload generator.
#[derive(Clone, Copy, Debug)]
pub struct ClimateParams {
    /// Longitude extent (axis 0).
    pub lon: usize,
    /// Latitude extent (axis 1).
    pub lat: usize,
    /// Number of storm systems.
    pub storms: usize,
    /// Peak multiplier of a storm at its center.
    pub storm_intensity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClimateParams {
    fn default() -> Self {
        Self {
            lon: 64,
            lat: 32,
            storms: 5,
            storm_intensity: 20.0,
            seed: 42,
        }
    }
}

/// Generate a climate workload.
pub fn climate(params: &ClimateParams) -> ClimateWorkload {
    let grid = GridGraph::lattice(&[params.lon, params.lat]);
    let n = grid.graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xE7037ED1A0B428DB);

    // Storm centers and radii.
    let storms: Vec<(f64, f64, f64)> = (0..params.storms)
        .map(|_| {
            (
                rng.random::<f64>() * params.lon as f64,
                rng.random::<f64>() * params.lat as f64,
                2.0 + rng.random::<f64>() * (params.lon.min(params.lat) as f64 / 6.0),
            )
        })
        .collect();

    // Per-cell "activity" = insolation wave × storm amplification.
    let activity: Vec<f64> = (0..n as u32)
        .map(|v| {
            let c = grid.coord(v);
            let (x, y) = (c[0] as f64, c[1] as f64);
            let day = 1.0 + 0.8 * (2.0 * std::f64::consts::PI * x / params.lon as f64).sin();
            let storm: f64 = storms
                .iter()
                .map(|&(sx, sy, r)| {
                    let d2 = (x - sx).powi(2) + (y - sy).powi(2);
                    (params.storm_intensity - 1.0) * (-d2 / (2.0 * r * r)).exp()
                })
                .sum();
            (day + storm).max(0.05)
        })
        .collect();

    // Weights: activity plus 10% multiplicative noise (numerics, adaptive
    // time stepping…).
    let weights: Vec<f64> = activity
        .iter()
        .map(|&a| a * (0.9 + 0.2 * rng.random::<f64>()))
        .collect();

    // Costs: mean activity of the endpoints (halo exchange volume).
    let costs: Vec<f64> = grid
        .graph
        .edge_list()
        .iter()
        .map(|&(u, v)| 0.5 * (activity[u as usize] + activity[v as usize]))
        .collect();

    ClimateWorkload {
        grid,
        weights,
        costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::stats::InstanceStats;

    #[test]
    fn workload_shape() {
        let w = climate(&ClimateParams::default());
        assert_eq!(w.grid.graph.num_vertices(), 64 * 32);
        assert_eq!(w.weights.len(), 64 * 32);
        assert_eq!(w.costs.len(), w.grid.graph.num_edges());
        assert!(w.weights.iter().all(|&x| x > 0.0));
        assert!(w.costs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn storms_create_heavy_tail() {
        let w = climate(&ClimateParams {
            storm_intensity: 50.0,
            ..Default::default()
        });
        let wmax = w.weights.iter().cloned().fold(0.0, f64::max);
        let wavg: f64 = w.weights.iter().sum::<f64>() / w.weights.len() as f64;
        assert!(
            wmax / wavg > 5.0,
            "storms should create hotspots: max/avg = {}",
            wmax / wavg
        );
    }

    #[test]
    fn instance_is_well_behaved() {
        // Bounded degree and bounded local fluctuation — the paper's
        // standing assumption; the smooth cost field guarantees it.
        let w = climate(&ClimateParams::default());
        let stats = InstanceStats::compute(&w.grid.graph, &w.costs);
        assert!(stats.max_degree <= 4);
        assert!(
            stats.local_fluctuation < 100.0,
            "φ_ℓ = {}",
            stats.local_fluctuation
        );
    }

    #[test]
    fn deterministic() {
        let a = climate(&ClimateParams::default());
        let b = climate(&ClimateParams::default());
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.costs, b.costs);
    }
}
