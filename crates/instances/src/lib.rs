//! # mmb-instances
//!
//! Instance and workload generators for the min-max boundary decomposition
//! experiments:
//!
//! * [`weights`] — adversarial vertex-weight families. Definition 2 takes a
//!   supremum over *all* weight functions, so every experiment sweeps these.
//! * [`costs`] — edge-cost families with prescribed fluctuation
//!   `φ = max c / min c`, the control parameter of the grid separator
//!   theorem (Theorem 19).
//! * [`climate`] — the paper's §1 motivating workload: an earth-surface-like
//!   mesh whose per-region simulation times vary with day/night and storm
//!   systems, and whose coupling costs vary with the local "weather
//!   gradient".
//! * [`tight`] — certified lower-bound instances (Theorem 5 / Lemma 40):
//!   disjoint copies `G̃` of a base instance all of whose balanced
//!   separations are provably expensive, via exhaustive search (small `n`)
//!   or grid isoperimetry.
//! * [`corpus`] — the standard instance registry: every graph family
//!   (grids, trees, preferential attachment, geometric, small-world,
//!   hypercube/torus, planted partition) × weight/cost profiles, as
//!   validated [`Instance`](mmb_core::api::Instance)s that benches,
//!   experiments and tests iterate uniformly.
//!
//! All generators take explicit seeds and are deterministic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod climate;
pub mod corpus;
pub mod costs;
pub mod tight;
pub mod weights;

pub use corpus::{Corpus, CorpusEntry};
