//! The `reproduce chaos` report: seeded fault schedules × the corpus,
//! resiliently solved, with a CI gate over the harness's contract.
//!
//! Each (seed, entry) cell arms [`FaultSchedule::chaos`]`(seed)` and runs
//! a [`ResilientSolver`] over the entry inside a `catch_unwind` witness.
//! The gate fails if any cell violates the resilient contract:
//!
//! 1. **No-escape prong** — no panic crosses the public API;
//! 2. **Validity prong** — every response is a total, strictly balanced
//!    coloring with a [`Resilience`](mmb_core::resilient::Resilience)
//!    record whose final attempt served;
//! 3. **Monotonicity prong** — the served cost never exceeds the trivial
//!    floor rung's cost;
//! 4. **Accounting prong** — the record's fault count matches the armed
//!    schedule's injection log.
//!
//! Wall-clock columns are telemetry, not gated: chaos stalls make timing
//! machine-dependent, while the four prongs above are deterministic
//! (schedules are seed-derived, search truncation is node-count driven).

use std::panic::{catch_unwind, AssertUnwindSafe};

use mmb_core::bnb::BnbConfig;
use mmb_core::failpoint::{with_faults, FaultSchedule};
use mmb_core::resilient::ResilientSolver;
use mmb_instances::corpus::Corpus;

use crate::fmt;
use crate::table::Table;

/// The CI seed set (`--quick` uses the first three; the chaos suite in
/// `mmb-core/tests/chaos.rs` sweeps its own overlapping set).
pub const CHAOS_SEEDS: [u64; 6] = [1, 2, 0xc0ffee, 3, 5, 8];

/// Node budget for the certified rung under chaos: large enough to
/// exercise the bnb failpoints, small enough that seeds × entries stays
/// CI-sized.
const CHAOS_BNB_NODES: u64 = 2_000;

/// Outcome of a chaos sweep: the printable table plus the CI gate data.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The per-(seed, entry) serving table.
    pub table: Table,
    /// Human-readable contract violations; the gate fails if non-empty.
    pub violations: Vec<String>,
    /// Cells where the ladder degraded below its best enabled rung.
    pub degraded_cells: usize,
    /// Total faults injected across the sweep (a zero here means the
    /// schedules never hit an armed site and the suite tests nothing).
    pub faults_injected: u64,
    /// Whether every gate prong passed.
    pub gate_ok: bool,
}

/// Run the chaos sweep: every seed × every corpus entry, resiliently
/// solved under the seed's fault schedule.
pub fn run_chaos(quick: bool) -> ChaosOutcome {
    let seeds: &[u64] = if quick {
        &CHAOS_SEEDS[..3]
    } else {
        &CHAOS_SEEDS
    };
    let corpus = Corpus::quick();
    let mut table = Table::new(
        format!(
            "CHAOS: {} seeds × {} entries — resilient solves under injected \
             panics/transients/stalls (gate: no escape, valid output, monotone \
             degradation, fault accounting)",
            seeds.len(),
            corpus.len()
        ),
        &[
            "seed",
            "entry",
            "k",
            "served by",
            "tries",
            "degraded",
            "faults",
            "max ∂",
            "floor ∂",
            "ms",
        ],
    );
    let mut violations = Vec::new();
    let mut degraded_cells = 0usize;
    let mut faults_injected = 0u64;
    for &seed in seeds {
        let schedule = FaultSchedule::chaos(seed);
        for entry in &corpus {
            let cell = format!("seed {seed} / entry `{}`", entry.name);
            let solver = match ResilientSolver::for_instance(&entry.instance)
                .classes(entry.k)
                .p(entry.p)
                .bnb(BnbConfig::with_node_budget(CHAOS_BNB_NODES))
                .build()
            {
                Ok(s) => s,
                Err(e) => {
                    violations.push(format!("{cell}: solver build failed: {e}"));
                    continue;
                }
            };
            let (outcome, log) = with_faults(&schedule, || {
                catch_unwind(AssertUnwindSafe(|| solver.solve()))
            });
            let report = match outcome {
                Ok(r) => r,
                Err(payload) => {
                    violations.push(format!(
                        "{cell}: PANIC ESCAPED the public API: {}",
                        mmb_core::failpoint::panic_message(payload.as_ref())
                    ));
                    continue;
                }
            };
            let Some(res) = report.resilience.clone() else {
                violations.push(format!("{cell}: report without a Resilience record"));
                continue;
            };
            if !report.coloring.is_total() || !report.is_strictly_balanced() {
                violations.push(format!(
                    "{cell}: served output invalid (total: {}, strict: {})",
                    report.coloring.is_total(),
                    report.is_strictly_balanced()
                ));
            }
            if report.max_boundary > res.floor_cost * (1.0 + 1e-9) {
                violations.push(format!(
                    "{cell}: monotonicity broken — served {} > floor {}",
                    report.max_boundary, res.floor_cost
                ));
            }
            match res.attempts.last() {
                Some(last) if last.rung == res.served_by => {}
                _ => violations.push(format!(
                    "{cell}: record inconsistent — final attempt is not the server"
                )),
            }
            if res.faults_observed != log.len() as u64 {
                violations.push(format!(
                    "{cell}: fault accounting off — record {} vs log {}",
                    res.faults_observed,
                    log.len()
                ));
            }
            degraded_cells += res.degraded as usize;
            faults_injected += log.len() as u64;
            let tries: u32 = res.attempts.iter().map(|a| a.tries).sum();
            table.row(vec![
                seed.to_string(),
                entry.name.clone(),
                entry.k.to_string(),
                res.served_by.clone(),
                tries.to_string(),
                if res.degraded {
                    "yes".into()
                } else {
                    "no".into()
                },
                res.faults_observed.to_string(),
                fmt(report.max_boundary),
                fmt(res.floor_cost),
                fmt(res.elapsed_millis),
            ]);
        }
    }
    table.note(format!(
        "{} cells degraded below their best enabled rung; {} faults injected \
         across the sweep",
        degraded_cells, faults_injected
    ));
    // An injection-free sweep means the schedules never reached an armed
    // site — the suite would be green by vacuity, so the gate refuses it.
    let gate_ok = violations.is_empty() && faults_injected > 0;
    ChaosOutcome {
        table,
        violations,
        degraded_cells,
        faults_injected,
        gate_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_chaos_sweep_passes_the_gate() {
        let out = run_chaos(true);
        assert!(out.gate_ok, "violations: {:?}", out.violations);
        assert_eq!(out.table.rows.len(), 3 * Corpus::quick().len());
        assert!(
            out.faults_injected > 0,
            "chaos schedules never fired — vacuous suite"
        );
    }
}
