//! Reproduce every experiment table (E1–E12; see `DESIGN.md` §5 for the
//! per-theorem index, `EXPERIMENTS.md` for recorded results).
//!
//! ```text
//! reproduce [--quick] [e1 e2 … | all]
//! ```

use mmb_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|s| s.as_str())
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        experiments::ALL.to_vec()
    } else {
        ids
    };
    let mode = if quick { "quick" } else { "full" };
    println!("# min-max boundary decomposition — experiment reproduction ({mode} mode)");
    for id in ids {
        match experiments::run(id, quick) {
            Some(table) => table.print(),
            None => eprintln!("unknown experiment id: {id} (known: {:?})", experiments::ALL),
        }
    }
}
