//! Reproduce every experiment table (E1–E12; see `DESIGN.md` §5 for the
//! per-theorem index, `EXPERIMENTS.md` for recorded results) and record
//! the perf baselines.
//!
//! ```text
//! reproduce [--quick] [e1 e2 … | all]      # experiment tables
//! reproduce corpus [--quick]               # corpus × partitioners table;
//!                                          #   exits 1 if any gate prong
//!                                          #   fails (Thm5 ratio, trivial
//!                                          #   or beaten certified bounds,
//!                                          #   no bnb-proven optimum past
//!                                          #   the oracle cap)
//! reproduce bench [--quick] [--out PATH]   # perf suites → BENCH_6.json
//! reproduce churn [--quick] [--out PATH]   # serving load test: cold vs
//!                                          #   warm latency through
//!                                          #   mmb-service → BENCH_7.json;
//!                                          #   exits 1 unless warm ≥ 5×
//!                                          #   faster and every serve is
//!                                          #   strict + monotone
//! reproduce bench-verify PATH              # CI guard: file exists + valid
//!                                          #   (dispatches on the schema
//!                                          #   tag: mmb-bench-6 or -7)
//! reproduce gap-gate PATH                  # CI guard: fresh certified gaps
//!                                          #   must not regress vs PATH
//! reproduce lint [--json]                  # mmb-analyze soundness scan;
//!                                          #   exits 1 on any unpragma'd
//!                                          #   finding (NaN comparators,
//!                                          #   hash-order leaks, …)
//! reproduce chaos [--quick]                # seeded fault schedules ×
//!                                          #   corpus through the
//!                                          #   resilient harness; exits 1
//!                                          #   if any contract prong
//!                                          #   fails (panic escape,
//!                                          #   invalid output, broken
//!                                          #   monotone degradation)
//! ```

use mmb_bench::{chaos, churn, corpus, experiments, perf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let words: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|s| s.as_str())
        .collect();

    match words.first() {
        Some(&"corpus") => {
            let out = corpus::run_corpus(quick);
            out.table.print();
            if !out.gate_ok {
                if out.worst_pipeline_ratio > 1.0 {
                    eprintln!(
                        "corpus gate FAILED: pipeline Theorem-5 ratio {:.3} > 1.0 on entry `{}`",
                        out.worst_pipeline_ratio, out.worst_entry
                    );
                }
                for entry in &out.trivial_entries {
                    eprintln!(
                        "corpus gate FAILED: entry `{entry}` has no positive certified \
                         lower bound (gap ratio ∞)"
                    );
                }
                for violation in &out.soundness_violations {
                    eprintln!(
                        "corpus gate FAILED: certified lower bound beaten by a strictly \
                         balanced coloring — {violation}"
                    );
                }
                if out.bnb_proven < 1 {
                    eprintln!(
                        "corpus gate FAILED: no past-the-oracle-cap entry solved to \
                         proven optimality by branch and bound"
                    );
                }
                std::process::exit(1);
            }
            println!(
                "corpus gate ok: worst pipeline Theorem-5 ratio {:.3} (entry `{}`); \
                 worst certified gap {:.3} (entry `{}`); {} medium entries bnb-proven \
                 optimal; all lower bounds positive and unbeaten",
                out.worst_pipeline_ratio,
                out.worst_entry,
                out.worst_certified.0,
                out.worst_certified.1,
                out.bnb_proven
            );
        }
        Some(&"bench") => {
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "BENCH_6.json".to_string());
            let report = perf::run(quick);
            let json = report.to_json();
            // Self-check before writing: an emitted file always validates.
            if let Err(e) = perf::validate_bench_json(&json) {
                eprintln!("internal error: emitted JSON is invalid: {e}");
                std::process::exit(1);
            }
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            }
            print!("{}", report.summary());
            println!("wrote {out}");
        }
        Some(&"churn") => {
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "BENCH_7.json".to_string());
            let report = churn::run_churn(quick);
            let json = report.to_json();
            // Self-check before writing: an emitted file always validates —
            // this is where the ≥ 5× and strict/monotone gates bite.
            if let Err(e) = churn::validate_churn_json(&json) {
                report.summary().print();
                eprintln!("churn gate FAILED: {e}");
                std::process::exit(1);
            }
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            }
            report.summary().print();
            println!("wrote {out}");
        }
        Some(&"bench-verify") => {
            let Some(path) = words.get(1) else {
                eprintln!("usage: reproduce bench-verify <path>");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{path}: missing or unreadable: {e}");
                    std::process::exit(1);
                }
            };
            // Dispatch on the schema tag so one CI guard covers both the
            // perf baselines (mmb-bench-6) and the churn trace (mmb-bench-7).
            let schema_7 = text.contains("\"mmb-bench-7\"");
            let checked = if schema_7 {
                churn::validate_churn_json(&text)
            } else {
                perf::validate_bench_json(&text)
            };
            match checked {
                Ok(()) => println!(
                    "{path}: valid {} document",
                    if schema_7 {
                        "mmb-bench-7"
                    } else {
                        "mmb-bench-6"
                    }
                ),
                Err(e) => {
                    eprintln!("{path}: malformed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some(&"gap-gate") => {
            let Some(path) = words.get(1) else {
                eprintln!("usage: reproduce gap-gate <path>");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{path}: missing or unreadable: {e}");
                    std::process::exit(1);
                }
            };
            match perf::gap_regression_check(&text) {
                Ok(msg) => println!("{path}: {msg}"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some(&"chaos") => {
            let out = chaos::run_chaos(quick);
            out.table.print();
            if !out.gate_ok {
                for violation in &out.violations {
                    eprintln!("chaos gate FAILED: {violation}");
                }
                if out.faults_injected == 0 {
                    eprintln!(
                        "chaos gate FAILED: no fault was injected across the sweep — \
                         the suite is vacuous"
                    );
                }
                std::process::exit(1);
            }
            println!(
                "chaos gate ok: {} cells, {} faults injected, {} degraded serves, \
                 zero contract violations",
                out.table.rows.len(),
                out.faults_injected,
                out.degraded_cells
            );
        }
        Some(&"lint") => {
            let json = args.iter().any(|a| a == "--json");
            let root = mmb_analyze::workspace_root();
            let report = match mmb_analyze::scan_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("lint: cannot scan workspace at {}: {e}", root.display());
                    std::process::exit(2);
                }
            };
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render_table());
            }
            if !report.is_clean() {
                eprintln!(
                    "lint FAILED: {} finding(s) — fix them or add an audited \
                     `// lint: allow(<rule>) — <reason>` pragma",
                    report.findings.len()
                );
                std::process::exit(1);
            }
        }
        _ => {
            let ids: Vec<&str> = if words.is_empty() || words.contains(&"all") {
                experiments::ALL.to_vec()
            } else {
                words
            };
            let mode = if quick { "quick" } else { "full" };
            println!("# min-max boundary decomposition — experiment reproduction ({mode} mode)");
            for id in ids {
                match experiments::run(id, quick) {
                    Some(table) => table.print(),
                    None => {
                        eprintln!(
                            "unknown experiment id: {id} (known: {:?})",
                            experiments::ALL
                        )
                    }
                }
            }
        }
    }
}
