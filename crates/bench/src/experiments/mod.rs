//! The experiment suite E1–E12 (see `DESIGN.md` §5 for the index).
//!
//! Each experiment returns a [`Table`] whose rows are the series the
//! corresponding theorem predicts; `quick` mode shrinks instance sizes for
//! CI-speed smoke runs.

mod comparisons;
mod theorems;

pub use comparisons::{e10, e11, e12, e4, e7, e8, e9, wall_costs};
pub use theorems::{e1, e2, e3, e5, e6};

use crate::table::Table;

/// Run an experiment by id (`"e1"`…`"e12"`).
pub fn run(id: &str, quick: bool) -> Option<Table> {
    match id {
        "e1" => Some(e1(quick)),
        "e2" => Some(e2(quick)),
        "e3" => Some(e3(quick)),
        "e4" => Some(e4(quick)),
        "e5" => Some(e5(quick)),
        "e6" => Some(e6(quick)),
        "e7" => Some(e7(quick)),
        "e8" => Some(e8(quick)),
        "e9" => Some(e9(quick)),
        "e10" => Some(e10(quick)),
        "e11" => Some(e11(quick)),
        "e12" => Some(e12(quick)),
        _ => None,
    }
}

/// All experiment ids in order.
pub const ALL: [&str; 12] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_known_ids() {
        assert!(run("e2", true).is_some());
        assert!(run("nope", true).is_none());
    }
}
