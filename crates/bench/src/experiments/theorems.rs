//! Experiments E1–E3, E5, E6: the paper's upper-bound theorems.
//!
//! E1/E2/E6 drive the pipeline through the [`Instance`]/[`Solver`] API;
//! the [`Report`](mmb_core::api::Report) already carries the Theorem-5
//! right-hand side and measured/bound ratio the tables print.

use mmb_core::api::{Instance, Solver};
use mmb_core::bounds;
use mmb_core::multibalance::multibalance;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::measure::{norm_1, norm_inf, total_edge_norm_p};
use mmb_graph::VertexSet;
use mmb_instances::costs::CostFamily;
use mmb_instances::weights::{WeightFamily, ALL_FAMILIES};
use mmb_splitters::grid::{theorem19_bound, GridSplitter};
use mmb_splitters::Splitter;

use crate::table::Table;
use crate::{fmt, timed};

/// E1 — Theorem 4/5 upper bound on the maximum boundary cost of strictly
/// balanced colorings, across grid dimension, size, `k`, and weights.
pub fn e1(quick: bool) -> Table {
    let mut t = Table::new(
        "E1: Theorem 4/5 — max boundary of strictly balanced k-colorings vs ‖c‖_p/k^{1/p} + ‖c‖∞",
        &[
            "graph", "p", "weights", "k", "max ∂", "bound", "ratio", "strict",
        ],
    );
    let sides_2d: &[usize] = if quick { &[24] } else { &[24, 48, 96] };
    let ks: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64] };
    let fams = [WeightFamily::Constant, WeightFamily::PowerLaw];

    for &side in sides_2d {
        let grid = GridGraph::lattice(&[side, side]);
        run_e1_rows(
            &mut t,
            &grid,
            2.0,
            &format!("grid {side}x{side}"),
            ks,
            &fams,
        );
    }
    let sides_3d: &[usize] = if quick { &[8] } else { &[8, 14] };
    for &side in sides_3d {
        let grid = GridGraph::lattice(&[side, side, side]);
        run_e1_rows(&mut t, &grid, 1.5, &format!("grid {side}^3"), ks, &fams);
    }
    t.note("ratio = measured / Theorem-5 RHS with constant 1; bounded & flat across scales ⇒ reproduced");
    t
}

fn run_e1_rows(
    t: &mut Table,
    grid: &GridGraph,
    p: f64,
    label: &str,
    ks: &[usize],
    fams: &[WeightFamily],
) {
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    for fam in fams {
        let weights = fam.generate(n, 11);
        let inst =
            Instance::from_grid(grid.clone(), costs.clone(), weights).expect("valid instance");
        for &k in ks {
            let report = Solver::for_instance(&inst)
                .classes(k)
                .p(p)
                .build()
                .expect("valid instance")
                .solve();
            t.row(vec![
                label.into(),
                fmt(p),
                fam.name().into(),
                k.to_string(),
                fmt(report.max_boundary),
                fmt(report.bound),
                fmt(report.bound_ratio),
                if report.is_strictly_balanced() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
}

/// E2 — Definition 1: eq. (1) holds *exactly* for every output coloring,
/// under every adversarial weight family.
pub fn e2(quick: bool) -> Table {
    let mut t = Table::new(
        "E2: strict balance eq.(1): |w(class) − avg| ≤ (1 − 1/k)·‖w‖∞, all families",
        &["weights", "k", "max |dev|", "slack", "defect", "strict"],
    );
    let side = if quick { 24 } else { 48 };
    let grid = GridGraph::lattice(&[side, side]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let ks: &[usize] = if quick { &[2, 16] } else { &[2, 5, 16, 64] };
    for fam in ALL_FAMILIES {
        let weights = fam.generate(n, 23);
        let inst =
            Instance::from_grid(grid.clone(), costs.clone(), weights).expect("valid instance");
        for &k in ks {
            let report = Solver::for_instance(&inst)
                .classes(k)
                .build()
                .expect("valid instance")
                .solve();
            let avg = norm_1(&report.class_weights) / k as f64;
            let dev = report
                .class_weights
                .iter()
                .map(|&x| (x - avg).abs())
                .fold(0.0, f64::max);
            t.row(vec![
                fam.name().into(),
                k.to_string(),
                fmt(dev),
                fmt(report.strict_slack),
                fmt(report.strict_defect),
                if report.is_strictly_balanced() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    t.note("defect = max|dev| − slack must be ≤ 0 (exact guarantee, not asymptotic)");
    t
}

/// E3 — Lemma 6: multi-balanced colorings for r = 1..4 measures; all class
/// measures stay O(avg + max) while avg boundary tracks B.
pub fn e3(quick: bool) -> Table {
    let mut t = Table::new(
        "E3: Lemma 6 — multi-balanced colorings, r measures at once",
        &[
            "r",
            "k",
            "worst balance factor",
            "avg ∂",
            "B = q·σ‖c‖_p/k^{1/p}",
            "∂/B",
        ],
    );
    let side = if quick { 24 } else { 48 };
    let grid = GridGraph::lattice(&[side, side]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let sp = GridSplitter::new(&grid, &costs);
    let domain = VertexSet::full(n);
    let k = 12;
    // Synthetic measures with very different spatial profiles.
    let measures: Vec<Vec<f64>> = vec![
        (0..n).map(|v| 1.0 + (v % 3) as f64).collect(),
        (0..n as u32)
            .map(|v| {
                if grid.coord(v)[0] < side as i64 / 4 {
                    8.0
                } else {
                    0.2
                }
            })
            .collect(),
        (0..n as u32)
            .map(|v| if grid.coord(v)[1] % 7 == 0 { 5.0 } else { 0.5 })
            .collect(),
        (0..n).map(|v| ((v * 37) % 11) as f64 + 0.1).collect(),
    ];
    let cnorm = total_edge_norm_p(&grid.graph, &costs, 2.0);
    for r in 1..=4usize {
        let ms: Vec<&[f64]> = measures[..r].iter().map(|m| m.as_slice()).collect();
        let chi = multibalance(&sp, k, &domain, &ms);
        let worst = ms
            .iter()
            .map(|m| {
                let cm = chi.class_measures(m);
                let avg = norm_1(m) / k as f64;
                norm_inf(&cm) / (avg + norm_inf(m))
            })
            .fold(0.0, f64::max);
        let bc = chi.boundary_costs(&grid.graph, &costs);
        let avg_b = norm_1(&bc) / k as f64;
        let b = bounds::lemma9_b(1.0, 2.0, k, cnorm);
        t.row(vec![
            r.to_string(),
            k.to_string(),
            fmt(worst),
            fmt(avg_b),
            fmt(b),
            fmt(avg_b / b),
        ]);
    }
    t.note("balance factor = max_j ‖Φ⁽ʲ⁾χ⁻¹‖∞ / (‖Φ⁽ʲ⁾‖avg + ‖Φ⁽ʲ⁾‖∞): must stay O_r(1)");
    t
}

/// E5 — Theorem 19: GridSplit cost vs `d·log^{1/d}(φ+1)·‖c‖_{d/(d−1)}`
/// across dimension and fluctuation.
pub fn e5(quick: bool) -> Table {
    let mut t = Table::new(
        "E5: Theorem 19 — GridSplit cost vs d·log^{1/d}(φ+1)·‖c‖_{d/(d−1)}",
        &[
            "grid",
            "d",
            "cost family",
            "φ",
            "cut cost",
            "bound",
            "ratio",
        ],
    );
    let phis: &[f64] = if quick {
        &[1.0, 1e3]
    } else {
        &[1.0, 10.0, 1e3, 1e6]
    };
    let dims: Vec<(Vec<usize>, &str)> = if quick {
        vec![
            (vec![1024], "path 1024"),
            (vec![32, 32], "grid 32²"),
            (vec![10, 10, 10], "grid 10³"),
        ]
    } else {
        vec![
            (vec![4096], "path 4096"),
            (vec![64, 64], "grid 64²"),
            (vec![16, 16, 16], "grid 16³"),
        ]
    };
    for (dims, label) in &dims {
        let d = dims.len();
        let p = if d == 1 {
            2.0
        } else {
            d as f64 / (d as f64 - 1.0)
        };
        let grid = GridGraph::lattice(dims);
        let n = grid.graph.num_vertices();
        let w = VertexSet::full(n);
        let weights = vec![1.0; n];
        for fam in [CostFamily::LogUniform, CostFamily::TwoLevel] {
            for &phi in phis {
                let costs = fam.generate(&grid, phi, 31);
                let sp = GridSplitter::new(&grid, &costs);
                let u = sp.split(&w, &weights, n as f64 / 2.0);
                let cut = mmb_graph::cut::boundary_cost_within(&grid.graph, &costs, &w, &u);
                let cnorm = total_edge_norm_p(&grid.graph, &costs, p);
                let bound = theorem19_bound(d, phi, cnorm);
                t.row(vec![
                    label.to_string(),
                    d.to_string(),
                    fam.name().into(),
                    fmt(phi),
                    fmt(cut),
                    fmt(bound),
                    fmt(cut / bound),
                ]);
            }
        }
    }
    t.note("p = d/(d−1) (p = 2 for the path); ratio must stay bounded as φ sweeps 6 decades");
    t
}

/// E6 — running time: near-linear in |G|, multiplicative in log k
/// (Theorem 4); coarse wall-clock shape (criterion benches give precise
/// numbers). Timed per `solve()` on a prebuilt [`Solver`], so the figure
/// is the marginal serve cost, not the one-time build.
pub fn e6(quick: bool) -> Table {
    let mut t = Table::new(
        "E6: Theorem 4 running time — t(|G|)·log k shape",
        &["side", "n", "k", "ms/solve", "ms / (n·log₂k)"],
    );
    let sides: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64] };
    for &side in sides {
        let grid = GridGraph::lattice(&[side, side]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let weights = WeightFamily::Uniform.generate(n, 3);
        let inst = Instance::from_grid(grid, costs, weights).expect("valid instance");
        for k in [4usize, 16, 64] {
            let solver = Solver::for_instance(&inst)
                .classes(k)
                .build()
                .expect("valid instance");
            let (report, ms) = timed(|| solver.solve());
            assert!(report.is_strictly_balanced());
            let denom = n as f64 * (k as f64).log2();
            t.row(vec![
                side.to_string(),
                n.to_string(),
                k.to_string(),
                fmt(ms),
                fmt(ms / denom * 1e3),
            ]);
        }
    }
    t.note("last column in µs; flat across rows ⇒ O(|G|·log k) shape (constants include shrink layers)");
    t
}
