//! Experiments E4, E7–E12: lower bounds, baseline comparisons, ablations.
//!
//! The comparison experiments (E4, E7, E10) iterate algorithms through the
//! [`Partitioner`] interface, so "ours vs baselines" is literally one loop
//! over `&[&dyn Partitioner]` on a shared [`Instance`].

use mmb_baselines::greedy::{FirstFit, Lpt};
use mmb_baselines::kl::{refine, KlParams};
use mmb_baselines::multilevel::Multilevel;
use mmb_baselines::recursive_bisection::{recursive_bisection, RecursiveBisection};
use mmb_core::api::{auto_splitter, Instance, Partitioner, SolveError, Solver, Theorem4Pipeline};
use mmb_core::bounds;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::tree::complete_binary_tree;
use mmb_graph::measure::{norm_1, total_edge_norm_p};
use mmb_graph::{Coloring, VertexSet};
use mmb_instances::climate::{climate, ClimateParams, ClimateWorkload};
use mmb_instances::costs::CostFamily;
use mmb_instances::tight::TightInstance;
use mmb_splitters::grid::{theorem19_bound, GridSplitter};
use mmb_splitters::separator::{GridSlabSeparator, SeparatorSplitter, TreeCentroidSeparator};
use mmb_splitters::tree::TreeSplitter;
use mmb_splitters::Splitter;
use rayon::prelude::*;

use crate::table::Table;
use crate::{fmt, run_scored};

/// Build the GridGraph twin of a `TightInstance::grid` union so GridSplit
/// can drive our pipeline on it (same ids: copy-major, then base id).
fn tight_grid_twin(side: usize, k: usize) -> GridGraph {
    let base = GridGraph::lattice(&[side, side]);
    GridGraph::disjoint_copies(&base, k / 4)
}

/// The tight instance as an [`Instance`] carrying the twin's geometry.
fn tight_instance(tight: &TightInstance, side: usize, k: usize) -> Instance {
    let twin = tight_grid_twin(side, k);
    assert_eq!(twin.graph.num_vertices(), tight.union.graph.num_vertices());
    assert_eq!(twin.graph.num_edges(), tight.union.graph.num_edges());
    Instance::from_grid(twin, tight.union.costs.clone(), tight.weights.clone())
        .expect("tight instances are well-formed")
}

/// The climate workload as an [`Instance`] (geometry preserved).
fn climate_instance(wl: &ClimateWorkload) -> Instance {
    Instance::from_grid(wl.grid.clone(), wl.costs.clone(), wl.weights.clone())
        .expect("climate workload is well-formed")
}

/// Recursive bisection followed by Kernighan–Lin refinement — the
/// composite engineering baseline, expressed as its own [`Partitioner`].
struct RbKl;

impl Partitioner for RbKl {
    fn name(&self) -> &str {
        "RB + KL refine"
    }

    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        let (splitter, _) = auto_splitter(inst);
        let rb = recursive_bisection(inst.graph(), &splitter, inst.weights(), k)?;
        refine(
            inst.graph(),
            inst.costs(),
            inst.weights(),
            &rb,
            &KlParams::default(),
        )
    }
}

/// E4 — Theorem 5 lower bound (Lemma 40): on `G̃` every roughly balanced
/// coloring pays; nobody beats the certificate, and ours stays within a
/// constant of it while being *strictly* balanced.
pub fn e4(quick: bool) -> Table {
    let mut t = Table::new(
        "E4: Lemma 40 lower bound on G̃ = ⌊k/4⌋ copies — avg boundary ≥ certificate",
        &[
            "k",
            "algorithm",
            "avg ∂",
            "LB",
            "avg/LB",
            "rough-bal",
            "strict",
        ],
    );
    let side = if quick { 8 } else { 12 };
    let ks: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32] };
    let algos: [&dyn Partitioner; 5] = [
        &Theorem4Pipeline::default(),
        &Lpt,
        &FirstFit,
        &RecursiveBisection { kst: false },
        &Multilevel::default(),
    ];
    // Per-instance loop on the thread pool: each `k` builds its own tight
    // instance (certificate search included) and scores every algorithm;
    // rows are re-assembled in `k` order, so the table is identical to the
    // sequential loop's for any thread count.
    let row_blocks: Vec<Vec<Vec<String>>> = ks
        .par_iter()
        .map(|&k| {
            let tight = TightInstance::grid(side, k);
            let inst = tight_instance(&tight, side, k);
            let lb = tight.avg_boundary_lower_bound();
            algos
                .iter()
                .map(|algo| {
                    let chi = algo.partition(&inst, k).expect("valid instance");
                    let (avg, lower, rough) = tight.check(&chi);
                    vec![
                        k.to_string(),
                        algo.name().into(),
                        fmt(avg),
                        fmt(lower),
                        fmt(avg / lb.max(1e-300)),
                        if rough { "yes".into() } else { "no*".into() },
                        if chi.is_strictly_balanced(&tight.weights) {
                            "yes".into()
                        } else {
                            "no".into()
                        },
                    ]
                })
                .collect()
        })
        .collect();
    for block in row_blocks {
        for row in block {
            t.row(row);
        }
    }
    t.note("LB applies to roughly balanced colorings (‖wχ⁻¹‖∞ ≤ 2·avg); avg/LB ≥ 1 reproduces the bound");
    t.note("* colorings that are not roughly balanced escape the LB's precondition, not the bound");
    t
}

/// E7 — the §1 comparison on the climate workload: greedy balances but
/// pays huge boundaries; bisection-style methods bound boundaries but not
/// strict balance; the Theorem 4 pipeline does both.
pub fn e7(quick: bool) -> Table {
    let mut t = Table::new(
        "E7: climate load balancing — balance AND boundary, no trade-off (§1)",
        &[
            "algorithm",
            "max w / avg w",
            "strict",
            "max ∂",
            "avg ∂",
            "ms",
        ],
    );
    let params = if quick {
        ClimateParams {
            lon: 48,
            lat: 24,
            ..Default::default()
        }
    } else {
        ClimateParams {
            lon: 128,
            lat: 64,
            ..Default::default()
        }
    };
    let wl = climate(&params);
    let inst = climate_instance(&wl);
    let k = 16;
    let algos: [&dyn Partitioner; 7] = [
        &Theorem4Pipeline::default(),
        &Lpt,
        &FirstFit,
        &RecursiveBisection { kst: false },
        &RecursiveBisection { kst: true },
        &RbKl,
        &Multilevel::default(),
    ];
    for algo in algos {
        let (_, s) = run_scored(algo, &inst, k).expect("valid instance");
        t.row(vec![
            algo.name().into(),
            fmt(s.balance_factor),
            if s.is_strict(inst.weights()) {
                "yes".into()
            } else {
                "no".into()
            },
            fmt(s.max_boundary),
            fmt(s.avg_boundary),
            fmt(s.millis),
        ]);
    }
    t.note("claim reproduced if ours is the only strict row whose max ∂ is within a small factor of the best");
    t
}

/// E8 — Propositions 11/12 ablation: strictness costs only a constant
/// factor in boundary (stage-by-stage view of the pipeline, straight from
/// the [`Report`](mmb_core::api::Report)'s ablation data).
pub fn e8(quick: bool) -> Table {
    let mut t = Table::new(
        "E8: no balance/boundary trade-off — boundary across pipeline stages",
        &["stage", "max ∂", "balance defect", "strict"],
    );
    let params = if quick {
        ClimateParams {
            lon: 48,
            lat: 24,
            ..Default::default()
        }
    } else {
        ClimateParams {
            lon: 96,
            lat: 48,
            ..Default::default()
        }
    };
    let wl = climate(&params);
    let inst = climate_instance(&wl);
    let k = 12;
    let report = Solver::for_instance(&inst)
        .classes(k)
        .build()
        .expect("valid instance")
        .solve();
    let stages: [(&str, &Coloring); 3] = [
        ("1: Prop 7 (weakly balanced)", &report.stages.multibalanced),
        ("2: Prop 11 (almost strict)", &report.stages.almost_strict),
        ("3: Prop 12 (strict)", &report.coloring),
    ];
    for (name, chi) in stages {
        t.row(vec![
            name.into(),
            fmt(chi.max_boundary_cost(inst.graph(), inst.costs())),
            fmt(chi.strict_balance_defect(inst.weights())),
            if chi.is_strictly_balanced(inst.weights()) {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    // Ablation: skipping the shrink stage (BinPack2 alone must repair a
    // weakly balanced coloring — more boundary damage).
    let ablated = Solver::for_instance(&inst)
        .classes(k)
        .skip_shrink(true)
        .build()
        .expect("valid instance")
        .solve();
    t.row(vec![
        "ablation: skip shrink".into(),
        fmt(ablated.max_boundary),
        fmt(ablated.strict_defect),
        if ablated.is_strictly_balanced() {
            "yes".into()
        } else {
            "no".into()
        },
    ]);
    t.note(
        "stage 3 / stage 1 max-∂ ratio bounded by a constant ⇒ strictness is (asymptotically) free",
    );
    t
}

/// Costs with an expensive "wall" of `width` columns centered on the
/// weight median of a 2D grid — the adversarial arrangement where the
/// naive `σ_p(G,1)·φ` generalization actually pays `Θ(φ)`.
pub fn wall_costs(grid: &GridGraph, side: usize, phi: f64, width: usize) -> Vec<f64> {
    let mid = side as i64 / 2 - 1;
    let lo = mid - width as i64 / 2;
    let hi = lo + width as i64 - 1;
    grid.graph
        .edge_list()
        .iter()
        .map(|&(a, b)| {
            let (ca, cb) = (grid.coord(a), grid.coord(b));
            // Only x-direction edges can form the wall.
            if ca[0] != cb[0] && (lo..=hi).contains(&ca[0].min(cb[0])) {
                phi
            } else {
                1.0
            }
        })
        .collect()
}

/// E9 — §6 ablation: cost-aware GridSplit vs the naive unit-cost
/// generalization, sweeping fluctuation φ over two arrangements: iid
/// two-level noise (no structure to exploit) and an expensive wall at the
/// weight median (the adversarial case behind `σ_p(G,1)·φ`).
pub fn e9(quick: bool) -> Table {
    let mut t = Table::new(
        "E9: GridSplit vs unit-cost splitter — log^{1/d}φ vs φ growth",
        &[
            "arrangement",
            "φ",
            "aware cut",
            "blind cut",
            "blind/aware",
            "aware/Thm19",
        ],
    );
    let side = if quick { 32 } else { 64 };
    let grid = GridGraph::lattice(&[side, side]);
    let n = grid.graph.num_vertices();
    let w = VertexSet::full(n);
    let weights = vec![1.0; n];
    let phis: &[f64] = if quick {
        &[1.0, 1e3]
    } else {
        &[1.0, 10.0, 1e3, 1e6]
    };
    let run = |costs: &[f64]| -> (f64, f64) {
        let aware = GridSplitter::new(&grid, costs);
        let blind = GridSplitter::unit_cost(&grid);
        let ua = aware.split(&w, &weights, n as f64 / 2.0);
        let ub = blind.split(&w, &weights, n as f64 / 2.0);
        (
            mmb_graph::cut::boundary_cost_within(&grid.graph, costs, &w, &ua),
            mmb_graph::cut::boundary_cost_within(&grid.graph, costs, &w, &ub),
        )
    };
    for &phi in phis {
        // (a) iid two-level noise, averaged over seeds.
        let seeds: &[u64] = if quick { &[1, 2] } else { &[1, 2, 3, 4, 5] };
        let (mut aware_sum, mut blind_sum, mut bound_sum) = (0.0, 0.0, 0.0);
        for &seed in seeds {
            let costs = CostFamily::TwoLevel.generate(&grid, phi, seed);
            let (ca, cb) = run(&costs);
            aware_sum += ca;
            blind_sum += cb;
            bound_sum += theorem19_bound(2, phi, total_edge_norm_p(&grid.graph, &costs, 2.0));
        }
        let c = seeds.len() as f64;
        t.row(vec![
            "iid twolevel".into(),
            fmt(phi),
            fmt(aware_sum / c),
            fmt(blind_sum / c),
            fmt(blind_sum / aware_sum),
            fmt(aware_sum / bound_sum),
        ]);
        // (b) expensive wall on the weight median.
        let costs = wall_costs(&grid, side, phi, 2);
        let (ca, cb) = run(&costs);
        let bound = theorem19_bound(2, phi, total_edge_norm_p(&grid.graph, &costs, 2.0));
        t.row(vec![
            "median wall".into(),
            fmt(phi),
            fmt(ca),
            fmt(cb),
            fmt(cb / ca),
            fmt(ca / bound),
        ]);
    }
    t.note(
        "iid noise: parity expected (nothing to exploit; blind's flat plane ≤ aware's staircase)",
    );
    t.note("median wall: blind pays Θ(φ·side) while aware dodges — the §6 motivation");
    t
}

/// E10 — §2 remark: averaging does not help; the average boundary obeys the
/// same Ω(·) bound as the maximum on the tight instances.
pub fn e10(quick: bool) -> Table {
    let mut t = Table::new(
        "E10: avg vs max boundary on tight instances — no free lunch from averaging",
        &[
            "k",
            "avg ∂ (ours)",
            "max ∂ (ours)",
            "LB",
            "avg/LB",
            "max/avg",
        ],
    );
    let side = if quick { 8 } else { 12 };
    let ks: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32] };
    for &k in ks {
        let tight = TightInstance::grid(side, k);
        let inst = tight_instance(&tight, side, k);
        let (_, s) = run_scored(&Theorem4Pipeline::default(), &inst, k).expect("valid instance");
        let lb = tight.avg_boundary_lower_bound();
        t.row(vec![
            k.to_string(),
            fmt(s.avg_boundary),
            fmt(s.max_boundary),
            fmt(lb),
            fmt(s.avg_boundary / lb.max(1e-300)),
            fmt(s.max_boundary / s.avg_boundary.max(1e-300)),
        ]);
    }
    t.note("avg/LB ≥ 1 and max/avg = O(1): the average is as lower-bounded as the max");
    t
}

/// E11 — Lemma 37: the separator → splitter reduction performs like the
/// native splitters, in both directions of the equivalence.
pub fn e11(quick: bool) -> Table {
    let mut t = Table::new(
        "E11: Lemma 37 separator ↔ splitter equivalence",
        &[
            "graph",
            "native splitter",
            "native cut",
            "via Split reduction",
            "reduction cut",
            "ratio",
        ],
    );
    // Forest direction.
    let levels = if quick { 10 } else { 13 };
    let tree = complete_binary_tree(levels);
    let nt = tree.num_vertices();
    let tcosts = vec![1.0; tree.num_edges()];
    let wt = vec![1.0; nt];
    let wset = VertexSet::full(nt);
    let native = TreeSplitter::new(&tree);
    let u1 = native.split(&wset, &wt, nt as f64 / 2.0);
    let c1 = mmb_graph::cut::boundary_cost_within(&tree, &tcosts, &wset, &u1);
    let red = SeparatorSplitter::new(&tree, &tcosts, TreeCentroidSeparator::new(&tree), 2.0);
    let u2 = red.split(&wset, &wt, nt as f64 / 2.0);
    let c2 = mmb_graph::cut::boundary_cost_within(&tree, &tcosts, &wset, &u2);
    t.row(vec![
        format!("binary tree 2^{levels}−1"),
        "tree (DFS)".into(),
        fmt(c1),
        "Split(centroid)".into(),
        fmt(c2),
        fmt(c2 / c1.max(1e-300)),
    ]);
    // Grid direction.
    let side = if quick { 24 } else { 48 };
    let grid = GridGraph::lattice(&[side, side]);
    let ng = grid.graph.num_vertices();
    let gcosts = vec![1.0; grid.graph.num_edges()];
    let wg = vec![1.0; ng];
    let gset = VertexSet::full(ng);
    let native = GridSplitter::new(&grid, &gcosts);
    let u1 = native.split(&gset, &wg, ng as f64 / 2.0);
    let c1 = mmb_graph::cut::boundary_cost_within(&grid.graph, &gcosts, &gset, &u1);
    let red = SeparatorSplitter::new(&grid.graph, &gcosts, GridSlabSeparator::new(&grid), 2.0);
    let u2 = red.split(&gset, &wg, ng as f64 / 2.0);
    let c2 = mmb_graph::cut::boundary_cost_within(&grid.graph, &gcosts, &gset, &u2);
    t.row(vec![
        format!("grid {side}²"),
        "GridSplit".into(),
        fmt(c1),
        "Split(slab)".into(),
        fmt(c2),
        fmt(c2 / c1.max(1e-300)),
    ]);
    t.note("bounded ratios in both directions reproduce σ_p = Θ(β_p) for well-behaved instances");
    t
}

/// E12 — conclusion remark: the multi-balanced Theorem 4 — strict in `w`,
/// weakly balanced in arbitrary extra measures, bounded max boundary.
pub fn e12(quick: bool) -> Table {
    let mut t = Table::new(
        "E12: multi-balanced Theorem 4 — strict in w, weak in extra resources",
        &["quantity", "value"],
    );
    let params = if quick {
        ClimateParams {
            lon: 48,
            lat: 24,
            ..Default::default()
        }
    } else {
        ClimateParams {
            lon: 96,
            lat: 48,
            ..Default::default()
        }
    };
    let wl = climate(&params);
    let n = wl.grid.graph.num_vertices();
    let k = 12;
    // Extra resources: memory footprint (∝ activity², heavy tail) and I/O
    // (concentrated on a coastline stripe).
    let mem: Vec<f64> = wl.weights.iter().map(|&w| w * w).collect();
    let io: Vec<f64> = (0..n as u32)
        .map(|v| if wl.grid.coord(v)[1] < 3 { 4.0 } else { 0.1 })
        .collect();
    let inst = climate_instance(&wl)
        .with_extra_measure(mem.clone())
        .and_then(|i| i.with_extra_measure(io.clone()))
        .expect("valid measures");
    let report = Solver::for_instance(&inst)
        .classes(k)
        .build()
        .expect("valid instance")
        .solve();
    t.row(vec![
        "strict in w (eq. 1)".into(),
        if report.is_strictly_balanced() {
            "yes".into()
        } else {
            "NO".into()
        },
    ]);
    for (name, m) in [("mem", &mem), ("io", &io)] {
        let cm = report.coloring.class_measures(m);
        let avg = norm_1(m) / k as f64;
        let factor =
            cm.iter().cloned().fold(0.0, f64::max) / (avg + m.iter().cloned().fold(0.0, f64::max));
        t.row(vec![
            format!("{name}: max class / (avg + max)"),
            fmt(factor),
        ]);
    }
    t.row(vec!["max ∂".into(), fmt(report.max_boundary)]);
    t.row(vec![
        "Thm 5 bound".into(),
        fmt(bounds::theorem5(
            2.0,
            k,
            inst.cost_norm(2.0),
            inst.max_cost(),
        )),
    ]);
    t.note(
        "weak-balance factors O(1) while eq. (1) holds in w ⇒ the conclusion's remark reproduced",
    );
    t
}
