//! The `reproduce corpus` report: every [`Corpus`] entry × every
//! [`Partitioner`], scored uniformly — now with certified optimality
//! gaps.
//!
//! For each corpus entry the table records, per algorithm, the maximum
//! boundary cost, the Theorem-5 right-hand side at the entry's exponent
//! (`p = 1` by the corpus convention — see `mmb_instances::corpus`), the
//! measured/bound ratio, the strict-balance slack/defect, whether
//! eq. (1) holds, and — per entry — the best **certified lower bound**
//! from the `mmb_core::lower_bounds` stack with the resulting gap ratio
//! `cost / lower`. After the corpus proper, the sweep appends the
//! `Corpus::small()` entries — the only ones inside the exhaustive
//! search cap — where the exact oracle joins the pipeline as the
//! ground-truth row (and doubles as the strongest certifier).
//!
//! [`run_corpus`] computes the CI gate, which now has three prongs:
//!
//! 1. **Theorem-5 prong** (unchanged from PR 4): the worst pipeline
//!    Theorem-5 ratio over the corpus proper must stay ≤ 1.
//! 2. **Non-triviality prong**: every corpus-proper entry must report a
//!    positive certified lower bound — a zero bound means the certified
//!    gap ratio is `∞` and the tightness story has a hole.
//! 3. **Soundness prong**: no *strictly balanced* coloring produced by
//!    any partitioner may beat the certified lower bound (non-strict
//!    colorings are outside the bounds' feasible set and are exempt,
//!    the same convention as the oracle differential suite).
//!
//! Any prong failing makes `reproduce corpus` exit non-zero. The
//! small-entry section stays excluded from the Theorem-5 prong (at
//! `n ≤ 10` the unit-constant RHS is not a theorem), but its rows are
//! still soundness-checked.
//!
//! Since PR 6 a fourth section follows: the `Corpus::medium()` entries
//! (`16 < n ≤ 20`, past the oracle's hard cap) where the anytime
//! branch-and-bound engine joins the pipeline and — whenever its search
//! exhausts — proves the optimum, closing the entry's certified gap to
//! ratio 1.0. A fourth gate prong requires at least one such
//! proven-optimal row (`bnb_proven ≥ 1`): the acceptance bar that exact
//! solving actually extends beyond `n = 16`.

use mmb_core::api::{Partitioner, Theorem4Pipeline};
use mmb_core::bnb::{BnbConfig, BnbPartitioner};
use mmb_core::bounds;
use mmb_core::lower_bounds::{best_lower_bound, CertifiedGap};
use mmb_core::oracle::{ExactOracle, ORACLE_MAX_VERTICES};
use mmb_instances::corpus::{Corpus, CorpusEntry};

use crate::table::Table;
use crate::{fmt, run_scored, standard_baselines};

/// Outcome of a corpus sweep: the printable table plus the CI gate data.
#[derive(Clone, Debug)]
pub struct CorpusOutcome {
    /// The cross-partitioner quality table.
    pub table: Table,
    /// Worst pipeline Theorem-5 ratio across the corpus proper (the
    /// ungated small-entry ground-truth section is excluded; see the
    /// module docs).
    pub worst_pipeline_ratio: f64,
    /// Name of the entry attaining [`CorpusOutcome::worst_pipeline_ratio`].
    pub worst_entry: String,
    /// Worst certified gap ratio (`pipeline cost / lower bound`) across
    /// the corpus proper, with the entry attaining it.
    pub worst_certified: (f64, String),
    /// Corpus-proper entries whose certified lower bound is trivial
    /// (≤ 0) — the non-triviality prong fails if non-empty.
    pub trivial_entries: Vec<String>,
    /// `(entry, algorithm)` pairs where a strictly balanced coloring
    /// beat the certified lower bound — the soundness prong fails if
    /// non-empty (and a certifier is wrong).
    pub soundness_violations: Vec<String>,
    /// Medium-section entries (`n > 16`, beyond the oracle cap) the
    /// branch-and-bound engine solved to proven optimality — the
    /// gap-closure prong fails unless ≥ 1.
    pub bnb_proven: usize,
    /// Whether every gate prong passed.
    pub gate_ok: bool,
}

/// Format one already-scored `(coloring, score)` pair into a table row;
/// `lower` is the entry's certified lower bound. Returns the row, the
/// Theorem-5 ratio and, when the coloring is strictly balanced, the
/// achieved cost (for the soundness prong).
fn format_row(
    entry: &CorpusEntry,
    algo_name: &str,
    chi: &mmb_graph::Coloring,
    s: &crate::Score,
    lower: f64,
) -> (Vec<String>, f64, Option<f64>) {
    let inst = &entry.instance;
    let bound = bounds::theorem5(entry.p, entry.k, inst.cost_norm(entry.p), inst.max_cost());
    let ratio = s.max_boundary / bound.max(1e-300);
    let slack = bounds::strict_slack(entry.k, inst.max_weight());
    let gap = CertifiedGap::new(lower, s.max_boundary, "");
    let strict = chi.is_strictly_balanced(inst.weights());
    let row = vec![
        entry.family.to_string(),
        entry.name.clone(),
        algo_name.to_string(),
        inst.num_vertices().to_string(),
        inst.num_edges().to_string(),
        entry.k.to_string(),
        fmt(s.max_boundary),
        fmt(bound),
        fmt(ratio),
        fmt(lower),
        if gap.ratio.is_finite() {
            fmt(gap.ratio)
        } else {
            "∞".into()
        },
        fmt(slack),
        fmt(s.strict_defect),
        if strict { "yes".into() } else { "no".into() },
    ];
    (row, ratio, strict.then_some(s.max_boundary))
}

/// Run one algorithm on one entry and format the result
/// (see [`format_row`]).
fn score_row(
    entry: &CorpusEntry,
    algo: &dyn Partitioner,
    lower: f64,
) -> Option<(Vec<String>, f64, Option<f64>)> {
    let (chi, s) = run_scored(algo, &entry.instance, entry.k).ok()?;
    Some(format_row(entry, algo.name(), &chi, &s, lower))
}

/// Tolerance for the soundness prong: a certified bound may exceed an
/// achieved cost only by fp noise.
fn beats_lower(cost: f64, lower: f64) -> bool {
    cost < lower - 1e-9 * (1.0 + lower.abs())
}

/// Run the corpus sweep (standard corpus, or the quick one for CI
/// smoke) over the pipeline, every baseline, and — on oracle-sized
/// entries — the exact oracle, certifying a lower bound for every entry.
pub fn run_corpus(quick: bool) -> CorpusOutcome {
    let corpus = if quick {
        Corpus::quick()
    } else {
        Corpus::standard()
    };
    let mut table = Table::new(
        format!(
            "CORPUS: {} entries × partitioners — cost vs Theorem-5 RHS at p = 1, \
             certified lower bounds (gate: Thm5 ratio ≤ 1, lower > 0, lower ≤ strict costs)",
            corpus.len()
        ),
        &[
            "family",
            "entry",
            "algorithm",
            "n",
            "m",
            "k",
            "max ∂",
            "Thm5",
            "ratio",
            "lower",
            "gap",
            "slack",
            "defect",
            "strict",
        ],
    );
    let pipeline = Theorem4Pipeline::default();
    let baselines = standard_baselines();
    let oracle = ExactOracle;
    let mut worst = 0.0f64;
    let mut worst_entry = String::new();
    let mut worst_certified = (0.0f64, String::new());
    let mut trivial_entries = Vec::new();
    let mut soundness_violations = Vec::new();
    let mut check_soundness = |entry: &CorpusEntry, algo: &str, lower: f64, cost: Option<f64>| {
        if let Some(cost) = cost {
            if beats_lower(cost, lower) {
                soundness_violations.push(format!(
                    "{} / {algo}: cost {cost} < lower {lower}",
                    entry.name
                ));
            }
        }
    };
    for entry in &corpus {
        let lb = best_lower_bound(&entry.instance, entry.k);
        let lower = lb.value();
        if lower <= 0.0 {
            trivial_entries.push(entry.name.clone());
        }
        let (row, ratio, cost) =
            score_row(entry, &pipeline, lower).expect("pipeline runs on every corpus entry");
        check_soundness(entry, pipeline.name(), lower, cost);
        if let Some(cost) = cost {
            let gap = CertifiedGap::new(lower, cost, lb.winner());
            if gap.ratio > worst_certified.0 {
                worst_certified = (gap.ratio, entry.name.clone());
            }
        }
        table.row(row);
        if ratio > worst {
            worst = ratio;
            worst_entry = entry.name.clone();
        }
        for algo in &baselines {
            if let Some((row, _, cost)) = score_row(entry, algo.as_ref(), lower) {
                check_soundness(entry, algo.name(), lower, cost);
                table.row(row);
            }
        }
    }
    // Ground-truth section: the small corpus is the oracle-sized regime;
    // pipeline vs exact optimum per entry (excluded from the Theorem-5
    // prong — see the module docs — but still soundness-checked).
    for entry in &Corpus::small() {
        debug_assert!(entry.instance.num_vertices() <= ORACLE_MAX_VERTICES);
        // One exhaustive search per entry: the oracle row's cost *is*
        // the optimum, which is also the strongest possible certificate
        // — invoking the certifier stack here would just re-run the
        // same search inside `OracleBound`.
        let oracle_run = run_scored(&oracle, &entry.instance, entry.k).ok();
        let lower = match &oracle_run {
            Some((_, s)) => s.max_boundary,
            None => best_lower_bound(&entry.instance, entry.k).value(),
        };
        if let Some((row, _, cost)) = score_row(entry, &pipeline, lower) {
            check_soundness(entry, pipeline.name(), lower, cost);
            table.row(row);
        }
        if let Some((chi, s)) = &oracle_run {
            let (row, _, cost) = format_row(entry, oracle.name(), chi, s, lower);
            check_soundness(entry, oracle.name(), lower, cost);
            table.row(row);
        }
    }
    // Past-the-cap section: the medium corpus (16 < n ≤ 20) is beyond
    // the oracle's refusal threshold; the anytime branch-and-bound
    // engine takes the ground-truth role, proving optimality whenever
    // its search exhausts under the default budget.
    let bnb = BnbPartitioner {
        cfg: BnbConfig::default(),
    };
    let mut bnb_proven = 0usize;
    for entry in &Corpus::medium() {
        debug_assert!(entry.instance.num_vertices() > ORACLE_MAX_VERTICES);
        let sol = mmb_core::bnb::solve(&entry.instance, entry.k, &bnb.cfg).ok();
        let lower = match &sol {
            Some(s) if s.proven_optimal => {
                bnb_proven += 1;
                s.max_boundary
            }
            Some(s) => s.gap.lower,
            None => best_lower_bound(&entry.instance, entry.k).value(),
        };
        if let Some((row, _, cost)) = score_row(entry, &pipeline, lower) {
            check_soundness(entry, pipeline.name(), lower, cost);
            table.row(row);
        }
        if let Some((row, _, cost)) = score_row(entry, &bnb, lower) {
            check_soundness(entry, bnb.name(), lower, cost);
            table.row(row);
        }
    }
    table.note(format!(
        "gate: worst pipeline Theorem-5 ratio {} on entry `{}` — must stay ≤ 1.0 (corpus proper only)",
        fmt(worst),
        worst_entry
    ));
    table.note(format!(
        "certified gaps: worst pipeline cost/lower ratio {} on entry `{}`; \
         every corpus entry must certify a positive lower bound",
        fmt(worst_certified.0),
        worst_certified.1
    ));
    table.note(
        "trailing n ≤ 10 section: pipeline vs the exact oracle (ground truth); \
         not Thm5-gated — the unit-constant RHS is not a theorem at that scale",
    );
    table.note(format!(
        "medium 16 < n ≤ 20 section: pipeline vs the anytime branch-and-bound engine \
         (past the oracle cap); {bnb_proven} entr{} solved to proven optimality \
         (gate: ≥ 1)",
        if bnb_proven == 1 { "y" } else { "ies" }
    ));
    let gate_ok = worst <= 1.0
        && trivial_entries.is_empty()
        && soundness_violations.is_empty()
        && bnb_proven >= 1;
    CorpusOutcome {
        table,
        worst_pipeline_ratio: worst,
        worst_entry,
        worst_certified,
        trivial_entries,
        soundness_violations,
        bnb_proven,
        gate_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpus_sweep_passes_the_gate() {
        let out = run_corpus(true);
        assert!(
            out.gate_ok,
            "gate failed: Thm5 ratio {} on `{}`; trivial {:?}; violations {:?}",
            out.worst_pipeline_ratio,
            out.worst_entry,
            out.trivial_entries,
            out.soundness_violations
        );
        // Every corpus-proper entry contributes the pipeline + 5 baseline
        // rows, and every small entry a pipeline + oracle pair.
        assert!(out.table.rows.len() >= 6 * Corpus::quick().len() + 2 * Corpus::small().len());
        // The oracle actually appears.
        assert!(
            out.table.rows.iter().any(|r| r[2] == "oracle (exact)"),
            "no oracle rows in the corpus table"
        );
        // …and so does the branch-and-bound engine, with at least one
        // medium entry (n > 16) solved to proven optimality.
        assert!(
            out.table.rows.iter().any(|r| r[2] == "bnb (anytime)"),
            "no bnb rows in the corpus table"
        );
        assert!(
            out.bnb_proven >= 1,
            "no past-the-cap entry was proven optimal"
        );
        // Every row carries a finite certified gap (column 10): the
        // lower bound is positive corpus-wide.
        assert!(
            out.table.rows.iter().all(|r| r[10] != "∞"),
            "some row reports an infinite certified gap"
        );
        assert!(
            out.worst_certified.0 >= 1.0,
            "a gap ratio below 1 means an unsound bound"
        );
    }
}
