//! The `reproduce corpus` report: every [`Corpus`] entry × every
//! [`Partitioner`], scored uniformly.
//!
//! For each corpus entry the table records, per algorithm, the maximum
//! boundary cost, the Theorem-5 right-hand side at the entry's exponent
//! (`p = 1` by the corpus convention — see `mmb_instances::corpus`), the
//! measured/bound ratio, the strict-balance slack/defect, and whether
//! eq. (1) holds. After the corpus proper, the sweep appends the
//! `Corpus::small()` entries — the only ones inside the exhaustive
//! search cap — where the exact oracle joins the pipeline as the
//! ground-truth row.
//!
//! [`run_corpus`] also computes the CI gate: the worst Theorem-5 ratio
//! of the *pipeline* rows **over the corpus proper**. The corpus
//! instances are sized so this stays below 1; a regression that pushes
//! any entry past the bound fails the `reproduce corpus` invocation
//! (exit code 1 in the binary). The small-entry section is excluded from
//! the gate: at n ≤ 10 the unit-constant Theorem-5 RHS is not a theorem
//! even for the optimum (see `tests/oracle_differential.rs`, which gates
//! that regime against the Theorem-4 form instead).

use mmb_core::api::{Partitioner, Theorem4Pipeline};
use mmb_core::bounds;
use mmb_core::oracle::{ExactOracle, ORACLE_MAX_VERTICES};
use mmb_instances::corpus::{Corpus, CorpusEntry};

use crate::table::Table;
use crate::{fmt, run_scored, standard_baselines};

/// Outcome of a corpus sweep: the printable table plus the CI gate data.
#[derive(Clone, Debug)]
pub struct CorpusOutcome {
    /// The cross-partitioner quality table.
    pub table: Table,
    /// Worst pipeline Theorem-5 ratio across the corpus proper (the
    /// ungated small-entry ground-truth section is excluded; see the
    /// module docs).
    pub worst_pipeline_ratio: f64,
    /// Name of the entry attaining [`CorpusOutcome::worst_pipeline_ratio`].
    pub worst_entry: String,
    /// Whether every entry's pipeline ratio is ≤ 1 (the CI gate).
    pub gate_ok: bool,
}

/// Score one entry with one algorithm into a table row.
fn score_row(entry: &CorpusEntry, algo: &dyn Partitioner) -> Option<(Vec<String>, f64)> {
    let inst = &entry.instance;
    let (chi, s) = run_scored(algo, inst, entry.k).ok()?;
    let bound = bounds::theorem5(entry.p, entry.k, inst.cost_norm(entry.p), inst.max_cost());
    let ratio = s.max_boundary / bound.max(1e-300);
    let slack = bounds::strict_slack(entry.k, inst.max_weight());
    let row = vec![
        entry.family.to_string(),
        entry.name.clone(),
        algo.name().to_string(),
        inst.num_vertices().to_string(),
        inst.num_edges().to_string(),
        entry.k.to_string(),
        fmt(s.max_boundary),
        fmt(bound),
        fmt(ratio),
        fmt(slack),
        fmt(s.strict_defect),
        if chi.is_strictly_balanced(inst.weights()) { "yes".into() } else { "no".into() },
    ];
    Some((row, ratio))
}

/// Run the corpus sweep (standard corpus, or the quick one for CI
/// smoke) over the pipeline, every baseline, and — on oracle-sized
/// entries — the exact oracle.
pub fn run_corpus(quick: bool) -> CorpusOutcome {
    let corpus = if quick { Corpus::quick() } else { Corpus::standard() };
    let mut table = Table::new(
        format!(
            "CORPUS: {} entries × partitioners — cost vs Theorem-5 RHS at p = 1 (gate: pipeline ratio ≤ 1)",
            corpus.len()
        ),
        &[
            "family", "entry", "algorithm", "n", "m", "k", "max ∂", "Thm5", "ratio",
            "slack", "defect", "strict",
        ],
    );
    let pipeline = Theorem4Pipeline::default();
    let baselines = standard_baselines();
    let oracle = ExactOracle;
    let mut worst = 0.0f64;
    let mut worst_entry = String::new();
    for entry in &corpus {
        let (row, ratio) =
            score_row(entry, &pipeline).expect("pipeline runs on every corpus entry");
        table.row(row);
        if ratio > worst {
            worst = ratio;
            worst_entry = entry.name.clone();
        }
        for algo in &baselines {
            if let Some((row, _)) = score_row(entry, algo.as_ref()) {
                table.row(row);
            }
        }
    }
    // Ground-truth section: the small corpus is the oracle-sized regime;
    // pipeline vs exact optimum per entry (excluded from the gate — see
    // the module docs).
    for entry in &Corpus::small() {
        debug_assert!(entry.instance.num_vertices() <= ORACLE_MAX_VERTICES);
        if let Some((row, _)) = score_row(entry, &pipeline) {
            table.row(row);
        }
        if let Some((row, _)) = score_row(entry, &oracle) {
            table.row(row);
        }
    }
    table.note(format!(
        "gate: worst pipeline ratio {} on entry `{}` — must stay ≤ 1.0 (corpus proper only)",
        fmt(worst),
        worst_entry
    ));
    table.note(
        "trailing n ≤ 10 section: pipeline vs the exact oracle (ground truth); \
         not gated — the unit-constant RHS is not a theorem at that scale",
    );
    CorpusOutcome { table, worst_pipeline_ratio: worst, worst_entry, gate_ok: worst <= 1.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpus_sweep_passes_the_gate() {
        let out = run_corpus(true);
        assert!(
            out.gate_ok,
            "pipeline Theorem-5 ratio {} exceeds 1.0 on `{}`",
            out.worst_pipeline_ratio, out.worst_entry
        );
        // Every corpus-proper entry contributes the pipeline + 5 baseline
        // rows, and every small entry a pipeline + oracle pair.
        assert!(
            out.table.rows.len() >= 6 * Corpus::quick().len() + 2 * Corpus::small().len()
        );
        // The oracle actually appears.
        assert!(
            out.table.rows.iter().any(|r| r[2] == "oracle (exact)"),
            "no oracle rows in the corpus table"
        );
    }
}
