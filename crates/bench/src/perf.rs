//! Recorded perf baselines: the `bench` / `bench-verify` subcommands of
//! the `reproduce` binary.
//!
//! `reproduce bench` runs the micro-suites and emits a machine-readable
//! `BENCH_6.json` (schema `"mmb-bench-6"`, hand-rolled writer — no serde
//! in the offline environment):
//!
//! * **scaling** — the `decompose_scaling` configurations, each solved on
//!   the same `Solver` under both scratch policies
//!   ([`ScratchPolicy::Transient`] = the old allocate-per-call profile vs
//!   [`ScratchPolicy::Reuse`] = the workspace path), with per-stage
//!   wall-clock and the workspace's allocation counters (the peak-RSS
//!   proxy);
//! * **batch** — `solve_many` over a stream of instances at 1, 2 and 4
//!   worker threads (the shim honors `RAYON_NUM_THREADS`-style overrides).
//!
//! Every measured pair is also checked for **bit-identical colorings**
//! (workspace vs allocating, batch vs one-at-a-time); the run aborts if
//! any diverge, so a committed baseline file doubles as an equivalence
//! certificate. Since PR 5 each scaling row additionally records the
//! **certified optimality gap** of the measured solve — the best
//! `mmb_core::lower_bounds` certificate and the achieved-cost/lower
//! ratio — so the perf trajectory carries a quality floor alongside the
//! wall-clock numbers (schema bump `mmb-bench-3` → `mmb-bench-4`).
//!
//! Since PR 6 the report also carries a **corpus gap table**
//! (`"corpus_gaps"`, schema bump `mmb-bench-4` → `mmb-bench-5`,
//! `BENCH_5.json`): for every quick- and medium-corpus entry, the best
//! certified lower bound from the full stack — including the anytime
//! branch-and-bound certifier — against the pipeline's achieved cost,
//! with a `proven` flag marking rows certified by an exhaustive search
//! (`"oracle"` or `"bnb"`). These rows are timing-free and fully
//! deterministic, so a committed baseline supports exact regression
//! gating: [`gap_regression_check`] recomputes the table and fails if
//! any entry's certified ratio got *worse* than the committed one — the
//! `reproduce gap-gate` CI guard.
//!
//! Since PR 9 the report carries a **large-`n` suite** (`"large"`, schema
//! bump `mmb-bench-5` → `mmb-bench-6`, `BENCH_6.json`): grid instances at
//! `n ≈ 10^5/10^6/10^7` (quick mode runs only the `10^5` row) go through
//! the full scale path — METIS serialization, streaming re-ingestion
//! ([`mmb_graph::io::parse_metis_reader`]), and a coarsening-cascade
//! solve ([`mmb_core::pipeline::CoarsenConfig`]). Each row records
//! ingest/solve wall-clock and the workspace's `peak_total_bytes` (pool
//! scratch + ingestion/coarsening arenas — the peak-RSS proxy), and the
//! validator enforces the per-size budgets of [`large_budget`] on every
//! committed row, plus an `n ≥ 10^6` row in full mode.
//!
//! `reproduce bench-verify <path>` re-parses a committed file with the
//! minimal JSON reader in this module and fails (non-zero exit) if it is
//! missing, malformed, or lacks the required fields — the CI guard.

use std::time::Instant;

use mmb_core::api::{solve_many, Instance, Partitioner, Solver, Theorem4Pipeline};
use mmb_core::lower_bounds::{best_lower_bound, CertifiedGap};
use mmb_core::pipeline::{CoarsenConfig, PipelineConfig, ScratchPolicy};
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::io::{parse_metis, write_metis};
use mmb_graph::Workspace;
use mmb_instances::corpus::Corpus;

/// One row of the scaling suite.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Grid side length (instance is `side × side`).
    pub side: usize,
    /// `|V|`.
    pub n: usize,
    /// Number of classes.
    pub k: usize,
    /// Best-of-repeats wall-clock of a solve under
    /// [`ScratchPolicy::Transient`] (the allocating reference path).
    pub alloc_ms: f64,
    /// Best-of-repeats wall-clock under [`ScratchPolicy::Reuse`].
    pub workspace_ms: f64,
    /// `alloc_ms / workspace_ms`.
    pub speedup: f64,
    /// Per-stage wall-clock `[Prop 7, Prop 11, Prop 12]` of the measured
    /// workspace solve.
    pub stage_ms: [f64; 3],
    /// Scratch-buffer checkouts during one workspace solve.
    pub ws_acquires: u64,
    /// Checkouts that had to allocate (pool misses).
    pub ws_fresh_allocs: u64,
    /// Entries written and re-zeroed (`O(vol(W))` work actually done).
    pub ws_cells_touched: u64,
    /// Entries the allocating path would have zeroed (`O(n)` per buffer).
    pub ws_cells_dense: u64,
    /// High-water of concurrently live scratch buffers.
    pub ws_peak_live: usize,
    /// Peak scratch bytes pinned (`peak_live × n × 12`).
    pub ws_peak_bytes: u64,
    /// Best certified lower bound on the optimum for this configuration
    /// (`mmb_core::lower_bounds`; the exact-oracle certifier never fires
    /// at these sizes, so this is the cheap combinatorial stack).
    pub lower: f64,
    /// Certified gap ratio of the measured solve: `max ∂ / lower`.
    pub certified_ratio: f64,
}

/// One row of the large-`n` suite (`"large"`): the full scale path —
/// METIS round-trip ingestion plus a coarsening-cascade solve — at grid
/// sizes from `10^5` up.
#[derive(Clone, Debug)]
pub struct LargeRow {
    /// Grid side length (instance is `side × side`).
    pub side: usize,
    /// `|V|`.
    pub n: usize,
    /// `|E|`.
    pub m: usize,
    /// Number of classes.
    pub k: usize,
    /// Wall-clock of the streaming METIS parse (document → CSR).
    pub ingest_ms: f64,
    /// Wall-clock of solver build + cascade solve.
    pub solve_ms: f64,
    /// Workspace `peak_total_bytes` across ingest + solve: pooled scratch
    /// high-water plus the ingestion/coarsening arena high-water — the
    /// allocation-based peak-RSS proxy.
    pub peak_bytes: u64,
    /// The achieved max boundary cost (trajectory data, not gated).
    pub max_boundary: f64,
    /// Whether the projected coloring satisfies eq. (1) exactly (always
    /// true for an emitted report; the run aborts otherwise).
    pub strictly_balanced: bool,
}

/// The per-row budgets the validator enforces on committed large rows:
/// `(wall_clock_ms, peak_bytes)` as a function of `n`.
///
/// Single source of truth — the runner records measurements, the
/// validator recomputes the budget from the row's own `n`, so a committed
/// baseline cannot quietly carry a budget the code no longer endorses.
/// The byte budget is linear in `n` (CSR + arenas + pooled scratch are
/// all `O(n + m)` with `m ≈ 2n` on grids); the wall-clock budget is
/// linear with a generous constant for slow CI hosts. The per-vertex
/// wall-clock constant is calibrated against the measured `n = 10^7`
/// run, where the working set no longer fits in cache — per-vertex cost
/// there is ~10× the in-cache `n = 10^5` figure, so small-`n` rows pass
/// with slack while the largest row keeps ~1.7× headroom.
pub fn large_budget(n: usize) -> (f64, u64) {
    let ms = 10_000.0 + n as f64 * 0.04;
    let bytes = 128 * 1024 * 1024 + 700 * n as u64;
    (ms, bytes)
}

/// One row of the batch (`solve_many`) suite.
#[derive(Clone, Debug)]
pub struct BatchRow {
    /// Worker threads the shim was pinned to.
    pub threads: usize,
    /// Wall-clock for the whole batch, best of repeats.
    pub ms: f64,
}

/// One row of the corpus gap table (`"corpus_gaps"`): the certified
/// optimality gap of the pipeline on one quick/medium corpus entry.
#[derive(Clone, Debug)]
pub struct GapRow {
    /// Corpus entry name (unique within the table).
    pub name: String,
    /// `|V|`.
    pub n: usize,
    /// Number of classes.
    pub k: usize,
    /// Best certified lower bound from the full stack.
    pub lower: f64,
    /// The pipeline's achieved max boundary cost.
    pub upper: f64,
    /// `upper / lower`.
    pub ratio: f64,
    /// Winning certifier name.
    pub certifier: String,
    /// Whether the bound is an exhaustive-search optimum (`"oracle"` or
    /// `"bnb"` won) — i.e. the gap is exact, not just certified.
    pub proven: bool,
}

/// Compute the corpus gap table: quick + medium corpora (both
/// mode-independent and timing-free, so the rows are exactly
/// reproducible), pipeline cost vs the full certifier stack.
pub fn compute_corpus_gaps() -> Vec<GapRow> {
    let pipeline = Theorem4Pipeline::default();
    let mut rows = Vec::new();
    for corpus in [Corpus::quick(), Corpus::medium()] {
        for entry in &corpus {
            let inst = &entry.instance;
            let report = best_lower_bound(inst, entry.k);
            let upper = pipeline
                .partition(inst, entry.k)
                .expect("pipeline runs on every corpus entry")
                .max_boundary_cost(inst.graph(), inst.costs());
            let gap = CertifiedGap::new(report.value(), upper, report.winner());
            let proven = matches!(report.winner(), "oracle" | "bnb");
            rows.push(GapRow {
                name: entry.name.clone(),
                n: inst.num_vertices(),
                k: entry.k,
                lower: gap.lower,
                upper: gap.upper,
                ratio: gap.ratio,
                certifier: gap.certifier,
                proven,
            });
        }
    }
    rows
}

/// The full perf report serialized into `BENCH_6.json`.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// `"quick"` (CI smoke) or `"full"`.
    pub mode: String,
    /// Hardware threads visible to this process.
    pub threads_available: usize,
    /// Scaling suite rows, smallest instance first.
    pub scaling: Vec<ScalingRow>,
    /// Large-`n` suite rows, smallest instance first (quick mode runs
    /// only the `10^5` row).
    pub large: Vec<LargeRow>,
    /// Batch-suite instance count.
    pub batch_instances: usize,
    /// Batch suite rows, by thread count.
    pub batch: Vec<BatchRow>,
    /// Corpus gap table (quick + medium corpora; mode-independent —
    /// see [`compute_corpus_gaps`]).
    pub corpus_gaps: Vec<GapRow>,
    /// Whether every measured pair produced bit-identical colorings
    /// (always true for an emitted report; the run aborts otherwise).
    pub colorings_bit_identical: bool,
}

fn det_weights(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|v| 1.0 + ((seed >> (v % 53)) & 7) as f64)
        .collect()
}

fn grid_instance(side: usize, seed: u64) -> Instance {
    let grid = GridGraph::lattice(&[side, side]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let weights = det_weights(n, seed);
    Instance::from_grid(grid, costs, weights).expect("valid instance")
}

/// Uniform-weight grid: `‖w‖∞ = 1` keeps the Proposition 11 recursion far
/// from its base case, so the shrink stage descends many levels — the
/// configuration where per-level `O(n)` scratch allocation dominated the
/// old hot path.
fn uniform_grid_instance(side: usize) -> Instance {
    let grid = GridGraph::lattice(&[side, side]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    Instance::from_grid(grid, costs, vec![1.0; n]).expect("valid instance")
}

/// Run `f` `repeats` times; return the result **of the fastest
/// iteration** together with its wall-clock, so derived per-run data
/// (stage timings) stays consistent with the headline number.
fn best_of<R>(repeats: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let r = f();
        let elapsed = t.elapsed().as_secs_f64() * 1e3;
        if elapsed < best {
            best = elapsed;
            out = Some(r);
        }
    }
    (out.expect("at least one repeat"), best)
}

/// Run the perf suites. `quick` shrinks sizes for the CI smoke run.
///
/// # Panics
/// Panics if any measured configuration produces diverging colorings —
/// an emitted report certifies equivalence.
pub fn run(quick: bool) -> PerfReport {
    let repeats = if quick { 1 } else { 3 };
    // The shrink-dominated configuration: uniform-ish weights drive the
    // Proposition 11 recursion deep, and k = 16 classes mean many
    // per-class boundary measures per level.
    let sides: &[usize] = if quick { &[12, 16] } else { &[24, 40, 64] };
    let k = 16;
    let mut scaling = Vec::new();
    for &side in sides {
        let inst = uniform_grid_instance(side);
        let n = inst.num_vertices();
        let alloc_cfg = PipelineConfig {
            scratch: ScratchPolicy::Transient,
            ..PipelineConfig::default()
        };
        let ws_cfg = PipelineConfig::default();
        let alloc_solver = Solver::for_instance(&inst)
            .classes(k)
            .config(alloc_cfg)
            .build()
            .expect("valid");
        let ws_solver = Solver::for_instance(&inst)
            .classes(k)
            .config(ws_cfg)
            .build()
            .expect("valid");
        // Warm the thread-local pool so the measured workspace solves see
        // steady-state reuse, then reset counters and measure.
        let warm = ws_solver.solve();
        Workspace::with_local(|ws| ws.reset_stats());
        let (ws_report, workspace_ms) = best_of(repeats, || ws_solver.solve());
        let stats = Workspace::with_local(|ws| ws.stats());
        let solves = repeats.max(1) as u64;
        let (alloc_report, alloc_ms) = best_of(repeats, || alloc_solver.solve());
        assert_eq!(
            alloc_report.coloring, ws_report.coloring,
            "scratch policies diverged on side {side}"
        );
        assert_eq!(
            warm.coloring, ws_report.coloring,
            "solve() is not deterministic"
        );
        let gap = CertifiedGap::new(
            best_lower_bound(&inst, k).value(),
            ws_report.max_boundary,
            "",
        );
        scaling.push(ScalingRow {
            side,
            n,
            k,
            alloc_ms,
            workspace_ms,
            speedup: alloc_ms / workspace_ms.max(1e-9),
            stage_ms: ws_report.stage_millis,
            ws_acquires: stats.acquires / solves,
            ws_fresh_allocs: stats.fresh_allocs,
            ws_cells_touched: stats.cells_touched / solves,
            ws_cells_dense: stats.cells_dense / solves,
            ws_peak_live: stats.peak_live,
            ws_peak_bytes: stats.peak_bytes(n),
            lower: gap.lower,
            certified_ratio: gap.ratio,
        });
    }

    // Large-n suite: serialize a grid to METIS, re-ingest it through the
    // streaming parser, and solve with the coarsening cascade — the
    // million-vertex scale path, measured end to end. Runs on a fresh
    // thread so the workspace counters see exactly this suite's arenas.
    let large_sides: &[usize] = if quick { &[320] } else { &[320, 1000, 3163] };
    let large_k = 8;
    let mut large = Vec::new();
    for &side in large_sides {
        let row = std::thread::spawn(move || {
            let grid = GridGraph::lattice(&[side, side]);
            let n = grid.graph.num_vertices();
            let m = grid.graph.num_edges();
            let weights = det_weights(n, 17);
            let costs = vec![1.0; m];
            let doc = write_metis(&grid.graph, &weights, &costs);
            drop((grid, weights, costs));
            Workspace::with_local(|ws| ws.reset_stats());
            let t = Instant::now();
            let mg = parse_metis(&doc).expect("self-written METIS parses");
            let ingest_ms = t.elapsed().as_secs_f64() * 1e3;
            drop(doc);
            let inst = Instance::new(mg.graph, mg.costs, mg.weights).expect("round-trip is valid");
            let cfg = PipelineConfig {
                coarsen: Some(CoarsenConfig::default()),
                ..PipelineConfig::default()
            };
            let t = Instant::now();
            let solver = Solver::for_instance(&inst)
                .classes(large_k)
                .config(cfg)
                .build()
                .expect("valid");
            let report = solver.solve();
            let solve_ms = t.elapsed().as_secs_f64() * 1e3;
            let stats = Workspace::with_local(|ws| ws.stats());
            assert!(
                report.is_strictly_balanced(),
                "cascade solve not strictly balanced at side {side}"
            );
            LargeRow {
                side,
                n,
                m,
                k: large_k,
                ingest_ms,
                solve_ms,
                peak_bytes: stats.peak_total_bytes(n),
                max_boundary: report.max_boundary,
                strictly_balanced: true,
            }
        })
        .join()
        .expect("large-n row must not panic");
        let (budget_ms, budget_bytes) = large_budget(row.n);
        assert!(
            row.ingest_ms + row.solve_ms <= budget_ms,
            "large-n row side {side} over wall-clock budget: {:.0} + {:.0} > {budget_ms:.0} ms",
            row.ingest_ms,
            row.solve_ms
        );
        assert!(
            row.peak_bytes <= budget_bytes,
            "large-n row side {side} over memory budget: {} > {budget_bytes} bytes",
            row.peak_bytes
        );
        large.push(row);
    }

    // Batch suite: a stream of distinct instances through solve_many.
    let batch_sides: &[usize] = if quick {
        &[8, 10, 12, 14]
    } else {
        &[16, 20, 24, 28]
    };
    let copies = if quick { 2 } else { 4 };
    let instances: Vec<Instance> = (0..copies)
        .flat_map(|c| {
            batch_sides
                .iter()
                .map(move |&s| grid_instance(s, 11 + c as u64))
        })
        .collect();
    let batch_k = 8;
    let cfg = PipelineConfig::default();
    // Reference: one-at-a-time solves on this thread.
    let reference: Vec<_> = instances
        .iter()
        .map(|inst| {
            Solver::for_instance(inst)
                .classes(batch_k)
                .build()
                .expect("valid")
                .solve()
                .coloring
        })
        .collect();
    let mut batch = Vec::new();
    let mut all_identical = true;
    for threads in [1usize, 2, 4] {
        let (reports, ms) = best_of(repeats, || {
            rayon::with_num_threads(threads, || solve_many(&instances, batch_k, &cfg))
        });
        for (r, reference) in reports.iter().zip(&reference) {
            let r = r.as_ref().expect("batch instances are valid");
            all_identical &= r.coloring == *reference;
        }
        batch.push(BatchRow { threads, ms });
    }
    assert!(
        all_identical,
        "solve_many diverged from one-at-a-time solves"
    );

    PerfReport {
        mode: if quick { "quick" } else { "full" }.into(),
        threads_available: std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        scaling,
        large,
        batch_instances: instances.len(),
        batch,
        corpus_gaps: compute_corpus_gaps(),
        colorings_bit_identical: all_identical,
    }
}

fn fnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

/// Full round-trip serialization for gap-table floats: the regression
/// gate re-parses these and compares against freshly computed values, so
/// rounding to 3 decimals would manufacture spurious "regressions".
fn fnum_exact(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

impl PerfReport {
    /// Serialize to the `BENCH_6.json` schema (`"mmb-bench-6"`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"mmb-bench-6\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!(
            "  \"host\": {{ \"threads_available\": {} }},\n",
            self.threads_available
        ));
        s.push_str("  \"scaling\": [\n");
        for (i, r) in self.scaling.iter().enumerate() {
            s.push_str(&format!(
                concat!(
                    "    {{ \"side\": {}, \"n\": {}, \"k\": {}, ",
                    "\"alloc_ms\": {}, \"workspace_ms\": {}, \"speedup\": {}, ",
                    "\"stage_ms\": [{}, {}, {}], ",
                    "\"certified\": {{ \"lower\": {}, \"ratio\": {} }}, ",
                    "\"workspace\": {{ \"acquires\": {}, \"fresh_allocs\": {}, ",
                    "\"cells_touched\": {}, \"cells_dense\": {}, ",
                    "\"peak_live\": {}, \"peak_bytes\": {} }} }}{}\n"
                ),
                r.side,
                r.n,
                r.k,
                fnum(r.alloc_ms),
                fnum(r.workspace_ms),
                fnum(r.speedup),
                fnum(r.stage_ms[0]),
                fnum(r.stage_ms[1]),
                fnum(r.stage_ms[2]),
                fnum(r.lower),
                fnum(r.certified_ratio),
                r.ws_acquires,
                r.ws_fresh_allocs,
                r.ws_cells_touched,
                r.ws_cells_dense,
                r.ws_peak_live,
                r.ws_peak_bytes,
                if i + 1 < self.scaling.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"large\": [\n");
        for (i, r) in self.large.iter().enumerate() {
            s.push_str(&format!(
                concat!(
                    "    {{ \"side\": {}, \"n\": {}, \"m\": {}, \"k\": {}, ",
                    "\"ingest_ms\": {}, \"solve_ms\": {}, \"peak_bytes\": {}, ",
                    "\"max_boundary\": {}, \"strictly_balanced\": {} }}{}\n"
                ),
                r.side,
                r.n,
                r.m,
                r.k,
                fnum(r.ingest_ms),
                fnum(r.solve_ms),
                r.peak_bytes,
                fnum(r.max_boundary),
                r.strictly_balanced,
                if i + 1 < self.large.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"batch_instances\": {},\n",
            self.batch_instances
        ));
        s.push_str("  \"batch\": [\n");
        for (i, r) in self.batch.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"threads\": {}, \"ms\": {} }}{}\n",
                r.threads,
                fnum(r.ms),
                if i + 1 < self.batch.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"corpus_gaps\": [\n");
        for (i, r) in self.corpus_gaps.iter().enumerate() {
            s.push_str(&format!(
                concat!(
                    "    {{ \"name\": \"{}\", \"n\": {}, \"k\": {}, ",
                    "\"lower\": {}, \"upper\": {}, \"ratio\": {}, ",
                    "\"certifier\": \"{}\", \"proven\": {} }}{}\n"
                ),
                r.name,
                r.n,
                r.k,
                fnum_exact(r.lower),
                fnum_exact(r.upper),
                fnum_exact(r.ratio),
                r.certifier,
                r.proven,
                if i + 1 < self.corpus_gaps.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"colorings_bit_identical\": {}\n",
            self.colorings_bit_identical
        ));
        s.push_str("}\n");
        s
    }

    /// Human-readable summary printed alongside the JSON.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str("# perf baselines (BENCH_6)\n");
        s.push_str(
            "| n | k | alloc ms | workspace ms | speedup | stage ms (P7/P11/P12) | lower | gap |\n",
        );
        s.push_str(
            "|---|---|----------|--------------|---------|------------------------|-------|-----|\n",
        );
        for r in &self.scaling {
            s.push_str(&format!(
                "| {} | {} | {:.2} | {:.2} | {:.2}x | {:.2}/{:.2}/{:.2} | {:.2} | {:.2}x |\n",
                r.n,
                r.k,
                r.alloc_ms,
                r.workspace_ms,
                r.speedup,
                r.stage_ms[0],
                r.stage_ms[1],
                r.stage_ms[2],
                r.lower,
                r.certified_ratio
            ));
        }
        for r in &self.large {
            let (budget_ms, budget_bytes) = large_budget(r.n);
            s.push_str(&format!(
                "large: n = {} (k = {}) — ingest {:.0} ms, solve {:.0} ms, \
                 peak {:.1} MiB (budgets: {:.0} ms, {:.1} MiB)\n",
                r.n,
                r.k,
                r.ingest_ms,
                r.solve_ms,
                r.peak_bytes as f64 / (1024.0 * 1024.0),
                budget_ms,
                budget_bytes as f64 / (1024.0 * 1024.0),
            ));
        }
        s.push_str(&format!(
            "batch: {} instances — {}\n",
            self.batch_instances,
            self.batch
                .iter()
                .map(|b| format!("{} thread(s): {:.2} ms", b.threads, b.ms))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        let proven = self.corpus_gaps.iter().filter(|r| r.proven).count();
        let proven_past_cap = self
            .corpus_gaps
            .iter()
            .filter(|r| r.proven && r.n > 16)
            .count();
        s.push_str(&format!(
            "corpus gaps: {} entries, {} proven optimal ({} past the n = 16 oracle cap)\n",
            self.corpus_gaps.len(),
            proven,
            proven_past_cap
        ));
        s.push_str(&format!(
            "host threads: {}; colorings bit-identical: {}\n",
            self.threads_available, self.colorings_bit_identical
        ));
        s
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (validation only — no serde in the offline build).

/// A parsed JSON value (just enough structure for schema validation).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String literal (escapes decoded naively).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as key/value pairs in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict enough for our own writer's output and
/// ordinary hand edits; not a general-purpose validator).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut kv = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(kv));
            }
            loop {
                skip_ws(b, pos);
                let Json::Str(key) = parse_value(b, pos)? else {
                    return Err(format!("object key must be a string at byte {}", *pos));
                };
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                kv.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(kv));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            while let Some(&c) = b.get(*pos) {
                *pos += 1;
                match c {
                    b'"' => return Ok(Json::Str(out)),
                    b'\\' => {
                        let Some(&esc) = b.get(*pos) else {
                            return Err("unterminated escape".into());
                        };
                        *pos += 1;
                        out.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            other => other as char,
                        });
                    }
                    other => out.push(other as char),
                }
            }
            Err("unterminated string".into())
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        }
    }
}

/// Validate a `BENCH_6.json` document: parses, checks the schema tag and
/// every field the downstream tooling (CI, EXPERIMENTS.md tables) reads —
/// including the per-row certified gap introduced with `mmb-bench-4`, the
/// corpus gap table introduced with `mmb-bench-5` (which must carry at
/// least one entry proven optimal past the `n = 16` oracle cap), and the
/// large-`n` suite introduced with `mmb-bench-6`: every row within the
/// [`large_budget`] wall-clock and peak-bytes budgets for its size, and —
/// on full-mode documents — at least one row at `n ≥ 10^6`.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let schema = doc.get("schema").ok_or("missing \"schema\"")?;
    if schema != &Json::Str("mmb-bench-6".into()) {
        return Err(format!("unexpected schema tag: {schema:?}"));
    }
    for key in ["mode", "host", "batch_instances", "colorings_bit_identical"] {
        doc.get(key).ok_or_else(|| format!("missing \"{key}\""))?;
    }
    let scaling = doc
        .get("scaling")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array \"scaling\"")?;
    if scaling.is_empty() {
        return Err("\"scaling\" must not be empty".into());
    }
    for (i, row) in scaling.iter().enumerate() {
        for key in ["side", "n", "k", "workspace"] {
            row.get(key)
                .ok_or_else(|| format!("scaling[{i}] missing \"{key}\""))?;
        }
        // Timings must be actual numbers — the writer serializes
        // non-finite values as `null`, which the guard must reject.
        for key in ["alloc_ms", "workspace_ms", "speedup"] {
            row.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("scaling[{i}].{key} must be a finite number"))?;
        }
        let stages = row
            .get("stage_ms")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("scaling[{i}].stage_ms must be an array"))?;
        if stages.len() != 3 {
            return Err(format!("scaling[{i}].stage_ms must have 3 entries"));
        }
        if stages.iter().any(|s| s.as_num().is_none()) {
            return Err(format!(
                "scaling[{i}].stage_ms entries must be finite numbers"
            ));
        }
        // The certified gap: a lower bound of 0 would serialize ratio ∞
        // as null, which the guard refuses — the committed baseline must
        // carry a non-trivial certificate.
        let certified = row
            .get("certified")
            .ok_or_else(|| format!("scaling[{i}] missing \"certified\""))?;
        for key in ["lower", "ratio"] {
            certified
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("scaling[{i}].certified.{key} must be a finite number"))?;
        }
        // A zero lower bound is a trivial certificate even when the
        // ratio field happens to be finite — refuse it outright.
        let lower = certified.get("lower").and_then(Json::as_num).unwrap_or(0.0);
        if lower <= 0.0 {
            return Err(format!(
                "scaling[{i}].certified.lower must be positive, got {lower}"
            ));
        }
    }
    let large = doc
        .get("large")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array \"large\"")?;
    if large.is_empty() {
        return Err("\"large\" must not be empty".into());
    }
    for (i, row) in large.iter().enumerate() {
        let num = |key: &str| {
            row.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("large[{i}].{key} must be a finite number"))
        };
        let n = num("n")? as usize;
        for key in ["side", "m", "k"] {
            num(key)?;
        }
        let (ingest_ms, solve_ms) = (num("ingest_ms")?, num("solve_ms")?);
        let peak_bytes = num("peak_bytes")? as u64;
        num("max_boundary")?;
        if row.get("strictly_balanced") != Some(&Json::Bool(true)) {
            return Err(format!("large[{i}].strictly_balanced must be true"));
        }
        let (budget_ms, budget_bytes) = large_budget(n);
        if ingest_ms + solve_ms > budget_ms {
            return Err(format!(
                "large[{i}] (n = {n}) over wall-clock budget: \
                 {ingest_ms:.0} + {solve_ms:.0} > {budget_ms:.0} ms"
            ));
        }
        if peak_bytes > budget_bytes {
            return Err(format!(
                "large[{i}] (n = {n}) over memory budget: \
                 {peak_bytes} > {budget_bytes} bytes"
            ));
        }
    }
    if doc.get("mode") == Some(&Json::Str("full".into()))
        && !large
            .iter()
            .any(|r| r.get("n").and_then(Json::as_num).unwrap_or(0.0) >= 1e6)
    {
        return Err("full-mode document must carry a large row with n >= 10^6".into());
    }
    let batch = doc
        .get("batch")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array \"batch\"")?;
    if batch.is_empty() {
        return Err("\"batch\" must not be empty".into());
    }
    for (i, row) in batch.iter().enumerate() {
        for key in ["threads", "ms"] {
            row.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("batch[{i}].{key} must be a finite number"))?;
        }
    }
    let gaps = parse_gap_rows(&doc)?;
    if !gaps.iter().any(|r| r.proven && r.n > 16) {
        return Err(
            "corpus_gaps must contain at least one entry proven optimal past n = 16".into(),
        );
    }
    if doc.get("colorings_bit_identical") != Some(&Json::Bool(true)) {
        return Err("\"colorings_bit_identical\" must be true".into());
    }
    Ok(())
}

/// Parse and sanity-check the `"corpus_gaps"` table of a parsed BENCH
/// document.
fn parse_gap_rows(doc: &Json) -> Result<Vec<GapRow>, String> {
    let rows = doc
        .get("corpus_gaps")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array \"corpus_gaps\"")?;
    if rows.is_empty() {
        return Err("\"corpus_gaps\" must not be empty".into());
    }
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let name = match row.get("name") {
            Some(Json::Str(s)) if !s.is_empty() => s.clone(),
            _ => return Err(format!("corpus_gaps[{i}].name must be a non-empty string")),
        };
        let num = |key: &str| {
            row.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("corpus_gaps[{i}].{key} must be a finite number"))
        };
        let (n, k) = (num("n")? as usize, num("k")? as usize);
        let (lower, upper, ratio) = (num("lower")?, num("upper")?, num("ratio")?);
        if lower <= 0.0 {
            return Err(format!(
                "corpus_gaps[{i}].lower must be positive, got {lower}"
            ));
        }
        let certifier = match row.get("certifier") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err(format!("corpus_gaps[{i}].certifier must be a string")),
        };
        let proven = match row.get("proven") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(format!("corpus_gaps[{i}].proven must be a bool")),
        };
        out.push(GapRow {
            name,
            n,
            k,
            lower,
            upper,
            ratio,
            certifier,
            proven,
        });
    }
    Ok(out)
}

/// The gap regression gate (`reproduce gap-gate <path>`): recompute the
/// corpus gap table and compare it against the committed baseline. Fails
/// if any baseline entry is missing from the fresh run, or its certified
/// ratio regressed (got worse than the committed one, beyond fp noise).
/// Fresh entries *absent* from the baseline are allowed — adding corpus
/// entries must not require regenerating the committed file in the same
/// change. Returns a human-readable summary on success.
pub fn gap_regression_check(baseline_text: &str) -> Result<String, String> {
    let doc = parse_json(baseline_text)?;
    let baseline = parse_gap_rows(&doc)?;
    let fresh = compute_corpus_gaps();
    let mut checked = 0usize;
    let mut improved = 0usize;
    for base in &baseline {
        let Some(now) = fresh.iter().find(|r| r.name == base.name && r.k == base.k) else {
            return Err(format!(
                "baseline entry `{}` (k = {}) missing from the fresh corpus gap table",
                base.name, base.k
            ));
        };
        checked += 1;
        if now.ratio > base.ratio * (1.0 + 1e-6) + 1e-9 {
            return Err(format!(
                "certified gap regressed on `{}`: ratio {} (was {})",
                base.name, now.ratio, base.ratio
            ));
        }
        if now.ratio < base.ratio * (1.0 - 1e-6) {
            improved += 1;
        }
        if base.proven && !now.proven {
            return Err(format!(
                "`{}` was proven optimal in the baseline but is no longer",
                base.name
            ));
        }
    }
    Ok(format!(
        "gap gate: {checked} baseline entr{} checked, none regressed, {improved} improved",
        if checked == 1 { "y" } else { "ies" }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_roundtrips_through_the_validator() {
        let report = run(true);
        let json = report.to_json();
        validate_bench_json(&json).expect("self-emitted JSON must validate");
        assert!(report.colorings_bit_identical);
        assert_eq!(report.scaling.len(), 2);
        assert_eq!(report.batch.len(), 3);
        // Quick mode runs exactly the 10^5 large row, within budget (the
        // validator re-enforced this from the serialized document too).
        assert_eq!(report.large.len(), 1);
        let lr = &report.large[0];
        assert!(lr.n >= 100_000 && lr.strictly_balanced);
        assert!(lr.peak_bytes > 0, "arena counters never charged");
        // The workspace path must reuse buffers: far fewer fresh
        // allocations than checkouts.
        for row in &report.scaling {
            assert!(row.ws_acquires > 0);
            assert!(
                row.ws_fresh_allocs <= row.ws_peak_live as u64,
                "pool misses ({}) exceed peak concurrency ({})",
                row.ws_fresh_allocs,
                row.ws_peak_live
            );
            // Every measured configuration certifies a non-trivial gap.
            assert!(row.lower > 0.0, "trivial lower bound on side {}", row.side);
            assert!(
                row.certified_ratio.is_finite() && row.certified_ratio >= 1.0,
                "bad certified ratio {} on side {}",
                row.certified_ratio,
                row.side
            );
        }
    }

    #[test]
    fn validator_rejects_trivial_certificates() {
        // A zero lower bound makes the ratio ∞ → serialized as null →
        // the guard must refuse the document.
        let mut report = run(true);
        report.scaling[0].lower = 0.0;
        report.scaling[0].certified_ratio = f64::INFINITY;
        let err = validate_bench_json(&report.to_json()).unwrap_err();
        assert!(err.contains("certified"), "unexpected error: {err}");
        // And a zero lower bound with a *finite* ratio (hand-edited or a
        // future CertifiedGap regression) must be refused just as hard.
        report.scaling[0].certified_ratio = 1.0;
        let err = validate_bench_json(&report.to_json()).unwrap_err();
        assert!(err.contains("must be positive"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_bench_json("").is_err());
        assert!(validate_bench_json("{").is_err());
        assert!(validate_bench_json("{}").is_err());
        assert!(validate_bench_json("{\"schema\": \"wrong\"}").is_err());
        let truncated = "{ \"schema\": \"mmb-bench-3\", \"scaling\": [";
        assert!(validate_bench_json(truncated).is_err());
    }

    #[test]
    fn validator_rejects_null_timings() {
        // A non-finite timing serializes as `null`; the guard must refuse
        // it rather than treating key presence as validity.
        let mut report = run(true);
        report.scaling[0].alloc_ms = f64::NAN;
        let json = report.to_json();
        assert!(json.contains("null"), "NaN must serialize as null");
        let err = validate_bench_json(&json).unwrap_err();
        assert!(err.contains("alloc_ms"), "unexpected error: {err}");
    }

    #[test]
    fn corpus_gap_table_is_deterministic_and_self_gating() {
        let rows = compute_corpus_gaps();
        assert!(!rows.is_empty());
        // Names are unique (the regression gate matches by name).
        let mut names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rows.len(), "duplicate gap-table names");
        // Every row certifies a positive bound with a sane ratio, and at
        // least one past-the-cap entry is proven optimal (the acceptance
        // criterion the validator enforces on committed baselines).
        for r in &rows {
            assert!(r.lower > 0.0, "{}: trivial bound", r.name);
            assert!(
                r.ratio.is_finite() && r.ratio >= 1.0 - 1e-9,
                "{}: ratio {}",
                r.name,
                r.ratio
            );
            if r.proven {
                assert!(
                    matches!(r.certifier.as_str(), "oracle" | "bnb"),
                    "{}",
                    r.name
                );
            }
        }
        assert!(
            rows.iter().any(|r| r.proven && r.n > 16),
            "no past-the-cap entry proven optimal"
        );
        // A self-emitted report passes its own regression gate (ratios
        // are bit-reproducible), and the gate catches a doctored
        // regression.
        let report = run(true);
        let json = report.to_json();
        let msg = gap_regression_check(&json).expect("self-gate must pass");
        assert!(msg.contains("none regressed"), "{msg}");
        let doctored = json.replace(
            &format!(
                "\"ratio\": {}",
                super::fnum_exact(report.corpus_gaps[0].ratio)
            ),
            &format!(
                "\"ratio\": {}",
                super::fnum_exact(report.corpus_gaps[0].ratio / 16.0)
            ),
        );
        assert_ne!(doctored, json, "test setup failed to doctor the baseline");
        let err = gap_regression_check(&doctored).unwrap_err();
        assert!(err.contains("regressed"), "unexpected error: {err}");
    }

    #[test]
    fn validator_enforces_large_budgets() {
        let report = run(true);
        let mut over_time = report.clone();
        over_time.large[0].solve_ms = large_budget(over_time.large[0].n).0 + 1.0;
        let err = validate_bench_json(&over_time.to_json()).unwrap_err();
        assert!(err.contains("wall-clock budget"), "unexpected error: {err}");
        let mut over_mem = report;
        over_mem.large[0].peak_bytes = large_budget(over_mem.large[0].n).1 + 1;
        let err = validate_bench_json(&over_mem.to_json()).unwrap_err();
        assert!(err.contains("memory budget"), "unexpected error: {err}");
    }

    #[test]
    fn gap_gate_accepts_previous_schema_documents() {
        // The regression gate matches corpus_gaps rows only — a committed
        // baseline from before the mmb-bench-6 rename (no "large" array,
        // old schema tag) must still gate, so the rename cannot lose the
        // recorded gap history in the changeover commit.
        let report = run(true);
        let old_schema = report
            .to_json()
            .replace("\"schema\": \"mmb-bench-6\"", "\"schema\": \"mmb-bench-5\"");
        assert!(
            validate_bench_json(&old_schema).is_err(),
            "bench-verify must reject the old tag"
        );
        let msg = gap_regression_check(&old_schema).expect("gate must accept old documents");
        assert!(msg.contains("none regressed"), "{msg}");
    }

    #[test]
    fn json_parser_handles_basics() {
        let doc = parse_json("{\"a\": [1, 2.5, true, null], \"b\": \"x\\ny\"}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(doc.get("b"), Some(&Json::Str("x\ny".into())));
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
    }
}
