//! The `reproduce churn` load test: a seeded churn trace replayed against
//! the `mmb-service` front end, measuring cold vs warm serving latency.
//!
//! The trace models the serving workload the warm path exists for:
//! repeat-topology traffic. Per base topology, the harness serves a
//! stream of **cold** requests (full pipeline solves of freshly admitted
//! instances with perturbed weights — the artifact cache is live, which
//! *biases the comparison against the warm path*) and a stream of
//! **warm** requests (seeded `InstanceDelta` weight churn, plus a cost
//! tweak every few rounds, re-solved from the incumbent coloring via
//! `Solver::resolve_delta`). Latencies come from the service's own
//! per-request [`ServingRecord`](mmb_service::ServingRecord)s.
//!
//! Every warm response is re-audited here, outside the service: the
//! served coloring must be total and strictly balanced against an
//! independently maintained weight mirror, and its cost must not exceed
//! an independently computed LPT floor — the same
//! strict-balance + cost-monotonicity gate the resilient ladder serves
//! through, recomputed from scratch so a service-side bookkeeping bug
//! cannot vouch for itself.
//!
//! The emitted document (`BENCH_7.json`, schema `"mmb-bench-7"`) is
//! checked by [`validate_churn_json`]: per-row positivity and speedup
//! consistency, every audit flag true, live cache traffic, and the
//! headline gate — **warm serving at least 5× faster than cold** in
//! aggregate.

use mmb_core::api::InstanceDelta;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::{Coloring, Graph};
use mmb_service::{Request, Response, ServePath, Service, ServiceConfig};

use crate::perf::{parse_json, Json};
use crate::table::Table;

/// Grid sides of the base topologies (full mode).
const FULL_SIDES: [usize; 2] = [32, 48];
/// Grid sides under `--quick`.
const QUICK_SIDES: [usize; 2] = [20, 24];
/// Churn rounds per topology (full / quick).
const FULL_ROUNDS: usize = 40;
const QUICK_ROUNDS: usize = 6;
/// Decomposition classes served throughout.
const CHURN_K: usize = 4;
/// Every `COST_TWEAK_PERIOD`-th round also re-prices one edge, forcing
/// an artifact rebuild on the next lookup — weight-only churn must not
/// be the only traffic the warm path is ever measured on.
const COST_TWEAK_PERIOD: usize = 5;

/// One base topology's cold/warm measurement.
#[derive(Clone, Debug)]
pub struct ChurnRow {
    /// Row label (`grid32x32`, …).
    pub name: String,
    /// Vertex count.
    pub n: usize,
    /// Classes served.
    pub k: usize,
    /// Churn rounds measured.
    pub rounds: usize,
    /// Mean cold serving latency (full pipeline solve), milliseconds.
    pub cold_ms: f64,
    /// Mean warm serving latency (delta re-solve), milliseconds.
    pub warm_ms: f64,
    /// `cold_ms / warm_ms`.
    pub speedup: f64,
    /// Responses served by the warm repair path (`ServePath::Warm`).
    pub warm_serves: usize,
    /// Responses that fell back to a cold re-solve after the gate
    /// rejected the repair.
    pub cold_fallbacks: usize,
    /// Every served coloring was total and strictly balanced against the
    /// independent weight mirror.
    pub strict_ok: bool,
    /// Every served cost was within the independently computed LPT
    /// floor, and the served `max_boundary` matched a recomputation.
    pub monotone_ok: bool,
}

/// The full churn report; serialized as `BENCH_7.json`.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// `"full"` or `"quick"`.
    pub mode: &'static str,
    /// Per-topology rows.
    pub rows: Vec<ChurnRow>,
    /// Mean cold latency across rows, milliseconds.
    pub agg_cold_ms: f64,
    /// Mean warm latency across rows, milliseconds.
    pub agg_warm_ms: f64,
    /// `agg_cold_ms / agg_warm_ms` — the headline, gated ≥ 5.
    pub agg_speedup: f64,
    /// Artifact-cache hits summed over the trace.
    pub cache_hits: u64,
    /// Artifact-cache misses summed over the trace.
    pub cache_misses: u64,
}

/// splitmix64 — the repo's standard seeded stream (same constants as
/// `FaultSchedule::chaos`); the churn trace must replay bit-identically.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded weight in `[0.5, 1.5)`.
fn churn_weight(state: &mut u64) -> f64 {
    0.5 + (splitmix(state) % 1000) as f64 / 1000.0
}

/// Independent LPT floor: vertices in descending weight order, each to
/// the lightest class — strictly balanced in any order, and the
/// monotonicity bound every served coloring is audited against.
fn lpt_floor(g: &Graph, costs: &[f64], weights: &[f64], k: usize) -> f64 {
    let mut order: Vec<u32> = (0..g.num_vertices() as u32).collect();
    order.sort_by(|&a, &b| {
        weights[b as usize]
            .total_cmp(&weights[a as usize])
            .then(a.cmp(&b))
    });
    let mut loads = vec![0.0f64; k];
    let mut chi = Coloring::new_uncolored(g.num_vertices(), k);
    for &v in &order {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(c, _)| c)
            .unwrap_or(0);
        loads[lightest] += weights[v as usize];
        chi.set(v, lightest as u32);
    }
    chi.max_boundary_cost(g, costs)
}

/// Audit one served response against independently maintained mirrors.
fn audit(resp: &Response, g: &Graph, costs: &[f64], weights: &[f64], k: usize) -> (bool, bool) {
    let Ok(served) = &resp.outcome else {
        return (false, false);
    };
    let strict = served.coloring.is_total() && served.coloring.is_strictly_balanced(weights);
    let recomputed = served.coloring.max_boundary_cost(g, costs);
    let floor = lpt_floor(g, costs, weights, k);
    let tol = 1e-9 * floor.max(1e-300);
    let monotone = (recomputed - served.max_boundary).abs()
        <= 1e-9 * recomputed.max(1e-300) + 1e-12
        && recomputed <= floor + tol;
    (strict, monotone)
}

/// Run the churn trace for one base topology.
fn run_topology(side: usize, rounds: usize) -> (ChurnRow, u64, u64) {
    let name = format!("grid{side}x{side}");
    let mut seed = 0xC0FF_EE00 ^ (side as u64);

    let grid = GridGraph::lattice(&[side, side]);
    let g = grid.graph.clone();
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut costs = vec![1.0; m];
    let mut weights: Vec<f64> = (0..n).map(|_| churn_weight(&mut seed)).collect();

    let service = Service::new(ServiceConfig::new(CHURN_K));

    // Cold stream: freshly admitted instances, perturbed weights, same
    // topology (the artifact cache warms after the first request —
    // deliberately biasing the cold number downward).
    let mut cold_total = 0.0;
    let mut ticket = 0u64;
    for round in 0..rounds {
        let mut w = weights.clone();
        let v = (splitmix(&mut seed) % n as u64) as usize;
        w[v] = churn_weight(&mut seed);
        let out = service.serve(vec![Request::Solve {
            graph: g.clone(),
            costs: costs.clone(),
            weights: w.clone(),
        }]);
        let resp = &out[0];
        let served = resp
            .outcome
            .as_ref()
            .expect("cold churn solve must serve a valid grid");
        cold_total += resp.record.elapsed_millis;
        if round + 1 == rounds {
            // The last cold instance seeds the warm stream.
            ticket = served.ticket;
            weights = w;
        }
    }
    let cold_ms = cold_total / rounds as f64;

    // Warm stream: seeded deltas against the incumbent ticket.
    let mut warm_total = 0.0;
    let mut warm_serves = 0usize;
    let mut cold_fallbacks = 0usize;
    let mut strict_ok = true;
    let mut monotone_ok = true;
    for round in 0..rounds {
        let mut delta = InstanceDelta::new();
        // A couple of weight moves per round…
        for _ in 0..2 {
            let v = (splitmix(&mut seed) % n as u64) as u32;
            let w = churn_weight(&mut seed);
            weights[v as usize] = w;
            delta = delta.set_weight(v, w);
        }
        // …and an occasional re-priced edge.
        if round % COST_TWEAK_PERIOD == COST_TWEAK_PERIOD - 1 {
            let e = (splitmix(&mut seed) % m as u64) as u32;
            let c = 1.0 + (splitmix(&mut seed) % 100) as f64 / 100.0;
            costs[e as usize] = c;
            delta = delta.set_cost(e, c);
        }
        let out = service.serve(vec![Request::Mutate {
            base: ticket,
            delta,
        }]);
        let resp = &out[0];
        let served = resp.outcome.as_ref().expect("warm churn mutate must serve");
        warm_total += resp.record.elapsed_millis;
        match resp.record.path {
            ServePath::Warm => warm_serves += 1,
            ServePath::ColdFallback => cold_fallbacks += 1,
            other => panic!("mutate served by unexpected path {other:?}"),
        }
        let (strict, monotone) = audit(resp, &g, &costs, &weights, CHURN_K);
        strict_ok &= strict;
        monotone_ok &= monotone;
        ticket = served.ticket;
    }
    let warm_ms = warm_total / rounds as f64;

    let stats = service.cache_stats();
    (
        ChurnRow {
            name,
            n,
            k: CHURN_K,
            rounds,
            cold_ms,
            warm_ms,
            speedup: cold_ms / warm_ms.max(1e-12),
            warm_serves,
            cold_fallbacks,
            strict_ok,
            monotone_ok,
        },
        stats.hits,
        stats.misses,
    )
}

/// Replay the churn trace and assemble the report.
pub fn run_churn(quick: bool) -> ChurnReport {
    let (sides, rounds) = if quick {
        (QUICK_SIDES, QUICK_ROUNDS)
    } else {
        (FULL_SIDES, FULL_ROUNDS)
    };
    let mut rows = Vec::new();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for side in sides {
        let (row, hits, misses) = run_topology(side, rounds);
        rows.push(row);
        cache_hits += hits;
        cache_misses += misses;
    }
    let agg_cold_ms = rows.iter().map(|r| r.cold_ms).sum::<f64>() / rows.len() as f64;
    let agg_warm_ms = rows.iter().map(|r| r.warm_ms).sum::<f64>() / rows.len() as f64;
    ChurnReport {
        mode: if quick { "quick" } else { "full" },
        rows,
        agg_cold_ms,
        agg_warm_ms,
        agg_speedup: agg_cold_ms / agg_warm_ms.max(1e-12),
        cache_hits,
        cache_misses,
    }
}

/// Full round-trip float serialization — the validator recomputes the
/// speedup from the serialized latencies, so rounding would manufacture
/// spurious inconsistencies.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

impl ChurnReport {
    /// Serialize to the `BENCH_7.json` schema (`"mmb-bench-7"`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"mmb-bench-7\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                concat!(
                    "    {{ \"name\": \"{}\", \"n\": {}, \"k\": {}, \"rounds\": {}, ",
                    "\"cold_ms\": {}, \"warm_ms\": {}, \"speedup\": {}, ",
                    "\"warm_serves\": {}, \"cold_fallbacks\": {}, ",
                    "\"strict_ok\": {}, \"monotone_ok\": {} }}{}\n"
                ),
                r.name,
                r.n,
                r.k,
                r.rounds,
                num(r.cold_ms),
                num(r.warm_ms),
                num(r.speedup),
                r.warm_serves,
                r.cold_fallbacks,
                r.strict_ok,
                r.monotone_ok,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            concat!(
                "  \"aggregate\": {{ \"cold_ms\": {}, \"warm_ms\": {}, ",
                "\"speedup\": {} }},\n"
            ),
            num(self.agg_cold_ms),
            num(self.agg_warm_ms),
            num(self.agg_speedup),
        ));
        s.push_str(&format!(
            "  \"cache\": {{ \"hits\": {}, \"misses\": {} }}\n",
            self.cache_hits, self.cache_misses
        ));
        s.push_str("}\n");
        s
    }

    /// Printable summary table.
    pub fn summary(&self) -> Table {
        let mut t = Table::new(
            format!(
                "CHURN ({} mode): cold vs warm serving latency on repeat-topology \
                 traffic (gate: aggregate speedup ≥ 5, every serve strict + monotone)",
                self.mode
            ),
            &[
                "topology", "n", "k", "rounds", "cold ms", "warm ms", "speedup", "warm",
                "fallback", "strict", "monotone",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                r.n.to_string(),
                r.k.to_string(),
                r.rounds.to_string(),
                crate::fmt(r.cold_ms),
                crate::fmt(r.warm_ms),
                crate::fmt(r.speedup),
                r.warm_serves.to_string(),
                r.cold_fallbacks.to_string(),
                r.strict_ok.to_string(),
                r.monotone_ok.to_string(),
            ]);
        }
        t.note(format!(
            "aggregate: cold {} ms, warm {} ms, speedup {}×; cache {} hits / {} misses",
            crate::fmt(self.agg_cold_ms),
            crate::fmt(self.agg_warm_ms),
            crate::fmt(self.agg_speedup),
            self.cache_hits,
            self.cache_misses
        ));
        t
    }
}

/// Validate a `BENCH_7.json` document: schema tag, non-empty rows with
/// positive finite latencies and a speedup consistent with them, every
/// audit flag true, at least one warm serve per row, live cache traffic,
/// and the headline aggregate speedup ≥ 5.
pub fn validate_churn_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let schema = doc.get("schema").ok_or("missing \"schema\"")?;
    if schema != &Json::Str("mmb-bench-7".into()) {
        return Err(format!("unexpected schema tag: {schema:?}"));
    }
    doc.get("mode").ok_or("missing \"mode\"")?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array \"rows\"")?;
    if rows.is_empty() {
        return Err("\"rows\" must not be empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        for key in ["name", "n", "k", "rounds"] {
            row.get(key)
                .ok_or_else(|| format!("rows[{i}] missing \"{key}\""))?;
        }
        let mut nums = [0.0f64; 3];
        for (slot, key) in nums.iter_mut().zip(["cold_ms", "warm_ms", "speedup"]) {
            let x = row
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("rows[{i}].{key} must be a finite number"))?;
            if x <= 0.0 {
                return Err(format!("rows[{i}].{key} must be positive, got {x}"));
            }
            *slot = x;
        }
        let implied = nums[0] / nums[1];
        if (implied - nums[2]).abs() > 1e-6 * implied.max(1.0) {
            return Err(format!(
                "rows[{i}].speedup {} inconsistent with cold/warm {}",
                nums[2], implied
            ));
        }
        let warm_serves = row
            .get("warm_serves")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("rows[{i}].warm_serves must be a number"))?;
        if warm_serves < 1.0 {
            return Err(format!(
                "rows[{i}] never took the warm path — the trace tests nothing"
            ));
        }
        for key in ["strict_ok", "monotone_ok"] {
            match row.get(key) {
                Some(Json::Bool(true)) => {}
                Some(Json::Bool(false)) => {
                    return Err(format!("rows[{i}].{key} is false: audit gate failed"))
                }
                _ => return Err(format!("rows[{i}].{key} must be a boolean")),
            }
        }
    }
    let agg = doc.get("aggregate").ok_or("missing \"aggregate\"")?;
    let speedup = agg
        .get("speedup")
        .and_then(Json::as_num)
        .ok_or("aggregate.speedup must be a finite number")?;
    if speedup < 5.0 {
        return Err(format!(
            "headline gate: warm serving must be ≥ 5× faster than cold, got {speedup:.2}×"
        ));
    }
    let cache = doc.get("cache").ok_or("missing \"cache\"")?;
    for key in ["hits", "misses"] {
        let x = cache
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("cache.{key} must be a number"))?;
        if x < 1.0 {
            return Err(format!(
                "cache.{key} is {x}: the trace never exercised the cache"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_churn_round_trips_and_validates() {
        let report = run_churn(true);
        assert_eq!(report.rows.len(), QUICK_SIDES.len());
        for row in &report.rows {
            assert!(row.strict_ok, "{}: served non-strict coloring", row.name);
            assert!(row.monotone_ok, "{}: served above the floor", row.name);
            assert!(row.warm_serves >= 1, "{}: warm path never taken", row.name);
        }
        let json = report.to_json();
        validate_churn_json(&json).expect("fresh quick report must validate");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let good = run_churn(true).to_json();
        // Schema tag.
        let bad = good.replace("mmb-bench-7", "mmb-bench-6");
        assert!(validate_churn_json(&bad).is_err());
        // Audit flag flipped.
        let bad = good.replace("\"strict_ok\": true", "\"strict_ok\": false");
        assert!(validate_churn_json(&bad).is_err());
        // Empty rows.
        assert!(validate_churn_json(
            "{ \"schema\": \"mmb-bench-7\", \"mode\": \"quick\", \"rows\": [] }"
        )
        .is_err());
    }

    #[test]
    fn churn_trace_is_seeded_deterministic() {
        // The audit flags and path counts must replay exactly; latencies
        // are wall-clock and excluded.
        let a = run_churn(true);
        let b = run_churn(true);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.warm_serves, rb.warm_serves);
            assert_eq!(ra.cold_fallbacks, rb.cold_fallbacks);
            assert_eq!(
                (ra.strict_ok, ra.monotone_ok),
                (rb.strict_ok, rb.monotone_ok)
            );
        }
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.cache_misses, b.cache_misses);
    }
}
