//! Minimal aligned-table printer for experiment reports.

/// A titled table with aligned columns.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + claim).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (each the same length as `columns`).
    pub rows: Vec<Vec<String>>,
    /// Free-text footnotes.
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render to a string (markdown-ish, aligned).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!("{c:<w$} | ", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.columns, &widths));
        out.push_str(&format!(
            "|{}|\n",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(vec!["x".into(), "y".into()]);
        t.row(vec!["long".into(), "z".into()]);
        t.note("hello");
        let r = t.render();
        assert!(r.contains("== T =="));
        assert!(r.contains("| long | z    |"));
        assert!(r.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_rows() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
