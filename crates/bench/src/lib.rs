//! # mmb-bench
//!
//! Experiment harness reproducing every theorem of the paper as a measured
//! table (experiment index in `DESIGN.md`; results recorded in
//! `EXPERIMENTS.md`). Run with
//!
//! ```text
//! cargo run -p mmb-bench --bin reproduce --release -- all
//! cargo run -p mmb-bench --bin reproduce --release -- e1 e5 --quick
//! ```
//!
//! Timing-focused measurements live in the criterion benches
//! (`cargo bench -p mmb-bench`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod churn;
pub mod corpus;
pub mod experiments;
pub mod perf;
pub mod table;

use mmb_baselines::greedy::{FirstFit, Lpt, RoundRobin};
use mmb_baselines::multilevel::Multilevel;
use mmb_baselines::recursive_bisection::RecursiveBisection;
use mmb_core::api::{Instance, Partitioner, SolveError};
use mmb_graph::measure::{norm_1, norm_inf};
use mmb_graph::{Coloring, Graph};

/// The standard baseline roster every cross-partitioner sweep scores —
/// one constructor so the corpus table and the oracle differential suite
/// cannot drift apart when a baseline is added or reconfigured.
pub fn standard_baselines() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(Lpt),
        Box::new(FirstFit),
        Box::new(RoundRobin),
        Box::new(RecursiveBisection { kst: false }),
        Box::new(Multilevel::default()),
    ]
}

/// Uniform quality score of a coloring on an instance.
#[derive(Clone, Debug)]
pub struct Score {
    /// `‖∂χ⁻¹‖∞`.
    pub max_boundary: f64,
    /// `‖∂χ⁻¹‖_avg`.
    pub avg_boundary: f64,
    /// Strict-balance defect (≤ 0 means eq. (1) holds).
    pub strict_defect: f64,
    /// Max class weight / average class weight (rough-balance factor).
    pub balance_factor: f64,
    /// Wall-clock milliseconds (filled by the caller when relevant).
    pub millis: f64,
}

impl Score {
    /// Whether eq. (1) holds up to fp tolerance.
    pub fn is_strict(&self, weights: &[f64]) -> bool {
        self.strict_defect <= 1e-9 * (1.0 + norm_inf(weights))
    }
}

/// Score a coloring.
pub fn score(g: &Graph, costs: &[f64], weights: &[f64], chi: &Coloring) -> Score {
    let bc = chi.boundary_costs(g, costs);
    let k = chi.k();
    let cm = chi.class_measures(weights);
    let avg_w = norm_1(&cm) / k as f64;
    Score {
        max_boundary: norm_inf(&bc),
        avg_boundary: norm_1(&bc) / k as f64,
        strict_defect: chi.strict_balance_defect(weights),
        balance_factor: if avg_w > 0.0 {
            norm_inf(&cm) / avg_w
        } else {
            1.0
        },
        millis: 0.0,
    }
}

/// Score a coloring of an [`Instance`] (same metrics as [`score`]).
pub fn score_instance(inst: &Instance, chi: &Coloring) -> Score {
    score(inst.graph(), inst.costs(), inst.weights(), chi)
}

/// Run a [`Partitioner`] on an instance, returning the coloring and its
/// timed [`Score`] — the uniform "ours vs baselines" code path of
/// experiments E4, E7 and E10.
pub fn run_scored(
    algo: &dyn Partitioner,
    inst: &Instance,
    k: usize,
) -> Result<(Coloring, Score), SolveError> {
    let (chi, millis) = timed(|| algo.partition(inst, k));
    let chi = chi?;
    let mut s = score_instance(inst, &chi);
    s.millis = millis;
    Ok((chi, s))
}

/// Run `f`, returning its result and the elapsed milliseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Format a float compactly for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e5 || x.abs() < 1e-3 {
        format!("{x:.2e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}
