//! Lemma 27 (precise): GridSplit runs in `O(m · log φ)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::VertexSet;
use mmb_instances::costs::CostFamily;
use mmb_splitters::grid::GridSplitter;
use mmb_splitters::Splitter;
use std::hint::black_box;

fn bench_by_phi(c: &mut Criterion) {
    let mut group = c.benchmark_group("gridsplit/by_phi");
    let grid = GridGraph::lattice(&[96, 96]);
    let n = grid.graph.num_vertices();
    let w = VertexSet::full(n);
    let weights = vec![1.0; n];
    for phi in [1.0f64, 1e2, 1e4, 1e6] {
        let costs = CostFamily::LogUniform.generate(&grid, phi, 9);
        let sp = GridSplitter::new(&grid, &costs);
        group.bench_with_input(BenchmarkId::from_parameter(phi), &phi, |b, _| {
            b.iter(|| black_box(sp.split(black_box(&w), &weights, n as f64 / 2.0)))
        });
    }
    group.finish();
}

fn bench_by_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("gridsplit/by_m");
    for side in [32usize, 64, 128] {
        let grid = GridGraph::lattice(&[side, side]);
        let n = grid.graph.num_vertices();
        let m = grid.graph.num_edges();
        let costs = CostFamily::LogUniform.generate(&grid, 1e3, 9);
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(n);
        let weights = vec![1.0; n];
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(sp.split(black_box(&w), &weights, n as f64 / 2.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_phi, bench_by_m);
criterion_main!(benches);
