//! E7 (timing side): the Theorem 4 pipeline vs baselines on the climate
//! workload, iterated uniformly through the [`Partitioner`] interface.
//!
//! Timing semantics (changed with the API redesign): each iteration goes
//! through `Partitioner::partition`, which for splitter-driven rows
//! (ours, recursive bisection) includes per-call splitter construction —
//! the *one-shot* serving shape. Earlier records prebuilt the
//! GridSplitter outside the loop, so numbers are not directly comparable
//! across that boundary; the repeated-solve (amortized) shape is measured
//! separately by `decompose_scaling`'s `decompose/amortization` group.

use criterion::{criterion_group, criterion_main, Criterion};
use mmb_baselines::greedy::Lpt;
use mmb_baselines::multilevel::Multilevel;
use mmb_baselines::recursive_bisection::RecursiveBisection;
use mmb_core::api::{Instance, Partitioner, Theorem4Pipeline};
use mmb_instances::climate::{climate, ClimateParams};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let wl = climate(&ClimateParams {
        lon: 64,
        lat: 32,
        ..Default::default()
    });
    let inst = Instance::from_grid(wl.grid, wl.costs, wl.weights).expect("valid instance");
    let k = 16;

    let mut group = c.benchmark_group("climate_64x32_k16");
    group.sample_size(10);
    let algos: [(&str, &dyn Partitioner); 4] = [
        ("ours_theorem4", &Theorem4Pipeline::default()),
        ("greedy_lpt", &Lpt),
        ("recursive_bisection", &RecursiveBisection { kst: false }),
        ("multilevel", &Multilevel::default()),
    ];
    for (label, algo) in algos {
        group.bench_function(label, |b| {
            b.iter(|| black_box(algo.partition(black_box(&inst), k).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
