//! E7 (timing side): the Theorem 4 pipeline vs baselines on the climate
//! workload.

use criterion::{criterion_group, criterion_main, Criterion};
use mmb_baselines::greedy::lpt;
use mmb_baselines::multilevel::{multilevel, MultilevelParams};
use mmb_baselines::recursive_bisection::recursive_bisection;
use mmb_core::pipeline::{decompose, PipelineConfig};
use mmb_instances::climate::{climate, ClimateParams};
use mmb_splitters::grid::GridSplitter;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let wl = climate(&ClimateParams { lon: 64, lat: 32, ..Default::default() });
    let g = &wl.grid.graph;
    let n = g.num_vertices();
    let k = 16;
    let sp = GridSplitter::new(&wl.grid, &wl.costs);

    let mut group = c.benchmark_group("climate_64x32_k16");
    group.sample_size(10);
    group.bench_function("ours_theorem4", |b| {
        b.iter(|| {
            black_box(
                decompose(g, &wl.costs, &wl.weights, k, &sp, &[], &PipelineConfig::default())
                    .unwrap()
                    .max_boundary(),
            )
        })
    });
    group.bench_function("greedy_lpt", |b| {
        b.iter(|| black_box(lpt(n, k, &wl.weights)))
    });
    group.bench_function("recursive_bisection", |b| {
        b.iter(|| black_box(recursive_bisection(g, &sp, &wl.weights, k)))
    });
    group.bench_function("multilevel", |b| {
        b.iter(|| {
            black_box(multilevel(g, &wl.costs, &wl.weights, k, &MultilevelParams::default()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
