//! Splitter micro-benchmarks: the `t(|G[W]|)` primitive every theorem's
//! running time is measured in.

use criterion::{criterion_group, criterion_main, Criterion};
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::tree::complete_binary_tree;
use mmb_graph::VertexSet;
use mmb_splitters::bfs::BfsSplitter;
use mmb_splitters::grid::GridSplitter;
use mmb_splitters::separator::{SeparatorSplitter, TreeCentroidSeparator};
use mmb_splitters::tree::TreeSplitter;
use mmb_splitters::Splitter;
use std::hint::black_box;

fn bench_splitters(c: &mut Criterion) {
    let mut group = c.benchmark_group("splitters");

    let grid = GridGraph::lattice(&[64, 64]);
    let ng = grid.graph.num_vertices();
    let gcosts = vec![1.0; grid.graph.num_edges()];
    let gw = VertexSet::full(ng);
    let gweights = vec![1.0; ng];
    let gsp = GridSplitter::new(&grid, &gcosts);
    group.bench_function("grid_64x64", |b| {
        b.iter(|| black_box(gsp.split(black_box(&gw), &gweights, ng as f64 / 2.0)))
    });
    let bsp = BfsSplitter::new(&grid.graph);
    group.bench_function("bfs_64x64", |b| {
        b.iter(|| black_box(bsp.split(black_box(&gw), &gweights, ng as f64 / 2.0)))
    });

    let tree = complete_binary_tree(14); // 16383 vertices
    let nt = tree.num_vertices();
    let tcosts = vec![1.0; tree.num_edges()];
    let tw = VertexSet::full(nt);
    let tweights = vec![1.0; nt];
    let tsp = TreeSplitter::new(&tree);
    group.bench_function("tree_cbt14", |b| {
        b.iter(|| black_box(tsp.split(black_box(&tw), &tweights, nt as f64 / 2.0)))
    });
    let ssp = SeparatorSplitter::new(&tree, &tcosts, TreeCentroidSeparator::new(&tree), 2.0);
    group.bench_function("split_reduction_cbt14", |b| {
        b.iter(|| black_box(ssp.split(black_box(&tw), &tweights, nt as f64 / 2.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_splitters);
criterion_main!(benches);
