//! E6 (precise): Theorem 4 running time — near-linear in `|G|`,
//! multiplicative in `log k`.
//!
//! Benchmarks the serve path of the redesigned API: the [`Solver`] is
//! built once per configuration (splitter construction, `π`, `‖c‖_p` all
//! amortized) and `solve()` is what the iteration times — exactly the
//! repeated-solve workload the Solver exists for. A build+solve routine
//! is included for the one-shot comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmb_core::api::{Instance, Solver};
use mmb_graph::gen::grid::GridGraph;
use mmb_instances::weights::WeightFamily;
use std::hint::black_box;

fn instance(side: usize, seed: u64) -> Instance {
    let grid = GridGraph::lattice(&[side, side]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let weights = WeightFamily::Uniform.generate(n, seed);
    Instance::from_grid(grid, costs, weights).expect("valid instance")
}

fn bench_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose/by_n");
    group.sample_size(10);
    for side in [16usize, 32, 64] {
        let inst = instance(side, 3);
        let n = inst.num_vertices();
        let solver = Solver::for_instance(&inst).classes(16).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(black_box(&solver).solve().max_boundary))
        });
    }
    group.finish();
}

fn bench_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose/by_k");
    group.sample_size(10);
    let inst = instance(48, 5);
    for k in [2usize, 8, 32, 128] {
        let solver = Solver::for_instance(&inst).classes(k).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(black_box(&solver).solve().max_boundary))
        });
    }
    group.finish();
}

fn bench_build_vs_solve(c: &mut Criterion) {
    // The amortization claim itself: one-shot (build + solve) vs the
    // marginal cost of a solve on a prebuilt Solver.
    let mut group = c.benchmark_group("decompose/amortization");
    group.sample_size(10);
    let inst = instance(32, 7);
    group.bench_function("build_and_solve", |b| {
        b.iter(|| {
            let solver = Solver::for_instance(black_box(&inst)).classes(16).build().unwrap();
            black_box(solver.solve().max_boundary)
        })
    });
    let prebuilt = Solver::for_instance(&inst).classes(16).build().unwrap();
    group.bench_function("solve_prebuilt", |b| {
        b.iter(|| black_box(black_box(&prebuilt).solve().max_boundary))
    });
    group.finish();
}

criterion_group!(benches, bench_by_n, bench_by_k, bench_build_vs_solve);
criterion_main!(benches);
