//! E6 (precise): Theorem 4 running time — near-linear in `|G|`,
//! multiplicative in `log k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmb_core::pipeline::{decompose, PipelineConfig};
use mmb_graph::gen::grid::GridGraph;
use mmb_instances::weights::WeightFamily;
use mmb_splitters::grid::GridSplitter;
use std::hint::black_box;

fn bench_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose/by_n");
    group.sample_size(10);
    for side in [16usize, 32, 64] {
        let grid = GridGraph::lattice(&[side, side]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let weights = WeightFamily::Uniform.generate(n, 3);
        let sp = GridSplitter::new(&grid, &costs);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let d = decompose(
                    black_box(&grid.graph),
                    &costs,
                    &weights,
                    16,
                    &sp,
                    &[],
                    &PipelineConfig::default(),
                )
                .unwrap();
                black_box(d.max_boundary())
            })
        });
    }
    group.finish();
}

fn bench_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose/by_k");
    group.sample_size(10);
    let grid = GridGraph::lattice(&[48, 48]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let weights = WeightFamily::Uniform.generate(n, 5);
    let sp = GridSplitter::new(&grid, &costs);
    for k in [2usize, 8, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let d = decompose(
                    black_box(&grid.graph),
                    &costs,
                    &weights,
                    k,
                    &sp,
                    &[],
                    &PipelineConfig::default(),
                )
                .unwrap();
                black_box(d.max_boundary())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_n, bench_by_k);
criterion_main!(benches);
