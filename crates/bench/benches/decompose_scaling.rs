//! E6 (precise): Theorem 4 running time — near-linear in `|G|`,
//! multiplicative in `log k`.
//!
//! Benchmarks the serve path of the redesigned API: the [`Solver`] is
//! built once per configuration (splitter construction, `π`, `‖c‖_p` all
//! amortized) and `solve()` is what the iteration times — exactly the
//! repeated-solve workload the Solver exists for. A build+solve routine
//! is included for the one-shot comparison, and an old-vs-new group runs
//! the identical solve under both scratch policies (pre-overhaul
//! allocate-per-call reference vs the workspace hot path) plus the
//! `solve_many` batch shape at several thread counts. The committed
//! perf trajectory lives in `BENCH_6.json` (`reproduce bench`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmb_core::api::{solve_many, Instance, Solver};
use mmb_core::pipeline::{PipelineConfig, ScratchPolicy};
use mmb_graph::gen::grid::GridGraph;
use mmb_instances::weights::WeightFamily;
use std::hint::black_box;

fn instance(side: usize, seed: u64) -> Instance {
    let grid = GridGraph::lattice(&[side, side]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let weights = WeightFamily::Uniform.generate(n, seed);
    Instance::from_grid(grid, costs, weights).expect("valid instance")
}

fn bench_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose/by_n");
    group.sample_size(10);
    for side in [16usize, 32, 64] {
        let inst = instance(side, 3);
        let n = inst.num_vertices();
        let solver = Solver::for_instance(&inst).classes(16).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(black_box(&solver).solve().max_boundary))
        });
    }
    group.finish();
}

fn bench_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose/by_k");
    group.sample_size(10);
    let inst = instance(48, 5);
    for k in [2usize, 8, 32, 128] {
        let solver = Solver::for_instance(&inst).classes(k).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(black_box(&solver).solve().max_boundary))
        });
    }
    group.finish();
}

fn bench_build_vs_solve(c: &mut Criterion) {
    // The amortization claim itself: one-shot (build + solve) vs the
    // marginal cost of a solve on a prebuilt Solver.
    let mut group = c.benchmark_group("decompose/amortization");
    group.sample_size(10);
    let inst = instance(32, 7);
    group.bench_function("build_and_solve", |b| {
        b.iter(|| {
            let solver = Solver::for_instance(black_box(&inst))
                .classes(16)
                .build()
                .unwrap();
            black_box(solver.solve().max_boundary)
        })
    });
    let prebuilt = Solver::for_instance(&inst).classes(16).build().unwrap();
    group.bench_function("solve_prebuilt", |b| {
        b.iter(|| black_box(black_box(&prebuilt).solve().max_boundary))
    });
    group.finish();
}

fn bench_scratch_policies(c: &mut Criterion) {
    // Old vs new side by side: the same Solver/solve under the
    // pre-overhaul allocating reference and the workspace path. Uniform
    // weights keep the Proposition 11 recursion deep (the shrink-dominated
    // configuration `BENCH_6.json` tracks).
    let mut group = c.benchmark_group("decompose/scratch");
    group.sample_size(10);
    let grid = GridGraph::lattice(&[48, 48]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let inst = Instance::from_grid(grid, costs, vec![1.0; n]).expect("valid instance");
    for (label, scratch) in [
        ("alloc_legacy", ScratchPolicy::Transient),
        ("workspace", ScratchPolicy::Reuse),
    ] {
        let cfg = PipelineConfig {
            scratch,
            ..PipelineConfig::default()
        };
        let solver = Solver::for_instance(&inst)
            .classes(16)
            .config(cfg)
            .build()
            .unwrap();
        group.bench_function(label, |b| {
            b.iter(|| black_box(black_box(&solver).solve().max_boundary))
        });
    }
    group.finish();
}

fn bench_solve_many(c: &mut Criterion) {
    // The batch serve shape: one thread pool + per-worker workspace
    // amortized over a stream of instances.
    let mut group = c.benchmark_group("decompose/solve_many");
    group.sample_size(10);
    let instances: Vec<Instance> = [12usize, 16, 20, 24]
        .iter()
        .map(|&side| instance(side, side as u64))
        .collect();
    let cfg = PipelineConfig::default();
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                rayon::with_num_threads(t, || black_box(solve_many(&instances, 8, &cfg)).len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_by_n,
    bench_by_k,
    bench_build_vs_solve,
    bench_scratch_policies,
    bench_solve_many
);
criterion_main!(benches);
