//! Batch-entry-point semantics: `solve_many` / `solve_many_raw` return
//! one `Result` per instance, in input order, with per-item isolation —
//! one malformed or panicking request never poisons its batch.

use mmb_core::api::{solve_many, solve_many_raw, Instance, SolveError, Solver};
use mmb_core::failpoint::{with_faults, FaultAction, FaultSchedule};
use mmb_core::pipeline::PipelineConfig;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::misc::{cycle, path};
use mmb_graph::Graph;

fn instances() -> Vec<Instance> {
    let mut out = Vec::new();
    for g in [path(10), cycle(12), path(7)] {
        let m = g.num_edges();
        let n = g.num_vertices();
        out.push(Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap());
    }
    let grid = GridGraph::lattice(&[4, 4]);
    let (m, n) = (grid.graph.num_edges(), grid.graph.num_vertices());
    out.push(Instance::from_grid(grid, vec![1.0; m], vec![1.0; n]).unwrap());
    out
}

#[test]
fn solve_many_matches_single_solves_in_input_order() {
    let instances = instances();
    let cfg = PipelineConfig::default();
    let batch = solve_many(&instances, 2, &cfg);
    assert_eq!(batch.len(), instances.len());
    for (inst, slot) in instances.iter().zip(&batch) {
        let single = Solver::for_instance(inst)
            .classes(2)
            .config(cfg.clone())
            .build()
            .unwrap()
            .solve();
        let got = slot.as_ref().expect("healthy instance solves");
        assert_eq!(got.coloring, single.coloring, "batch must be bit-identical");
        assert!(got.is_strictly_balanced());
    }
}

/// Raw triples mixing valid and malformed requests: every slot gets its
/// own typed `Result`, valid neighbors are unaffected.
#[test]
fn solve_many_raw_isolates_malformed_instances() {
    let valid = |g: Graph| {
        let (m, n) = (g.num_edges(), g.num_vertices());
        (g, vec![1.0; m], vec![1.0; n])
    };
    let wrong_len = {
        let g = path(6);
        let n = g.num_vertices();
        (g, vec![1.0; 2], vec![1.0; n]) // costs length ≠ edge count
    };
    let nan_weight = {
        let g = path(5);
        let m = g.num_edges();
        let mut w = vec![1.0; 5];
        w[3] = f64::NAN;
        (g, vec![1.0; m], w)
    };
    let inputs = vec![valid(path(8)), wrong_len, valid(cycle(9)), nan_weight];
    let results = solve_many_raw(inputs, 2, &PipelineConfig::default());
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ref_ok_and_strict());
    assert!(results[2].is_ref_ok_and_strict());
    for bad in [&results[1], &results[3]] {
        let err = bad.as_ref().expect_err("malformed input must be typed");
        assert!(
            !matches!(err, SolveError::Panicked { .. }),
            "admission failures are validation errors, not caught panics: {err}"
        );
    }
}

/// Convenience assertion on a batch slot.
trait SlotExt {
    fn is_ref_ok_and_strict(&self) -> bool;
}
impl SlotExt for Result<mmb_core::api::Report, SolveError> {
    fn is_ref_ok_and_strict(&self) -> bool {
        self.as_ref().is_ok_and(|r| r.is_strictly_balanced())
    }
}

#[test]
fn a_panicking_item_is_caught_at_its_slot() {
    let instances = instances();
    // Run the batch inline on this thread so the armed schedule reaches
    // every item (the shim executes inline at one thread).
    let schedule = FaultSchedule::new().once("pipeline::multibalance", 0, FaultAction::Panic);
    let (results, log) = with_faults(&schedule, || {
        rayon::with_num_threads(1, || solve_many(&instances, 2, &PipelineConfig::default()))
    });
    assert_eq!(log.len(), 1, "exactly one fault fired");
    match &results[0] {
        Err(SolveError::Panicked { context, message }) => {
            assert_eq!(*context, "solve_many");
            assert!(message.contains("pipeline::multibalance"), "{message}");
        }
        other => panic!("item 0 should be a caught panic, got {other:?}"),
    }
    for slot in &results[1..] {
        assert!(slot.is_ref_ok_and_strict(), "siblings unaffected");
    }
}

#[test]
fn a_transient_item_fault_is_typed_at_its_slot() {
    let instances = instances();
    let schedule = FaultSchedule::new().once("batch::item", 1, FaultAction::Transient);
    let (results, _) = with_faults(&schedule, || {
        rayon::with_num_threads(1, || solve_many(&instances, 2, &PipelineConfig::default()))
    });
    assert!(matches!(
        results[1],
        Err(SolveError::Transient {
            site: "batch::item"
        })
    ));
    for (i, slot) in results.iter().enumerate() {
        if i != 1 {
            assert!(slot.is_ref_ok_and_strict(), "slot {i}");
        }
    }
}
