//! Degradation-ladder behavior of [`ResilientSolver`]: rung fall-through
//! under rigged panics, bounded transient retries, deadline skipping, and
//! the [`Resilience`] record naming every failure truthfully.
//!
//! Faults are injected only through the deterministic
//! [`mmb_core::failpoint`] framework or through deliberately rigged
//! custom rungs — no randomness, every failure replays.

use std::time::Duration;

use mmb_core::api::{Instance, Partitioner, SolveError};
use mmb_core::bnb::BnbConfig;
use mmb_core::failpoint::{with_faults, FaultAction, FaultSchedule};
use mmb_core::resilient::{DeadlineBudget, ResilientSolver, RetryPolicy, RungOutcome, SkipReason};
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::misc::path;
use mmb_graph::Coloring;

fn lattice_instance(dims: &[usize]) -> Instance {
    let grid = GridGraph::lattice(dims);
    let m = grid.graph.num_edges();
    let n = grid.graph.num_vertices();
    Instance::from_grid(grid, vec![1.0; m], vec![1.0; n]).unwrap()
}

fn path_instance(n: usize) -> Instance {
    let g = path(n);
    let m = g.num_edges();
    Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap()
}

/// A small bnb budget so certified rungs stay fast under test.
fn quick_bnb() -> BnbConfig {
    BnbConfig::with_node_budget(2_000)
}

#[test]
fn healthy_solve_serves_the_certified_rung() {
    let inst = lattice_instance(&[6, 6]);
    let solver = ResilientSolver::for_instance(&inst)
        .classes(4)
        .bnb(quick_bnb())
        .build()
        .unwrap();
    let report = solver.solve();
    assert!(report.is_strictly_balanced());
    let res = report.resilience.as_ref().expect("record always attached");
    assert_eq!(res.served_by, "certified");
    assert_eq!(res.served_index, 0);
    assert!(!res.degraded, "first enabled rung served: not degraded");
    assert_eq!(res.faults_observed, 0);
    assert_eq!(res.attempts.len(), 1);
    assert_eq!(res.attempts[0].outcome, RungOutcome::Served);
    // The certified rung brings its own gap.
    assert!(report.certified.is_some());
}

#[test]
fn disabling_the_certified_rung_serves_the_pipeline() {
    let inst = lattice_instance(&[6, 6]);
    let solver = ResilientSolver::for_instance(&inst)
        .classes(4)
        .certified(false)
        .build()
        .unwrap();
    let report = solver.solve();
    let res = report.resilience.as_ref().unwrap();
    assert_eq!(res.served_by, "pipeline");
    assert!(!res.degraded, "a disabled skip is not degradation");
    assert_eq!(
        res.attempt_for("certified").unwrap().outcome,
        RungOutcome::Skipped(SkipReason::Disabled)
    );
    // Lower rungs still get a certified gap from the static stack.
    assert!(report.certified.is_some());
}

#[test]
fn splitter_panics_degrade_to_first_fit_and_are_named() {
    let inst = lattice_instance(&[6, 6]);
    let solver = ResilientSolver::for_instance(&inst)
        .classes(4)
        .bnb(quick_bnb())
        .retry(RetryPolicy::none())
        .build()
        .unwrap();
    let schedule = FaultSchedule::new().always("splitter::split", FaultAction::Panic);
    let (report, log) = with_faults(&schedule, || solver.solve());
    assert!(report.is_strictly_balanced());
    let res = report.resilience.as_ref().unwrap();
    assert_eq!(res.served_by, "first-fit");
    assert!(res.degraded);
    assert!(!log.is_empty());
    assert_eq!(res.faults_observed, log.len() as u64);
    // Both solver rungs are recorded as panicked, naming the failpoint.
    for rung in ["certified", "pipeline"] {
        match &res.attempt_for(rung).unwrap().outcome {
            RungOutcome::Panicked(msg) => {
                assert!(msg.contains("splitter::split"), "{rung}: {msg}")
            }
            other => panic!("{rung}: expected Panicked, got {other:?}"),
        }
    }
    // Monotone degradation: served cost never exceeds the floor's.
    assert!(report.max_boundary <= res.floor_cost * (1.0 + 1e-9));
}

#[test]
fn workspace_survives_unwinds_and_later_solves_are_bit_identical() {
    let inst = lattice_instance(&[6, 6]);
    let solver = ResilientSolver::for_instance(&inst)
        .classes(4)
        .bnb(quick_bnb())
        .retry(RetryPolicy::none())
        .build()
        .unwrap();
    // A never-faulted reference solve.
    let reference = solver.solve();
    assert_eq!(
        reference.resilience.as_ref().unwrap().served_by,
        "certified"
    );
    // Panic through every solver rung (pooled workspace buffers are in
    // use when the unwind happens)…
    let schedule = FaultSchedule::new().always("splitter::split", FaultAction::Panic);
    let (faulted, _) = with_faults(&schedule, || solver.solve());
    assert_eq!(faulted.resilience.as_ref().unwrap().served_by, "first-fit");
    // …then solve cleanly on the same thread: the pool must be unpoisoned
    // (no panic, no stale scratch state) and the result bit-identical to
    // the never-faulted run.
    let after = solver.solve();
    assert_eq!(after.resilience.as_ref().unwrap().served_by, "certified");
    assert_eq!(after.coloring, reference.coloring);
    assert_eq!(after.max_boundary, reference.max_boundary);
}

/// A custom rung rigged to panic — the "buggy plugin" scenario.
struct PanickyRung;
impl Partitioner for PanickyRung {
    fn name(&self) -> &str {
        "panicky"
    }
    fn partition(&self, _inst: &Instance, _k: usize) -> Result<Coloring, SolveError> {
        panic!("rigged rung blew up");
    }
}

/// A custom rung that serves contiguous blocks — valid on unit-weight
/// paths where `k` divides `n`.
struct BlockRung;
impl Partitioner for BlockRung {
    fn name(&self) -> &str {
        "blocks"
    }
    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        let n = inst.num_vertices();
        let per = n.div_ceil(k);
        Ok(Coloring::from_fn(n, k, |v| (v as usize / per) as u32))
    }
}

#[test]
fn panicking_custom_rung_falls_through_and_the_record_names_it() {
    let inst = path_instance(12);
    let solver = ResilientSolver::for_instance(&inst)
        .classes(2)
        .certified(false)
        .retry(RetryPolicy::none())
        .rung("panicky", Box::new(PanickyRung))
        .rung("blocks", Box::new(BlockRung))
        .build()
        .unwrap();
    // Panic the pipeline rung so the ladder reaches the custom rungs.
    let schedule = FaultSchedule::new().always("pipeline::multibalance", FaultAction::Panic);
    let (report, _) = with_faults(&schedule, || solver.solve());
    assert!(report.is_strictly_balanced());
    let res = report.resilience.as_ref().unwrap();
    match &res.attempt_for("panicky").unwrap().outcome {
        RungOutcome::Panicked(msg) => assert!(msg.contains("rigged rung blew up"), "{msg}"),
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The next custom rung serves (contiguous halves of a unit path are
    // strictly balanced and at least as cheap as the floor).
    assert_eq!(res.served_by, "blocks");
    assert_eq!(res.served_index, 3);
    assert!(res.degraded);
    assert_eq!(report.splitter, "blocks");
}

/// A custom rung that returns a grossly unbalanced coloring — must be
/// *rejected*, never served.
struct LopsidedRung;
impl Partitioner for LopsidedRung {
    fn name(&self) -> &str {
        "lopsided"
    }
    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        Ok(Coloring::from_fn(inst.num_vertices(), k, |_| 0))
    }
}

#[test]
fn invalid_rung_output_is_rejected_not_served() {
    let inst = path_instance(12);
    let solver = ResilientSolver::for_instance(&inst)
        .classes(2)
        .certified(false)
        .retry(RetryPolicy::none())
        .rung("lopsided", Box::new(LopsidedRung))
        .build()
        .unwrap();
    let schedule = FaultSchedule::new().always("pipeline::multibalance", FaultAction::Panic);
    let (report, _) = with_faults(&schedule, || solver.solve());
    let res = report.resilience.as_ref().unwrap();
    assert!(matches!(
        res.attempt_for("lopsided").unwrap().outcome,
        RungOutcome::Rejected(_)
    ));
    assert_eq!(res.served_by, "first-fit");
    assert!(report.is_strictly_balanced());
}

#[test]
fn transient_faults_are_retried_and_recover() {
    let inst = lattice_instance(&[5, 5]);
    let solver = ResilientSolver::for_instance(&inst)
        .classes(3)
        .bnb(quick_bnb())
        .retry(RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(100),
        })
        .build()
        .unwrap();
    // Fire exactly once, on the first pipeline entry; the retry passes.
    let schedule = FaultSchedule::new().once("pipeline::multibalance", 0, FaultAction::Transient);
    let (report, log) = with_faults(&schedule, || solver.solve());
    let res = report.resilience.as_ref().unwrap();
    assert_eq!(res.served_by, "certified");
    assert_eq!(res.attempts[0].tries, 2, "one transient, one clean try");
    assert!(!res.degraded, "a recovered rung is not degradation");
    assert_eq!(log.len(), 1);
}

#[test]
fn exhausted_retries_fall_through_with_the_try_count_recorded() {
    let inst = lattice_instance(&[5, 5]);
    let solver = ResilientSolver::for_instance(&inst)
        .classes(3)
        .bnb(quick_bnb())
        .retry(RetryPolicy {
            max_retries: 1,
            backoff: Duration::from_micros(100),
        })
        .build()
        .unwrap();
    let schedule = FaultSchedule::new().always("pipeline::multibalance", FaultAction::Transient);
    let (report, _) = with_faults(&schedule, || solver.solve());
    let res = report.resilience.as_ref().unwrap();
    assert_eq!(res.served_by, "first-fit");
    for rung in ["certified", "pipeline"] {
        let attempt = res.attempt_for(rung).unwrap();
        assert_eq!(attempt.tries, 2, "{rung}: initial try + 1 retry");
        assert!(
            matches!(attempt.outcome, RungOutcome::Panicked(_)),
            "{rung}: transient through infallible code surfaces as a caught unwind"
        );
    }
}

#[test]
fn zero_budget_serves_the_trivial_floor_within_the_overshoot_allowance() {
    let inst = lattice_instance(&[6, 6]);
    let solver = ResilientSolver::for_instance(&inst)
        .classes(4)
        .budget(DeadlineBudget::with_total(Duration::ZERO))
        .build()
        .unwrap();
    let report = solver.solve();
    assert!(report.is_strictly_balanced());
    let res = report.resilience.as_ref().unwrap();
    assert_eq!(res.served_by, "trivial");
    assert_eq!(report.max_boundary, res.floor_cost);
    // Every rung above the floor was skipped for the deadline, not run.
    for rung in ["certified", "pipeline", "first-fit"] {
        assert_eq!(
            res.attempt_for(rung).unwrap().outcome,
            RungOutcome::Skipped(SkipReason::DeadlineExhausted),
            "{rung}"
        );
    }
    // The floor is pure arithmetic: an exhausted deadline still returns
    // promptly (generous CI allowance).
    assert!(
        !res.overshot_by_more_than(250.0),
        "{:?}",
        res.elapsed_millis
    );
    assert!(report.certified.is_some(), "even the floor carries a gap");
}

#[test]
fn solve_is_total_under_a_panicking_ladder_and_a_zero_deadline_combined() {
    let inst = path_instance(16);
    let solver = ResilientSolver::for_instance(&inst)
        .classes(4)
        .budget(DeadlineBudget::with_total(Duration::ZERO))
        .rung("panicky", Box::new(PanickyRung))
        .build()
        .unwrap();
    let schedule = FaultSchedule::new()
        .always("splitter::split", FaultAction::Panic)
        .always("pipeline::multibalance", FaultAction::Panic)
        .always("bnb::solve", FaultAction::Panic);
    let (report, _) = with_faults(&schedule, || solver.solve());
    assert!(report.coloring.is_total());
    assert!(report.is_strictly_balanced());
    assert_eq!(report.resilience.as_ref().unwrap().served_by, "trivial");
}
