//! The core algorithms are splitter-generic: every stage must deliver its
//! contract when driven by a *different* splitter family than the grid one
//! used in the module unit tests. This suite runs the machinery over
//! forests (TreeSplitter), the Lemma-37 reduction, and mixed subsets.

use mmb_core::conquer::binpack1;
use mmb_core::multibalance::{heavy_factor, multibalance, multibalance_minmax};
use mmb_core::rebalance::rebalance;
use mmb_core::shrink::{extract_lean, extract_rich, iterative_partition, ShrinkParams};
use mmb_core::two_color::two_color;
use mmb_graph::gen::tree::{complete_binary_tree, random_tree};
use mmb_graph::measure::{norm_1, norm_inf, set_sum};
use mmb_graph::{Coloring, VertexSet};
use mmb_splitters::separator::{SeparatorSplitter, TreeCentroidSeparator};
use mmb_splitters::tree::TreeSplitter;

#[test]
fn heavy_factor_matches_paper() {
    assert_eq!(heavy_factor(1), 2.0);
    assert_eq!(heavy_factor(3), 8.0);
    // Capped to keep thresholds meaningful.
    assert_eq!(heavy_factor(40), heavy_factor(16));
}

#[test]
fn two_color_on_trees() {
    let g = complete_binary_tree(8); // 255 vertices
    let n = g.num_vertices();
    let sp = TreeSplitter::new(&g);
    let w = VertexSet::full(n);
    let m1: Vec<f64> = (0..n).map(|v| 1.0 + (v % 2) as f64).collect();
    let m2: Vec<f64> = (0..n).map(|v| if v < 10 { 20.0 } else { 0.5 }).collect();
    let chi = two_color(&sp, &w, &[&m1, &m2]);
    assert!(chi.class1.is_disjoint(&chi.class2));
    assert_eq!(chi.class1.union(&chi.class2), w);
    // Lemma 8 guarantee for the first measure: ½(total + 2^{r−1}·max).
    let bound = 0.5 * (norm_1(&m1) + 2.0 * norm_inf(&m1));
    let (c1, c2) = chi.class_measures(&m1);
    assert!(c1 <= bound + 1e-9 && c2 <= bound + 1e-9);
}

#[test]
fn rebalance_on_trees_with_two_measures() {
    let g = random_tree(300, 3, 17);
    let n = g.num_vertices();
    let sp = TreeSplitter::new(&g);
    let domain = VertexSet::full(n);
    let k = 6;
    let chi = Coloring::monochromatic(n, k);
    let psi: Vec<f64> = (0..n).map(|v| 1.0 + (v % 5) as f64).collect();
    let phi: Vec<f64> = (0..n).map(|v| ((v * 13) % 7) as f64).collect();
    let (out, stats) = rebalance(&sp, &chi, &domain, &[&psi, &phi], 4.0, None);
    assert!(out.is_total());
    assert!(stats.moves >= 1);
    let avg = norm_1(&psi) / k as f64;
    let cm = out.class_measures(&psi);
    for &c in &cm {
        assert!(c < 3.0 * avg + 4.0 * norm_inf(&psi) + 1e-9);
    }
    // Forest depth obeys Claim 5: ≤ log₂(initial max class / avg) + O(1);
    // here the monochromatic start gives ≤ log₂ k + 1.
    assert!(stats.forest_depth as usize <= (k.ilog2() + 2) as usize);
}

#[test]
fn multibalance_via_split_reduction() {
    // Drive Lemma 6 through the Lemma-37 reduction instead of a native
    // splitter — the composition the paper's framework promises.
    let g = complete_binary_tree(9); // 511 vertices
    let n = g.num_vertices();
    let costs: Vec<f64> = (0..g.num_edges()).map(|e| 1.0 + (e % 2) as f64).collect();
    let sp = SeparatorSplitter::new(&g, &costs, TreeCentroidSeparator::new(&g), 2.0);
    let domain = VertexSet::full(n);
    let k = 5;
    let m: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
    let chi = multibalance(&sp, k, &domain, &[&m]);
    assert!(chi.is_total());
    let avg = norm_1(&m) / k as f64;
    assert!(norm_inf(&chi.class_measures(&m)) <= 3.0 * avg + 2.0 * norm_inf(&m) + 1e-9);
}

#[test]
fn minmax_prop7_on_trees() {
    let g = random_tree(400, 3, 23);
    let n = g.num_vertices();
    let costs: Vec<f64> = (0..g.num_edges()).map(|e| 0.5 + (e % 4) as f64).collect();
    let sp = TreeSplitter::new(&g);
    let domain = VertexSet::full(n);
    let w = vec![1.0; n];
    let out = multibalance_minmax(&g, &costs, &sp, 8, &domain, &[&w], 2.0);
    assert!(out.coloring.is_total());
    // Boundary should not be concentrated on one class.
    let bc = out.coloring.boundary_costs(&g, &costs);
    let bmax = norm_inf(&bc);
    let bavg = norm_1(&bc) / 8.0;
    assert!(bmax <= 8.0 * bavg + 1e-9, "max {bmax} vs avg {bavg}");
}

#[test]
fn shrink_primitives_on_trees() {
    let g = complete_binary_tree(8);
    let n = g.num_vertices();
    let sp = TreeSplitter::new(&g);
    let u = VertexSet::full(n);
    let psi = vec![1.0; n];
    // iterative_partition covers U disjointly.
    let parts = iterative_partition(&sp, &u, &psi, 40.0);
    let mut seen = VertexSet::empty(n);
    for p in &parts {
        assert!(p.is_disjoint(&seen));
        seen.union_with(p);
    }
    assert_eq!(seen, u);
    // extract_lean avoids a hot protected measure.
    let hot: Vec<f64> = (0..n).map(|v| if v < 8 { 50.0 } else { 0.0 }).collect();
    let protected: [&[f64]; 1] = [&hot];
    let lean = extract_lean(&sp, &u, &psi, &protected, 30.0);
    assert!(set_sum(&hot, &lean) <= 0.5 * set_sum(&hot, &u));
    // extract_rich grabs its share of the hot measure.
    let rich = extract_rich(&sp, &u, &psi, &protected, 0.3);
    assert!(set_sum(&hot, &rich) >= 0.3 / 3.0 * set_sum(&hot, &u) - 1e-9);
}

#[test]
fn binpack1_with_tree_splitter() {
    let g = random_tree(200, 3, 31);
    let n = g.num_vertices();
    let costs = vec![1.0; g.num_edges()];
    let sp = TreeSplitter::new(&g);
    let w0 = VertexSet::full(n);
    let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 4) as f64).collect();
    let k = 4;
    // Very skewed start.
    let chi0 = Coloring::from_fn(n, k, |v| if v < 150 { 0 } else { 1 + v % 3 });
    let w1 = vec![0.0; k];
    let wmax = norm_inf(&weights);
    let out = binpack1(&g, &costs, &sp, &chi0, &w0, &weights, &w1, wmax);
    assert!(out.is_total_on(&w0));
    let cm = out.class_measures(&weights);
    let avg = norm_1(&weights) / k as f64;
    for (i, &c) in cm.iter().enumerate() {
        assert!(
            (c - avg).abs() <= 2.0 * wmax + 1e-9,
            "class {i} = {c} not almost strict around {avg}"
        );
    }
}

#[test]
fn shrink_params_default_sane() {
    let p = ShrinkParams::default();
    assert!(p.epsilon > 0.0 && p.epsilon < 1.0);
    assert!(p.weak_factor >= 4.0);
    assert!(p.max_depth >= 64);
}
