//! Chaos differential suite: seeded fault schedules × a small corpus,
//! asserting the resilient harness's public contract under injected
//! panics, transients and stalls:
//!
//! 1. no panic ever crosses the public API;
//! 2. every response is a valid strictly balanced coloring (resilient
//!    path) or a typed error (batch path) — never garbage;
//! 3. degradation is monotone: the served cost never exceeds the trivial
//!    floor rung's;
//! 4. deadline overshoot stays bounded even while sites stall;
//! 5. the outcome replays bit-identically from the seed (stall-free
//!    wall-clock effects excluded by construction: no time budgets).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use mmb_core::api::{solve_many, Instance, SolveError};
use mmb_core::bnb::BnbConfig;
use mmb_core::failpoint::{with_faults, FaultSchedule};
use mmb_core::pipeline::PipelineConfig;
use mmb_core::resilient::{DeadlineBudget, ResilientSolver, RungOutcome};
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::misc::{cycle, path, star};

/// The CI seeds; `reproduce chaos` sweeps the same set.
const SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 0xc0ffee];

fn corpus() -> Vec<(Instance, usize)> {
    let mut out = Vec::new();
    for (g, k) in [(path(12), 2), (cycle(10), 2), (star(9), 3)] {
        let m = g.num_edges();
        let n = g.num_vertices();
        out.push((Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap(), k));
    }
    let grid = GridGraph::lattice(&[4, 4]);
    let (m, n) = (grid.graph.num_edges(), grid.graph.num_vertices());
    out.push((
        Instance::from_grid(grid, vec![1.0; m], vec![1.0; n]).unwrap(),
        3,
    ));
    out
}

/// One resilient solve under `schedule`; returns what the record and the
/// suite's invariants need.
fn chaos_solve(
    inst: &Instance,
    k: usize,
    schedule: &FaultSchedule,
) -> (mmb_core::api::Report, usize) {
    let solver = ResilientSolver::for_instance(inst)
        .classes(k)
        .bnb(BnbConfig::with_node_budget(2_000))
        .build()
        .unwrap();
    let (outcome, log) = with_faults(schedule, || {
        catch_unwind(AssertUnwindSafe(|| solver.solve()))
    });
    let report = outcome.expect("invariant 1: no panic crosses ResilientSolver::solve");
    (report, log.len())
}

#[test]
fn chaos_resilient_solves_hold_every_invariant() {
    for seed in SEEDS {
        let schedule = FaultSchedule::chaos(seed);
        for (inst, k) in &corpus() {
            let (report, injected) = chaos_solve(inst, *k, &schedule);
            // Invariant 2: a valid strictly balanced coloring, always.
            assert!(report.coloring.is_total(), "seed {seed}");
            assert!(report.is_strictly_balanced(), "seed {seed}");
            let res = report.resilience.as_ref().expect("record attached");
            // Invariant 3: monotone degradation against the floor.
            assert!(
                report.max_boundary <= res.floor_cost * (1.0 + 1e-9),
                "seed {seed}: served {} > floor {}",
                report.max_boundary,
                res.floor_cost
            );
            // The record accounts for itself: the final attempt served,
            // every earlier one explains why it did not.
            let last = res.attempts.last().unwrap();
            assert_eq!(last.outcome, RungOutcome::Served, "seed {seed}");
            assert_eq!(last.rung, res.served_by, "seed {seed}");
            for earlier in &res.attempts[..res.attempts.len() - 1] {
                assert_ne!(earlier.outcome, RungOutcome::Served, "seed {seed}");
            }
            assert_eq!(res.faults_observed, injected as u64, "seed {seed}");
            // A certified gap rides along no matter which rung served.
            assert!(report.certified.is_some(), "seed {seed}");
        }
    }
}

#[test]
fn chaos_outcomes_replay_bit_identically_from_their_seed() {
    // No time budgets anywhere in this test: truncation is node-count
    // driven, so wall-clock noise (stall sleeps, CI jitter) cannot leak
    // into outcomes — only into the `millis` telemetry, which is
    // deliberately excluded from the comparison.
    for seed in SEEDS {
        let schedule = FaultSchedule::chaos(seed);
        for (inst, k) in &corpus() {
            let (a, _) = chaos_solve(inst, *k, &schedule);
            let (b, _) = chaos_solve(inst, *k, &schedule);
            assert_eq!(a.coloring, b.coloring, "seed {seed}");
            assert_eq!(a.max_boundary, b.max_boundary, "seed {seed}");
            let (ra, rb) = (a.resilience.unwrap(), b.resilience.unwrap());
            assert_eq!(ra.served_by, rb.served_by, "seed {seed}");
            assert_eq!(ra.faults_observed, rb.faults_observed, "seed {seed}");
            let outcomes = |r: &mmb_core::resilient::Resilience| {
                r.attempts
                    .iter()
                    .map(|at| (at.rung.clone(), at.tries, format!("{:?}", at.outcome)))
                    .collect::<Vec<_>>()
            };
            assert_eq!(outcomes(&ra), outcomes(&rb), "seed {seed}");
        }
    }
}

#[test]
fn chaos_deadline_overshoot_stays_bounded_while_sites_stall() {
    // Chaos schedules include stalls; a deadline-budgeted solve must
    // still come back near its budget. The allowance is generous (CI
    // machines wheeze) but a harness that ignores the budget — e.g. runs
    // the full certified search anyway — would blow it.
    let budget = Duration::from_millis(100);
    for seed in SEEDS {
        let schedule = FaultSchedule::chaos(seed);
        for (inst, k) in &corpus() {
            let solver = ResilientSolver::for_instance(inst)
                .classes(*k)
                .budget(DeadlineBudget::with_total(budget))
                .build()
                .unwrap();
            let (outcome, _) = with_faults(&schedule, || {
                catch_unwind(AssertUnwindSafe(|| solver.solve()))
            });
            let report = outcome.expect("no panic escapes under a deadline either");
            assert!(report.is_strictly_balanced(), "seed {seed}");
            let res = report.resilience.unwrap();
            assert!(
                !res.overshot_by_more_than(2_000.0),
                "seed {seed}: elapsed {} ms against a {} ms budget",
                res.elapsed_millis,
                budget.as_millis()
            );
        }
    }
}

#[test]
fn chaos_batches_return_typed_results_per_slot() {
    let instances: Vec<Instance> = corpus().into_iter().map(|(inst, _)| inst).collect();
    for seed in SEEDS {
        let schedule = FaultSchedule::chaos(seed);
        // Inline execution so the armed schedule reaches every item.
        let (outcome, _) = with_faults(&schedule, || {
            catch_unwind(AssertUnwindSafe(|| {
                rayon::with_num_threads(1, || solve_many(&instances, 2, &PipelineConfig::default()))
            }))
        });
        let results = outcome.expect("invariant 1: no panic crosses solve_many");
        assert_eq!(results.len(), instances.len());
        for (slot, inst) in results.iter().zip(&instances) {
            match slot {
                // Invariant 2, batch flavor: valid output or typed error.
                Ok(report) => {
                    assert!(report.coloring.is_total(), "seed {seed}");
                    assert!(report.is_strictly_balanced(), "seed {seed}");
                    assert_eq!(
                        report.coloring.num_vertices(),
                        inst.num_vertices(),
                        "seed {seed}"
                    );
                }
                Err(SolveError::Transient { .. } | SolveError::Panicked { .. }) => {}
                Err(other) => panic!("seed {seed}: unexpected error class {other:?}"),
            }
        }
    }
}
