//! Deadline granularity of the branch-and-bound anytime contract: the
//! interrupt clock polls the very first node, the poll stride is
//! configurable, and wall-clock overshoot past an expired deadline stays
//! bounded by one stride of node expansions.

use std::time::{Duration, Instant};

use mmb_core::api::Instance;
use mmb_core::bnb::{self, BnbConfig, DEFAULT_DEADLINE_POLL_STRIDE};
use mmb_graph::gen::grid::GridGraph;

fn lattice_instance(dims: &[usize]) -> Instance {
    let grid = GridGraph::lattice(dims);
    let m = grid.graph.num_edges();
    let n = grid.graph.num_vertices();
    Instance::from_grid(grid, vec![1.0; m], vec![1.0; n]).unwrap()
}

#[test]
fn default_config_carries_the_documented_stride() {
    assert_eq!(
        BnbConfig::default().deadline_poll_stride,
        DEFAULT_DEADLINE_POLL_STRIDE
    );
    let cfg = BnbConfig::with_time_budget(Duration::from_millis(5), 64);
    assert_eq!(cfg.deadline_poll_stride, 64);
    assert_eq!(cfg.time_budget, Some(Duration::from_millis(5)));
}

#[test]
fn pre_expired_deadline_stops_at_the_first_node_for_any_stride() {
    let inst = lattice_instance(&[5, 4]);
    // Node 0 satisfies every stride (`0 % s == 0`), so a deadline that is
    // already expired must stop the search before a single expansion —
    // even with the coarsest possible stride.
    let mut solutions = Vec::new();
    for stride in [1, DEFAULT_DEADLINE_POLL_STRIDE, u64::MAX] {
        let cfg = BnbConfig::with_time_budget(Duration::ZERO, stride);
        let sol = bnb::solve(&inst, 4, &cfg).unwrap();
        assert_eq!(sol.nodes, 0, "stride {stride}: no node may be expanded");
        assert!(
            !sol.proven_optimal,
            "stride {stride}: a truncated run must not claim optimality"
        );
        assert!(
            sol.coloring.is_total(),
            "anytime: the seed incumbent serves"
        );
        solutions.push(sol);
    }
    // Truncation at node 0 is stride-independent: identical incumbents.
    assert!(solutions.windows(2).all(|w| w[0].coloring == w[1].coloring));
}

#[test]
fn fine_stride_keeps_deadline_overshoot_bounded() {
    // 5×4 lattice at k = 4: the full search space is far beyond what a
    // few milliseconds can exhaust, so the deadline must actually bite.
    let inst = lattice_instance(&[5, 4]);
    let budget = Duration::from_millis(5);
    let t0 = Instant::now();
    let sol = bnb::solve(&inst, 4, &BnbConfig::with_time_budget(budget, 1)).unwrap();
    let elapsed = t0.elapsed();
    assert!(!sol.proven_optimal, "5 ms cannot exhaust this search");
    assert!(sol.nodes > 0, "the deadline was not pre-expired");
    assert!(sol.coloring.is_total());
    // Stride 1 polls every node: overshoot is one node expansion plus
    // noise. The allowance is generous for CI, but a stride bug that
    // skips polling would run this search for minutes and trip it.
    assert!(
        elapsed < budget + Duration::from_millis(1500),
        "overshoot: {elapsed:?} against a {budget:?} budget"
    );
}

#[test]
fn node_budget_truncation_is_deterministic_for_any_stride() {
    // The node budget (not wall clock) truncates; the stride must not
    // perturb which prefix of the search tree is visited.
    let inst = lattice_instance(&[4, 4]);
    let mut runs = Vec::new();
    for stride in [1, 7, DEFAULT_DEADLINE_POLL_STRIDE] {
        let cfg = BnbConfig {
            node_budget: Some(500),
            time_budget: None,
            deadline_poll_stride: stride,
        };
        runs.push(bnb::solve(&inst, 3, &cfg).unwrap());
    }
    assert!(runs
        .windows(2)
        .all(|w| w[0].coloring == w[1].coloring && w[0].nodes == w[1].nodes));
}
