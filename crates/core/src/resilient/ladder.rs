//! The rungs of the degradation ladder and the validation gate every
//! rung's output must pass before it is served.
//!
//! The two bottom rungs are implemented *here*, self-contained, rather
//! than borrowed from `mmb-baselines`: that crate depends on `mmb-core`,
//! so the ladder's floor cannot live there without a dependency cycle —
//! and the floor must be dependency-free anyway, because it is the code
//! path that still has to work when everything richer has failed. Both
//! greedies assign each vertex to the currently lightest class, which
//! yields strict balance (eq. (1)) *in any insertion order*: when the
//! heaviest-loaded class received its last vertex it was the lightest, so
//! `max − min ≤ ‖w‖_∞`, and averaging gives
//! `max − avg ≤ (1 − 1/k)·(max − min) ≤ (1 − 1/k)·‖w‖_∞`.

use mmb_graph::Coloring;

use crate::api::instance::Instance;
use crate::resilient::record::RejectReason;

/// The names of the built-in rungs, in ladder order.
pub(crate) const RUNG_CERTIFIED: &str = "certified";
pub(crate) const RUNG_PIPELINE: &str = "pipeline";
pub(crate) const RUNG_FIRST_FIT: &str = "first-fit";
pub(crate) const RUNG_TRIVIAL: &str = "trivial";

/// Greedy-lightest in a caller-chosen vertex order. Strictly balanced in
/// any order (see the module docs); first-wins tie-break by class index
/// via `total_cmp`, so the result is deterministic bit for bit.
fn greedy_lightest(inst: &Instance, k: usize, order: &[u32]) -> Coloring {
    let weights = inst.weights();
    let mut loads = vec![0.0f64; k];
    let mut chi = Coloring::new_uncolored(inst.num_vertices(), k);
    for &v in order {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(c, _)| c)
            .unwrap_or(0);
        loads[lightest] += weights[v as usize];
        chi.set(v, lightest as u32);
    }
    chi
}

/// The trivial floor rung: LPT (longest-processing-time) greedy —
/// vertices in descending weight order, each into the lightest class.
/// Pure arithmetic over validated inputs, no splitter, no workspace, no
/// recursion: panic-free by construction, and the quality floor every
/// higher rung is validated against.
pub(crate) fn lpt_coloring(inst: &Instance, k: usize) -> Coloring {
    let weights = inst.weights();
    let mut order: Vec<u32> = (0..inst.num_vertices() as u32).collect();
    order.sort_by(|&a, &b| {
        weights[b as usize]
            .total_cmp(&weights[a as usize])
            .then(a.cmp(&b))
    });
    greedy_lightest(inst, k, &order)
}

/// The cheap strict baseline rung: first-fit greedy in vertex-id order.
/// Same balance guarantee as LPT; id order preserves whatever locality
/// the instance's vertex numbering carries (row-major grids, path walks),
/// so its boundary cost is usually far below the weight-sorted LPT's.
pub(crate) fn first_fit_coloring(inst: &Instance, k: usize) -> Coloring {
    let order: Vec<u32> = (0..inst.num_vertices() as u32).collect();
    greedy_lightest(inst, k, &order)
}

/// The validation gate: a rung's coloring is servable iff it is total,
/// strictly balanced, and no worse than the floor rung's cost (monotone
/// degradation — a rung must never serve worse than the rung below it).
/// Returns the coloring's max boundary cost on success.
pub(crate) fn validate(
    inst: &Instance,
    chi: &Coloring,
    floor_cost: f64,
) -> Result<f64, RejectReason> {
    if !chi.is_total() {
        return Err(RejectReason::NotTotal);
    }
    let weights = inst.weights();
    if !chi.is_strictly_balanced(weights) {
        return Err(RejectReason::NotStrict {
            defect: chi.strict_balance_defect(weights),
        });
    }
    let cost = chi.max_boundary_cost(inst.graph(), inst.costs());
    // Scale-invariant tolerance, same shape as the strict-balance check.
    let tol = 1e-9 * floor_cost.max(1e-300);
    if cost > floor_cost + tol {
        return Err(RejectReason::WorseThanFloor {
            cost,
            floor: floor_cost,
        });
    }
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::misc::path;

    fn inst_with_weights(n: usize, weights: Vec<f64>) -> Instance {
        let g = path(n);
        let m = g.num_edges();
        Instance::new(g, vec![1.0; m], weights).unwrap()
    }

    #[test]
    fn both_greedy_rungs_are_strict_on_adversarial_weights() {
        for weights in [
            vec![1.0; 17],
            vec![0.0; 17],
            (0..17).map(|i| (i as f64).exp()).collect::<Vec<_>>(),
            (0..17).rev().map(|i| i as f64).collect::<Vec<_>>(),
        ] {
            let inst = inst_with_weights(17, weights);
            for k in [1, 2, 3, 5] {
                for chi in [lpt_coloring(&inst, k), first_fit_coloring(&inst, k)] {
                    assert!(chi.is_total());
                    assert!(
                        chi.is_strictly_balanced(inst.weights()),
                        "defect {} at k={k}",
                        chi.strict_balance_defect(inst.weights())
                    );
                }
            }
        }
    }

    #[test]
    fn first_fit_beats_lpt_on_a_path() {
        // Id order on a path is the walk itself: first-fit cuts O(k)
        // edges where weight-sorted LPT shreds the locality.
        let inst = inst_with_weights(32, vec![1.0; 32]);
        let ff = first_fit_coloring(&inst, 4).max_boundary_cost(inst.graph(), inst.costs());
        let lpt = lpt_coloring(&inst, 4).max_boundary_cost(inst.graph(), inst.costs());
        assert!(ff <= lpt, "first-fit {ff} vs lpt {lpt}");
    }

    #[test]
    fn validation_rejects_each_defect_class() {
        let inst = inst_with_weights(8, vec![1.0; 8]);
        let floor = lpt_coloring(&inst, 2);
        let floor_cost = floor.max_boundary_cost(inst.graph(), inst.costs());

        let partial = Coloring::new_uncolored(8, 2);
        assert_eq!(
            validate(&inst, &partial, floor_cost),
            Err(RejectReason::NotTotal)
        );

        // Everything in one class: total but grossly unbalanced.
        let lopsided = Coloring::from_fn(8, 2, |_| 0);
        assert!(matches!(
            validate(&inst, &lopsided, floor_cost),
            Err(RejectReason::NotStrict { defect }) if defect > 0.0
        ));

        // Alternating colors cut every edge; against a floor of cost 1
        // (what a contiguous bisection achieves) that is a monotonicity
        // violation. (The real LPT floor on *unit* weights alternates
        // too — ties break by id — so a synthetic floor is needed to
        // exercise this arm.)
        let shredded = Coloring::from_fn(8, 2, |v| v % 2);
        assert!(matches!(
            validate(&inst, &shredded, 1.0),
            Err(RejectReason::WorseThanFloor { cost, floor })
                if cost > floor
        ));

        // The floor itself always passes.
        assert_eq!(validate(&inst, &floor, floor_cost), Ok(floor_cost));
    }
}
