//! The resilient solving harness: a degradation ladder that always
//! returns a valid answer within a deadline.
//!
//! [`ResilientSolver`] wraps the existing solver stack in four rungs,
//! best first:
//!
//! 1. **certified** — [`Solver::solve_anytime`]: the Theorem 4 pipeline
//!    plus budgeted branch-and-bound refinement and a certified gap.
//! 2. **pipeline** — plain [`Solver::solve`].
//! 3. *(custom rungs, if registered via [`ResilientBuilder::rung`])*
//! 4. **first-fit** — id-order greedy-lightest (strict, locality-aware).
//! 5. **trivial** — LPT greedy-lightest: the panic-free floor.
//!
//! Each rung runs inside a `catch_unwind` boundary with a slice of the
//! per-call [`DeadlineBudget`]; a rung that panics, errors, blows its
//! slice, or produces an output that fails validation (not total, not
//! strictly balanced, or worse than the floor) is recorded and the
//! ladder falls through to the next rung. Transient failures
//! ([`SolveError::Transient`]) are retried under the bounded
//! [`RetryPolicy`] before the rung is declared failed. The outcome of
//! every rung — and which one finally served — is attached to the
//! returned [`Report`] as a [`Resilience`] record.
//!
//! [`ResilientSolver::solve`] is **total**: it always returns a strictly
//! balanced coloring, because the floor rung is pure arithmetic that
//! cannot panic and is never skipped. Degradation is **monotone** by
//! construction: no rung's output is served unless it is at least as
//! good as the floor, so falling down the ladder never makes the answer
//! worse than the rung that ultimately serves it.
//!
//! ```
//! use std::time::Duration;
//! use mmb_core::resilient::{DeadlineBudget, ResilientSolver};
//! use mmb_core::api::Instance;
//! use mmb_graph::gen::grid::GridGraph;
//!
//! let grid = GridGraph::lattice(&[8, 8]);
//! let costs = vec![1.0; grid.graph.num_edges()];
//! let weights = vec![1.0; grid.graph.num_vertices()];
//! let inst = Instance::from_grid(grid, costs, weights)?;
//! let solver = ResilientSolver::for_instance(&inst)
//!     .classes(4)
//!     .budget(DeadlineBudget::with_total(Duration::from_millis(250)))
//!     .build()?;
//! let report = solver.solve(); // infallible: some rung always serves
//! let res = report.resilience.as_ref().unwrap();
//! assert!(report.is_strictly_balanced());
//! assert!(report.max_boundary <= res.floor_cost * (1.0 + 1e-9));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod budget;
pub(crate) mod ladder;
mod record;

pub use budget::{DeadlineBudget, RetryPolicy};
pub use record::{RejectReason, Resilience, RungAttempt, RungOutcome, SkipReason};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use mmb_graph::Coloring;

use crate::api::error::SolveError;
use crate::api::instance::Instance;
use crate::api::partitioner::Partitioner;
use crate::api::report::Report;
use crate::api::solver::{auto_splitter, Solver, SplitterChoice};
use crate::bnb::BnbConfig;
use crate::failpoint::{self, FailpointSplitter};
use crate::pipeline::PipelineConfig;

use budget::BudgetClock;
use ladder::{RUNG_CERTIFIED, RUNG_FIRST_FIT, RUNG_PIPELINE, RUNG_TRIVIAL};

/// Ladder-level configuration of a [`ResilientSolver`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResilientConfig {
    /// Per-call wall-clock budget, split across rungs by shares.
    pub budget: DeadlineBudget,
    /// Bounded retry-with-backoff for transient rung failures.
    pub retry: RetryPolicy,
    /// Budgets of the certified rung's branch-and-bound search; its
    /// `time_budget` is additionally capped by the rung's deadline slice.
    pub bnb: BnbConfig,
    /// Whether to attempt the certified rung at all (it is the most
    /// expensive rung; serving paths that only want the pipeline's
    /// guarantee start the ladder one rung down).
    pub certified: bool,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            budget: DeadlineBudget::default(),
            retry: RetryPolicy::default(),
            bnb: BnbConfig::default(),
            certified: true,
        }
    }
}

/// Builder for a [`ResilientSolver`]; obtained from
/// [`ResilientSolver::for_instance`].
pub struct ResilientBuilder<'i> {
    inst: &'i Instance,
    k: usize,
    pipeline: PipelineConfig,
    cfg: ResilientConfig,
    custom: Vec<(String, Box<dyn Partitioner + 'i>)>,
}

impl<'i> ResilientBuilder<'i> {
    /// Number of classes `k` (required; `build` fails with
    /// [`SolveError::ZeroColors`] if unset or 0).
    pub fn classes(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Norm exponent `p` of the splittability assumption (default 2).
    pub fn p(mut self, p: f64) -> Self {
        self.pipeline.p = p;
        self
    }

    /// Replace the pipeline configuration used by the solver rungs.
    pub fn config(mut self, cfg: PipelineConfig) -> Self {
        self.pipeline = cfg;
        self
    }

    /// The per-call deadline budget.
    pub fn budget(mut self, budget: DeadlineBudget) -> Self {
        self.cfg.budget = budget;
        self
    }

    /// The transient-failure retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Budgets for the certified rung's branch-and-bound search.
    pub fn bnb(mut self, cfg: BnbConfig) -> Self {
        self.cfg.bnb = cfg;
        self
    }

    /// Enable or disable the certified rung (default enabled).
    pub fn certified(mut self, on: bool) -> Self {
        self.cfg.certified = on;
        self
    }

    /// Replace the whole ladder configuration at once.
    pub fn resilient_config(mut self, cfg: ResilientConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Register a custom rung between the pipeline and the greedy floor
    /// rungs. Custom rungs run under the same isolation, retry and
    /// validation machinery as the built-in ones — a panicking or
    /// non-strict partitioner degrades the ladder instead of crashing it.
    pub fn rung(mut self, name: impl Into<String>, p: Box<dyn Partitioner + 'i>) -> Self {
        self.custom.push((name.into(), p));
        self
    }

    /// Validate the configuration and return the reusable solver.
    pub fn build(self) -> Result<ResilientSolver<'i>, SolveError> {
        if self.k == 0 {
            return Err(SolveError::ZeroColors);
        }
        if !(self.pipeline.p.is_finite() && self.pipeline.p >= 1.0) {
            return Err(SolveError::InvalidExponent { p: self.pipeline.p });
        }
        Ok(ResilientSolver {
            inst: self.inst,
            k: self.k,
            pipeline: self.pipeline,
            cfg: self.cfg,
            custom: self.custom,
        })
    }
}

/// What a rung produced on one try, before validation.
enum RungProduct {
    /// A full report (solver rungs).
    Report(Box<Report>),
    /// A bare coloring (custom and greedy rungs); the report is
    /// assembled only if it validates.
    Coloring(Coloring),
}

/// The degradation-ladder solver: build once, [`solve`](Self::solve) many
/// times; every solve returns a valid strictly balanced coloring with a
/// [`Resilience`] record, no matter what fails above the floor. See the
/// [module docs](self).
pub struct ResilientSolver<'i> {
    inst: &'i Instance,
    k: usize,
    pipeline: PipelineConfig,
    cfg: ResilientConfig,
    custom: Vec<(String, Box<dyn Partitioner + 'i>)>,
}

impl<'i> ResilientSolver<'i> {
    /// Start building a resilient solver for `inst`.
    pub fn for_instance(inst: &'i Instance) -> ResilientBuilder<'i> {
        ResilientBuilder {
            inst,
            k: 0,
            pipeline: PipelineConfig::default(),
            cfg: ResilientConfig::default(),
            custom: Vec::new(),
        }
    }

    /// The instance this solver is bound to.
    pub fn instance(&self) -> &'i Instance {
        self.inst
    }

    /// Number of classes `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The ladder configuration.
    pub fn config(&self) -> &ResilientConfig {
        &self.cfg
    }

    /// Build the inner [`Solver`] for the solver rungs: the auto-selected
    /// splitter, wrapped so the `splitter::split` failpoint reaches it.
    fn inner_solver(&self) -> Result<Solver<'i>, SolveError> {
        let (splitter, _family) = auto_splitter(self.inst);
        Solver::for_instance(self.inst)
            .classes(self.k)
            .config(self.pipeline.clone())
            .splitter(SplitterChoice::Custom(Box::new(FailpointSplitter::new(
                splitter,
            ))))
            .build()
    }

    /// Run one rung once (inside the caller's unwind boundary).
    fn run_rung(&self, rung: usize, clock: &BudgetClock) -> Result<RungProduct, SolveError> {
        match rung {
            0 => {
                let mut bnb = self.cfg.bnb;
                if let Some(slice) = clock.slice(self.cfg.budget.certified_share) {
                    bnb.time_budget = Some(bnb.time_budget.map_or(slice, |t| t.min(slice)));
                }
                let solver = self.inner_solver()?;
                Ok(RungProduct::Report(Box::new(solver.solve_anytime(&bnb))))
            }
            1 => {
                let solver = self.inner_solver()?;
                Ok(RungProduct::Report(Box::new(solver.solve())))
            }
            i => {
                let (_, p) = &self.custom[i - 2];
                Ok(RungProduct::Coloring(p.partition(self.inst, self.k)?))
            }
        }
    }

    /// Assemble a minimal report around a bare coloring (custom/greedy
    /// rungs): all three stage slots carry the same coloring, the
    /// splitter slot names the rung.
    fn assemble(&self, rung: &str, chi: Coloring) -> Report {
        let inst = self.inst;
        Report::assemble(
            inst.graph(),
            inst.costs(),
            inst.weights(),
            inst.max_weight(),
            inst.max_cost(),
            inst.cost_norm(self.pipeline.p),
            self.k,
            self.pipeline.p,
            rung.to_owned(),
            chi.clone(),
            chi.clone(),
            chi,
        )
    }

    /// Run the degradation ladder. Total: always returns a strictly
    /// balanced coloring with [`Report::resilience`] populated; the
    /// certified gap of the served rung is filled in (the certified
    /// rung's own gap, or the polynomial static stack's for lower rungs).
    pub fn solve(&self) -> Report {
        let clock = BudgetClock::start(self.cfg.budget.total);
        let faults_before = failpoint::injection_count();

        // The floor is computed up front: it is the validation reference
        // for every rung and the answer of last resort.
        let floor_chi = ladder::lpt_coloring(self.inst, self.k);
        let floor_cost = floor_chi.max_boundary_cost(self.inst.graph(), self.inst.costs());

        let mut attempts: Vec<RungAttempt> = Vec::new();
        let rung_count = 2 + self.custom.len() + 1; // certified, pipeline, custom…, first-fit
        for rung_idx in 0..rung_count {
            let name: String = match rung_idx {
                0 => RUNG_CERTIFIED.to_owned(),
                1 => RUNG_PIPELINE.to_owned(),
                i if i - 2 < self.custom.len() => self.custom[i - 2].0.clone(),
                _ => RUNG_FIRST_FIT.to_owned(),
            };
            if rung_idx == 0 && !self.cfg.certified {
                attempts.push(RungAttempt {
                    rung: name,
                    tries: 0,
                    outcome: RungOutcome::Skipped(SkipReason::Disabled),
                    millis: 0.0,
                });
                continue;
            }
            let rung_start = clock.elapsed();
            if clock.expired() {
                attempts.push(RungAttempt {
                    rung: name,
                    tries: 0,
                    outcome: RungOutcome::Skipped(SkipReason::DeadlineExhausted),
                    millis: 0.0,
                });
                continue;
            }

            let mut tries = 0u32;
            let outcome = loop {
                tries += 1;
                let is_first_fit = rung_idx == rung_count - 1;
                let product = if is_first_fit {
                    // The greedy rung is pure; run it directly (still
                    // validated like everything else).
                    Ok(Ok(RungProduct::Coloring(ladder::first_fit_coloring(
                        self.inst, self.k,
                    ))))
                } else {
                    // lint: allow(catch-unwind) — the rung boundary of the
                    // degradation ladder: a panicking rung must degrade the
                    // answer, not take down the serve path. All state the
                    // closure touches is rebuilt per try (solver, splitter,
                    // scratch epochs roll back via Drop), so observing it
                    // after an unwind is sound.
                    catch_unwind(AssertUnwindSafe(|| self.run_rung(rung_idx, &clock)))
                };
                match product {
                    Ok(Ok(product)) => {
                        let chi = match &product {
                            RungProduct::Report(r) => &r.coloring,
                            RungProduct::Coloring(c) => c,
                        };
                        match ladder::validate(self.inst, chi, floor_cost) {
                            Ok(_cost) => {
                                let report = match product {
                                    RungProduct::Report(r) => *r,
                                    RungProduct::Coloring(c) => self.assemble(&name, c),
                                };
                                attempts.push(RungAttempt {
                                    rung: name.clone(),
                                    tries,
                                    outcome: RungOutcome::Served,
                                    millis: (clock.elapsed() - rung_start).as_secs_f64() * 1e3,
                                });
                                return self.finish(
                                    report_with_gap(self.inst, self.k, report),
                                    name,
                                    rung_idx,
                                    attempts,
                                    &clock,
                                    floor_cost,
                                    faults_before,
                                );
                            }
                            Err(reason) => break RungOutcome::Rejected(reason),
                        }
                    }
                    Ok(Err(SolveError::Transient { .. }))
                        if tries <= self.cfg.retry.max_retries =>
                    {
                        self.backoff(tries, &clock);
                        continue;
                    }
                    Ok(Err(e)) => break RungOutcome::Failed(e.to_string()),
                    Err(payload) => {
                        // Injected transient faults unwind through
                        // infallible code; classify and retry them like
                        // typed transients.
                        if failpoint::injected(payload.as_ref()).is_some_and(|inj| inj.transient)
                            && tries <= self.cfg.retry.max_retries
                        {
                            self.backoff(tries, &clock);
                            continue;
                        }
                        break RungOutcome::Panicked(failpoint::panic_message(payload.as_ref()));
                    }
                }
            };
            attempts.push(RungAttempt {
                rung: name,
                tries,
                outcome,
                millis: (clock.elapsed() - rung_start).as_secs_f64() * 1e3,
            });
        }

        // The floor: precomputed, validated by construction, never skipped.
        attempts.push(RungAttempt {
            rung: RUNG_TRIVIAL.to_owned(),
            tries: 1,
            outcome: RungOutcome::Served,
            millis: 0.0,
        });
        let report = self.assemble(RUNG_TRIVIAL, floor_chi);
        self.finish(
            report_with_gap(self.inst, self.k, report),
            RUNG_TRIVIAL.to_owned(),
            rung_count,
            attempts,
            &clock,
            floor_cost,
            faults_before,
        )
    }

    /// Sleep the doubling backoff before retry number `retry`, capped by
    /// the time remaining so retrying can never blow the deadline.
    fn backoff(&self, retry: u32, clock: &BudgetClock) {
        let mut wait = self.cfg.retry.backoff_for(retry);
        if let Some(remaining) = clock.remaining() {
            wait = wait.min(remaining);
        }
        if wait > Duration::ZERO {
            std::thread::sleep(wait);
        }
    }

    #[allow(clippy::too_many_arguments)] // internal assembly of the final record
    fn finish(
        &self,
        mut report: Report,
        served_by: String,
        served_index: usize,
        attempts: Vec<RungAttempt>,
        clock: &BudgetClock,
        floor_cost: f64,
        faults_before: usize,
    ) -> Report {
        let degraded = attempts
            .iter()
            .take(attempts.len().saturating_sub(1))
            .any(|a| !matches!(a.outcome, RungOutcome::Skipped(SkipReason::Disabled)));
        report.resilience = Some(Resilience {
            served_by,
            served_index,
            degraded,
            attempts,
            budget_millis: self.cfg.budget.total.map(|d| d.as_secs_f64() * 1e3),
            elapsed_millis: clock.elapsed().as_secs_f64() * 1e3,
            floor_cost,
            faults_observed: failpoint::injection_count().saturating_sub(faults_before) as u64,
        });
        report
    }
}

impl std::fmt::Debug for ResilientSolver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientSolver")
            .field("k", &self.k)
            .field("p", &self.pipeline.p)
            .field("budget", &self.cfg.budget)
            .field("certified", &self.cfg.certified)
            .field("custom_rungs", &self.custom.len())
            .finish()
    }
}

/// Ensure the served report carries a certified gap: the certified rung
/// brought its own; every lower rung gets the polynomial static stack's
/// bound paired with its achieved cost.
fn report_with_gap(inst: &Instance, k: usize, mut report: Report) -> Report {
    if report.certified.is_none() {
        let lb = crate::lower_bounds::static_lower_bound(inst, k);
        report.certified = Some(crate::lower_bounds::CertifiedGap::new(
            lb.value(),
            report.max_boundary,
            lb.winner(),
        ));
    }
    report
}
