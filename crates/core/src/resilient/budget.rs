//! Deadline budgets and retry policy for the resilient ladder.
//!
//! A [`DeadlineBudget`] is split across rungs by *shares*: the certified
//! rung may spend `certified_share` of the total, the pipeline rung
//! `pipeline_share`, and whatever is left belongs to the cheap rungs
//! (which are effectively instant). Shares are soft partitions of one
//! hard wall: a rung's slice is always capped by the time actually
//! remaining, and once the wall is crossed every remaining non-trivial
//! rung is skipped — only the trivial floor rung, which is O(n log n)
//! and panic-free, runs unconditionally. Overshoot is therefore bounded
//! by the last rung's single-step latency, not by the ladder's length.

use std::time::Duration;
// lint: allow(nondeterminism) — import only; the one `Instant::now` call
// site below carries its own audited pragma.
use std::time::Instant;

/// Wall-clock budget for one resilient solve, split across rungs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeadlineBudget {
    /// Total wall-clock budget (`None` = unlimited; rungs then run under
    /// their node budgets only, and nothing is ever skipped for time).
    pub total: Option<Duration>,
    /// Fraction of `total` offered to the certified (branch-and-bound)
    /// rung as its `BnbConfig::time_budget`.
    pub certified_share: f64,
    /// Fraction of `total` offered to the plain pipeline rung.
    pub pipeline_share: f64,
}

impl Default for DeadlineBudget {
    fn default() -> Self {
        DeadlineBudget {
            total: None,
            certified_share: 0.5,
            pipeline_share: 0.3,
        }
    }
}

impl DeadlineBudget {
    /// No deadline: every rung runs under its own node budgets.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A hard wall-clock budget with the default share split.
    pub fn with_total(total: Duration) -> Self {
        DeadlineBudget {
            total: Some(total),
            ..Self::default()
        }
    }
}

/// Bounded retry-with-backoff for rungs that report
/// [`SolveError::Transient`](crate::api::SolveError::Transient) failures.
/// The backoff doubles per retry and every sleep is capped by the time
/// remaining in the deadline budget, so retrying can never be the reason
/// a deadline is blown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per rung after the first try (0 = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// Never retry.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// The backoff before retry number `retry` (1-based): doubling,
    /// saturating.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        self.backoff.saturating_mul(
            1u32.checked_shl(retry.saturating_sub(1))
                .unwrap_or(u32::MAX),
        )
    }
}

/// The running clock of one resilient solve: started once, consulted at
/// every rung boundary.
pub(crate) struct BudgetClock {
    // lint: allow(nondeterminism) — the deadline clock is the caller's
    // explicit wall-clock budget; it gates which rung serves, never the
    // content of any rung's coloring.
    start: Instant,
    total: Option<Duration>,
}

impl BudgetClock {
    pub(crate) fn start(total: Option<Duration>) -> Self {
        BudgetClock {
            // lint: allow(nondeterminism) — the deadline clock is the
            // caller's explicit wall-clock budget; it decides which rung
            // serves (reported in the Resilience record), never the
            // content of any rung's coloring.
            start: Instant::now(),
            total,
        }
    }

    pub(crate) fn elapsed(&self) -> Duration {
        // lint: allow(nondeterminism) — deadline clock, see `start`.
        Instant::now() - self.start
    }

    /// Time left before the wall (`None` = unlimited).
    pub(crate) fn remaining(&self) -> Option<Duration> {
        self.total.map(|t| t.saturating_sub(self.elapsed()))
    }

    pub(crate) fn expired(&self) -> bool {
        self.remaining().is_some_and(|r| r.is_zero())
    }

    /// The slice a rung with budget share `share` may spend now:
    /// `min(total·share, remaining)`. `None` = unlimited.
    pub(crate) fn slice(&self, share: f64) -> Option<Duration> {
        let total = self.total?;
        let share = total.mul_f64(share.clamp(0.0, 1.0));
        Some(share.min(self.remaining().unwrap_or(share)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_capped_by_remaining_time() {
        let clock = BudgetClock::start(Some(Duration::from_secs(10)));
        let slice = clock.slice(0.5).unwrap();
        assert!(slice <= Duration::from_secs(5));
        assert!(
            slice > Duration::from_secs(4),
            "fresh clock: near-full share"
        );
        assert!(!clock.expired());
        assert!(BudgetClock::start(None).slice(0.5).is_none());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let clock = BudgetClock::start(Some(Duration::ZERO));
        assert!(clock.expired());
        assert_eq!(clock.remaining(), Some(Duration::ZERO));
        assert_eq!(clock.slice(0.9), Some(Duration::ZERO));
    }

    #[test]
    fn unlimited_clock_never_expires() {
        let clock = BudgetClock::start(None);
        assert!(!clock.expired());
        assert_eq!(clock.remaining(), None);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let retry = RetryPolicy {
            max_retries: 8,
            backoff: Duration::from_millis(2),
        };
        assert_eq!(retry.backoff_for(1), Duration::from_millis(2));
        assert_eq!(retry.backoff_for(2), Duration::from_millis(4));
        assert_eq!(retry.backoff_for(3), Duration::from_millis(8));
        // Deep retries must not overflow.
        assert!(retry.backoff_for(u32::MAX) >= retry.backoff_for(3));
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }
}
