//! The [`Resilience`] record: a machine-readable account of how a
//! resilient solve was served — which rung answered, what happened to
//! every rung above it, and how the deadline budget was spent.
//!
//! The record is evidence, not telemetry: the chaos suite asserts its
//! invariants (the served rung's attempt is marked [`RungOutcome::Served`],
//! every earlier rung explains itself, the floor cost bounds the served
//! cost), and operators read it to answer "why did this request degrade?".

/// Why a rung was skipped without being attempted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// The rung is disabled by configuration
    /// (e.g. [`ResilientConfig::certified`](super::ResilientConfig) = false).
    Disabled,
    /// The deadline budget was already exhausted when the ladder reached
    /// this rung; only the trivial floor rung runs past the deadline.
    DeadlineExhausted,
}

/// Why a rung's *output* was refused even though it ran to completion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RejectReason {
    /// The coloring left vertices uncolored.
    NotTotal,
    /// The coloring violates strict balance (eq. (1)).
    NotStrict {
        /// The strict-balance defect (positive ⟺ violated).
        defect: f64,
    },
    /// The coloring is valid but worse than the trivial floor rung —
    /// serving it would break monotone degradation.
    WorseThanFloor {
        /// The rung's max boundary cost.
        cost: f64,
        /// The floor rung's max boundary cost.
        floor: f64,
    },
}

/// What happened to one rung of the ladder.
#[derive(Clone, Debug, PartialEq)]
pub enum RungOutcome {
    /// This rung's output was validated and served.
    Served,
    /// The rung was not attempted.
    Skipped(SkipReason),
    /// The rung returned a typed error (after exhausting any transient
    /// retries); the message is the error's `Display`.
    Failed(String),
    /// The rung panicked and the unwind was caught at the rung boundary;
    /// the message is the rendered payload.
    Panicked(String),
    /// The rung completed but its output failed validation.
    Rejected(RejectReason),
}

/// One rung's entry in the [`Resilience`] record.
#[derive(Clone, Debug, PartialEq)]
pub struct RungAttempt {
    /// Rung name: `"certified"`, `"pipeline"`, a custom rung's name,
    /// `"first-fit"`, or `"trivial"`.
    pub rung: String,
    /// How many times the rung was tried (> 1 only after transient
    /// failures triggered bounded retry-with-backoff).
    pub tries: u32,
    /// The final outcome.
    pub outcome: RungOutcome,
    /// Wall-clock milliseconds this rung consumed (all tries + backoff).
    pub millis: f64,
}

/// How a resilient solve was served, attached to
/// [`Report::resilience`](crate::api::Report::resilience).
#[derive(Clone, Debug, PartialEq)]
pub struct Resilience {
    /// Name of the rung whose output was served.
    pub served_by: String,
    /// Index of that rung in the ladder (0 = best rung attempted first).
    pub served_index: usize,
    /// Whether any *enabled* rung above the serving one failed — `false`
    /// when the first enabled rung served (rungs skipped as
    /// [`SkipReason::Disabled`] do not count as degradation).
    pub degraded: bool,
    /// Per-rung account, in ladder order, up to and including the rung
    /// that served.
    pub attempts: Vec<RungAttempt>,
    /// The configured deadline budget in milliseconds (`None` = unlimited).
    pub budget_millis: Option<f64>,
    /// Total wall-clock milliseconds of the resilient solve.
    pub elapsed_millis: f64,
    /// The trivial floor rung's max boundary cost — the monotonicity
    /// floor every served answer is validated against.
    pub floor_cost: f64,
    /// Faults injected by an armed [`failpoint`](crate::failpoint)
    /// schedule during this solve (0 in production, where nothing is
    /// ever armed).
    pub faults_observed: u64,
}

impl Resilience {
    /// The attempt entry for `rung`, if the ladder reached it.
    pub fn attempt_for(&self, rung: &str) -> Option<&RungAttempt> {
        self.attempts.iter().find(|a| a.rung == rung)
    }

    /// Whether the serve overshot the deadline budget by more than
    /// `allowance_millis` (always `false` without a budget). The chaos
    /// suite pins overshoot with this.
    pub fn overshot_by_more_than(&self, allowance_millis: f64) -> bool {
        match self.budget_millis {
            Some(budget) => self.elapsed_millis > budget + allowance_millis,
            None => false,
        }
    }
}
