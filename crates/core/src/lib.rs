//! # mmb-core
//!
//! Min-max boundary decomposition of weighted graphs — a faithful
//! implementation of
//!
//! > David Steurer, *Tight Bounds on the Min-Max Boundary Decomposition
//! > Cost of Weighted Graphs*, SPAA 2006 (arXiv `cs/0606001`).
//!
//! Given a graph `G` with edge costs `c` and vertex weights `w`, the library
//! computes **strictly balanced** `k`-colorings — every class weight within
//! `(1 − 1/k)·‖w‖_∞` of the average (Definition 1) — whose **maximum
//! boundary cost** is `O_p(σ_p·(k^{−1/p}·‖c‖_p + Δ_c))` (Theorem 4), where
//! `σ_p` is the instance's splittability and `Δ_c` its maximum cost-weighted
//! degree.
//!
//! ## Entry points
//!
//! The front door is the [`api`] module: bundle the inputs into a
//! validated [`api::Instance`], build a reusable
//! [`api::Solver`] (splitter auto-selected from the graph's
//! structure, constructed once), and call
//! [`solve()`](api::Solver::solve) as often as you like:
//!
//! ```
//! use mmb_core::api::{Instance, Solver, SplitterChoice};
//! use mmb_graph::gen::grid::GridGraph;
//!
//! let grid = GridGraph::lattice(&[8, 8]);
//! let costs = vec![1.0; grid.graph.num_edges()];
//! let weights = vec![1.0; grid.graph.num_vertices()];
//! let inst = Instance::from_grid(grid, costs, weights)?;
//! let solver = Solver::for_instance(&inst).classes(4).build()?;
//! assert!(solver.solve().is_strictly_balanced());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The legacy free function [`pipeline::decompose`] remains as a thin
//! wrapper over the same machinery.
//!
//! ## Pipeline
//!
//! The pipeline composes the paper's three stages:
//!
//! 1. **Multi-balanced coloring** ([`multibalance`]): Lemma 6 builds a
//!    coloring balanced with respect to the splitting-cost measure `π`
//!    (Definition 10, [`pi`]) and the vertex weights by repeatedly invoking
//!    the rebalancing algorithm of Lemma 9 ([`rebalance`]); Proposition 7
//!    then additionally balances the boundary-cost measure, using the
//!    dynamic measure `Φ^{(r+1)}` to keep monochromatic boundary costs
//!    decaying along the move-forest.
//! 2. **Shrink-and-conquer** ([`shrink`]): Proposition 11 turns the weakly
//!    balanced coloring into an *almost strictly* balanced one (every class
//!    within `2‖w‖_∞` of the average) by repeatedly shrinking off an almost
//!    strict layer (Section 5) and re-packing it with the conquer bin
//!    packing of Lemma 15 ([`conquer`]).
//! 3. **Strict packing** ([`strict`]): Proposition 12's `BinPack2` converts
//!    almost strict into strictly balanced, exactly satisfying eq. (1).
//!
//! Every stage is driven by an abstract
//! [`Splitter`](mmb_splitters::Splitter), so any graph family with a
//! splitting-set theorem (grids via GridSplit, forests, paths, or anything
//! with a balanced-separator provider) plugs in directly.
//!
//! ## Guarantees, exactly and empirically
//!
//! Strict balance is *enforced by construction* and checked by
//! [`verify::verify_decomposition`]. The boundary-cost guarantee is
//! asymptotic; [`bounds`] computes the theorems' right-hand sides so tests
//! and benchmarks can report measured/bound ratios (experiments E1–E12 in
//! `DESIGN.md`). In the other direction, [`lower_bounds`] certifies
//! optimality gaps at any size: a stack of sound certifiers (averaging,
//! knapsack packing — fractional and whole-edge, min-cut and
//! forced-pair cuts, structure-aware isoperimetry, the exact [`oracle`]
//! below its size cap) whose best bound
//! [`api::Solver::solve_certified`] threads into the report as a
//! [`lower_bounds::CertifiedGap`]. Bridging the two sides, the anytime
//! branch-and-bound engine of [`bnb`] searches the restricted-growth
//! coloring space under any node/time budget, seeds from the pipeline,
//! prunes with the certifier stack, and — via
//! [`api::Solver::solve_anytime`] — returns the best incumbent together
//! with a certified gap that shrinks to ratio 1.0 whenever the search
//! exhausts (which it does well past the oracle's `n = 16` cap).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod bnb;
pub mod bounds;
pub mod coarsen;
pub mod conquer;
pub mod failpoint;
pub mod lower_bounds;
pub mod multibalance;
pub mod oracle;
pub mod pi;
pub mod pipeline;
pub mod rebalance;
pub mod refine;
pub mod resilient;
pub mod shrink;
pub mod strict;
pub mod two_color;
pub mod verify;

pub use api::{
    auto_splitter, solve_many, solve_many_raw, AppliedDelta, CacheLookup, CacheStats, DeltaSolve,
    Instance, InstanceDelta, InstanceError, Partitioner, Report, SolveError, Solver,
    SolverArtifacts, SolverBuilder, SolverCache, SplitterChoice, Theorem4Pipeline,
};
pub use bnb::{BnbBound, BnbConfig, BnbPartitioner, BnbSolution};
pub use coarsen::{CoarsenParams, CoarseningFront};
pub use lower_bounds::{
    best_lower_bound, certify, static_lower_bound, Certificate, CertifiedGap, LowerBound,
    LowerBoundReport,
};
pub use oracle::{exact_min_max_boundary, ExactOracle, OracleSolution};
pub use pipeline::{
    decompose, CoarsenConfig, DecomposeError, Decomposition, PipelineConfig, ScratchPolicy,
};
pub use refine::{refine, refine_region, KlParams};
pub use resilient::{
    DeadlineBudget, Resilience, ResilientConfig, ResilientSolver, RetryPolicy, RungOutcome,
};

/// Commonly used items for downstream crates.
pub mod prelude {
    pub use crate::api::{
        solve_many, solve_many_raw, DeltaSolve, Instance, InstanceDelta, InstanceError,
        Partitioner, Report, SolveError, Solver, SolverCache, SplitterChoice,
    };
    pub use crate::bnb::{BnbConfig, BnbPartitioner};
    pub use crate::bounds;
    pub use crate::lower_bounds::{best_lower_bound, certify, CertifiedGap, LowerBound};
    pub use crate::oracle::{exact_min_max_boundary, ExactOracle};
    pub use crate::pi::splitting_cost_measure;
    pub use crate::pipeline::{
        decompose, DecomposeError, Decomposition, PipelineConfig, ScratchPolicy,
    };
    pub use crate::resilient::{DeadlineBudget, Resilience, ResilientSolver, RetryPolicy};
    pub use crate::verify::{verify_decomposition, DecompositionReport};
}
