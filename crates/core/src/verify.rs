//! Decomposition verification: one call that checks everything a consumer
//! of the library cares about, and everything the theorems promise.

use mmb_graph::measure::{norm_1, norm_inf};
use mmb_graph::{Coloring, Graph};

use crate::bounds;

/// Full report on a `k`-coloring of an instance.
#[derive(Clone, Debug)]
pub struct DecompositionReport {
    /// Whether every vertex is colored.
    pub is_partition: bool,
    /// Class weights `wχ⁻¹`.
    pub class_weights: Vec<f64>,
    /// Strict-balance defect (≤ 0 ⟺ eq. (1) holds).
    pub strict_defect: f64,
    /// Allowed slack `(1 − 1/k)·‖w‖∞` of eq. (1).
    pub strict_slack: f64,
    /// Per-class boundary costs `∂χ⁻¹`.
    pub boundary_costs: Vec<f64>,
    /// `‖∂χ⁻¹‖∞`.
    pub max_boundary: f64,
    /// `‖∂χ⁻¹‖_avg`.
    pub avg_boundary: f64,
}

impl DecompositionReport {
    /// Whether the coloring is a strictly balanced partition.
    pub fn is_valid(&self) -> bool {
        self.is_partition && self.strict_defect <= 1e-9 * (1.0 + self.strict_slack)
    }

    /// Measured/bound ratio against Theorem 5's upper bound
    /// (`‖c‖_p/k^{1/p} + ‖c‖∞`); constants aside, a reproduction succeeds
    /// when this stays bounded across an instance sweep.
    pub fn theorem5_ratio(&self, p: f64, k: usize, c_norm_p: f64, c_max: f64) -> f64 {
        self.max_boundary / bounds::theorem5(p, k, c_norm_p, c_max).max(1e-300)
    }
}

/// Verify a coloring against its instance.
pub fn verify_decomposition(
    g: &Graph,
    costs: &[f64],
    weights: &[f64],
    chi: &Coloring,
) -> DecompositionReport {
    let class_weights = chi.class_measures(weights);
    let boundary_costs = chi.boundary_costs(g, costs);
    let k = chi.k();
    DecompositionReport {
        is_partition: chi.is_total(),
        strict_defect: chi.strict_balance_defect(weights),
        strict_slack: bounds::strict_slack(k, norm_inf(weights)),
        max_boundary: norm_inf(&boundary_costs),
        avg_boundary: norm_1(&boundary_costs) / k as f64,
        class_weights,
        boundary_costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::graph::graph_from_edges;

    #[test]
    fn report_on_balanced_path() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let costs = vec![1.0, 2.0, 1.0];
        let w = vec![1.0; 4];
        let chi = Coloring::from_vec(2, vec![0, 0, 1, 1]);
        let r = verify_decomposition(&g, &costs, &w, &chi);
        assert!(r.is_partition);
        assert!(r.is_valid());
        assert_eq!(r.max_boundary, 2.0);
        assert_eq!(r.avg_boundary, 2.0);
        assert_eq!(r.class_weights, vec![2.0, 2.0]);
    }

    #[test]
    fn detects_partial_and_unbalanced() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let costs = vec![1.0; 3];
        let w = vec![1.0; 4];
        let partial = Coloring::from_vec(2, vec![0, 0, 1, mmb_graph::coloring::UNCOLORED]);
        assert!(!verify_decomposition(&g, &costs, &w, &partial).is_valid());
        let unbalanced = Coloring::from_vec(2, vec![0, 0, 0, 0]);
        let r = verify_decomposition(&g, &costs, &w, &unbalanced);
        assert!(r.is_partition);
        assert!(!r.is_valid());
        assert!(r.strict_defect > 0.0);
    }

    #[test]
    fn theorem5_ratio_scales() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let costs = vec![1.0; 3];
        let w = vec![1.0; 4];
        let chi = Coloring::from_vec(2, vec![0, 0, 1, 1]);
        let r = verify_decomposition(&g, &costs, &w, &chi);
        let ratio = r.theorem5_ratio(2.0, 2, 3f64.sqrt(), 1.0);
        assert!(ratio > 0.0 && ratio.is_finite());
    }
}
