//! Exact small-`n` oracle: provably optimal strictly balanced colorings.
//!
//! [`exact_min_max_boundary`] computes, by exhaustive search, a strictly
//! balanced `k`-coloring (Definition 1, eq. (1)) of minimum maximum
//! boundary cost `‖∂χ⁻¹‖_∞`. It is the ground truth the differential
//! test suite scores every [`Partitioner`] against: no heuristic may beat
//! it, and the Theorem 4 pipeline must stay within the theorem's factor
//! of it.
//!
//! ## Search
//!
//! Since PR 6 the oracle is a thin façade over the branch-and-bound
//! engine of [`crate::bnb`] run with [`BnbConfig::exhaustive`]: the same
//! restricted-growth-string enumeration (every color-permutation class
//! visited once), the same seeded incumbent (the Theorem 4 pipeline, so
//! oracle ≤ pipeline by construction), but with the engine's certified
//! incremental node bound — `max(‖∂(partial)‖_∞, (cut₂ + packₛ)/k)` —
//! instead of the bare monotone-boundary cutoff this module used to
//! carry, plus a *root* check against the polynomial certifier stack
//! that can prove the seed optimal without visiting a single node.
//! Every extra prune is certified sound, so the returned optimum is
//! unchanged — bit for bit — while `nodes` only shrinks.
//!
//! What remains here is the *contract*: a hard size cap. The façade
//! refuses `n > `[`ORACLE_MAX_VERTICES`] with a typed error so that
//! "oracle says X" always means "exhaustive search completed"; callers
//! who want best-effort beyond the cap use [`crate::bnb::solve`]
//! directly (anytime, with a certified gap instead of a refusal).

use mmb_graph::Coloring;

use crate::api::error::SolveError;
use crate::api::instance::Instance;
use crate::api::partitioner::Partitioner;
use crate::bnb::BnbConfig;

/// Hard cap on the oracle's vertex count: beyond this the exhaustive
/// search is refused with [`SolveError::OracleTooLarge`].
pub const ORACLE_MAX_VERTICES: usize = 16;

/// The oracle's result: an optimal strictly balanced coloring, its cost,
/// and how much of the search space was actually visited.
#[derive(Clone, Debug)]
pub struct OracleSolution {
    /// An optimal strictly balanced `k`-coloring.
    pub coloring: Coloring,
    /// Its maximum boundary cost `‖∂χ⁻¹‖_∞` — the exact optimum over all
    /// strictly balanced colorings (up to the workspace-wide fp
    /// tolerance on the balance constraint).
    pub max_boundary: f64,
    /// Search nodes visited (after pruning); a complexity probe.
    pub nodes: u64,
}

/// Exact minimum of `‖∂χ⁻¹‖_∞` over all strictly balanced `k`-colorings
/// of `inst`, with the witnessing coloring.
///
/// Refuses instances with more than [`ORACLE_MAX_VERTICES`] vertices
/// ([`SolveError::OracleTooLarge`] — the error names the
/// [`crate::bnb`] fallback that has no such cap) and `k = 0`
/// ([`SolveError::ZeroColors`]). Deterministic: same instance, same `k`,
/// same coloring out.
pub fn exact_min_max_boundary(inst: &Instance, k: usize) -> Result<OracleSolution, SolveError> {
    let n = inst.num_vertices();
    if k == 0 {
        return Err(SolveError::ZeroColors);
    }
    if n > ORACLE_MAX_VERTICES {
        return Err(SolveError::OracleTooLarge {
            n,
            limit: ORACLE_MAX_VERTICES,
        });
    }
    let sol = crate::bnb::solve(inst, k, &BnbConfig::exhaustive())?;
    debug_assert!(sol.proven_optimal, "exhaustive search cannot truncate");
    Ok(OracleSolution {
        coloring: sol.coloring,
        max_boundary: sol.max_boundary,
        nodes: sol.nodes,
    })
}

/// The exact oracle as a [`Partitioner`], so it drops into the
/// `&[&dyn Partitioner]` harness loops next to the pipeline and the
/// baselines (differential tests, the corpus table).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactOracle;

impl Partitioner for ExactOracle {
    fn name(&self) -> &str {
        "oracle (exact)"
    }

    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        exact_min_max_boundary(inst, k).map(|s| s.coloring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::partitioner::Theorem4Pipeline;
    use mmb_graph::gen::lattice::hypercube;
    use mmb_graph::gen::misc::{cycle, path};
    use mmb_graph::graph::graph_from_edges;

    fn unit_instance(g: mmb_graph::Graph) -> Instance {
        let (n, m) = (g.num_vertices(), g.num_edges());
        Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap()
    }

    #[test]
    fn path_bisection_cuts_one_edge() {
        let inst = unit_instance(path(6));
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(s.max_boundary, 1.0);
        assert!(s.coloring.is_strictly_balanced(inst.weights()));
        assert!(s.coloring.is_total());
    }

    #[test]
    fn path_three_ways_pays_two_in_the_middle() {
        let inst = unit_instance(path(6));
        let s = exact_min_max_boundary(&inst, 3).unwrap();
        // Classes {0,1},{2,3},{4,5}: the middle class borders both cuts.
        assert_eq!(s.max_boundary, 2.0);
    }

    #[test]
    fn cycle_bisection_cuts_two_edges() {
        let inst = unit_instance(cycle(8));
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(s.max_boundary, 2.0);
    }

    #[test]
    fn hypercube_bisection_width_is_four() {
        // The bisection width of Q₃ is 2^{3−1} = 4 — a classical value the
        // search must reproduce exactly.
        let inst = unit_instance(hypercube(3));
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(s.max_boundary, 4.0);
    }

    #[test]
    fn monochromatic_optimum_for_one_class() {
        let inst = unit_instance(cycle(5));
        let s = exact_min_max_boundary(&inst, 1).unwrap();
        assert_eq!(s.max_boundary, 0.0);
        assert!(s.coloring.is_total());
    }

    #[test]
    fn costs_steer_the_optimal_cut() {
        // Path 0-1-2-3 with an expensive middle edge: unit weights force
        // 2+2 classes, and the optimum is the *non-contiguous* split
        // {0,3}|{1,2} that cuts the two cheap edges (cost 2) instead of
        // the contiguous bisection through the expensive one (cost 10).
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let inst = Instance::new(g, vec![1.0, 10.0, 1.0], vec![1.0; 4]).unwrap();
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(s.max_boundary, 2.0);
        // Now make vertex weights free the cut: weights (3,1,1,3) allow
        // {0},{1,2,3}? class {0}=3, {1,2,3}=5, avg 4, slack 1.5 → dev 1
        // each, feasible, cutting only the cheap edge 0-1.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let inst = Instance::new(g, vec![1.0, 10.0, 1.0], vec![3.0, 1.0, 1.0, 3.0]).unwrap();
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(s.max_boundary, 1.0);
    }

    #[test]
    fn respects_strict_balance_feasibility() {
        // Heavy endpoint: any coloring isolating it is infeasible; the
        // oracle's witness must satisfy eq. (1) exactly.
        let g = path(5);
        let w = vec![4.0, 1.0, 1.0, 1.0, 1.0];
        let inst = Instance::new(g, vec![1.0; 4], w.clone()).unwrap();
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert!(s.coloring.is_strictly_balanced(&w));
        assert!(s.max_boundary >= 1.0);
    }

    #[test]
    fn never_beaten_by_and_never_beats_the_pipeline_invalidly() {
        // Oracle ≤ pipeline on a batch of small random-ish instances.
        for seed in 0..6u64 {
            let g = mmb_graph::gen::tree::random_tree(9, 3, seed);
            let costs: Vec<f64> = (0..g.num_edges())
                .map(|e| 1.0 + ((e as u64 ^ seed) % 5) as f64)
                .collect();
            let weights: Vec<f64> = (0..9)
                .map(|v| 1.0 + ((v as u64 + seed) % 3) as f64)
                .collect();
            let inst = Instance::new(g, costs, weights).unwrap();
            for k in [2usize, 3] {
                let s = exact_min_max_boundary(&inst, k).unwrap();
                let pipe = Theorem4Pipeline::default().partition(&inst, k).unwrap();
                let pipe_cost = pipe.max_boundary_cost(inst.graph(), inst.costs());
                assert!(
                    s.max_boundary <= pipe_cost + 1e-9,
                    "oracle {} beats pipeline {} (seed {seed}, k {k})",
                    s.max_boundary,
                    pipe_cost
                );
            }
        }
    }

    #[test]
    fn typed_errors() {
        let inst = unit_instance(path(5));
        assert_eq!(
            exact_min_max_boundary(&inst, 0).unwrap_err(),
            SolveError::ZeroColors
        );
        let big = unit_instance(path(ORACLE_MAX_VERTICES + 1));
        assert_eq!(
            exact_min_max_boundary(&big, 2).unwrap_err(),
            SolveError::OracleTooLarge {
                n: ORACLE_MAX_VERTICES + 1,
                limit: ORACLE_MAX_VERTICES
            }
        );
        // As a Partitioner, the same contract.
        assert!(ExactOracle.partition(&big, 2).is_err());
        assert!(ExactOracle.partition(&inst, 2).unwrap().is_total());
    }

    #[test]
    fn symmetry_pruning_keeps_node_count_sane() {
        // Restricted growth strings for n=10, k=3 number S(10,1)+S(10,2)+
        // S(10,3) = 1 + 511 + 9330 = 9842 leaves; with interior nodes the
        // visited count must stay well under the raw 3^10 = 59049 — and
        // pruning usually cuts far deeper.
        let inst = unit_instance(path(10));
        let s = exact_min_max_boundary(&inst, 3).unwrap();
        assert!(s.nodes < 25_000, "search visited {} nodes", s.nodes);
        assert_eq!(s.max_boundary, 2.0);
    }
}
