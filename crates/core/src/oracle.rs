//! Exact small-`n` oracle: provably optimal strictly balanced colorings.
//!
//! [`exact_min_max_boundary`] computes, by exhaustive search, a strictly
//! balanced `k`-coloring (Definition 1, eq. (1)) of minimum maximum
//! boundary cost `‖∂χ⁻¹‖_∞`. It is the ground truth the differential
//! test suite scores every [`Partitioner`] against: no heuristic may beat
//! it, and the Theorem 4 pipeline must stay within the theorem's factor
//! of it.
//!
//! ## Search
//!
//! Colorings are enumerated as *restricted growth strings* over a fixed
//! vertex order: a vertex may reuse any color already in use or open one
//! new color. Since both the strict-balance constraint and the objective
//! are invariant under permuting the color classes, every equivalence
//! class of colorings is visited exactly once — cutting the raw `k^n`
//! space down by up to `k!` (Stirling-number counting). Three prunes run
//! at every node:
//!
//! * **upper-bound cutoff** — boundary costs only grow as vertices are
//!   added, so a partial coloring whose current `‖∂‖_∞` already matches
//!   the incumbent is abandoned;
//! * **balance cap** — a class that exceeds `w̄ + (1 − 1/k)·‖w‖_∞` can
//!   never return below it (weights are non-negative), so the color is
//!   skipped;
//! * **deficit bound** — if the total weight still unassigned cannot fill
//!   every class up to `w̄ − (1 − 1/k)·‖w‖_∞`, no feasible completion
//!   exists.
//!
//! The search is seeded with the Theorem 4 pipeline's coloring as the
//! incumbent, so the oracle's result is ≤ the pipeline's cost *by
//! construction* and the cutoff starts tight. Worst-case work is
//! `O(S(n, ≤k) · Δ)` where `S(n, ≤k) ≤ k^n/k!` counts restricted growth
//! strings — exact and fast for `n ≤ `[`ORACLE_MAX_VERTICES`], and
//! refused (typed error, no panic) above it.

use mmb_graph::coloring::UNCOLORED;
use mmb_graph::measure::norm_inf;
use mmb_graph::{Coloring, VertexId};

use crate::api::error::SolveError;
use crate::api::instance::Instance;
use crate::api::partitioner::{Partitioner, Theorem4Pipeline};

/// Hard cap on the oracle's vertex count: beyond this the exhaustive
/// search is refused with [`SolveError::OracleTooLarge`].
pub const ORACLE_MAX_VERTICES: usize = 16;

/// The oracle's result: an optimal strictly balanced coloring, its cost,
/// and how much of the search space was actually visited.
#[derive(Clone, Debug)]
pub struct OracleSolution {
    /// An optimal strictly balanced `k`-coloring.
    pub coloring: Coloring,
    /// Its maximum boundary cost `‖∂χ⁻¹‖_∞` — the exact optimum over all
    /// strictly balanced colorings (up to the workspace-wide fp
    /// tolerance on the balance constraint).
    pub max_boundary: f64,
    /// Search nodes visited (after pruning); a complexity probe.
    pub nodes: u64,
}

struct Search<'a> {
    inst: &'a Instance,
    k: usize,
    /// Assignment order (descending degree, ties by id).
    order: Vec<VertexId>,
    /// `suffix_w[i]` = total weight of `order[i..]` (deficit prune).
    suffix_w: Vec<f64>,
    /// Strict-balance window `[avg − slack − tol, avg + slack + tol]`.
    lo: f64,
    hi: f64,
    color: Vec<u32>,
    class_w: Vec<f64>,
    class_b: Vec<f64>,
    best_cost: f64,
    best: Option<Vec<u32>>,
    nodes: u64,
}

impl Search<'_> {
    /// DFS over `order[i..]`; `used` = number of colors in use so far.
    fn dfs(&mut self, i: usize, used: usize) {
        self.nodes += 1;
        if i == self.order.len() {
            // Leaf: upper bounds were enforced on the way down; check the
            // lower side of eq. (1) (classes must not be too light).
            if self.class_w.iter().all(|&w| w >= self.lo) {
                let cost = norm_inf(&self.class_b);
                if cost < self.best_cost {
                    self.best_cost = cost;
                    self.best = Some(self.color.clone());
                }
            }
            return;
        }
        // Deficit prune: the unassigned weight must be able to fill every
        // class up to the lower balance bound.
        let deficit: f64 =
            self.class_w.iter().map(|&w| (self.lo - w).max(0.0)).sum();
        if deficit > self.suffix_w[i] {
            return;
        }
        let v = self.order[i];
        let wv = self.inst.weights()[v as usize];
        // Restricted growth: reuse colors `0..used`, or open color `used`.
        for c in 0..self.k.min(used + 1) {
            if self.class_w[c] + wv > self.hi {
                continue;
            }
            // Incremental boundary update against already-placed neighbors.
            self.color[v as usize] = c as u32;
            self.class_w[c] += wv;
            for &(nb, e) in self.inst.graph().neighbors(v) {
                let cn = self.color[nb as usize];
                if cn != UNCOLORED && cn != c as u32 {
                    let cost = self.inst.costs()[e as usize];
                    self.class_b[c] += cost;
                    self.class_b[cn as usize] += cost;
                }
            }
            // Upper-bound cutoff: boundary costs are monotone in the
            // partial assignment, so ≥ incumbent can never improve.
            if norm_inf(&self.class_b) < self.best_cost {
                self.dfs(i + 1, used.max(c + 1));
            }
            // Undo (the reverse of the forward loop, same guard).
            for &(nb, e) in self.inst.graph().neighbors(v) {
                let cn = self.color[nb as usize];
                if cn != UNCOLORED && cn != c as u32 {
                    let cost = self.inst.costs()[e as usize];
                    self.class_b[c] -= cost;
                    self.class_b[cn as usize] -= cost;
                }
            }
            self.class_w[c] -= wv;
            self.color[v as usize] = UNCOLORED;
        }
    }
}

/// Exact minimum of `‖∂χ⁻¹‖_∞` over all strictly balanced `k`-colorings
/// of `inst`, with the witnessing coloring.
///
/// Refuses instances with more than [`ORACLE_MAX_VERTICES`] vertices
/// ([`SolveError::OracleTooLarge`]) and `k = 0`
/// ([`SolveError::ZeroColors`]). Deterministic: same instance, same `k`,
/// same coloring out.
pub fn exact_min_max_boundary(
    inst: &Instance,
    k: usize,
) -> Result<OracleSolution, SolveError> {
    let n = inst.num_vertices();
    if k == 0 {
        return Err(SolveError::ZeroColors);
    }
    if n > ORACLE_MAX_VERTICES {
        return Err(SolveError::OracleTooLarge { n, limit: ORACLE_MAX_VERTICES });
    }
    let weights = inst.weights();
    let avg = inst.total_weight() / k as f64;
    let slack = crate::bounds::strict_slack(k, inst.max_weight());
    // Same scale-invariant tolerance as `Coloring::is_strictly_balanced`.
    let tol = 1e-9 * inst.max_weight().max(1e-300);
    let mut order: Vec<VertexId> = (0..n as u32).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(inst.graph().degree(v)), v));
    let mut suffix_w = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix_w[i] = suffix_w[i + 1] + weights[order[i] as usize];
    }
    let mut search = Search {
        inst,
        k,
        order,
        suffix_w,
        lo: avg - slack - tol,
        hi: avg + slack + tol,
        color: vec![UNCOLORED; n],
        class_w: vec![0.0; k],
        class_b: vec![0.0; k],
        best_cost: f64::INFINITY,
        best: None,
        nodes: 0,
    };
    // Incumbent: the pipeline's coloring (strictly balanced by
    // construction) seeds the cutoff, and guarantees
    // oracle ≤ pipeline even before the search starts.
    if let Ok(chi) = Theorem4Pipeline::default().partition(inst, k) {
        let defect = chi.strict_balance_defect(weights);
        if defect <= tol {
            search.best_cost = chi.max_boundary_cost(inst.graph(), inst.costs());
            search.best = Some((0..n as u32).map(|v| chi.raw(v)).collect());
        }
    }
    search.dfs(0, 0);
    let nodes = search.nodes;
    let best = search.best.expect(
        "a strictly balanced coloring always exists (Proposition 12)",
    );
    let coloring = Coloring::from_vec(k, best);
    // Report the cost recomputed from scratch (the incremental search
    // values carry negligible but nonzero fp drift).
    let max_boundary = coloring.max_boundary_cost(inst.graph(), inst.costs());
    Ok(OracleSolution { coloring, max_boundary, nodes })
}

/// The exact oracle as a [`Partitioner`], so it drops into the
/// `&[&dyn Partitioner]` harness loops next to the pipeline and the
/// baselines (differential tests, the corpus table).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactOracle;

impl Partitioner for ExactOracle {
    fn name(&self) -> &str {
        "oracle (exact)"
    }

    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        exact_min_max_boundary(inst, k).map(|s| s.coloring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::lattice::hypercube;
    use mmb_graph::gen::misc::{cycle, path};
    use mmb_graph::graph::graph_from_edges;

    fn unit_instance(g: mmb_graph::Graph) -> Instance {
        let (n, m) = (g.num_vertices(), g.num_edges());
        Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap()
    }

    #[test]
    fn path_bisection_cuts_one_edge() {
        let inst = unit_instance(path(6));
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(s.max_boundary, 1.0);
        assert!(s.coloring.is_strictly_balanced(inst.weights()));
        assert!(s.coloring.is_total());
    }

    #[test]
    fn path_three_ways_pays_two_in_the_middle() {
        let inst = unit_instance(path(6));
        let s = exact_min_max_boundary(&inst, 3).unwrap();
        // Classes {0,1},{2,3},{4,5}: the middle class borders both cuts.
        assert_eq!(s.max_boundary, 2.0);
    }

    #[test]
    fn cycle_bisection_cuts_two_edges() {
        let inst = unit_instance(cycle(8));
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(s.max_boundary, 2.0);
    }

    #[test]
    fn hypercube_bisection_width_is_four() {
        // The bisection width of Q₃ is 2^{3−1} = 4 — a classical value the
        // search must reproduce exactly.
        let inst = unit_instance(hypercube(3));
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(s.max_boundary, 4.0);
    }

    #[test]
    fn monochromatic_optimum_for_one_class() {
        let inst = unit_instance(cycle(5));
        let s = exact_min_max_boundary(&inst, 1).unwrap();
        assert_eq!(s.max_boundary, 0.0);
        assert!(s.coloring.is_total());
    }

    #[test]
    fn costs_steer_the_optimal_cut() {
        // Path 0-1-2-3 with an expensive middle edge: unit weights force
        // 2+2 classes, and the optimum is the *non-contiguous* split
        // {0,3}|{1,2} that cuts the two cheap edges (cost 2) instead of
        // the contiguous bisection through the expensive one (cost 10).
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let inst = Instance::new(g, vec![1.0, 10.0, 1.0], vec![1.0; 4]).unwrap();
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(s.max_boundary, 2.0);
        // Now make vertex weights free the cut: weights (3,1,1,3) allow
        // {0},{1,2,3}? class {0}=3, {1,2,3}=5, avg 4, slack 1.5 → dev 1
        // each, feasible, cutting only the cheap edge 0-1.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let inst =
            Instance::new(g, vec![1.0, 10.0, 1.0], vec![3.0, 1.0, 1.0, 3.0]).unwrap();
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(s.max_boundary, 1.0);
    }

    #[test]
    fn respects_strict_balance_feasibility() {
        // Heavy endpoint: any coloring isolating it is infeasible; the
        // oracle's witness must satisfy eq. (1) exactly.
        let g = path(5);
        let w = vec![4.0, 1.0, 1.0, 1.0, 1.0];
        let inst = Instance::new(g, vec![1.0; 4], w.clone()).unwrap();
        let s = exact_min_max_boundary(&inst, 2).unwrap();
        assert!(s.coloring.is_strictly_balanced(&w));
        assert!(s.max_boundary >= 1.0);
    }

    #[test]
    fn never_beaten_by_and_never_beats_the_pipeline_invalidly() {
        // Oracle ≤ pipeline on a batch of small random-ish instances.
        for seed in 0..6u64 {
            let g = mmb_graph::gen::tree::random_tree(9, 3, seed);
            let costs: Vec<f64> =
                (0..g.num_edges()).map(|e| 1.0 + ((e as u64 ^ seed) % 5) as f64).collect();
            let weights: Vec<f64> =
                (0..9).map(|v| 1.0 + ((v as u64 + seed) % 3) as f64).collect();
            let inst = Instance::new(g, costs, weights).unwrap();
            for k in [2usize, 3] {
                let s = exact_min_max_boundary(&inst, k).unwrap();
                let pipe = Theorem4Pipeline::default().partition(&inst, k).unwrap();
                let pipe_cost = pipe.max_boundary_cost(inst.graph(), inst.costs());
                assert!(
                    s.max_boundary <= pipe_cost + 1e-9,
                    "oracle {} beats pipeline {} (seed {seed}, k {k})",
                    s.max_boundary,
                    pipe_cost
                );
            }
        }
    }

    #[test]
    fn typed_errors() {
        let inst = unit_instance(path(5));
        assert_eq!(
            exact_min_max_boundary(&inst, 0).unwrap_err(),
            SolveError::ZeroColors
        );
        let big = unit_instance(path(ORACLE_MAX_VERTICES + 1));
        assert_eq!(
            exact_min_max_boundary(&big, 2).unwrap_err(),
            SolveError::OracleTooLarge { n: ORACLE_MAX_VERTICES + 1, limit: ORACLE_MAX_VERTICES }
        );
        // As a Partitioner, the same contract.
        assert!(ExactOracle.partition(&big, 2).is_err());
        assert!(ExactOracle.partition(&inst, 2).unwrap().is_total());
    }

    #[test]
    fn symmetry_pruning_keeps_node_count_sane() {
        // Restricted growth strings for n=10, k=3 number S(10,1)+S(10,2)+
        // S(10,3) = 1 + 511 + 9330 = 9842 leaves; with interior nodes the
        // visited count must stay well under the raw 3^10 = 59049 — and
        // pruning usually cuts far deeper.
        let inst = unit_instance(path(10));
        let s = exact_min_max_boundary(&inst, 3).unwrap();
        assert!(s.nodes < 25_000, "search visited {} nodes", s.nodes);
        assert_eq!(s.max_boundary, 2.0);
    }
}
