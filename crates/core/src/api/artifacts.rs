//! Cacheable solver-construction artifacts and the LRU cache over them.
//!
//! [`SolverBuilder::build`](crate::api::SolverBuilder::build) spends its
//! time on three things that depend only on the instance's **graph,
//! costs, and the exponent `p`** — never on the weights, `k`, or the run
//! itself:
//!
//! 1. structure recognition (`recognize`, `O((n + m)·d)`),
//! 2. the splitting-cost measure `π` (Definition 10, one pass over the
//!    cost-degree profile),
//! 3. `‖c‖_p` for the Theorem 5 bound in reports.
//!
//! [`SolverArtifacts`] snapshots all three. A [`SolverCache`] keyed by
//! [`Fingerprint::artifact_key`] (structure ⊕ costs — weights excluded,
//! so weight-only churn stays warm) hands the snapshot back to
//! `SolverBuilder::artifacts`, which skips the recomputation entirely.
//!
//! ## Fingerprints filter, equality decides
//!
//! The 64-bit key is a *filter*, not a proof: on every hit the cache
//! re-checks the candidate against the instance with
//! [`SolverArtifacts::matches`] — full structural equality of the edge
//! list, bit-equality of the costs, bit-equality of `p`. A colliding key
//! is reported as [`CacheLookup::Collision`] and recomputed; a stale or
//! poisoned entry can be dropped with [`SolverCache::evict_for`]. Served
//! results therefore never depend on the hash being collision-free.
//!
//! ## Determinism
//!
//! The cache is a plain most-recently-used-first `Vec` — no `HashMap`,
//! no random state. Identical request sequences produce identical
//! hit/miss/eviction traces on every run and platform.

use std::sync::Arc;

use mmb_graph::fingerprint::Fingerprint;
use mmb_graph::recognize::Structure;
use mmb_graph::Graph;

use crate::api::instance::Instance;
use crate::pi::splitting_cost_measure_within;

/// The build-phase products that depend only on (graph, costs, `p`).
///
/// Create with [`SolverArtifacts::compute`], share via `Arc`, and feed to
/// [`SolverBuilder::artifacts`](crate::api::SolverBuilder::artifacts) to
/// warm-start construction on instances with the same topology and
/// costs (weights may differ freely).
#[derive(Clone, Debug)]
pub struct SolverArtifacts {
    /// The graph the artifacts were computed over (owned snapshot, used
    /// for the exact collision check).
    graph: Graph,
    /// The cost vector the artifacts were computed over.
    costs: Vec<f64>,
    /// The exponent `p` the `π` measure and `‖c‖_p` were computed for.
    p: f64,
    /// Recognition verdict, reusable via `Instance::seed_structure`.
    structure: Structure,
    /// Splitting-cost measure `π` (Definition 10), shared by refcount.
    pi: Arc<[f64]>,
    /// `‖c‖_p`.
    c_norm_p: f64,
    /// Fingerprint of the source instance (structure + costs parts are
    /// what [`Fingerprint::artifact_key`] digests).
    fingerprint: Fingerprint,
}

impl SolverArtifacts {
    /// Run the cacheable build phases for `inst` at exponent `p`.
    ///
    /// Triggers structure recognition (memoized on `inst`) and the `π`
    /// pass; the result is independent of `inst`'s weights.
    pub fn compute(inst: &Instance, p: f64) -> Self {
        let g = inst.graph();
        let pi: Arc<[f64]> =
            splitting_cost_measure_within(g, inst.costs(), p, 1.0, inst.domain()).into();
        SolverArtifacts {
            graph: g.clone(),
            costs: inst.costs().to_vec(),
            p,
            structure: inst.structure().clone(),
            pi,
            c_norm_p: inst.cost_norm(p),
            fingerprint: inst.fingerprint(),
        }
    }

    /// Exact applicability check: does this snapshot describe `inst` at
    /// exponent `p`? Full equality — edge list, cost bits, `p` bits —
    /// so a fingerprint collision can never smuggle in wrong artifacts.
    pub fn matches(&self, inst: &Instance, p: f64) -> bool {
        self.p.to_bits() == p.to_bits()
            && self.graph.num_vertices() == inst.num_vertices()
            && self.graph.edge_list() == inst.graph().edge_list()
            && self.costs.len() == inst.costs().len()
            && self
                .costs
                .iter()
                .zip(inst.costs())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// The exponent the artifacts were computed for.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The cached recognition verdict.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The cached splitting-cost measure `π`.
    pub fn pi(&self) -> &Arc<[f64]> {
        &self.pi
    }

    /// The cached `‖c‖_p`.
    pub fn c_norm_p(&self) -> f64 {
        self.c_norm_p
    }

    /// Fingerprint of the instance the artifacts came from.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The cache key: weight-independent fingerprint parts ⊕ `p` bits.
    fn key(&self) -> u64 {
        mix_key(self.fingerprint, self.p)
    }
}

/// Splitmix of the weight-independent fingerprint parts with `p`'s bit
/// pattern — the 64-bit cache key.
fn mix_key(fp: Fingerprint, p: f64) -> u64 {
    let mut z = fp
        .artifact_key()
        .wrapping_add(0x9e37_79b9_7f4a_7c15 ^ p.to_bits());
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Outcome of one [`SolverCache::get_or_compute`] lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheLookup {
    /// Key matched and the exact check confirmed: artifacts reused.
    Hit,
    /// No entry under the key: artifacts computed and inserted.
    Miss,
    /// Key matched but the exact check refused (hash collision):
    /// artifacts computed and inserted alongside.
    Collision,
}

/// Cumulative counters of a [`SolverCache`]'s lookup outcomes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Confirmed hits (exact check passed).
    pub hits: u64,
    /// Cold lookups (no entry under the key).
    pub misses: u64,
    /// Key matches refused by the exact check.
    pub collisions: u64,
    /// Entries dropped by the LRU bound or [`SolverCache::evict_for`].
    pub evictions: u64,
}

/// A bounded, deterministic LRU cache of [`SolverArtifacts`].
///
/// Most-recently-used entries sit at the front of a plain `Vec`; lookups
/// scan by 64-bit key and confirm with the exact [`SolverArtifacts::matches`]
/// check. Capacity 0 degenerates to "always compute" (still counted).
#[derive(Debug)]
pub struct SolverCache {
    entries: Vec<(u64, Arc<SolverArtifacts>)>,
    capacity: usize,
    stats: CacheStats,
}

impl SolverCache {
    /// An empty cache holding at most `capacity` artifact snapshots.
    pub fn new(capacity: usize) -> Self {
        SolverCache {
            entries: Vec::with_capacity(capacity.min(64)),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Look up artifacts for `(inst, p)`; compute, insert, and evict the
    /// least-recently-used entry on a miss. Returns the artifacts and
    /// how they were obtained.
    pub fn get_or_compute(
        &mut self,
        inst: &Instance,
        p: f64,
    ) -> (Arc<SolverArtifacts>, CacheLookup) {
        let key = mix_key(inst.fingerprint(), p);
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            if self.entries[pos].1.matches(inst, p) {
                self.stats.hits += 1;
                let entry = self.entries.remove(pos);
                self.entries.insert(0, entry);
                return (Arc::clone(&self.entries[0].1), CacheLookup::Hit);
            }
            // Same 64-bit key, different instance: a genuine collision.
            // Recompute; the insert below replaces the colliding entry's
            // slot ordering but both remain addressable by exact check.
            self.stats.collisions += 1;
            let artifacts = Arc::new(SolverArtifacts::compute(inst, p));
            self.insert(Arc::clone(&artifacts));
            return (artifacts, CacheLookup::Collision);
        }
        self.stats.misses += 1;
        let artifacts = Arc::new(SolverArtifacts::compute(inst, p));
        self.insert(Arc::clone(&artifacts));
        (artifacts, CacheLookup::Miss)
    }

    /// Insert precomputed artifacts at the most-recently-used position.
    pub fn insert(&mut self, artifacts: Arc<SolverArtifacts>) {
        if self.capacity == 0 {
            return;
        }
        let key = artifacts.key();
        self.entries.insert(0, (key, artifacts));
        while self.entries.len() > self.capacity {
            self.entries.pop();
            self.stats.evictions += 1;
        }
    }

    /// Drop the entry that exactly matches `(inst, p)`, if present.
    /// Returns whether anything was evicted. The poisoned-entry hatch:
    /// a serving layer that observes a fault while using cached
    /// artifacts evicts them instead of ever serving from them again.
    pub fn evict_for(&mut self, inst: &Instance, p: f64) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(_, a)| !a.matches(inst, p));
        let dropped = before - self.entries.len();
        self.stats.evictions += dropped as u64;
        dropped > 0
    }

    /// Cumulative lookup counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The LRU bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;

    fn grid_instance(side: usize, w0: f64) -> Instance {
        let gg = GridGraph::lattice(&[side, side]);
        let m = gg.graph.num_edges();
        let n = gg.graph.num_vertices();
        let mut w = vec![1.0; n];
        w[0] = w0;
        Instance::from_grid(gg, vec![1.0; m], w).expect("valid grid instance")
    }

    #[test]
    fn weight_churn_hits_the_cache() {
        let mut cache = SolverCache::new(4);
        let a = grid_instance(4, 1.0);
        let b = grid_instance(4, 7.0); // same topology+costs, new weights
        let (_, first) = cache.get_or_compute(&a, 2.0);
        let (art, second) = cache.get_or_compute(&b, 2.0);
        assert_eq!(first, CacheLookup::Miss);
        assert_eq!(second, CacheLookup::Hit);
        assert!(art.matches(&b, 2.0));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn distinct_p_or_topology_misses() {
        let mut cache = SolverCache::new(4);
        let a = grid_instance(4, 1.0);
        let b = grid_instance(5, 1.0);
        assert_eq!(cache.get_or_compute(&a, 2.0).1, CacheLookup::Miss);
        assert_eq!(cache.get_or_compute(&a, 1.5).1, CacheLookup::Miss);
        assert_eq!(cache.get_or_compute(&b, 2.0).1, CacheLookup::Miss);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = SolverCache::new(2);
        let a = grid_instance(3, 1.0);
        let b = grid_instance(4, 1.0);
        let c = grid_instance(5, 1.0);
        cache.get_or_compute(&a, 2.0);
        cache.get_or_compute(&b, 2.0);
        cache.get_or_compute(&a, 2.0); // refresh a; b is now coldest
        cache.get_or_compute(&c, 2.0); // evicts b
        assert_eq!(cache.get_or_compute(&a, 2.0).1, CacheLookup::Hit);
        assert_eq!(cache.get_or_compute(&b, 2.0).1, CacheLookup::Miss);
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn evict_for_removes_exactly_the_target() {
        let mut cache = SolverCache::new(4);
        let a = grid_instance(3, 1.0);
        let b = grid_instance(4, 1.0);
        cache.get_or_compute(&a, 2.0);
        cache.get_or_compute(&b, 2.0);
        assert!(cache.evict_for(&a, 2.0));
        assert!(!cache.evict_for(&a, 2.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get_or_compute(&b, 2.0).1, CacheLookup::Hit);
        assert_eq!(cache.get_or_compute(&a, 2.0).1, CacheLookup::Miss);
    }

    #[test]
    fn zero_capacity_always_computes() {
        let mut cache = SolverCache::new(0);
        let a = grid_instance(3, 1.0);
        assert_eq!(cache.get_or_compute(&a, 2.0).1, CacheLookup::Miss);
        assert_eq!(cache.get_or_compute(&a, 2.0).1, CacheLookup::Miss);
        assert!(cache.is_empty());
    }

    #[test]
    fn artifacts_agree_with_a_fresh_build() {
        let a = grid_instance(4, 1.0);
        let art = SolverArtifacts::compute(&a, 2.0);
        assert_eq!(art.c_norm_p(), a.cost_norm(2.0));
        assert_eq!(art.pi().len(), a.num_vertices());
        assert_eq!(art.fingerprint(), a.fingerprint());
        assert_eq!(art.p(), 2.0);
    }
}
