//! One interface over every partitioning algorithm in the workspace.
//!
//! The experiment harness compares the Theorem 4 pipeline against the
//! `mmb-baselines` algorithms on identical footing; [`Partitioner`] is
//! that footing. Implementations take a validated
//! [`crate::api::Instance`] and a class count and return a total
//! [`Coloring`] — or a [`SolveError`], never a panic, on configurations
//! they cannot run.
//!
//! The pipeline's own implementation is [`Theorem4Pipeline`]; the
//! baselines implement the trait in `mmb-baselines` (greedy bin packing,
//! recursive bisection, multilevel), so `mmb-bench` can iterate
//! `&[&dyn Partitioner]` uniformly (experiments E4, E7, E10).

use mmb_graph::Coloring;

use crate::api::error::SolveError;
use crate::api::instance::Instance;
use crate::api::solver::Solver;
use crate::pipeline::PipelineConfig;

/// A `k`-way partitioning algorithm, scored uniformly by the harness.
///
/// `Sync` is a supertrait so the harness can fan per-instance runs out
/// over the thread pool (`&dyn Partitioner` travels into workers); every
/// implementation in the workspace is a stateless adapter.
pub trait Partitioner: Sync {
    /// Short algorithm name for tables and reports.
    fn name(&self) -> &str;

    /// Partition `inst` into `k` classes.
    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError>;
}

/// The Theorem 4 pipeline as a [`Partitioner`]: builds a fresh
/// [`Solver`] with [`SplitterChoice::Auto`](crate::api::SplitterChoice)
/// per call.
///
/// This is the uniform-iteration adapter for harness loops that sweep
/// `k`; serve-heavy callers that fix `(instance, k)` should build a
/// [`Solver`] once and reuse it instead.
#[derive(Clone, Debug, Default)]
pub struct Theorem4Pipeline {
    /// Pipeline configuration applied to every call.
    pub cfg: PipelineConfig,
}

impl Theorem4Pipeline {
    /// Pipeline with a given `p`.
    pub fn with_p(p: f64) -> Self {
        Self {
            cfg: PipelineConfig::with_p(p),
        }
    }
}

impl Partitioner for Theorem4Pipeline {
    fn name(&self) -> &str {
        "ours (Thm 4)"
    }

    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        let solver = Solver::for_instance(inst)
            .classes(k)
            .config(self.cfg.clone())
            .build()?;
        Ok(solver.solve().coloring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;

    #[test]
    fn pipeline_partitioner_is_strict() {
        let grid = GridGraph::lattice(&[8, 8]);
        let m = grid.graph.num_edges();
        let weights: Vec<f64> = (0..64).map(|v| 1.0 + (v % 3) as f64).collect();
        let inst = Instance::from_grid(grid, vec![1.0; m], weights.clone()).unwrap();
        let algo = Theorem4Pipeline::default();
        let chi = algo.partition(&inst, 5).unwrap();
        assert!(chi.is_total());
        assert!(chi.is_strictly_balanced(&weights));
        assert_eq!(
            algo.partition(&inst, 0).unwrap_err(),
            SolveError::ZeroColors
        );
    }
}
