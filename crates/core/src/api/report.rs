//! The structured result of a [`Solver::solve`](crate::api::Solver::solve)
//! call.
//!
//! A [`Report`] carries everything the old call sites used to recompute by
//! hand after `decompose`: the coloring, the per-class weight/boundary
//! table, strict-balance defect and slack, the Theorem-4/5 bound
//! right-hand side with the measured/bound ratio, and the intermediate
//! stage colorings for ablation experiments (E8).

use mmb_graph::measure::{norm_1, norm_inf};
use mmb_graph::Coloring;

use crate::bounds;
use crate::lower_bounds::CertifiedGap;
use crate::pipeline::Decomposition;

/// One row of the per-class table: `(class, weight, boundary cost)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassRow {
    /// Class index `i ∈ [k]`.
    pub class: usize,
    /// `w(χ⁻¹(i))`.
    pub weight: f64,
    /// `∂χ⁻¹(i)`.
    pub boundary_cost: f64,
}

/// Per-stage ablation data: the pipeline's intermediate colorings
/// (Proposition 7 → 11 → 12). Kept as raw colorings so the serve path
/// pays nothing for them; consumers (experiment E8) compute whatever
/// stage metrics they need via [`Coloring::max_boundary_cost`] etc.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Proposition 7 output (weakly balanced, bounded max boundary).
    pub multibalanced: Coloring,
    /// Proposition 11 output (almost strictly balanced).
    pub almost_strict: Coloring,
}

/// Structured result of one solve: coloring, quality tables, bound ratio,
/// and ablation data.
#[derive(Clone, Debug)]
pub struct Report {
    /// The strictly balanced `k`-coloring.
    pub coloring: Coloring,
    /// Per-class weights `wχ⁻¹`.
    pub class_weights: Vec<f64>,
    /// Per-class boundary costs `∂χ⁻¹`.
    pub boundary_costs: Vec<f64>,
    /// Strict-balance defect (≤ 0 up to fp noise ⟺ eq. (1) holds).
    pub strict_defect: f64,
    /// Allowed slack `(1 − 1/k)·‖w‖_∞` of eq. (1).
    pub strict_slack: f64,
    /// `‖∂χ⁻¹‖_∞`.
    pub max_boundary: f64,
    /// `‖∂χ⁻¹‖_avg`.
    pub avg_boundary: f64,
    /// Theorem 5's right-hand side `‖c‖_p/k^{1/p} + ‖c‖_∞` (unit
    /// constant).
    pub bound: f64,
    /// `max_boundary / bound` — must stay bounded across instance sweeps
    /// for the theorem to count as reproduced.
    pub bound_ratio: f64,
    /// Name of the splitter that drove the pipeline.
    pub splitter: String,
    /// Number of classes.
    pub k: usize,
    /// Norm exponent `p` of the splittability assumption.
    pub p: f64,
    /// Whether eq. (1) holds, judged by the same scale-invariant relative
    /// tolerance as [`Coloring::is_strictly_balanced`].
    pub strict: bool,
    /// Intermediate colorings, for ablation experiments.
    pub stages: StageReport,
    /// Wall-clock milliseconds per pipeline stage
    /// `[Prop 7, Prop 11, Prop 12]` of the solve that produced this
    /// report (perf baselines; `BENCH_6.json`).
    pub stage_millis: [f64; 3],
    /// Certified optimality gap — the best lower bound from the
    /// [`lower_bounds`](crate::lower_bounds) certifier stack paired with
    /// this solve's achieved cost. `None` from a plain
    /// [`Solver::solve`](crate::api::Solver::solve) (certification is
    /// off the hot path); filled by
    /// [`Solver::solve_certified`](crate::api::Solver::solve_certified).
    pub certified: Option<CertifiedGap>,
    /// How the degradation ladder served this report: which rung
    /// answered, what happened to the rungs above it, budget spent.
    /// `None` from the plain [`Solver`](crate::api::Solver) entry points;
    /// filled by
    /// [`ResilientSolver::solve`](crate::resilient::ResilientSolver::solve).
    pub resilience: Option<crate::resilient::Resilience>,
}

impl Report {
    #[allow(clippy::too_many_arguments)] // internal assembly of the full report row
    pub(crate) fn assemble(
        g: &mmb_graph::Graph,
        costs: &[f64],
        weights: &[f64],
        w_max: f64,
        c_max: f64,
        c_norm_p: f64,
        k: usize,
        p: f64,
        splitter: String,
        stage1: Coloring,
        stage2: Coloring,
        stage3: Coloring,
    ) -> Self {
        let boundary_costs = stage3.boundary_costs(g, costs);
        let class_weights = stage3.class_measures(weights);
        let max_boundary = norm_inf(&boundary_costs);
        let bound = bounds::theorem5(p, k, c_norm_p, c_max);
        Report {
            class_weights,
            strict_defect: stage3.strict_balance_defect(weights),
            strict_slack: bounds::strict_slack(k, w_max),
            max_boundary,
            avg_boundary: norm_1(&boundary_costs) / k as f64,
            bound,
            bound_ratio: max_boundary / bound.max(1e-300),
            splitter,
            k,
            p,
            strict: stage3.is_strictly_balanced(weights),
            stages: StageReport {
                multibalanced: stage1,
                almost_strict: stage2,
            },
            boundary_costs,
            coloring: stage3,
            stage_millis: [0.0; 3],
            certified: None,
            resilience: None,
        }
    }

    /// Whether eq. (1) holds — the cached verdict of
    /// [`Coloring::is_strictly_balanced`] on the final coloring (same
    /// scale-invariant tolerance as everywhere else in the workspace).
    pub fn is_strictly_balanced(&self) -> bool {
        self.strict
    }

    /// The per-class table, one [`ClassRow`] per class.
    pub fn class_table(&self) -> Vec<ClassRow> {
        self.class_weights
            .iter()
            .zip(&self.boundary_costs)
            .enumerate()
            .map(|(class, (&weight, &boundary_cost))| ClassRow {
                class,
                weight,
                boundary_cost,
            })
            .collect()
    }

    /// Bridge to the legacy [`Decomposition`] shape (used by the
    /// [`decompose`](crate::pipeline::decompose) wrapper).
    pub fn into_decomposition(self) -> Decomposition {
        Decomposition {
            boundary_costs: self.boundary_costs,
            class_weights: self.class_weights,
            strict_defect: self.strict_defect,
            stages: (self.stages.multibalanced, self.stages.almost_strict),
            coloring: self.coloring,
        }
    }
}
