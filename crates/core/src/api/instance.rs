//! The validated, cached problem instance.
//!
//! An [`Instance`] bundles everything Theorem 4 takes as given — the host
//! graph, edge costs `c`, vertex weights `w`, and any extra measures for
//! the multi-balanced variant — behind a constructor that validates once
//! (lengths, finiteness, non-negativity) and precomputes the derived
//! quantities every downstream consumer keeps re-deriving: `‖w‖_∞`,
//! `‖w‖₁`, `‖c‖_∞`, `‖c‖₁`, the maximum cost-weighted degree `Δ_c`, and
//! the full-domain [`VertexSet`]. Construction is `O(n + m)`; everything
//! after is a field read.
//!
//! Geometry travels with the instance: [`Instance::from_grid`] keeps the
//! integer embedding a [`GridGraph`] carries, and [`Instance::new`]
//! lazily runs structure detection ([`mmb_graph::recognize`]) the first
//! time someone asks — which is how
//! [`SplitterChoice::Auto`](crate::api::SplitterChoice) picks GridSplit
//! for lattices, the DFS splitter for forests, prefix splitting for
//! paths, and the BFS fallback for everything else.

use std::sync::OnceLock;

use mmb_graph::fingerprint::Fingerprint;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::measure::{cost_degree_measure, norm_1, norm_inf, total_edge_norm_p};
use mmb_graph::recognize::{recognize, Structure};
use mmb_graph::stats::InstanceStats;
use mmb_graph::{Graph, VertexSet};

use crate::api::error::{validate_costs, validate_weights, InstanceError};

/// How the instance holds its graph: bare, or with grid geometry.
enum Host {
    Plain(Graph),
    Grid(GridGraph),
}

/// A validated decomposition instance `(G, c, w[, extra measures])` with
/// cached derived quantities.
///
/// Build one with [`Instance::new`] (bare graph, structure detected
/// lazily) or [`Instance::from_grid`] (geometry preserved), then hand it
/// to [`Solver::for_instance`](crate::api::Solver::for_instance) — or to
/// any [`Partitioner`](crate::api::Partitioner).
pub struct Instance {
    host: Host,
    costs: Vec<f64>,
    weights: Vec<f64>,
    extras: Vec<Vec<f64>>,
    domain: VertexSet,
    w_max: f64,
    w_total: f64,
    c_max: f64,
    c_total: f64,
    delta_c: f64,
    detected: OnceLock<Structure>,
    fingerprint: OnceLock<Fingerprint>,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("n", &self.graph().num_vertices())
            .field("m", &self.graph().num_edges())
            .field("extras", &self.extras.len())
            .field("family", &self.family())
            .finish()
    }
}

fn validate(graph: &Graph, costs: &[f64], weights: &[f64]) -> Result<(), InstanceError> {
    validate_weights(graph.num_vertices(), weights)?;
    validate_costs(graph.num_edges(), costs)
}

impl Instance {
    /// Validate and cache an instance over a bare [`Graph`]. The graph
    /// family (for automatic splitter choice) is detected lazily on first
    /// use.
    pub fn new(graph: Graph, costs: Vec<f64>, weights: Vec<f64>) -> Result<Self, InstanceError> {
        validate(&graph, &costs, &weights)?;
        Ok(Self::build(Host::Plain(graph), costs, weights))
    }

    /// Validate and cache an instance over a [`GridGraph`], preserving its
    /// integer embedding so `SplitterChoice::Auto` (and explicit
    /// `SplitterChoice::Grid`) can run GridSplit on *any* grid subset —
    /// including irregular ones structure detection would refuse.
    pub fn from_grid(
        grid: GridGraph,
        costs: Vec<f64>,
        weights: Vec<f64>,
    ) -> Result<Self, InstanceError> {
        validate(&grid.graph, &costs, &weights)?;
        Ok(Self::build(Host::Grid(grid), costs, weights))
    }

    fn build(host: Host, costs: Vec<f64>, weights: Vec<f64>) -> Self {
        let graph = match &host {
            Host::Plain(g) => g,
            Host::Grid(gg) => &gg.graph,
        };
        let domain = VertexSet::full(graph.num_vertices());
        let delta_c = norm_inf(&cost_degree_measure(graph, &costs));
        let (w_max, w_total) = (norm_inf(&weights), norm_1(&weights));
        let (c_max, c_total) = (norm_inf(&costs), norm_1(&costs));
        Instance {
            host,
            costs,
            weights,
            extras: Vec::new(),
            domain,
            w_max,
            w_total,
            c_max,
            c_total,
            delta_c,
            detected: OnceLock::new(),
            fingerprint: OnceLock::new(),
        }
    }

    /// Assemble an instance from parts whose touched entries were already
    /// validated by [`InstanceDelta::apply`](crate::api::InstanceDelta) —
    /// the warm-mutation constructor. Skips the `O(n + m)` finiteness
    /// checks (the untouched entries passed them when the base instance
    /// was built); the cheap derived aggregates (`‖w‖_∞`, `Δ_c`, …) are
    /// recomputed in one streaming pass, since each is data-dependent on
    /// every entry.
    pub(crate) fn from_validated_parts(
        graph: Graph,
        costs: Vec<f64>,
        weights: Vec<f64>,
        extras: Vec<Vec<f64>>,
    ) -> Self {
        let mut inst = Self::build(Host::Plain(graph), costs, weights);
        inst.extras = extras;
        inst
    }

    /// Seed the memoized structure slot from a cached recognition result
    /// (`SolverArtifacts`), so a warm build never re-runs detection. A
    /// no-op if detection already ran on this instance.
    pub(crate) fn seed_structure(&self, s: Structure) {
        let _ = self.detected.set(s);
    }

    /// Add an extra measure to be weakly balanced alongside the weights
    /// (the conclusion's multi-balanced variant). Validates length and
    /// finiteness; chainable.
    pub fn with_extra_measure(mut self, measure: Vec<f64>) -> Result<Self, InstanceError> {
        let n = self.graph().num_vertices();
        if measure.len() != n {
            return Err(InstanceError::MeasureLength {
                index: self.extras.len(),
                got: measure.len(),
                expected: n,
            });
        }
        if measure.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err(InstanceError::NotFinite {
                what: "extra measure",
            });
        }
        self.extras.push(measure);
        Ok(self)
    }

    /// The host graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        match &self.host {
            Host::Plain(g) => g,
            Host::Grid(gg) => &gg.graph,
        }
    }

    /// Grid geometry, if any: the embedding given to
    /// [`Instance::from_grid`], or the one structure detection
    /// reconstructed for a full lattice.
    pub fn grid(&self) -> Option<&GridGraph> {
        match &self.host {
            Host::Grid(gg) => Some(gg),
            Host::Plain(_) => match self.structure() {
                Structure::Grid(gg) => Some(gg),
                _ => None,
            },
        }
    }

    /// Edge costs `c`, indexed by edge id.
    #[inline]
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Vertex weights `w`, indexed by vertex id.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The extra measures, in insertion order.
    pub fn extra_measures(&self) -> &[Vec<f64>] {
        &self.extras
    }

    /// `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph().num_vertices()
    }

    /// `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph().num_edges()
    }

    /// The full vertex set, cached (the pipeline's working domain).
    #[inline]
    pub fn domain(&self) -> &VertexSet {
        &self.domain
    }

    /// `‖w‖_∞`, cached.
    #[inline]
    pub fn max_weight(&self) -> f64 {
        self.w_max
    }

    /// `‖w‖₁`, cached.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.w_total
    }

    /// `‖c‖_∞`, cached.
    #[inline]
    pub fn max_cost(&self) -> f64 {
        self.c_max
    }

    /// `‖c‖₁`, cached.
    #[inline]
    pub fn total_cost(&self) -> f64 {
        self.c_total
    }

    /// The maximum cost-weighted degree `Δ_c = max_v c(δ(v))`, cached.
    #[inline]
    pub fn max_cost_degree(&self) -> f64 {
        self.delta_c
    }

    /// `‖c‖_p` (computed on demand, `O(m)`; the [`Solver`] caches it per
    /// configured `p`).
    ///
    /// [`Solver`]: crate::api::Solver
    pub fn cost_norm(&self, p: f64) -> f64 {
        total_edge_norm_p(self.graph(), &self.costs, p)
    }

    /// Full "well-behavedness" statistics (fluctuations, degrees);
    /// computed on demand.
    pub fn stats(&self) -> InstanceStats {
        InstanceStats::compute(self.graph(), &self.costs)
    }

    /// The detected structure of the host graph (memoized; runs
    /// [`mmb_graph::recognize::recognize`] on first call for bare-graph
    /// instances).
    pub fn structure(&self) -> &Structure {
        self.detected.get_or_init(|| match &self.host {
            Host::Grid(gg) => Structure::Grid(Box::new(gg.clone())),
            Host::Plain(g) => recognize(g),
        })
    }

    /// Short family name: `"grid"`, `"forest"`, `"path"`, or
    /// `"arbitrary"`. Grid-hosted instances report `"grid"` without
    /// running detection.
    pub fn family(&self) -> &'static str {
        match &self.host {
            Host::Grid(_) => "grid",
            Host::Plain(_) => self.structure().name(),
        }
    }

    /// The instance's canonical [`Fingerprint`] (structure, cost and
    /// weight digests; see [`mmb_graph::fingerprint`]). Computed on first
    /// use (`O(n + m)`), memoized after — the identity the warm-path
    /// caches key on.
    pub fn fingerprint(&self) -> Fingerprint {
        *self
            .fingerprint
            .get_or_init(|| Fingerprint::of_parts(self.graph(), &self.costs, &self.weights))
    }

    /// The measures the pipeline weakly balances: `w` first, then the
    /// extras (borrowed view).
    pub(crate) fn balance_measures(&self) -> Vec<&[f64]> {
        std::iter::once(self.weights.as_slice())
            .chain(self.extras.iter().map(|m| m.as_slice()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::misc::path;
    use mmb_graph::graph::graph_from_edges;

    #[test]
    fn caches_derived_quantities() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let inst = Instance::new(g, vec![1.0, 2.0, 4.0], vec![1.0, 3.0, 0.5, 2.0]).unwrap();
        assert_eq!(inst.max_weight(), 3.0);
        assert_eq!(inst.total_weight(), 6.5);
        assert_eq!(inst.max_cost(), 4.0);
        assert_eq!(inst.total_cost(), 7.0);
        assert_eq!(inst.max_cost_degree(), 6.0); // vertex 2: 2 + 4
        assert_eq!(inst.domain().len(), 4);
        assert!((inst.cost_norm(2.0) - 21f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn every_validation_error_fires() {
        let g = path(3);
        assert_eq!(
            Instance::new(g.clone(), vec![1.0; 2], vec![1.0; 2]).unwrap_err(),
            InstanceError::WeightLength {
                got: 2,
                expected: 3
            }
        );
        assert_eq!(
            Instance::new(g.clone(), vec![1.0; 5], vec![1.0; 3]).unwrap_err(),
            InstanceError::CostLength {
                got: 5,
                expected: 2
            }
        );
        assert_eq!(
            Instance::new(g.clone(), vec![1.0; 2], vec![1.0, f64::NAN, 1.0]).unwrap_err(),
            InstanceError::NotFinite { what: "weights" }
        );
        assert_eq!(
            Instance::new(g.clone(), vec![1.0; 2], vec![1.0, -2.0, 1.0]).unwrap_err(),
            InstanceError::NotFinite { what: "weights" }
        );
        assert_eq!(
            Instance::new(g.clone(), vec![1.0, f64::INFINITY], vec![1.0; 3]).unwrap_err(),
            InstanceError::NotFinite { what: "costs" }
        );
        let inst = Instance::new(g.clone(), vec![1.0; 2], vec![1.0; 3]).unwrap();
        assert_eq!(
            inst.with_extra_measure(vec![1.0; 4]).unwrap_err(),
            InstanceError::MeasureLength {
                index: 0,
                got: 4,
                expected: 3
            }
        );
        let inst = Instance::new(g, vec![1.0; 2], vec![1.0; 3]).unwrap();
        assert_eq!(
            inst.with_extra_measure(vec![1.0, -1.0, 0.0]).unwrap_err(),
            InstanceError::NotFinite {
                what: "extra measure"
            }
        );
    }

    #[test]
    fn family_detection_is_lazy_and_memoized() {
        let inst = Instance::new(path(6), vec![1.0; 5], vec![1.0; 6]).unwrap();
        assert_eq!(inst.family(), "path");
        assert_eq!(inst.family(), "path"); // second call hits the memo
    }

    #[test]
    fn grid_host_reports_grid_without_detection() {
        let grid = GridGraph::percolation(&[8, 8], 0.7, 3);
        let n = grid.graph.num_vertices();
        let m = grid.graph.num_edges();
        let inst = Instance::from_grid(grid, vec![1.0; m], vec![1.0; n]).unwrap();
        assert_eq!(inst.family(), "grid");
        assert!(inst.grid().is_some());
    }

    #[test]
    fn plain_lattice_gets_reconstructed_geometry() {
        let grid = GridGraph::lattice(&[4, 5]);
        let m = grid.graph.num_edges();
        let inst = Instance::new(grid.graph, vec![1.0; m], vec![1.0; 20]).unwrap();
        assert_eq!(inst.family(), "grid");
        assert_eq!(inst.grid().unwrap().dim, 2);
    }
}
