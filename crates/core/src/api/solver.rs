//! The reusable solver: build once, `solve()` many times.
//!
//! [`Solver`] is the serve-heavy entry point of the library. Building one
//! (via the [`SolverBuilder`]) fixes the instance, the class count `k`,
//! the pipeline configuration, and — crucially — *constructs the splitter
//! once*: GridSplit's cost scaling, the tree splitter's forest check, the
//! path order, all happen at [`SolverBuilder::build`] time, together with
//! the splitting-cost measure `π` (Definition 10) and `‖c‖_p`, so
//! repeated [`Solver::solve`] calls on the same instance only pay for the
//! pipeline itself.
//!
//! ```
//! use mmb_core::api::{Instance, Solver, SplitterChoice};
//! use mmb_graph::gen::grid::GridGraph;
//!
//! let grid = GridGraph::lattice(&[8, 8]);
//! let costs = vec![1.0; grid.graph.num_edges()];
//! let weights = vec![1.0; grid.graph.num_vertices()];
//! let inst = Instance::from_grid(grid, costs, weights).unwrap();
//! let solver = Solver::for_instance(&inst)
//!     .classes(4)
//!     .p(2.0)
//!     .splitter(SplitterChoice::Auto)
//!     .build()
//!     .unwrap();
//! let report = solver.solve(); // reusable: call again without rebuilding
//! assert!(report.is_strictly_balanced());
//! assert_eq!(solver.family(), "grid");
//! ```

use std::sync::Arc;

use mmb_graph::recognize::Structure;
use mmb_graph::workspace::Workspace;
use mmb_graph::Coloring;
use mmb_splitters::bfs::BfsSplitter;
use mmb_splitters::grid::GridSplitter;
use mmb_splitters::order::OrderSplitter;
use mmb_splitters::tree::TreeSplitter;
use mmb_splitters::Splitter;
use rayon::prelude::*;

use crate::api::artifacts::SolverArtifacts;
use crate::api::delta::InstanceDelta;
use crate::api::error::SolveError;
use crate::api::instance::Instance;
use crate::api::report::Report;
use crate::multibalance::multibalance_minmax_with_pi_ws;
use crate::pi::splitting_cost_measure_within;
use crate::pipeline::{PipelineConfig, ScratchPolicy};
use crate::shrink::{almost_strict_ws, ShrinkParams};
use crate::strict::binpack2;

/// Which splitter family drives the pipeline.
///
/// The lifetime `'i` bounds a [`SplitterChoice::Custom`] splitter; the
/// other variants are `'static` descriptions.
pub enum SplitterChoice<'i> {
    /// Pick by the instance's structure: grid geometry → GridSplit
    /// (Theorem 19), forest → smallest-subtree DFS, union of paths →
    /// prefix splitting along the walk, anything else → the BFS fallback.
    Auto,
    /// GridSplit; requires grid geometry (given or detected), else
    /// [`SolveError::SplitterUnavailable`].
    Grid,
    /// The forest splitter; requires an acyclic instance.
    Tree,
    /// Prefix splitting in vertex-id order (always available; quality
    /// depends entirely on the order's locality).
    Order,
    /// The BFS engineering baseline (always available, no guarantee).
    Bfs,
    /// Bring your own [`Splitter`] (e.g. a
    /// [`SeparatorSplitter`](mmb_splitters::separator::SeparatorSplitter)
    /// or an instrumented
    /// [`RecordingSplitter`](mmb_splitters::recording::RecordingSplitter)).
    Custom(Box<dyn Splitter + 'i>),
}

impl std::fmt::Debug for SplitterChoice<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SplitterChoice::Auto => "Auto",
            SplitterChoice::Grid => "Grid",
            SplitterChoice::Tree => "Tree",
            SplitterChoice::Order => "Order",
            SplitterChoice::Bfs => "Bfs",
            SplitterChoice::Custom(_) => "Custom(..)",
        })
    }
}

/// Construct the splitter [`SplitterChoice::Auto`] would pick for `inst`,
/// together with the family label it matched.
///
/// Exposed so baselines (recursive bisection) and harness code can drive
/// *their* algorithms with the same automatically selected splitter.
pub fn auto_splitter(inst: &Instance) -> (Box<dyn Splitter + '_>, &'static str) {
    if let Some(grid) = inst.grid() {
        return (Box::new(GridSplitter::new(grid, inst.costs())), "grid");
    }
    match inst.structure() {
        Structure::Path { positions } => (
            Box::new(OrderSplitter::by_key(
                inst.num_vertices(),
                positions.clone(),
                "order/path",
            )),
            "path",
        ),
        Structure::Forest => (Box::new(TreeSplitter::new(inst.graph())), "forest"),
        // `inst.grid()` above already surfaced detected lattices; this arm
        // is unreachable but kept total.
        Structure::Grid(gg) => (Box::new(GridSplitter::new(gg, inst.costs())), "grid"),
        Structure::Arbitrary => (Box::new(BfsSplitter::new(inst.graph())), "arbitrary"),
    }
}

/// Builder for a [`Solver`]; obtained from [`Solver::for_instance`].
pub struct SolverBuilder<'i> {
    inst: &'i Instance,
    k: usize,
    cfg: PipelineConfig,
    choice: SplitterChoice<'i>,
    artifacts: Option<Arc<SolverArtifacts>>,
}

impl<'i> SolverBuilder<'i> {
    /// Number of classes `k` (required; `build` fails with
    /// [`SolveError::ZeroColors`] if unset or 0).
    pub fn classes(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Norm exponent `p > 1` of the splittability assumption (default 2;
    /// use `d/(d−1)` for `d`-dimensional grids).
    pub fn p(mut self, p: f64) -> Self {
        self.cfg.p = p;
        self
    }

    /// Shrink-and-conquer tunables (default [`ShrinkParams::default`]).
    pub fn shrink(mut self, params: ShrinkParams) -> Self {
        self.cfg.shrink = params;
        self
    }

    /// Skip the Proposition 11 stage (ablation switch, experiment E8).
    pub fn skip_shrink(mut self, skip: bool) -> Self {
        self.cfg.skip_shrink = skip;
        self
    }

    /// Replace the whole pipeline configuration at once.
    pub fn config(mut self, cfg: PipelineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Splitter family (default [`SplitterChoice::Auto`]).
    pub fn splitter(mut self, choice: SplitterChoice<'i>) -> Self {
        self.choice = choice;
        self
    }

    /// Warm-start construction from cached [`SolverArtifacts`] (usually
    /// handed out by a [`SolverCache`](crate::api::SolverCache)). If the
    /// snapshot [`matches`](SolverArtifacts::matches) this builder's
    /// instance and `p` exactly, `build` reuses its recognition verdict,
    /// `π`, and `‖c‖_p` instead of recomputing them; a non-matching
    /// snapshot is silently ignored and construction runs cold, so stale
    /// cache handoffs can never corrupt a solver.
    pub fn artifacts(mut self, artifacts: Arc<SolverArtifacts>) -> Self {
        self.artifacts = Some(artifacts);
        self
    }

    /// Resolve the splitter, precompute `π` and `‖c‖_p` (or reuse them
    /// from [`SolverBuilder::artifacts`]), and return the reusable
    /// [`Solver`].
    pub fn build(self) -> Result<Solver<'i>, SolveError> {
        if self.k == 0 {
            return Err(SolveError::ZeroColors);
        }
        // The pipeline's p-norm machinery requires finite p ≥ 1 (the
        // theorems additionally want p > 1); reject here so `solve()`
        // stays infallible.
        if !(self.cfg.p.is_finite() && self.cfg.p >= 1.0) {
            return Err(SolveError::InvalidExponent { p: self.cfg.p });
        }
        let inst = self.inst;
        // Exact-match check before anything downstream consumes the
        // snapshot; seeding the memoized structure slot must happen
        // before the splitter resolution below triggers detection.
        let warm = self
            .artifacts
            .as_ref()
            .filter(|a| a.matches(inst, self.cfg.p))
            .cloned();
        if let Some(a) = &warm {
            inst.seed_structure(a.structure().clone());
        }
        let (splitter, family): (Box<dyn Splitter + 'i>, &'static str) = match self.choice {
            SplitterChoice::Auto => auto_splitter(inst),
            SplitterChoice::Grid => match inst.grid() {
                Some(grid) => (Box::new(GridSplitter::new(grid, inst.costs())), "grid"),
                None => {
                    return Err(SolveError::SplitterUnavailable {
                        requested: "grid",
                        structure: inst.family(),
                    })
                }
            },
            SplitterChoice::Tree => {
                // Eligibility is actual acyclicity, not the detected
                // family label — an acyclic grid subset is a fine forest.
                let g = inst.graph();
                let (_, components) = g.components();
                if g.num_edges() + components == g.num_vertices() {
                    (Box::new(TreeSplitter::new(g)), "forest")
                } else {
                    return Err(SolveError::SplitterUnavailable {
                        requested: "tree",
                        structure: inst.family(),
                    });
                }
            }
            SplitterChoice::Order => (Box::new(OrderSplitter::by_id(inst.graph())), "order"),
            SplitterChoice::Bfs => (Box::new(BfsSplitter::new(inst.graph())), "bfs"),
            SplitterChoice::Custom(b) => (b, "custom"),
        };
        let (pi, c_norm_p): (Arc<[f64]>, f64) = match &warm {
            Some(a) => (Arc::clone(a.pi()), a.c_norm_p()),
            None => (
                splitting_cost_measure_within(
                    inst.graph(),
                    inst.costs(),
                    self.cfg.p,
                    1.0,
                    inst.domain(),
                )
                .into(),
                inst.cost_norm(self.cfg.p),
            ),
        };
        Ok(Solver {
            inst,
            k: self.k,
            cfg: self.cfg,
            splitter,
            family,
            pi,
            c_norm_p,
        })
    }
}

/// A built, reusable solver: the Theorem 4 pipeline bound to one
/// [`Instance`], one `k`, one splitter.
///
/// All per-instance work that does not depend on the run itself — input
/// validation, splitter construction, the splitting-cost measure `π`,
/// `‖c‖_p` — happened at build time; [`Solver::solve`] only runs the
/// three pipeline stages. See the [module docs](self) for an example.
pub struct Solver<'i> {
    inst: &'i Instance,
    k: usize,
    cfg: PipelineConfig,
    splitter: Box<dyn Splitter + 'i>,
    family: &'static str,
    /// Splitting-cost measure `π` (Definition 10), precomputed per `p`;
    /// refcounted so a [`SolverCache`](crate::api::SolverCache) snapshot
    /// and any number of warm solvers share one buffer.
    pi: Arc<[f64]>,
    /// `‖c‖_p` for the Theorem 5 bound in reports.
    c_norm_p: f64,
}

impl<'i> Solver<'i> {
    /// Start building a solver for `inst`.
    pub fn for_instance(inst: &'i Instance) -> SolverBuilder<'i> {
        SolverBuilder {
            inst,
            k: 0,
            cfg: PipelineConfig::default(),
            choice: SplitterChoice::Auto,
            artifacts: None,
        }
    }

    /// Run the Theorem 4 pipeline (Proposition 7 → 11 → 12) and return a
    /// structured [`Report`]. Infallible: everything that can fail was
    /// checked at build time. Call repeatedly to amortize the build; the
    /// dense scratch buffers come from this thread's pooled
    /// [`Workspace`] (or fresh allocations under
    /// [`ScratchPolicy::Transient`]) and are amortized across calls too.
    pub fn solve(&self) -> Report {
        mmb_graph::workspace::with_scratch_mode(self.cfg.scratch, || match self.cfg.scratch {
            ScratchPolicy::Reuse => Workspace::with_local(|ws| self.solve_in(ws)),
            ScratchPolicy::Transient => self.solve_in(&Workspace::transient()),
        })
    }

    fn solve_in(&self, ws: &Workspace) -> Report {
        if let Some(cc) = self.cfg.coarsen {
            if self.inst.num_vertices() > cc.params.target_vertices {
                if let Some(report) = self.solve_coarsened(&cc, ws) {
                    return report;
                }
            }
        }
        let inst = self.inst;
        let (g, costs, weights) = (inst.graph(), inst.costs(), inst.weights());
        let domain = inst.domain();
        let user = inst.balance_measures();

        // lint: allow(nondeterminism) — the four stage timestamps feed only
        // the report's observational `timings` field, never the coloring.
        let t0 = std::time::Instant::now();
        crate::failpoint::raise_any("pipeline::multibalance");
        let stage1 = multibalance_minmax_with_pi_ws(
            g,
            costs,
            &self.splitter,
            self.k,
            domain,
            &user,
            &self.pi,
            ws,
        );
        // lint: allow(nondeterminism) — observational timing only, as above.
        let t1 = std::time::Instant::now();
        crate::failpoint::raise_any("pipeline::shrink");
        let stage2 = if self.cfg.skip_shrink {
            stage1.coloring.clone()
        } else {
            almost_strict_ws(
                g,
                costs,
                &self.splitter,
                &stage1.coloring,
                domain,
                weights,
                self.cfg.p,
                &self.cfg.shrink,
                ws,
            )
        };
        // lint: allow(nondeterminism) — observational timing only, as above.
        let t2 = std::time::Instant::now();
        crate::failpoint::raise_any("pipeline::binpack");
        let stage3 = binpack2(g, &self.splitter, &stage2, domain, weights);
        // lint: allow(nondeterminism) — observational timing only, as above.
        let t3 = std::time::Instant::now();
        debug_assert!(stage3.is_total(), "pipeline must color every vertex");

        let mut report = Report::assemble(
            g,
            costs,
            weights,
            inst.max_weight(),
            inst.max_cost(),
            self.c_norm_p,
            self.k,
            self.cfg.p,
            self.splitter.name().to_owned(),
            stage1.coloring,
            stage2,
            stage3,
        );
        report.stage_millis = [
            (t1 - t0).as_secs_f64() * 1e3,
            (t2 - t1).as_secs_f64() * 1e3,
            (t3 - t2).as_secs_f64() * 1e3,
        ];
        report
    }

    /// The large-`n` path (see [`crate::coarsen`] and DESIGN.md §13):
    /// contract the host down to the cascade target, run the three stages
    /// there via a coarse sub-solver, project the result back with
    /// per-level KL refinement, and restore strict balance on the host
    /// with a final `BinPack2` — projection preserves class weights
    /// exactly, but the host's smaller `‖w‖∞` tightens eq. (1), so the
    /// rebalance is mandatory, not defensive. Returns `None` when no
    /// contraction was possible (edgeless host), in which case the caller
    /// falls through to the direct solve.
    fn solve_coarsened(
        &self,
        cc: &crate::pipeline::CoarsenConfig,
        ws: &Workspace,
    ) -> Option<Report> {
        let inst = self.inst;
        let (g, costs, weights) = (inst.graph(), inst.costs(), inst.weights());

        // lint: allow(nondeterminism) — timestamps feed only the report's
        // observational `timings` field, never the coloring.
        let t0 = std::time::Instant::now();
        let front = crate::coarsen::CoarseningFront::build(g, costs, weights, &cc.params);
        if front.num_levels() == 0 {
            return None;
        }
        let (cg, ccosts, cweights) = front.coarsest((g, costs, weights));
        let mut coarse_inst = Instance::new(cg.clone(), ccosts.to_vec(), cweights.to_vec())
            .expect("contraction of a valid instance is valid");
        for m in inst.extra_measures() {
            coarse_inst = coarse_inst
                .with_extra_measure(front.coarsen_measure(m))
                .expect("coarsened measure of a valid measure is valid");
        }
        let coarse_solver = Solver::for_instance(&coarse_inst)
            .classes(self.k)
            .config(PipelineConfig {
                coarsen: None,
                ..self.cfg.clone()
            })
            .build()
            .expect("k and p were validated at the host build");
        let coarse = coarse_solver.solve_in(ws);
        // lint: allow(nondeterminism) — observational timing only, as above.
        let t1 = std::time::Instant::now();

        // Intermediate stages project plainly (they are ablation data);
        // the final coloring projects with per-level KL refinement.
        let host_map = front.host_map(g.num_vertices());
        let project_plain = |chi: &mmb_graph::Coloring| {
            let mut out = mmb_graph::Coloring::new_uncolored(g.num_vertices(), self.k);
            for v in 0..g.num_vertices() as u32 {
                if let Some(c) = chi.get(host_map[v as usize]) {
                    out.set(v, c);
                }
            }
            out
        };
        let stage1 = project_plain(&coarse.stages.multibalanced);
        let stage2 = project_plain(&coarse.stages.almost_strict);
        let projected = front
            .project_to_host((g, costs, weights), coarse.coloring, |fg, fc, fw, chi| {
                crate::refine::refine(fg, fc, fw, chi, &cc.kl)
            })
            .expect("level triples are valid by construction");
        let stage3 = binpack2(g, &self.splitter, &projected, inst.domain(), weights);
        // lint: allow(nondeterminism) — observational timing only, as above.
        let t2 = std::time::Instant::now();
        debug_assert!(stage3.is_total(), "cascade must color every vertex");

        let mut report = Report::assemble(
            g,
            costs,
            weights,
            inst.max_weight(),
            inst.max_cost(),
            self.c_norm_p,
            self.k,
            self.cfg.p,
            self.splitter.name().to_owned(),
            stage1,
            stage2,
            stage3,
        );
        // Coarsening folds into stage 1's slot, projection + rebalance
        // into stage 3's; stage 2 keeps the coarse shrink time.
        let coarsen_ms = (t1 - t0).as_secs_f64() * 1e3 - coarse.stage_millis.iter().sum::<f64>();
        report.stage_millis = [
            coarsen_ms.max(0.0) + coarse.stage_millis[0],
            coarse.stage_millis[1],
            coarse.stage_millis[2] + (t2 - t1).as_secs_f64() * 1e3,
        ];
        Some(report)
    }

    /// [`Solver::solve`], plus a certified optimality gap: the
    /// [`lower_bounds`](crate::lower_bounds) certifier stack runs on the
    /// instance and its best bound is paired with the achieved cost into
    /// [`Report::certified`]. Certification cost is independent of the
    /// solve itself (sort/knapsack passes, a size-capped Stoer–Wagner,
    /// the exact oracle only at `n ≤ 16`), so the plain [`Solver::solve`]
    /// hot path never pays for it.
    pub fn solve_certified(&self) -> Report {
        let mut report = self.solve();
        report.certified = Some(crate::lower_bounds::certify(
            self.inst,
            self.k,
            report.max_boundary,
        ));
        report
    }

    /// [`Solver::solve`], then spend the budgets in `cfg` improving the
    /// pipeline's coloring with the branch-and-bound engine of
    /// [`crate::bnb`], seeded from it. The returned report is **never
    /// worse** than [`Solver::solve`]'s — at node budget 0 it *is* the
    /// pipeline's — and [`Report::certified`] always carries the
    /// engine's gap: ratio exactly 1.0 when the search exhausted (the
    /// coloring is the proven optimum), the root certifier-stack gap
    /// when it was truncated.
    pub fn solve_anytime(&self, cfg: &crate::bnb::BnbConfig) -> Report {
        use mmb_graph::measure::{norm_1, norm_inf};

        let mut report = self.solve();
        let sol =
            crate::bnb::solve_seeded(self.inst, self.k, cfg, Some(&report.coloring), &mut |_| {
                false
            })
            .expect("k ≥ 1 was checked at build time");
        if sol.max_boundary < report.max_boundary {
            // The search improved on the pipeline: refresh every field
            // derived from the final coloring (stages keep the pipeline's
            // intermediates — they are what the ablation experiments
            // want).
            let (g, costs, weights) = (self.inst.graph(), self.inst.costs(), self.inst.weights());
            report.boundary_costs = sol.coloring.boundary_costs(g, costs);
            report.class_weights = sol.coloring.class_measures(weights);
            report.strict_defect = sol.coloring.strict_balance_defect(weights);
            report.max_boundary = norm_inf(&report.boundary_costs);
            report.avg_boundary = norm_1(&report.boundary_costs) / self.k as f64;
            report.bound_ratio = report.max_boundary / report.bound.max(1e-300);
            report.strict = sol.coloring.is_strictly_balanced(weights);
            report.coloring = sol.coloring;
        }
        report.certified = Some(sol.gap);
        report
    }

    /// Warm re-solve after an [`InstanceDelta`]: mutate this solver's
    /// instance, re-seed the pipeline from `previous` (the coloring this
    /// solver — or an earlier `resolve_delta` — served for the
    /// pre-mutation instance), and repair only the delta's touched
    /// region instead of solving from scratch.
    ///
    /// The warm path: project `previous` onto the mutated instance,
    /// greedy-assign any appended vertices to the lightest class,
    /// KL-repair the touched closure ([`refine_region`]), and restore
    /// eq. (1) with a `BinPack2` pass only if the mutation broke strict
    /// balance. The candidate then faces **the same validation gate the
    /// resilient ladder serves through** — total, strictly balanced, no
    /// worse than the LPT floor — and on rejection the whole thing falls
    /// back to a cold [`SplitterChoice::Auto`] solve of the mutated
    /// instance (`DeltaSolve::warm` reports which path produced the
    /// served coloring). Either way, the returned coloring passed the
    /// gate: warm serving never trades away the strict-balance contract.
    ///
    /// Errors: [`SolveError::WarmStartMismatch`] when `previous` does not
    /// fit this solver's instance or `k`, or the delta's own typed
    /// [`InstanceError`](crate::api::InstanceError) wrapped in
    /// [`SolveError::Instance`].
    ///
    /// [`refine_region`]: crate::refine::refine_region
    pub fn resolve_delta(
        &self,
        delta: &InstanceDelta,
        previous: &Coloring,
    ) -> Result<DeltaSolve, SolveError> {
        if previous.k() != self.k {
            return Err(SolveError::WarmStartMismatch { what: "k" });
        }
        if previous.num_vertices() != self.inst.num_vertices() {
            return Err(SolveError::WarmStartMismatch { what: "n" });
        }
        let applied = delta.apply(self.inst)?;
        let inst2 = applied.instance;
        let touched = applied.touched;
        let (g, costs, weights) = (inst2.graph(), inst2.costs(), inst2.weights());
        let n_old = self.inst.num_vertices();

        // Project the incumbent onto the mutated instance (vertex ids of
        // survivors are stable; only appended vertices are new).
        let mut chi = Coloring::new_uncolored(inst2.num_vertices(), self.k);
        for v in 0..n_old as u32 {
            if let Some(c) = previous.get(v) {
                chi.set(v, c);
            }
        }
        // Appended (and any previously uncolored) vertices go to the
        // lightest class — the same greedy that makes the ladder's floor
        // rungs strict in any order.
        let mut loads = chi.class_measures(weights);
        for v in 0..inst2.num_vertices() as u32 {
            if chi.get(v).is_none() {
                let lightest = loads
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.total_cmp(b))
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                chi.set(v, lightest as u32);
                loads[lightest] += weights[v as usize];
            }
        }
        // KL repair, scoped to the touched closure, then one full-graph
        // sweep: the regional pass soaks up the local damage cheaply, and
        // the global pass lets repairs propagate past the closure when a
        // mutation shifted the balance landscape (still far cheaper than
        // a cold solve — no recognition, no Prop 7/11/12 stages).
        let params = crate::refine::KlParams::default();
        let chi = crate::refine::refine_region(g, costs, weights, &chi, &touched, &params)?;
        let mut chi = crate::refine::refine(g, costs, weights, &chi, &params)?;
        // The mutation (or the repair's balance envelope, which is looser
        // than eq. (1)) may have broken strict balance; restore it with
        // the Proposition 12 pass. `OrderSplitter::by_id` needs no
        // structure recognition and is always available.
        if !chi.is_strictly_balanced(weights) {
            let splitter = OrderSplitter::by_id(g);
            chi = binpack2(g, &splitter, &chi, inst2.domain(), weights);
        }

        // Second warm candidate: a full KL sweep seeded from the LPT
        // rung instead of the incumbent. When a mutation moves the
        // balance landscape enough that the incumbent's basin is no
        // longer the good one, this restart escapes it — still without
        // touching the pipeline.
        let lpt = crate::resilient::ladder::lpt_coloring(&inst2, self.k);
        let floor_cost = lpt.max_boundary_cost(g, costs);
        let mut restart = crate::refine::refine(g, costs, weights, &lpt, &params)?;
        if !restart.is_strictly_balanced(weights) {
            let splitter = OrderSplitter::by_id(g);
            restart = binpack2(g, &splitter, &restart, inst2.domain(), weights);
        }

        // The same gate the resilient ladder serves through; of the
        // candidates that pass it, serve the cheapest.
        let warm_best = [chi, restart]
            .into_iter()
            .filter_map(|cand| {
                crate::resilient::ladder::validate(&inst2, &cand, floor_cost)
                    .ok()
                    .map(|cost| (cand, cost))
            })
            .min_by(|(_, a), (_, b)| a.total_cmp(b));
        if let Some((coloring, cost)) = warm_best {
            return Ok(DeltaSolve {
                coloring,
                max_boundary: cost,
                floor_cost,
                warm: true,
                touched,
                instance: inst2,
            });
        }

        // Cold fallback: a fresh Auto-splitter solve of the mutated
        // instance, still gate-checked; if even the pipeline's output
        // fails the gate (it can exceed the LPT floor on adversarial
        // costs), serve the floor itself — it passes by construction.
        let report = Solver::for_instance(&inst2)
            .classes(self.k)
            .config(self.cfg.clone())
            .build()?
            .solve();
        let (coloring, max_boundary) =
            match crate::resilient::ladder::validate(&inst2, &report.coloring, floor_cost) {
                Ok(cost) => (report.coloring, cost),
                Err(_) => (lpt, floor_cost),
            };
        Ok(DeltaSolve {
            coloring,
            max_boundary,
            floor_cost,
            warm: false,
            touched,
            instance: inst2,
        })
    }

    /// The instance this solver is bound to.
    pub fn instance(&self) -> &'i Instance {
        self.inst
    }

    /// Number of classes `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Name of the constructed splitter (e.g. `"gridsplit"`, `"tree"`,
    /// `"order/path"`, `"bfs"`).
    pub fn splitter_name(&self) -> &str {
        self.splitter.name()
    }

    /// The family label the splitter choice resolved to. For
    /// [`SplitterChoice::Auto`] this is the detected structure — `"grid"`,
    /// `"forest"`, `"path"`, or `"arbitrary"` (BFS fallback) — and for
    /// explicit choices it names the choice (`"order"`, `"bfs"`,
    /// `"custom"`, …).
    pub fn family(&self) -> &'static str {
        self.family
    }
}

/// The outcome of a [`Solver::resolve_delta`] warm re-solve.
///
/// Owns the mutated [`Instance`] (build the next solver — or apply the
/// next delta — against it) and the served coloring, which passed the
/// ladder's validation gate on whichever path (`warm`) produced it.
#[derive(Debug)]
pub struct DeltaSolve {
    /// The mutated instance the coloring is for.
    pub instance: Instance,
    /// The served coloring: total, strictly balanced, within the floor.
    pub coloring: Coloring,
    /// `‖∂χ⁻¹‖_∞` of the served coloring.
    pub max_boundary: f64,
    /// The LPT floor rung's cost on the mutated instance — the gate's
    /// monotonicity bound.
    pub floor_cost: f64,
    /// `true` if the incumbent-repair path survived the gate; `false` if
    /// the result came from the cold fallback solve.
    pub warm: bool,
    /// The delta's touched vertex set (sorted), as repaired.
    pub touched: Vec<u32>,
}

impl std::fmt::Debug for Solver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("k", &self.k)
            .field("p", &self.cfg.p)
            .field("splitter", &self.splitter.name())
            .field("family", &self.family)
            .finish()
    }
}

/// Solve one instance with per-item isolation: build, solve, and convert
/// any panic into a typed [`SolveError::Panicked`] — the shared guts of
/// the batch entry points. One bad request must not poison its batch.
fn solve_one_isolated(
    inst: &Instance,
    k: usize,
    cfg: &PipelineConfig,
) -> Result<Report, SolveError> {
    crate::failpoint::raise("batch::item")?;
    // lint: allow(catch-unwind) — the batch isolation boundary: a panic in
    // one instance's solve becomes that item's typed error instead of
    // unwinding through the rayon worker and poisoning the whole batch.
    // Per-item state is rebuilt from scratch each call and the pooled
    // workspace rolls its epochs back via Drop, so the closure's captures
    // are sound to reuse after an unwind.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Solver::for_instance(inst)
            .classes(k)
            .config(cfg.clone())
            .build()
            .map(|solver| solver.solve())
    }))
    .unwrap_or_else(|payload| {
        Err(SolveError::Panicked {
            context: "solve_many",
            message: crate::failpoint::panic_message(payload.as_ref()),
        })
    })
}

/// Solve a batch of instances with a shared configuration — the
/// "serve many requests" entry point.
///
/// Instances are distributed over the `rayon` worker pool
/// (`RAYON_NUM_THREADS`-style override honored); each worker builds the
/// per-instance [`Solver`] with [`SplitterChoice::Auto`] and reuses its
/// **thread-local [`Workspace`]** across every instance it processes, so a
/// stream of requests pays for splitter construction once per instance and
/// for scratch allocation (almost) never.
///
/// **Partial-failure semantics:** each instance gets its own `Result`
/// slot, and a panic inside one item's solve is caught at the item
/// boundary and returned as that slot's [`SolveError::Panicked`] — one
/// poisoned request never takes down the rest of the batch (chaos-tested
/// in `tests/chaos.rs`).
///
/// Deterministic: results come back in input order, and each coloring is
/// bit-identical to what a one-at-a-time
/// `Solver::for_instance(inst).classes(k).config(cfg).build()?.solve()`
/// produces, for any thread count (property-tested in `tests/api.rs`).
pub fn solve_many(
    instances: &[Instance],
    k: usize,
    cfg: &PipelineConfig,
) -> Vec<Result<Report, SolveError>> {
    instances
        .par_iter()
        .map(|inst| solve_one_isolated(inst, k, cfg))
        .collect()
}

/// [`solve_many`] for **unvalidated** inputs: each `(graph, costs,
/// weights)` triple is validated into an [`Instance`] at its own batch
/// slot, so one malformed request (wrong vector length, NaN weight)
/// yields one typed `Err` — never a poisoned batch. The admission path a
/// serving edge puts in front of the solver pool.
pub fn solve_many_raw(
    inputs: Vec<(mmb_graph::Graph, Vec<f64>, Vec<f64>)>,
    k: usize,
    cfg: &PipelineConfig,
) -> Vec<Result<Report, SolveError>> {
    let admitted: Vec<Result<Instance, SolveError>> = inputs
        .into_iter()
        .map(|(g, costs, weights)| Instance::new(g, costs, weights).map_err(SolveError::from))
        .collect();
    admitted
        .par_iter()
        .map(|slot| match slot {
            Ok(inst) => solve_one_isolated(inst, k, cfg),
            Err(e) => Err(e.clone()),
        })
        .collect()
}
