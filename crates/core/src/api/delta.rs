//! Typed instance mutations with incremental re-validation.
//!
//! An [`InstanceDelta`] describes a small edit to an existing
//! [`Instance`] — the churn a serving workload generates: weights drift
//! as load moves, link costs get remeasured, the occasional vertex or
//! edge joins the topology. [`InstanceDelta::apply`] materializes the
//! mutated instance **without re-running the `O(n + m)` validation sweep
//! on untouched entries**: only the values the delta introduces are
//! checked (finiteness, non-negativity, index ranges, self-loops,
//! duplicate edges), everything else was validated when the base instance
//! was admitted. The cheap derived aggregates (`‖w‖_∞`, `Δ_c`, …) are
//! recomputed in one branch-free streaming pass — they are data-dependent
//! on every entry, so there is nothing conditional to skip.
//!
//! `apply` also reports the **touched region**: every vertex whose
//! incident data changed. `Solver::resolve_delta` repairs exactly this
//! region (KL moves on the touched frontier, then a strict re-pack only
//! if eq. (1) broke) instead of solving from scratch — see
//! [`crate::api::Solver::resolve_delta`].
//!
//! ## Edge-id canonicalization
//!
//! [`Graph`] stores edges canonically (`u < v`, sorted), so adding or
//! removing an edge renumbers the ids of later edges. Deltas therefore
//! reference edges by the **base** instance's edge ids; the mutated
//! instance re-canonicalizes, and chained deltas must be expressed
//! against the instance returned by the previous `apply`.

use mmb_graph::graph::graph_from_edges;
use mmb_graph::{EdgeId, Graph, VertexId};

use crate::api::error::InstanceError;
use crate::api::instance::Instance;

/// A typed batch of mutations against one base [`Instance`].
///
/// Build one with the chainable constructors, then run
/// [`InstanceDelta::apply`] (or hand it to
/// [`Solver::resolve_delta`](crate::api::Solver::resolve_delta) for the
/// warm re-solve). Empty deltas are valid and produce an identical
/// instance.
#[derive(Clone, Debug, Default)]
pub struct InstanceDelta {
    /// Weights of appended vertices; the `i`-th gets id `n + i`.
    new_vertices: Vec<f64>,
    /// Added edges (may reference appended vertices) with their costs.
    new_edges: Vec<(VertexId, VertexId, f64)>,
    /// Removed edges, by base-instance edge id.
    removed_edges: Vec<EdgeId>,
    /// Weight overwrites `(vertex, new weight)` on existing vertices.
    weight_updates: Vec<(VertexId, f64)>,
    /// Cost overwrites `(edge, new cost)` by base-instance edge id.
    cost_updates: Vec<(EdgeId, f64)>,
}

/// The result of [`InstanceDelta::apply`]: the mutated instance plus the
/// sorted, deduplicated set of vertices whose incident data changed.
#[derive(Debug)]
pub struct AppliedDelta {
    /// The mutated, validated instance.
    pub instance: Instance,
    /// Vertices touched by the delta (new vertices, endpoints of
    /// added/removed/re-priced edges, re-weighted vertices), sorted by
    /// id. The repair region of the warm re-solve.
    pub touched: Vec<VertexId>,
}

impl InstanceDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a vertex with the given weight. Its id in the mutated
    /// instance is `n + (number of vertices appended before it)`.
    pub fn add_vertex(mut self, weight: f64) -> Self {
        self.new_vertices.push(weight);
        self
    }

    /// Add edge `{u, v}` with the given cost. Endpoints may name
    /// appended vertices.
    pub fn add_edge(mut self, u: VertexId, v: VertexId, cost: f64) -> Self {
        self.new_edges.push((u, v, cost));
        self
    }

    /// Remove the edge with base-instance id `e`.
    pub fn remove_edge(mut self, e: EdgeId) -> Self {
        self.removed_edges.push(e);
        self
    }

    /// Overwrite vertex `v`'s weight.
    pub fn set_weight(mut self, v: VertexId, weight: f64) -> Self {
        self.weight_updates.push((v, weight));
        self
    }

    /// Overwrite the cost of the edge with base-instance id `e`.
    pub fn set_cost(mut self, e: EdgeId, cost: f64) -> Self {
        self.cost_updates.push((e, cost));
        self
    }

    /// Whether the delta mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.new_vertices.is_empty()
            && self.new_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.weight_updates.is_empty()
            && self.cost_updates.is_empty()
    }

    /// Number of individual mutations carried.
    pub fn len(&self) -> usize {
        self.new_vertices.len()
            + self.new_edges.len()
            + self.removed_edges.len()
            + self.weight_updates.len()
            + self.cost_updates.len()
    }

    /// Apply the delta to `base`, validating **only the touched
    /// entries**, and return the mutated instance together with the
    /// touched vertex set.
    ///
    /// Extra balance measures carry over; appended vertices contribute 0
    /// to every extra measure.
    pub fn apply(&self, base: &Instance) -> Result<AppliedDelta, InstanceError> {
        let g = base.graph();
        let n = g.num_vertices();
        let m = g.num_edges();
        let n2 = n + self.new_vertices.len();
        let mut touched: Vec<VertexId> = Vec::with_capacity(2 * self.len());

        // --- incremental validation: exactly the entries the delta touches.
        for &w in &self.new_vertices {
            if !w.is_finite() || w < 0.0 {
                return Err(InstanceError::NotFinite { what: "weights" });
            }
        }
        for &(v, w) in &self.weight_updates {
            if (v as usize) >= n {
                return Err(InstanceError::VertexOutOfRange { got: v, n });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(InstanceError::NotFinite { what: "weights" });
            }
            touched.push(v);
        }
        for &(e, c) in &self.cost_updates {
            if (e as usize) >= m {
                return Err(InstanceError::EdgeOutOfRange { got: e, m });
            }
            if !c.is_finite() || c < 0.0 {
                return Err(InstanceError::NotFinite { what: "costs" });
            }
            let (u, v) = g.endpoints(e);
            touched.push(u);
            touched.push(v);
        }
        let mut removed = vec![false; m];
        for &e in &self.removed_edges {
            if (e as usize) >= m {
                return Err(InstanceError::EdgeOutOfRange { got: e, m });
            }
            removed[e as usize] = true;
            let (u, v) = g.endpoints(e);
            touched.push(u);
            touched.push(v);
        }
        for &(u, v, c) in &self.new_edges {
            if (u as usize) >= n2 {
                return Err(InstanceError::VertexOutOfRange { got: u, n: n2 });
            }
            if (v as usize) >= n2 {
                return Err(InstanceError::VertexOutOfRange { got: v, n: n2 });
            }
            if u == v {
                return Err(InstanceError::SelfLoop { v });
            }
            if !c.is_finite() || c < 0.0 {
                return Err(InstanceError::NotFinite { what: "costs" });
            }
            touched.push(u);
            touched.push(v);
        }

        // --- weights: overwrite in place, append the new tail.
        let mut weights = base.weights().to_vec();
        for &(v, w) in &self.weight_updates {
            weights[v as usize] = w;
        }
        weights.extend_from_slice(&self.new_vertices);
        for i in 0..self.new_vertices.len() {
            touched.push((n + i) as VertexId);
        }

        // --- edges: cost overwrites key by *base* edge id, so apply them
        // on the base-indexed view first, then drop removed edges and
        // append additions, and re-sort into the canonical CSR order so
        // edge ids and the cost vector line up in the mutated instance.
        let mut base_view: Vec<(VertexId, VertexId, f64)> = g
            .edge_list()
            .iter()
            .zip(base.costs())
            .map(|(&(u, v), &c)| (u, v, c))
            .collect();
        for &(e, c) in &self.cost_updates {
            base_view[e as usize].2 = c;
        }
        let mut edges: Vec<(VertexId, VertexId, f64)> =
            Vec::with_capacity(base_view.len() + self.new_edges.len());
        edges.extend(
            base_view
                .into_iter()
                .enumerate()
                .filter(|(e, _)| !removed[*e])
                .map(|(_, t)| t),
        );
        edges.extend(
            self.new_edges
                .iter()
                .map(|&(u, v, c)| (u.min(v), u.max(v), c)),
        );
        edges.sort_by_key(|e| (e.0, e.1));
        for w in edges.windows(2) {
            if (w[0].0, w[0].1) == (w[1].0, w[1].1) {
                return Err(InstanceError::DuplicateEdge {
                    u: w[0].0,
                    v: w[0].1,
                });
            }
        }
        let pairs: Vec<(VertexId, VertexId)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let costs: Vec<f64> = edges.iter().map(|&(_, _, c)| c).collect();
        let graph: Graph = graph_from_edges(n2, &pairs);
        debug_assert_eq!(graph.edge_list(), pairs.as_slice());

        // --- extras carry over; appended vertices contribute nothing.
        let extras: Vec<Vec<f64>> = base
            .extra_measures()
            .iter()
            .map(|ex| {
                let mut ex = ex.clone();
                ex.resize(n2, 0.0);
                ex
            })
            .collect();

        touched.sort_unstable();
        touched.dedup();
        Ok(AppliedDelta {
            instance: Instance::from_validated_parts(graph, costs, weights, extras),
            touched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::gen::misc::path;

    fn base() -> Instance {
        // path 0-1-2-3, unit costs, weights 1..4
        Instance::new(path(4), vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0, 4.0]).expect("valid base")
    }

    #[test]
    fn empty_delta_is_identity() {
        let b = base();
        let out = InstanceDelta::new().apply(&b).expect("empty delta applies");
        assert_eq!(out.instance.graph().edge_list(), b.graph().edge_list());
        assert_eq!(out.instance.costs(), b.costs());
        assert_eq!(out.instance.weights(), b.weights());
        assert!(out.touched.is_empty());
        assert_eq!(out.instance.fingerprint(), b.fingerprint());
    }

    #[test]
    fn weight_and_cost_updates_touch_the_right_vertices() {
        let b = base();
        let out = InstanceDelta::new()
            .set_weight(2, 9.0)
            .set_cost(0, 5.5)
            .apply(&b)
            .expect("update applies");
        assert_eq!(out.instance.weights(), &[1.0, 2.0, 9.0, 4.0]);
        assert_eq!(out.instance.costs(), &[5.5, 2.0, 3.0]);
        assert_eq!(out.touched, vec![0, 1, 2]);
        // Aggregates track the mutation.
        assert_eq!(out.instance.max_weight(), 9.0);
        assert_eq!(out.instance.max_cost(), 5.5);
        // Structure unchanged ⇒ structure digest unchanged.
        assert_eq!(
            out.instance.fingerprint().structure,
            b.fingerprint().structure
        );
        assert_ne!(out.instance.fingerprint().weights, b.fingerprint().weights);
    }

    #[test]
    fn vertex_and_edge_additions_renumber_canonically() {
        let b = base();
        let out = InstanceDelta::new()
            .add_vertex(7.0)
            .add_edge(4, 0, 0.5) // appended vertex, reversed endpoints
            .apply(&b)
            .expect("growth applies");
        assert_eq!(out.instance.num_vertices(), 5);
        assert_eq!(out.instance.num_edges(), 4);
        assert_eq!(out.instance.weights()[4], 7.0);
        // Canonical edge order: (0,1), (0,4), (1,2), (2,3).
        assert_eq!(
            out.instance.graph().edge_list(),
            &[(0, 1), (0, 4), (1, 2), (2, 3)]
        );
        assert_eq!(out.instance.costs(), &[1.0, 0.5, 2.0, 3.0]);
        assert_eq!(out.touched, vec![0, 4]);
    }

    #[test]
    fn edge_removal_compacts_costs() {
        let b = base();
        let out = InstanceDelta::new()
            .remove_edge(1)
            .apply(&b)
            .expect("removal applies");
        assert_eq!(out.instance.graph().edge_list(), &[(0, 1), (2, 3)]);
        assert_eq!(out.instance.costs(), &[1.0, 3.0]);
        assert_eq!(out.touched, vec![1, 2]);
    }

    #[test]
    fn every_touched_entry_validation_fires() {
        let b = base();
        assert_eq!(
            InstanceDelta::new()
                .set_weight(9, 1.0)
                .apply(&b)
                .unwrap_err(),
            InstanceError::VertexOutOfRange { got: 9, n: 4 }
        );
        assert_eq!(
            InstanceDelta::new().set_cost(3, 1.0).apply(&b).unwrap_err(),
            InstanceError::EdgeOutOfRange { got: 3, m: 3 }
        );
        assert_eq!(
            InstanceDelta::new().remove_edge(7).apply(&b).unwrap_err(),
            InstanceError::EdgeOutOfRange { got: 7, m: 3 }
        );
        assert_eq!(
            InstanceDelta::new()
                .set_weight(0, f64::NAN)
                .apply(&b)
                .unwrap_err(),
            InstanceError::NotFinite { what: "weights" }
        );
        assert_eq!(
            InstanceDelta::new().add_vertex(-1.0).apply(&b).unwrap_err(),
            InstanceError::NotFinite { what: "weights" }
        );
        assert_eq!(
            InstanceDelta::new()
                .add_edge(0, 2, -3.0)
                .apply(&b)
                .unwrap_err(),
            InstanceError::NotFinite { what: "costs" }
        );
        assert_eq!(
            InstanceDelta::new()
                .add_edge(1, 1, 1.0)
                .apply(&b)
                .unwrap_err(),
            InstanceError::SelfLoop { v: 1 }
        );
        assert_eq!(
            InstanceDelta::new()
                .add_edge(0, 9, 1.0)
                .apply(&b)
                .unwrap_err(),
            InstanceError::VertexOutOfRange { got: 9, n: 4 }
        );
        assert_eq!(
            InstanceDelta::new()
                .add_edge(1, 0, 1.0)
                .apply(&b)
                .unwrap_err(),
            InstanceError::DuplicateEdge { u: 0, v: 1 }
        );
        assert_eq!(
            InstanceDelta::new()
                .add_edge(0, 2, 1.0)
                .add_edge(2, 0, 1.0)
                .apply(&b)
                .unwrap_err(),
            InstanceError::DuplicateEdge { u: 0, v: 2 }
        );
    }

    #[test]
    fn untrusted_entries_are_not_revalidated_but_aggregates_refresh() {
        // A grid with a heavy corner: mutate one far-away weight and
        // check the max tracks correctly both up and down.
        let grid = GridGraph::lattice(&[3, 3]);
        let m = grid.graph.num_edges();
        let mut w = vec![1.0; 9];
        w[0] = 10.0;
        let b = Instance::new(grid.graph, vec![1.0; m], w).expect("valid");
        let up = InstanceDelta::new()
            .set_weight(8, 20.0)
            .apply(&b)
            .expect("up");
        assert_eq!(up.instance.max_weight(), 20.0);
        let down = InstanceDelta::new()
            .set_weight(0, 0.5)
            .apply(&b)
            .expect("down");
        assert_eq!(down.instance.max_weight(), 1.0);
    }

    #[test]
    fn extras_carry_over_and_pad_new_vertices() {
        let b = base()
            .with_extra_measure(vec![1.0, 1.0, 1.0, 1.0])
            .expect("measure fits");
        let out = InstanceDelta::new()
            .add_vertex(1.0)
            .apply(&b)
            .expect("applies");
        assert_eq!(out.instance.extra_measures().len(), 1);
        assert_eq!(
            out.instance.extra_measures()[0],
            vec![1.0, 1.0, 1.0, 1.0, 0.0]
        );
    }

    #[test]
    fn removing_then_adding_the_same_edge_reprices_it() {
        let b = base();
        let out = InstanceDelta::new()
            .remove_edge(0)
            .add_edge(0, 1, 9.0)
            .apply(&b)
            .expect("replace applies");
        assert_eq!(out.instance.graph().edge_list(), b.graph().edge_list());
        assert_eq!(out.instance.costs(), &[9.0, 2.0, 3.0]);
    }
}
