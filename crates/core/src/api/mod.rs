//! The first-class public API: validated [`Instance`]s, reusable
//! [`Solver`]s, structured [`Report`]s, and the [`Partitioner`] trait.
//!
//! This module is the front door of the library. The flow:
//!
//! ```
//! use mmb_core::api::{Instance, Solver, SplitterChoice};
//! use mmb_graph::gen::grid::GridGraph;
//!
//! // 1. Bundle and validate the inputs once.
//! let grid = GridGraph::lattice(&[16, 16]);
//! let costs = vec![1.0; grid.graph.num_edges()];
//! let weights = vec![1.0; grid.graph.num_vertices()];
//! let inst = Instance::from_grid(grid, costs, weights)?;
//!
//! // 2. Build a solver: splitter auto-selected from the structure,
//! //    constructed once, reusable across solves.
//! let solver = Solver::for_instance(&inst)
//!     .classes(8)
//!     .p(2.0)
//!     .splitter(SplitterChoice::Auto)
//!     .build()?;
//!
//! // 3. Solve (as often as you like) and read the structured report.
//! let report = solver.solve();
//! assert!(report.is_strictly_balanced());
//! assert!(report.bound_ratio.is_finite());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The legacy free function [`decompose`](crate::pipeline::decompose) is
//! kept as a thin wrapper over this API for existing call sites; new code
//! should construct an [`Instance`] and a [`Solver`].

pub mod artifacts;
pub mod delta;
pub mod error;
pub mod instance;
pub mod partitioner;
pub mod report;
pub mod solver;

pub use crate::lower_bounds::CertifiedGap;
pub use artifacts::{CacheLookup, CacheStats, SolverArtifacts, SolverCache};
pub use delta::{AppliedDelta, InstanceDelta};
pub use error::{validate_costs, validate_weights, InstanceError, SolveError};
pub use instance::Instance;
pub use partitioner::{Partitioner, Theorem4Pipeline};
pub use report::{ClassRow, Report, StageReport};
pub use solver::{
    auto_splitter, solve_many, solve_many_raw, DeltaSolve, Solver, SolverBuilder, SplitterChoice,
};
