//! The Theorem 4 pipeline: `decompose` = Proposition 7 → Proposition 11 →
//! Proposition 12.
//!
//! ```text
//! χ₁ = multibalance_minmax(w, π, extra measures)   // weakly balanced,
//!                                                  // bounded max boundary
//! χ₂ = almost_strict(χ₁)                           // within 2‖w‖∞ of avg
//! χ₃ = binpack2(χ₂)                                // eq. (1) exactly
//! ```
//!
//! The result is a strictly balanced `k`-coloring with maximum boundary
//! cost `O_p(σ_p·(k^{−1/p}·‖c‖_p + Δ_c))`; the conclusion's multi-balanced
//! variant (weak balance in arbitrary extra measures, strict balance in
//! `w`) falls out of the same call by passing `extra_measures`.

use mmb_graph::measure::{norm_inf, set_sum};
use mmb_graph::{Coloring, Graph, VertexSet};
use mmb_splitters::Splitter;

use crate::multibalance::multibalance_minmax;
use crate::shrink::{almost_strict, ShrinkParams};
use crate::strict::binpack2;

/// Configuration of the decomposition pipeline.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Norm exponent `p > 1` of the splittability assumption (use
    /// `d/(d−1)` for `d`-dimensional grids, `2` for planar-ish inputs).
    pub p: f64,
    /// Shrink-and-conquer tunables.
    pub shrink: ShrinkParams,
    /// Skip the shrink stage and go straight from Proposition 7 to
    /// BinPack2 (ablation switch for experiment E8).
    pub skip_shrink: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self { p: 2.0, shrink: ShrinkParams::default(), skip_shrink: false }
    }
}

impl PipelineConfig {
    /// Config with a given `p`.
    pub fn with_p(p: f64) -> Self {
        Self { p, ..Self::default() }
    }
}

/// Errors reported for malformed inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecomposeError {
    /// `k` must be at least 1.
    ZeroColors,
    /// Weight vector length must equal the vertex count.
    WeightLength {
        /// provided length
        got: usize,
        /// expected length (n)
        expected: usize,
    },
    /// Cost vector length must equal the edge count.
    CostLength {
        /// provided length
        got: usize,
        /// expected length (m)
        expected: usize,
    },
    /// Weights and costs must be finite and non-negative.
    NotFinite,
}

impl std::fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecomposeError::ZeroColors => write!(f, "k must be at least 1"),
            DecomposeError::WeightLength { got, expected } => {
                write!(f, "weight vector has length {got}, expected {expected}")
            }
            DecomposeError::CostLength { got, expected } => {
                write!(f, "cost vector has length {got}, expected {expected}")
            }
            DecomposeError::NotFinite => {
                write!(f, "weights and costs must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for DecomposeError {}

/// Result of [`decompose`].
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The strictly balanced `k`-coloring.
    pub coloring: Coloring,
    /// Per-class boundary costs `∂χ⁻¹`.
    pub boundary_costs: Vec<f64>,
    /// Per-class weights `wχ⁻¹`.
    pub class_weights: Vec<f64>,
    /// Strict-balance defect (≤ 0 up to fp noise).
    pub strict_defect: f64,
    /// The intermediate colorings, for ablation experiments:
    /// (Proposition 7 output, Proposition 11 output).
    pub stages: (Coloring, Coloring),
}

impl Decomposition {
    /// Maximum boundary cost `‖∂χ⁻¹‖∞`.
    pub fn max_boundary(&self) -> f64 {
        norm_inf(&self.boundary_costs)
    }

    /// Average boundary cost `‖∂χ⁻¹‖_avg`.
    pub fn avg_boundary(&self) -> f64 {
        self.boundary_costs.iter().sum::<f64>() / self.boundary_costs.len() as f64
    }
}

/// Compute a strictly balanced `k`-coloring of `(g, costs, weights)` with
/// small maximum boundary cost (Theorem 4), using `splitter` for all
/// splitting sets.
///
/// `extra_measures` are additionally weakly balanced (the conclusion's
/// multi-balanced variant); pass `&[]` for the plain problem.
pub fn decompose<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    weights: &[f64],
    k: usize,
    splitter: &S,
    extra_measures: &[&[f64]],
    cfg: &PipelineConfig,
) -> Result<Decomposition, DecomposeError> {
    if k == 0 {
        return Err(DecomposeError::ZeroColors);
    }
    if weights.len() != g.num_vertices() {
        return Err(DecomposeError::WeightLength { got: weights.len(), expected: g.num_vertices() });
    }
    if costs.len() != g.num_edges() {
        return Err(DecomposeError::CostLength { got: costs.len(), expected: g.num_edges() });
    }
    if weights.iter().chain(costs).any(|x| !x.is_finite() || *x < 0.0) {
        return Err(DecomposeError::NotFinite);
    }

    let domain = VertexSet::full(g.num_vertices());

    // Stage 1 (Proposition 7): weakly balanced in w, π and extras, with
    // bounded maximum boundary and splitting costs.
    let user: Vec<&[f64]> = std::iter::once(weights)
        .chain(extra_measures.iter().copied())
        .collect();
    let stage1 = multibalance_minmax(g, costs, splitter, k, &domain, &user, cfg.p);

    // Stage 2 (Proposition 11): almost strictly balanced.
    let stage2 = if cfg.skip_shrink {
        stage1.coloring.clone()
    } else {
        almost_strict(
            g, costs, splitter, &stage1.coloring, &domain, weights, cfg.p, &cfg.shrink,
        )
    };

    // Stage 3 (Proposition 12): strictly balanced, eq. (1) exactly.
    let stage3 = binpack2(g, splitter, &stage2, &domain, weights);

    debug_assert!(stage3.is_total(), "pipeline must color every vertex");
    let boundary_costs = stage3.boundary_costs(g, costs);
    let class_weights = stage3.class_measures(weights);
    let strict_defect = stage3.strict_balance_defect(weights);
    let _ = set_sum(weights, &domain);
    Ok(Decomposition {
        coloring: stage3,
        boundary_costs,
        class_weights,
        strict_defect,
        stages: (stage1.coloring, stage2),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_splitters::grid::GridSplitter;

    #[test]
    fn end_to_end_on_grid() {
        let grid = GridGraph::lattice(&[16, 16]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + ((v * 31) % 5) as f64).collect();
        for k in [2usize, 3, 8] {
            let d = decompose(
                &grid.graph, &costs, &weights, k, &sp, &[], &PipelineConfig::with_p(2.0),
            )
            .unwrap();
            assert!(d.coloring.is_total());
            assert!(
                d.coloring.is_strictly_balanced(&weights),
                "k={k}: defect {}",
                d.strict_defect
            );
            assert!(d.max_boundary() > 0.0);
        }
    }

    #[test]
    fn input_validation() {
        let grid = GridGraph::lattice(&[3, 3]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let cfg = PipelineConfig::default();
        let w9 = vec![1.0; 9];
        assert_eq!(
            decompose(&grid.graph, &costs, &w9, 0, &sp, &[], &cfg).unwrap_err(),
            DecomposeError::ZeroColors
        );
        let w_bad = vec![1.0; 5];
        assert!(matches!(
            decompose(&grid.graph, &costs, &w_bad, 2, &sp, &[], &cfg).unwrap_err(),
            DecomposeError::WeightLength { .. }
        ));
        let c_bad = vec![1.0; 3];
        assert!(matches!(
            decompose(&grid.graph, &c_bad, &w9, 2, &sp, &[], &cfg).unwrap_err(),
            DecomposeError::CostLength { .. }
        ));
        let w_nan = {
            let mut w = w9.clone();
            w[0] = f64::NAN;
            w
        };
        assert_eq!(
            decompose(&grid.graph, &costs, &w_nan, 2, &sp, &[], &cfg).unwrap_err(),
            DecomposeError::NotFinite
        );
        let w_neg = {
            let mut w = w9.clone();
            w[0] = -1.0;
            w
        };
        assert_eq!(
            decompose(&grid.graph, &costs, &w_neg, 2, &sp, &[], &cfg).unwrap_err(),
            DecomposeError::NotFinite
        );
    }

    #[test]
    fn k_larger_than_n() {
        let grid = GridGraph::lattice(&[3, 3]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights = vec![1.0; 9];
        let d = decompose(
            &grid.graph, &costs, &weights, 20, &sp, &[], &PipelineConfig::default(),
        )
        .unwrap();
        assert!(d.coloring.is_total());
        assert!(d.coloring.is_strictly_balanced(&weights));
    }

    #[test]
    fn extra_measures_get_weakly_balanced() {
        let grid = GridGraph::lattice(&[16, 16]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights = vec![1.0; n];
        // A second resource concentrated on a corner block.
        let mem: Vec<f64> = (0..n as u32)
            .map(|v| {
                let c = grid.coord(v);
                if c[0] < 4 && c[1] < 4 { 8.0 } else { 0.25 }
            })
            .collect();
        let k = 8;
        let d = decompose(
            &grid.graph, &costs, &weights, k, &sp, &[&mem], &PipelineConfig::default(),
        )
        .unwrap();
        assert!(d.coloring.is_strictly_balanced(&weights));
        let mem_classes = d.coloring.class_measures(&mem);
        let mem_avg: f64 = mem.iter().sum::<f64>() / k as f64;
        let mem_max_class = norm_inf(&mem_classes);
        // Weak balance: O(avg + max) with moderate constants.
        assert!(
            mem_max_class <= 12.0 * mem_avg + 64.0 * norm_inf(&mem),
            "extra measure unbalanced: {mem_max_class} vs avg {mem_avg}"
        );
    }

    #[test]
    fn skip_shrink_ablation_still_strict() {
        let grid = GridGraph::lattice(&[12, 12]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 2) as f64).collect();
        let cfg = PipelineConfig { skip_shrink: true, ..PipelineConfig::default() };
        let d = decompose(&grid.graph, &costs, &weights, 6, &sp, &[], &cfg).unwrap();
        assert!(d.coloring.is_strictly_balanced(&weights));
    }
}
