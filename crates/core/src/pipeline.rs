//! The Theorem 4 pipeline: `decompose` = Proposition 7 → Proposition 11 →
//! Proposition 12.
//!
//! ```text
//! χ₁ = multibalance_minmax(w, π, extra measures)   // weakly balanced,
//!                                                  // bounded max boundary
//! χ₂ = almost_strict(χ₁)                           // within 2‖w‖∞ of avg
//! χ₃ = binpack2(χ₂)                                // eq. (1) exactly
//! ```
//!
//! The result is a strictly balanced `k`-coloring with maximum boundary
//! cost `O_p(σ_p·(k^{−1/p}·‖c‖_p + Δ_c))`; the conclusion's multi-balanced
//! variant (weak balance in arbitrary extra measures, strict balance in
//! `w`) falls out of the same call by passing `extra_measures`.
//!
//! **Legacy surface.** [`decompose`] predates the
//! [`crate::api::Instance`]/[`crate::api::Solver`] API
//! and is kept as a thin wrapper over it so existing call sites (and their
//! test baselines) keep working unchanged. It copies its borrowed inputs
//! into a fresh `Instance` and builds a single-use `Solver` per call — for
//! anything called repeatedly on the same instance, build an `Instance`
//! and a `Solver` once instead (see [`crate::api`]).

use mmb_graph::measure::norm_inf;
use mmb_graph::{Coloring, Graph};
use mmb_splitters::Splitter;

use crate::api::{Instance, Solver, SplitterChoice};
use crate::coarsen::CoarsenParams;
use crate::refine::KlParams;
use crate::shrink::ShrinkParams;

pub use crate::api::error::{InstanceError, SolveError};

/// Legacy alias for the error type [`decompose`] reports; instance-shaped
/// problems arrive as [`SolveError::Instance`].
pub type DecomposeError = SolveError;

/// How the pipeline sources the dense scratch measures (`π`, boundary
/// measures, induced degrees, `Ψ`) its stages materialize, and which
/// implementation family allocation-sensitive inner loops use.
///
/// `Reuse` (default) is the overhauled hot path: this thread's pooled
/// [`Workspace`](mmb_graph::Workspace) (`O(touched)` per buffer instead
/// of `O(n)`) and the allocation-free inner loops. `Transient` preserves
/// the **pre-overhaul reference implementations** — fresh buffers and
/// per-call allocation — so the `BENCH_6.json` perf baselines can report
/// old-vs-new side by side. Both policies produce **bit-identical
/// colorings** (property-tested); only cost profiles differ.
pub type ScratchPolicy = mmb_graph::workspace::ScratchMode;

/// The coarsening cascade knob of [`PipelineConfig`]: contract the host
/// graph to roughly [`CoarsenParams::target_vertices`] before the
/// divide-and-conquer runs, then project back with per-level KL
/// refinement and a final host-level `BinPack2` that restores strict
/// balance exactly (projection preserves class *weights* but the host's
/// smaller `‖w‖∞` tightens eq. (1), so a rebalance is mandatory — see
/// DESIGN.md §13).
#[derive(Clone, Copy, Debug)]
pub struct CoarsenConfig {
    /// Cascade stops (target size, level cap, matching seed).
    pub params: CoarsenParams,
    /// Per-level KL refinement applied on the way back up. Kept light by
    /// default (2 passes) — at `n = 10^6` every pass is a full sweep.
    pub kl: KlParams,
}

impl Default for CoarsenConfig {
    fn default() -> Self {
        Self {
            params: CoarsenParams::default(),
            kl: KlParams {
                max_passes: 2,
                balance_factor: 1.1,
            },
        }
    }
}

/// Configuration of the decomposition pipeline.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Norm exponent `p > 1` of the splittability assumption (use
    /// `d/(d−1)` for `d`-dimensional grids, `2` for planar-ish inputs).
    pub p: f64,
    /// Shrink-and-conquer tunables.
    pub shrink: ShrinkParams,
    /// Skip the shrink stage and go straight from Proposition 7 to
    /// BinPack2 (ablation switch for experiment E8).
    pub skip_shrink: bool,
    /// Scratch-buffer sourcing (see [`ScratchPolicy`]; default reuse).
    pub scratch: ScratchPolicy,
    /// Coarsening cascade for very large hosts: `Some(cfg)` contracts the
    /// graph to `cfg.params.target_vertices` first, runs the three stages
    /// there, and projects back (see [`CoarsenConfig`]). `None` (default)
    /// solves the host directly — the theorem-faithful path. Instances
    /// already at or below the target are solved directly either way.
    pub coarsen: Option<CoarsenConfig>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            p: 2.0,
            shrink: ShrinkParams::default(),
            skip_shrink: false,
            scratch: ScratchPolicy::Reuse,
            coarsen: None,
        }
    }
}

impl PipelineConfig {
    /// Config with a given `p`.
    pub fn with_p(p: f64) -> Self {
        Self {
            p,
            ..Self::default()
        }
    }
}

/// Result of [`decompose`].
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The strictly balanced `k`-coloring.
    pub coloring: Coloring,
    /// Per-class boundary costs `∂χ⁻¹`.
    pub boundary_costs: Vec<f64>,
    /// Per-class weights `wχ⁻¹`.
    pub class_weights: Vec<f64>,
    /// Strict-balance defect (≤ 0 up to fp noise).
    pub strict_defect: f64,
    /// The intermediate colorings, for ablation experiments:
    /// (Proposition 7 output, Proposition 11 output).
    pub stages: (Coloring, Coloring),
}

impl Decomposition {
    /// Maximum boundary cost `‖∂χ⁻¹‖∞`.
    pub fn max_boundary(&self) -> f64 {
        norm_inf(&self.boundary_costs)
    }

    /// Average boundary cost `‖∂χ⁻¹‖_avg`.
    pub fn avg_boundary(&self) -> f64 {
        self.boundary_costs.iter().sum::<f64>() / self.boundary_costs.len() as f64
    }
}

/// Compute a strictly balanced `k`-coloring of `(g, costs, weights)` with
/// small maximum boundary cost (Theorem 4), using `splitter` for all
/// splitting sets.
///
/// `extra_measures` are additionally weakly balanced (the conclusion's
/// multi-balanced variant); pass `&[]` for the plain problem.
///
/// This is the legacy one-shot entry point, now a thin wrapper that
/// builds an [`Instance`] and a single-use [`Solver`] per call; prefer
/// those types directly when solving repeatedly (see [`crate::api`]).
pub fn decompose<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    weights: &[f64],
    k: usize,
    splitter: &S,
    extra_measures: &[&[f64]],
    cfg: &PipelineConfig,
) -> Result<Decomposition, DecomposeError> {
    if k == 0 {
        // Checked before the instance copy so the cheap error stays cheap.
        return Err(SolveError::ZeroColors);
    }
    let mut inst = Instance::new(g.clone(), costs.to_vec(), weights.to_vec())?;
    for m in extra_measures {
        inst = inst.with_extra_measure(m.to_vec())?;
    }
    let solver = Solver::for_instance(&inst)
        .classes(k)
        .config(cfg.clone())
        .splitter(SplitterChoice::Custom(Box::new(splitter)))
        .build()?;
    Ok(solver.solve().into_decomposition())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_splitters::grid::GridSplitter;

    #[test]
    fn end_to_end_on_grid() {
        let grid = GridGraph::lattice(&[16, 16]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + ((v * 31) % 5) as f64).collect();
        for k in [2usize, 3, 8] {
            let d = decompose(
                &grid.graph,
                &costs,
                &weights,
                k,
                &sp,
                &[],
                &PipelineConfig::with_p(2.0),
            )
            .unwrap();
            assert!(d.coloring.is_total());
            assert!(
                d.coloring.is_strictly_balanced(&weights),
                "k={k}: defect {}",
                d.strict_defect
            );
            assert!(d.max_boundary() > 0.0);
        }
    }

    #[test]
    fn input_validation() {
        let grid = GridGraph::lattice(&[3, 3]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let cfg = PipelineConfig::default();
        let w9 = vec![1.0; 9];
        assert_eq!(
            decompose(&grid.graph, &costs, &w9, 0, &sp, &[], &cfg).unwrap_err(),
            SolveError::ZeroColors
        );
        let w_bad = vec![1.0; 5];
        assert!(matches!(
            decompose(&grid.graph, &costs, &w_bad, 2, &sp, &[], &cfg).unwrap_err(),
            SolveError::Instance(InstanceError::WeightLength { .. })
        ));
        let c_bad = vec![1.0; 3];
        assert!(matches!(
            decompose(&grid.graph, &c_bad, &w9, 2, &sp, &[], &cfg).unwrap_err(),
            SolveError::Instance(InstanceError::CostLength { .. })
        ));
        let w_nan = {
            let mut w = w9.clone();
            w[0] = f64::NAN;
            w
        };
        assert_eq!(
            decompose(&grid.graph, &costs, &w_nan, 2, &sp, &[], &cfg).unwrap_err(),
            SolveError::Instance(InstanceError::NotFinite { what: "weights" })
        );
        let w_neg = {
            let mut w = w9.clone();
            w[0] = -1.0;
            w
        };
        assert_eq!(
            decompose(&grid.graph, &costs, &w_neg, 2, &sp, &[], &cfg).unwrap_err(),
            SolveError::Instance(InstanceError::NotFinite { what: "weights" })
        );
        let m_bad = vec![1.0; 4];
        assert!(matches!(
            decompose(&grid.graph, &costs, &w9, 2, &sp, &[&m_bad], &cfg).unwrap_err(),
            SolveError::Instance(InstanceError::MeasureLength { .. })
        ));
    }

    #[test]
    fn k_larger_than_n() {
        let grid = GridGraph::lattice(&[3, 3]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights = vec![1.0; 9];
        let d = decompose(
            &grid.graph,
            &costs,
            &weights,
            20,
            &sp,
            &[],
            &PipelineConfig::default(),
        )
        .unwrap();
        assert!(d.coloring.is_total());
        assert!(d.coloring.is_strictly_balanced(&weights));
    }

    #[test]
    fn extra_measures_get_weakly_balanced() {
        let grid = GridGraph::lattice(&[16, 16]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights = vec![1.0; n];
        // A second resource concentrated on a corner block.
        let mem: Vec<f64> = (0..n as u32)
            .map(|v| {
                let c = grid.coord(v);
                if c[0] < 4 && c[1] < 4 {
                    8.0
                } else {
                    0.25
                }
            })
            .collect();
        let k = 8;
        let d = decompose(
            &grid.graph,
            &costs,
            &weights,
            k,
            &sp,
            &[&mem],
            &PipelineConfig::default(),
        )
        .unwrap();
        assert!(d.coloring.is_strictly_balanced(&weights));
        let mem_classes = d.coloring.class_measures(&mem);
        let mem_avg: f64 = mem.iter().sum::<f64>() / k as f64;
        let mem_max_class = norm_inf(&mem_classes);
        // Weak balance: O(avg + max) with moderate constants.
        assert!(
            mem_max_class <= 12.0 * mem_avg + 64.0 * norm_inf(&mem),
            "extra measure unbalanced: {mem_max_class} vs avg {mem_avg}"
        );
    }

    #[test]
    fn skip_shrink_ablation_still_strict() {
        let grid = GridGraph::lattice(&[12, 12]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 2) as f64).collect();
        let cfg = PipelineConfig {
            skip_shrink: true,
            ..PipelineConfig::default()
        };
        let d = decompose(&grid.graph, &costs, &weights, 6, &sp, &[], &cfg).unwrap();
        assert!(d.coloring.is_strictly_balanced(&weights));
    }

    #[test]
    fn wrapper_matches_solver_output() {
        // The legacy wrapper and a hand-built Solver with the same
        // splitter produce the identical coloring.
        let grid = GridGraph::lattice(&[10, 10]);
        let n = grid.graph.num_vertices();
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| 1.0 + (e % 3) as f64)
            .collect();
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 4) as f64).collect();
        let sp = GridSplitter::new(&grid, &costs);
        let d = decompose(
            &grid.graph,
            &costs,
            &weights,
            6,
            &sp,
            &[],
            &PipelineConfig::default(),
        )
        .unwrap();
        let inst = Instance::from_grid(grid.clone(), costs.clone(), weights.clone()).unwrap();
        let solver = Solver::for_instance(&inst).classes(6).build().unwrap();
        assert_eq!(solver.solve().coloring, d.coloring);
    }
}
