//! Multi-measure 2-colorings (Lemma 8).
//!
//! Given measures `Φ^{(1)}, …, Φ^{(r)}`, any vertex set `W` can be 2-colored
//! so that the edges between the classes cost at most
//! `(2^r − 1)·σ_p·‖c|_W‖_p` and, for every `j`, each class has
//! `Φ^{(j)}`-measure at most `¾·(Φ^{(j)}(W) + 2^{r−j}·‖Φ^{(j)}‖_∞)` — with
//! the stronger factor `½` for `j = 1`.
//!
//! The construction is a recursion on `r`: bisect `W` by `Φ^{(r)}` with one
//! splitting set, recursively 2-color both halves with the remaining
//! measures, and relabel each half's classes so that class `b` is the
//! `Φ^{(r)}`-lighter one inside half `b` (inequality (5) in the paper)
//! before taking the direct sum.

use mmb_graph::measure::set_sum;
use mmb_graph::VertexSet;
use mmb_splitters::Splitter;

/// A 2-coloring of a vertex set as the pair of its classes.
#[derive(Clone, Debug)]
pub struct TwoColoring {
    /// Class 1 (the paper's color `1`).
    pub class1: VertexSet,
    /// Class 2.
    pub class2: VertexSet,
}

impl TwoColoring {
    /// Measures of both classes under `phi`.
    pub fn class_measures(&self, phi: &[f64]) -> (f64, f64) {
        (set_sum(phi, &self.class1), set_sum(phi, &self.class2))
    }

    /// Swap the two class labels.
    pub fn swapped(self) -> Self {
        TwoColoring {
            class1: self.class2,
            class2: self.class1,
        }
    }
}

/// Lemma 8: 2-color `w_set` balancing all `measures` simultaneously.
///
/// `measures` must be non-empty; `measures[0]` receives the strongest
/// (½-factor) guarantee. Splitting sets are provided by `splitter`.
pub fn two_color<S: Splitter + ?Sized>(
    splitter: &S,
    w_set: &VertexSet,
    measures: &[&[f64]],
) -> TwoColoring {
    assert!(!measures.is_empty(), "need at least one measure");
    let r = measures.len();
    let phi_r = measures[r - 1];

    // Bisect by the last measure (inequality (2)).
    let target = set_sum(phi_r, w_set) / 2.0;
    let u1 = splitter.split(w_set, phi_r, target);
    let u2 = w_set.difference(&u1);

    if r == 1 {
        return TwoColoring {
            class1: u1,
            class2: u2,
        };
    }

    // Recurse with the remaining measures, then enforce inequality (5):
    // within half b, class b must be the Φ^{(r)}-lighter class.
    let rest = &measures[..r - 1];
    let mut chi1 = two_color(splitter, &u1, rest);
    let mut chi2 = two_color(splitter, &u2, rest);
    let (a1, b1) = chi1.class_measures(phi_r);
    if a1 > b1 {
        chi1 = chi1.swapped();
    }
    let (a2, b2) = chi2.class_measures(phi_r);
    if b2 > a2 {
        chi2 = chi2.swapped();
    }
    TwoColoring {
        class1: chi1.class1.union(&chi2.class1),
        class2: chi1.class2.union(&chi2.class2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::measure::{norm_1, set_max};
    use mmb_splitters::grid::GridSplitter;

    /// Check the Lemma 8 class-measure guarantee for measure j (1-based).
    fn lemma8_bound(w_total: f64, phi_max: f64, r: usize, j: usize) -> f64 {
        let factor = if j == 1 { 0.5 } else { 0.75 };
        factor * (w_total + 2f64.powi((r - j) as i32) * phi_max)
    }

    #[test]
    fn partitions_w() {
        let grid = GridGraph::lattice(&[8, 8]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(64);
        let m1: Vec<f64> = vec![1.0; 64];
        let chi = two_color(&sp, &w, &[&m1]);
        assert!(chi.class1.is_disjoint(&chi.class2));
        assert_eq!(chi.class1.union(&chi.class2), w);
    }

    #[test]
    fn balances_three_measures() {
        let grid = GridGraph::lattice(&[10, 10]);
        let n = 100;
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(n);
        let m1: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
        let m2: Vec<f64> = (0..n).map(|v| ((v * 7) % 5) as f64).collect();
        let m3: Vec<f64> = (0..n)
            .map(|v| if v % 10 == 0 { 5.0 } else { 0.5 })
            .collect();
        let measures: Vec<&[f64]> = vec![&m1, &m2, &m3];
        let chi = two_color(&sp, &w, &measures);
        let r = 3;
        for (j, m) in measures.iter().enumerate() {
            let total = norm_1(m);
            let mmax = set_max(m, &w);
            let bound = lemma8_bound(total, mmax, r, j + 1);
            let (c1, c2) = chi.class_measures(m);
            assert!(
                c1 <= bound + 1e-9,
                "measure {} class1 {} > bound {}",
                j + 1,
                c1,
                bound
            );
            assert!(
                c2 <= bound + 1e-9,
                "measure {} class2 {} > bound {}",
                j + 1,
                c2,
                bound
            );
        }
    }

    #[test]
    fn first_measure_gets_half_factor() {
        // With a single measure, both classes are within ‖Φ‖∞/2 of half.
        let grid = GridGraph::lattice(&[6, 6]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(36);
        let m: Vec<f64> = (0..36).map(|v| 1.0 + (v % 2) as f64).collect();
        let chi = two_color(&sp, &w, &[&m]);
        let total = norm_1(&m);
        let (c1, c2) = chi.class_measures(&m);
        assert!((c1 - total / 2.0).abs() <= set_max(&m, &w) / 2.0 + 1e-9);
        assert!((c2 - total / 2.0).abs() <= set_max(&m, &w) / 2.0 + 1e-9);
    }

    #[test]
    fn empty_set() {
        let grid = GridGraph::lattice(&[2, 2]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::empty(4);
        let m = vec![1.0; 4];
        let chi = two_color(&sp, &w, &[&m]);
        assert!(chi.class1.is_empty());
        assert!(chi.class2.is_empty());
    }
}
