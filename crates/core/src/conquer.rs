//! The conquer-phase bin packing `BinPack1` (Lemma 15, Appendix A.2).
//!
//! Input: a coloring `χ₀` of `W₀` and fixed per-color companion weights
//! `w₁(i)` (the class weights of the already-fixed coloring `χ̂₁` of `W₁`).
//! Output: a transformed `χ̃₀` such that the direct sum `χ̃₀ ⊕ χ̂₁` is
//! **almost strictly balanced**: `|w(χ̃₀⁻¹(i)) + w₁(i) − w*| ≤ 2‖w‖_∞` for
//! every color, where `w* = (w(W₀) + Σᵢ w₁(i))/k`.
//!
//! The procedure carves pieces of weight `∈ [‖w‖_∞, 2‖w‖_∞]` off overweight
//! colors (one splitting set each), buffers them, and re-distributes them
//! greedily. Because each piece weighs at least `‖w‖_∞`, every color
//! changes only a constant number of times, which is what keeps the
//! boundary and splitting costs from growing by more than a constant
//! factor.

use mmb_graph::measure::{set_max, set_sum};
use mmb_graph::{Coloring, Graph, VertexSet};
use mmb_splitters::Splitter;

use crate::strict::carve_classes;

/// `BinPack1` (Lemma 15).
///
/// * `chi0` must be total on `w0_set`.
/// * `w1[i]` is the fixed companion weight of color `i` (use zeros when
///   there is no `W₁`, e.g. in Proposition 11's base case).
/// * `wmax` is the `‖w‖_∞` of the *enclosing* vertex set `W = W₀ ∪ W₁`
///   (passed in because `W₁`'s vertices are not visible here).
#[allow(clippy::too_many_arguments)]
pub fn binpack1<S: Splitter + ?Sized>(
    g: &Graph,
    _costs: &[f64],
    splitter: &S,
    chi0: &Coloring,
    w0_set: &VertexSet,
    weights: &[f64],
    w1: &[f64],
    wmax: f64,
) -> Coloring {
    let n = g.num_vertices();
    let k = chi0.k();
    assert_eq!(w1.len(), k, "w1 must have one entry per color");
    let wmax = wmax.max(set_max(weights, w0_set));

    let classes = chi0.class_sets_within(w0_set);
    let cw = |c: &VertexSet| set_sum(weights, c);
    let w_total: f64 = classes.iter().map(&cw).sum::<f64>() + w1.iter().sum::<f64>();
    let w_star = w_total / k as f64;

    if wmax <= 0.0 {
        // All weights zero: any coloring is exactly balanced.
        return chi0.restrict_to(w0_set);
    }

    // Step 2: shed pieces of weight ∈ [‖w‖∞, 2‖w‖∞] from overweight colors
    // until every color satisfies w + w₁ ≤ w*. Colors shed independently
    // (the buffer only collects), so [`carve_classes`] fans the cut-down
    // out per color.
    let (mut classes, mut buffer) = carve_classes(
        classes.into_iter().zip(w1.iter().copied()),
        w0_set.len(),
        |(mut class, w1_i): (VertexSet, f64)| {
            let mut pieces = Vec::new();
            while cw(&class) + w1_i > w_star && !class.is_empty() {
                let class_weight = cw(&class);
                let x = if class_weight <= 2.0 * wmax {
                    std::mem::replace(&mut class, VertexSet::empty(n))
                } else {
                    let x = splitter.split(&class, weights, 1.5 * wmax);
                    if x.is_empty() || set_sum(weights, &x) <= 0.0 {
                        // Defensive: peel the heaviest single vertex instead.
                        // total_cmp + id tie-break (max_by is last-wins, so
                        // `then(b.cmp(&a))` makes the lowest id win ties).
                        let heaviest = class
                            .iter()
                            .max_by(|&a, &b| {
                                weights[a as usize]
                                    .total_cmp(&weights[b as usize])
                                    .then(b.cmp(&a))
                            })
                            .expect("class is non-empty");
                        VertexSet::from_iter(n, [heaviest])
                    } else {
                        x
                    }
                };
                class.difference_with(&x);
                pieces.push(x);
            }
            (class, pieces)
        },
    );

    // Step 3: refill colors that are far below the average.
    while let Some(i) = (0..k).find(|&i| cw(&classes[i]) + w1[i] < w_star - 2.0 * wmax) {
        let Some(x) = buffer.pop() else {
            break; // precondition violated; BinPack2 restores strictness later
        };
        classes[i].union_with(&x);
    }

    // Step 4: place leftovers on the lightest colors.
    while let Some(x) = buffer.pop() {
        // min_by is first-wins on ties → lowest-indexed lightest color.
        let i = (0..k)
            .min_by(|&a, &b| (cw(&classes[a]) + w1[a]).total_cmp(&(cw(&classes[b]) + w1[b])))
            .expect("k >= 1 classes");
        classes[i].union_with(&x);
    }

    let mut out = Coloring::new_uncolored(n, k);
    for (i, class) in classes.iter().enumerate() {
        for v in class.iter() {
            out.set(v, i as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::measure::norm_inf;
    use mmb_splitters::grid::GridSplitter;

    fn almost_strict_defect(cm: &[f64], w1: &[f64], wmax: f64) -> f64 {
        let k = cm.len();
        let total: f64 = cm.iter().zip(w1).map(|(a, b)| a + b).sum();
        let avg = total / k as f64;
        cm.iter()
            .zip(w1)
            .map(|(a, b)| ((a + b) - avg).abs())
            .fold(0.0, f64::max)
            - 2.0 * wmax
    }

    #[test]
    fn packs_unbalanced_stripes() {
        let grid = GridGraph::lattice(&[16, 16]);
        let n = 256;
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let w0 = VertexSet::full(n);
        let weights = vec![1.0; n];
        let k = 4;
        let chi0 = Coloring::from_fn(n, k, |v| match grid.coord(v)[0] {
            0..=0 => 0,
            1..=2 => 1,
            3..=6 => 2,
            _ => 3,
        });
        let w1 = vec![0.0; k];
        let out = binpack1(&grid.graph, &costs, &sp, &chi0, &w0, &weights, &w1, 1.0);
        assert!(out.is_total_on(&w0));
        let cm = out.class_measures(&weights);
        assert!(
            almost_strict_defect(&cm, &w1, 1.0) <= 1e-9,
            "not almost strict: {cm:?}"
        );
    }

    #[test]
    fn respects_companion_weights() {
        let grid = GridGraph::lattice(&[12, 12]);
        let n = 144;
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let w0 = VertexSet::full(n);
        let weights = vec![1.0; n];
        let k = 3;
        // Companion weights force color 0 to stay small in W₀.
        let w1 = vec![80.0, 10.0, 0.0];
        let chi0 = Coloring::from_fn(n, k, |v| v % 3);
        let out = binpack1(&grid.graph, &costs, &sp, &chi0, &w0, &weights, &w1, 1.0);
        let cm = out.class_measures(&weights);
        let defect = almost_strict_defect(&cm, &w1, 1.0);
        assert!(defect <= 1e-9, "defect {defect}, classes {cm:?} + {w1:?}");
    }

    #[test]
    fn heavy_vertices_are_peeled() {
        // One vertex weighs as much as everything else combined; almost
        // strict balance must still hold (within 2·wmax).
        let grid = GridGraph::lattice(&[8, 8]);
        let n = 64;
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let w0 = VertexSet::full(n);
        let mut weights = vec![1.0; n];
        weights[27] = 63.0;
        let k = 2;
        let chi0 = Coloring::monochromatic(n, k);
        let w1 = vec![0.0; k];
        let wmax = norm_inf(&weights);
        let out = binpack1(&grid.graph, &costs, &sp, &chi0, &w0, &weights, &w1, wmax);
        let cm = out.class_measures(&weights);
        assert!(
            almost_strict_defect(&cm, &w1, wmax) <= 1e-9,
            "classes {cm:?}"
        );
    }

    #[test]
    fn zero_weights_noop() {
        let grid = GridGraph::lattice(&[4, 4]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let w0 = VertexSet::full(16);
        let weights = vec![0.0; 16];
        let chi0 = Coloring::from_fn(16, 2, |v| v % 2);
        let out = binpack1(
            &grid.graph,
            &costs,
            &sp,
            &chi0,
            &w0,
            &weights,
            &[0.0, 0.0],
            0.0,
        );
        assert_eq!(out, chi0);
    }
}
