//! Deterministic failpoint injection — named fault sites for the chaos
//! suite and the resilient ladder's isolation tests.
//!
//! A *failpoint* is a named site in the solve path (`pipeline::shrink`,
//! `bnb::node`, …) where a fault can be injected **only** by an explicit,
//! seeded [`FaultSchedule`] armed for the current thread with
//! [`with_faults`]. There are deliberately no environment variables, no
//! global registries and no randomness sources here: a schedule is plain
//! data, [`FaultSchedule::chaos`] derives one from a caller-provided seed
//! with an internal splitmix64 stream, and two runs under the same
//! schedule inject the same faults at the same hit indices — so every
//! chaos failure replays from its seed (and the `nondeterminism` lint has
//! nothing to flag).
//!
//! ## Cost when disarmed
//!
//! Production code never arms a schedule, so the only cost a site pays on
//! the hot path is [`armed`]: one thread-local `Cell<bool>` read behind an
//! `#[inline]` fast path — a handful of instructions, no branch taken, no
//! allocation. The schedule machinery is reached only while a test holds
//! the arming guard.
//!
//! ## Fault actions
//!
//! * [`FaultAction::Transient`] — a retryable failure. Fallible sites
//!   surface it as [`SolveError::Transient`]; infallible sites unwind
//!   with an [`InjectedPanic`] marked `transient: true` so an isolation
//!   boundary (the resilient ladder) can classify it and retry.
//! * [`FaultAction::Panic`] — a hard panic, unwinding with an
//!   [`InjectedPanic`] payload (`transient: false`).
//! * [`FaultAction::Stall`] — the site sleeps for a fixed number of
//!   milliseconds, simulating an overrun search node or a slow stage for
//!   deadline-overshoot tests. Deterministic in *behavior* (the output
//!   never depends on it), not in wall time.

use std::cell::{Cell, RefCell};
use std::time::Duration;

use crate::api::error::SolveError;

/// The canonical failpoint sites wired into the solve path. A
/// [`FaultSchedule::chaos`] draws from exactly this list; handwritten
/// schedules may also target custom sites in caller code.
pub const SITES: &[&str] = &[
    "pipeline::multibalance",
    "pipeline::shrink",
    "pipeline::binpack",
    "splitter::split",
    "bnb::solve",
    "bnb::node",
    "batch::item",
];

/// The failpoint sites of the `mmb-service` serving layer: request
/// admission, the artifact-cache lookup, and the per-request worker.
/// Kept separate from [`SITES`] so the seeded schedules `chaos` derives
/// for the solve path stay bit-identical; service chaos tests draw from
/// this list via [`FaultSchedule::chaos_over`].
pub const SERVICE_SITES: &[&str] = &["service::admit", "service::cache", "service::worker"];

/// What an armed failpoint does when its rule matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Unwind with an [`InjectedPanic`] payload (`transient: false`).
    Panic,
    /// Retryable failure: [`SolveError::Transient`] at fallible sites, a
    /// `transient: true` [`InjectedPanic`] at infallible ones.
    Transient,
    /// Sleep for the given number of milliseconds, then continue.
    Stall {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

/// One injection rule: fire `action` at `site` on per-site hit indices
/// `from..from + count` (hits are counted from 0 per site, per arming).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// The site name this rule targets.
    pub site: &'static str,
    /// First per-site hit index (0-based) the rule fires on.
    pub from: u64,
    /// Number of consecutive hits to fire on (`u64::MAX` = forever).
    pub count: u64,
    /// The action to take.
    pub action: FaultAction,
}

impl FaultRule {
    fn matches(&self, site: &str, hit: u64) -> bool {
        self.site == site && hit >= self.from && hit - self.from < self.count
    }
}

/// An explicit, replayable set of [`FaultRule`]s. Plain data: arming one
/// ([`with_faults`]) is the only way any failpoint ever fires.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    rules: Vec<FaultRule>,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule firing once, on the `hit`-th time `site` is reached.
    pub fn once(mut self, site: &'static str, hit: u64, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            site,
            from: hit,
            count: 1,
            action,
        });
        self
    }

    /// Add a rule firing on every hit of `site`.
    pub fn always(mut self, site: &'static str, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            site,
            from: 0,
            count: u64::MAX,
            action,
        });
        self
    }

    /// Add an explicit [`FaultRule`].
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Derive a small adversarial schedule from `seed` with an internal
    /// splitmix64 stream: 1–3 rules over the canonical [`SITES`], mixing
    /// panics, transients and short (≤ 4 ms) stalls at early hit indices.
    /// Same seed, same schedule — every chaos failure replays.
    pub fn chaos(seed: u64) -> Self {
        Self::chaos_over(seed, SITES)
    }

    /// [`FaultSchedule::chaos`], drawing sites from a caller-chosen list
    /// instead of the canonical solve-path [`SITES`] — e.g.
    /// [`SERVICE_SITES`] for the serving layer, or a mixed slice for
    /// end-to-end chaos. `chaos(seed)` ≡ `chaos_over(seed, SITES)`
    /// bit for bit, so existing seeded schedules are unaffected.
    pub fn chaos_over(seed: u64, sites: &[&'static str]) -> Self {
        assert!(!sites.is_empty(), "chaos_over needs at least one site");
        let mut state = seed;
        let mut next = move || -> u64 {
            // splitmix64 (Steele, Lea & Flood 2014) — tiny, seedable, and
            // good enough to scatter rules; not a crypto PRNG.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut schedule = FaultSchedule::new();
        let rules = 1 + (next() % 3);
        for _ in 0..rules {
            let site = sites[(next() % sites.len() as u64) as usize];
            let action = match next() % 4 {
                0 => FaultAction::Panic,
                1 | 2 => FaultAction::Transient,
                _ => FaultAction::Stall {
                    millis: 1 + next() % 4,
                },
            };
            schedule = schedule.once(site, next() % 6, action);
        }
        schedule
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// The panic payload of an injected [`FaultAction::Panic`] (or a
/// [`FaultAction::Transient`] raised at an infallible site). Isolation
/// boundaries downcast to this to distinguish injected faults — and
/// retryable ones — from genuine bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedPanic {
    /// The site that fired.
    pub site: &'static str,
    /// Whether the fault was [`FaultAction::Transient`] (retryable).
    pub transient: bool,
}

/// One injected fault, recorded in the log returned by [`with_faults`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The site that fired.
    pub site: &'static str,
    /// The per-site hit index at which it fired.
    pub hit: u64,
    /// The action taken.
    pub action: FaultAction,
}

struct Armed {
    schedule: FaultSchedule,
    /// Per-site hit counters; linear scan — the site list is tiny and a
    /// Vec keeps iteration order deterministic by construction.
    counts: Vec<(&'static str, u64)>,
    log: Vec<FaultEvent>,
}

thread_local! {
    static ARMED_FLAG: Cell<bool> = const { Cell::new(false) };
    static ARMED: RefCell<Option<Armed>> = const { RefCell::new(None) };
}

/// Whether a fault schedule is armed on this thread. The disarmed fast
/// path every site check takes in production.
#[inline]
pub fn armed() -> bool {
    ARMED_FLAG.with(|f| f.get())
}

/// Number of faults injected so far under the currently armed schedule
/// (0 when disarmed). Lets a harness snapshot injection activity around a
/// region without waiting for [`with_faults`] to return.
pub fn injection_count() -> usize {
    if !armed() {
        return 0;
    }
    ARMED.with(|a| a.borrow().as_ref().map_or(0, |s| s.log.len()))
}

fn check(site: &'static str) -> Option<FaultAction> {
    if !armed() {
        return None;
    }
    ARMED.with(|a| {
        let mut guard = a.borrow_mut();
        let state = guard.as_mut()?;
        let hit = match state.counts.iter_mut().find(|(s, _)| *s == site) {
            Some((_, count)) => {
                let hit = *count;
                *count += 1;
                hit
            }
            None => {
                state.counts.push((site, 1));
                0
            }
        };
        let action = state
            .schedule
            .rules
            .iter()
            .find(|r| r.matches(site, hit))
            .map(|r| r.action)?;
        state.log.push(FaultEvent { site, hit, action });
        Some(action)
    })
}

/// Check the failpoint at `site` on a **fallible** path: transients come
/// back as [`SolveError::Transient`], panics unwind with an
/// [`InjectedPanic`] payload, stalls sleep and return `Ok`. A no-op
/// (`Ok(())`) when no schedule is armed.
#[inline]
pub fn raise(site: &'static str) -> Result<(), SolveError> {
    if !armed() {
        return Ok(());
    }
    raise_slow(site)
}

#[cold]
fn raise_slow(site: &'static str) -> Result<(), SolveError> {
    match check(site) {
        None => Ok(()),
        Some(FaultAction::Transient) => Err(SolveError::Transient { site }),
        Some(FaultAction::Panic) => std::panic::panic_any(InjectedPanic {
            site,
            transient: false,
        }),
        Some(FaultAction::Stall { millis }) => {
            std::thread::sleep(Duration::from_millis(millis));
            Ok(())
        }
    }
}

/// Check the failpoint at `site` on an **infallible** path: both panics
/// and transients unwind with an [`InjectedPanic`] payload (transients
/// marked `transient: true` so an isolation boundary can retry), stalls
/// sleep. A no-op when no schedule is armed.
#[inline]
pub fn raise_any(site: &'static str) {
    if !armed() {
        return;
    }
    raise_any_slow(site);
}

#[cold]
fn raise_any_slow(site: &'static str) {
    match check(site) {
        None => {}
        Some(FaultAction::Panic) => std::panic::panic_any(InjectedPanic {
            site,
            transient: false,
        }),
        Some(FaultAction::Transient) => std::panic::panic_any(InjectedPanic {
            site,
            transient: true,
        }),
        Some(FaultAction::Stall { millis }) => {
            std::thread::sleep(Duration::from_millis(millis));
        }
    }
}

/// Render a caught panic payload for error reports: [`InjectedPanic`]s
/// name their site, `&str`/`String` payloads pass through, anything else
/// becomes an opaque marker.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(inj) = payload.downcast_ref::<InjectedPanic>() {
        return format!(
            "injected {} fault at failpoint `{}`",
            if inj.transient { "transient" } else { "panic" },
            inj.site
        );
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "opaque panic payload".to_owned()
}

/// Downcast a caught payload to the injected-fault marker, if it is one.
pub fn injected(payload: &(dyn std::any::Any + Send)) -> Option<InjectedPanic> {
    payload.downcast_ref::<InjectedPanic>().copied()
}

/// Restores the previously armed state (if any) when dropped — including
/// on unwind, so a panicking closure cannot leak an armed schedule into
/// unrelated code on this thread.
struct DisarmGuard {
    previous: Option<Armed>,
    previous_flag: bool,
}

impl Drop for DisarmGuard {
    fn drop(&mut self) {
        ARMED.with(|a| *a.borrow_mut() = self.previous.take());
        ARMED_FLAG.with(|f| f.set(self.previous_flag));
    }
}

/// Arm `schedule` on this thread, run `f`, disarm, and return `f`'s
/// result together with the log of faults actually injected. Nests: an
/// inner `with_faults` shadows the outer schedule and restores it on
/// exit. If `f` unwinds, the guard still disarms before the panic
/// propagates (the log of the unwound run is discarded with it — catch
/// inside `f` if you need it).
pub fn with_faults<R>(schedule: &FaultSchedule, f: impl FnOnce() -> R) -> (R, Vec<FaultEvent>) {
    let guard = DisarmGuard {
        previous: ARMED.with(|a| a.borrow_mut().take()),
        previous_flag: ARMED_FLAG.with(|fl| fl.get()),
    };
    ARMED.with(|a| {
        *a.borrow_mut() = Some(Armed {
            schedule: schedule.clone(),
            counts: Vec::new(),
            log: Vec::new(),
        })
    });
    ARMED_FLAG.with(|fl| fl.set(true));
    let result = f();
    let log = ARMED.with(|a| a.borrow_mut().take().map_or_else(Vec::new, |s| s.log));
    drop(guard);
    (result, log)
}

/// A [`Splitter`](mmb_splitters::Splitter) adapter that checks the
/// `splitter::split` failpoint before delegating — how fault schedules
/// reach the splitters crate, which sits below `mmb-core` in the
/// dependency DAG and cannot host sites itself. The resilient ladder
/// wraps every splitter it builds in one of these; the overhead when
/// disarmed is the [`armed`] flag read.
pub struct FailpointSplitter<S> {
    inner: S,
}

impl<S: mmb_splitters::Splitter> FailpointSplitter<S> {
    /// Wrap `inner`, routing every `split` call through the
    /// `splitter::split` site.
    pub fn new(inner: S) -> Self {
        FailpointSplitter { inner }
    }
}

impl<S: mmb_splitters::Splitter> mmb_splitters::Splitter for FailpointSplitter<S> {
    fn split(
        &self,
        w_set: &mmb_graph::VertexSet,
        weights: &[f64],
        target: f64,
    ) -> mmb_graph::VertexSet {
        // Splitter::split is infallible by contract, so transients unwind
        // (classified and retried at the rung boundary).
        raise_any("splitter::split");
        self.inner.split(w_set, weights, target)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_is_chaos_over_the_canonical_sites() {
        // Pinned: generalizing the generator must not reshuffle the
        // seeded schedules the chaos suite and CI replay.
        for seed in [0u64, 1, 2, 3, 5, 8, 0xc0ffee, u64::MAX] {
            assert_eq!(
                FaultSchedule::chaos(seed),
                FaultSchedule::chaos_over(seed, SITES)
            );
        }
    }

    #[test]
    fn chaos_over_draws_only_from_the_given_sites() {
        for seed in 0..64u64 {
            let schedule = FaultSchedule::chaos_over(seed, SERVICE_SITES);
            let dump = format!("{schedule:?}");
            assert!(
                SERVICE_SITES.iter().any(|s| dump.contains(s)),
                "no service site in {dump}"
            );
            for s in SITES {
                assert!(!dump.contains(s), "solve-path site {s} leaked into {dump}");
            }
        }
    }

    #[test]
    fn disarmed_sites_are_inert() {
        assert!(!armed());
        assert!(raise("pipeline::shrink").is_ok());
        raise_any("bnb::node");
        assert_eq!(injection_count(), 0);
    }

    #[test]
    fn once_rule_fires_on_the_exact_hit() {
        let schedule = FaultSchedule::new().once("bnb::solve", 2, FaultAction::Transient);
        let (hits, log) = with_faults(&schedule, || {
            (0..5)
                .map(|_| raise("bnb::solve").is_err())
                .collect::<Vec<_>>()
        });
        assert_eq!(hits, [false, false, true, false, false]);
        assert_eq!(
            log,
            [FaultEvent {
                site: "bnb::solve",
                hit: 2,
                action: FaultAction::Transient
            }]
        );
        assert!(!armed(), "guard must disarm on exit");
    }

    #[test]
    fn always_rule_fires_forever_and_only_at_its_site() {
        let schedule = FaultSchedule::new().always("pipeline::shrink", FaultAction::Transient);
        let ((a, b), log) = with_faults(&schedule, || {
            let a = (0..3)
                .filter(|_| raise("pipeline::shrink").is_err())
                .count();
            let b = (0..3)
                .filter(|_| raise("pipeline::binpack").is_err())
                .count();
            (a, b)
        });
        assert_eq!((a, b), (3, 0));
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn transient_error_is_typed_with_the_site() {
        let schedule = FaultSchedule::new().once("batch::item", 0, FaultAction::Transient);
        let (err, _) = with_faults(&schedule, || raise("batch::item").unwrap_err());
        assert_eq!(
            err,
            SolveError::Transient {
                site: "batch::item"
            }
        );
    }

    #[test]
    fn injected_panics_carry_a_downcastable_payload() {
        let schedule = FaultSchedule::new().once("pipeline::multibalance", 0, FaultAction::Panic);
        let (caught, _) = with_faults(&schedule, || {
            std::panic::catch_unwind(|| raise_any("pipeline::multibalance")).unwrap_err()
        });
        let inj = injected(caught.as_ref()).expect("payload is InjectedPanic");
        assert_eq!(inj.site, "pipeline::multibalance");
        assert!(!inj.transient);
        assert!(panic_message(caught.as_ref()).contains("pipeline::multibalance"));
    }

    #[test]
    fn transient_at_infallible_site_unwinds_marked_retryable() {
        let schedule = FaultSchedule::new().once("splitter::split", 0, FaultAction::Transient);
        let (caught, _) = with_faults(&schedule, || {
            std::panic::catch_unwind(|| raise_any("splitter::split")).unwrap_err()
        });
        assert!(injected(caught.as_ref()).unwrap().transient);
    }

    #[test]
    fn schedules_replay_bit_identically_and_chaos_is_seed_deterministic() {
        for seed in [0, 1, 7, 0xdead_beef] {
            assert_eq!(FaultSchedule::chaos(seed), FaultSchedule::chaos(seed));
            assert!(!FaultSchedule::chaos(seed).is_empty());
        }
        // Distinct seeds should not all collapse to one schedule.
        let distinct = (0..16)
            .map(FaultSchedule::chaos)
            .collect::<Vec<_>>()
            .windows(2)
            .any(|w| w[0] != w[1]);
        assert!(distinct);
    }

    #[test]
    fn arming_nests_and_restores() {
        let outer = FaultSchedule::new().always("bnb::solve", FaultAction::Transient);
        let inner = FaultSchedule::new(); // injects nothing
        let ((), _) = with_faults(&outer, || {
            assert!(raise("bnb::solve").is_err());
            let (ok, _) = with_faults(&inner, || raise("bnb::solve").is_ok());
            assert!(ok, "inner schedule shadows the outer one");
            assert!(raise("bnb::solve").is_err(), "outer schedule restored");
        });
        assert!(!armed());
    }

    #[test]
    fn guard_disarms_even_when_the_closure_unwinds() {
        let schedule = FaultSchedule::new().always("batch::item", FaultAction::Panic);
        let attempt = std::panic::catch_unwind(|| {
            with_faults(&schedule, || raise_any("batch::item"));
        });
        assert!(attempt.is_err());
        assert!(!armed(), "unwind must not leak an armed schedule");
        assert!(raise("batch::item").is_ok());
    }

    #[test]
    fn stall_continues_without_failing() {
        let schedule = FaultSchedule::new().once("bnb::node", 0, FaultAction::Stall { millis: 1 });
        let (ok, log) = with_faults(&schedule, || raise("bnb::node").is_ok());
        assert!(ok);
        assert_eq!(log.len(), 1);
    }
}
