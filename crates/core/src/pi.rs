//! The splitting cost measure `π` (Definition 10).
//!
//! `π(v) := σ_p^p · Σ_{e ∈ δ(v)} c_e^p / 2`. For every vertex set `W` one
//! has `σ_p·‖c|_W‖_p ≤ π(W)^{1/p}`, so classes of a `π`-balanced coloring
//! can always be split at cost `O(B′)` with
//! `B′ = σ_p·(q·k^{−1/p}·‖c‖_p + Δ_c)` (eq. (10)) — the key to Proposition 7.
//!
//! The `σ_p^p` prefactor is a global constant: it scales the measure
//! uniformly and therefore changes neither which colorings are `π`-balanced
//! nor which sets the algorithms select. We expose it as an optional
//! parameter defaulting to 1 (callers that want paper-exact values pass an
//! estimate of `σ_p`).

use mmb_graph::measure::pow_p;
use mmb_graph::workspace::{ScratchMeasure, Workspace};
use mmb_graph::{Graph, VertexSet};

/// The splitting cost measure `π(v) = sigma^p · Σ_{e∈δ(v)∩E(W)} c_e^p / 2`,
/// restricted to edges inside `domain` (vertices outside get 0).
pub fn splitting_cost_measure_within(
    g: &Graph,
    costs: &[f64],
    p: f64,
    sigma: f64,
    domain: &VertexSet,
) -> Vec<f64> {
    Workspace::with_local(|ws| {
        splitting_cost_measure_within_ws(g, costs, p, sigma, domain, ws).to_measure()
    })
}

/// [`splitting_cost_measure_within`] into a reusable [`Workspace`] buffer:
/// `O(vol(domain))` accumulation with zero allocation; the dense view is
/// bit-identical to the allocating variant's vector.
pub fn splitting_cost_measure_within_ws<'ws>(
    g: &Graph,
    costs: &[f64],
    p: f64,
    sigma: f64,
    domain: &VertexSet,
    ws: &'ws Workspace,
) -> ScratchMeasure<'ws> {
    assert!(p >= 1.0, "p must be at least 1");
    assert!(sigma > 0.0, "sigma must be positive");
    let factor = pow_p(sigma, p) / 2.0;
    let mut pi = ws.measure(g.num_vertices());
    for v in domain.iter() {
        let s: f64 = g
            .neighbors(v)
            .iter()
            .filter(|&&(nb, _)| domain.contains(nb))
            .map(|&(_, e)| pow_p(costs[e as usize], p))
            .sum();
        pi.set(v, factor * s);
    }
    pi
}

/// [`splitting_cost_measure_within`] on the whole vertex set with `σ = 1`.
pub fn splitting_cost_measure(g: &Graph, costs: &[f64], p: f64) -> Vec<f64> {
    splitting_cost_measure_within(g, costs, p, 1.0, &VertexSet::full(g.num_vertices()))
}

/// The *splitting cost* `π^{1/p}(W) = (π(W))^{1/p}` of a vertex set.
pub fn splitting_cost(pi: &[f64], set: &VertexSet, p: f64) -> f64 {
    mmb_graph::measure::set_sum(pi, set).powf(1.0 / p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::graph::graph_from_edges;
    use mmb_graph::measure::edge_norm_p;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn pi_totals_match_cost_norm() {
        // ‖π‖₁ = σ^p·‖c‖_p^p (each edge counted at both endpoints, halved).
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let costs = vec![1.0, 2.0, 3.0, 4.0];
        let p = 2.0;
        let pi = splitting_cost_measure(&g, &costs, p);
        let total: f64 = pi.iter().sum();
        let norm = edge_norm_p(&g, &costs, &VertexSet::full(4), p);
        assert!(close(total, norm.powf(p)));
    }

    #[test]
    fn splitting_cost_dominates_subset_norm() {
        // σ_p‖c|_W‖_p ≤ π(W)^{1/p} for every W (Definition 10's remark),
        // with σ = 1 here.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let costs = vec![1.0, 5.0, 2.0, 0.5, 3.0];
        let p = 1.5;
        let pi = splitting_cost_measure(&g, &costs, p);
        for mask in 1u32..32 {
            let w = VertexSet::from_iter(5, (0..5u32).filter(|v| mask >> v & 1 == 1));
            let lhs = edge_norm_p(&g, &costs, &w, p);
            let rhs = splitting_cost(&pi, &w, p);
            assert!(lhs <= rhs + 1e-9, "violated for mask {mask}: {lhs} > {rhs}");
        }
    }

    #[test]
    fn sigma_scales_uniformly() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let costs = vec![2.0, 3.0];
        let all = VertexSet::full(3);
        let base = splitting_cost_measure_within(&g, &costs, 2.0, 1.0, &all);
        let scaled = splitting_cost_measure_within(&g, &costs, 2.0, 3.0, &all);
        for (b, s) in base.iter().zip(&scaled) {
            assert!(close(*s, 9.0 * b));
        }
    }

    #[test]
    fn domain_restriction_ignores_outside_edges() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let costs = vec![2.0, 3.0];
        let dom = VertexSet::from_iter(3, [0u32, 1]);
        let pi = splitting_cost_measure_within(&g, &costs, 2.0, 1.0, &dom);
        assert!(close(pi[0], 2.0)); // edge (0,1): 4/2
        assert!(close(pi[1], 2.0)); // edge (1,2) excluded
        assert_eq!(pi[2], 0.0);
    }
}
