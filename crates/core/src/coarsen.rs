//! The coarsening cascade: heavy-edge matching, contraction, and
//! coloring projection, shared between the multilevel baseline and the
//! pipeline's large-`n` path.
//!
//! A [`CoarseningFront`] contracts a host graph level by level — each
//! level a heavy-edge matching (expensive edges become internal and can
//! never be cut) followed by a contraction that sums vertex weights and
//! parallel-edge costs — until the graph is at most `target_vertices`
//! large or no matching makes progress. A coloring of the coarsest graph
//! then projects back to the host through the stored fine→coarse maps
//! ([`CoarseningFront::project_to_host`]), with a caller-supplied
//! refinement hook (typically [`crate::refine::refine`]) applied at every
//! intermediate level.
//!
//! Everything is **seeded-deterministic**: the matching order is a
//! `StdRng` shuffle from [`CoarsenParams::seed`] (one generator threaded
//! through all levels), ties in edge cost break on neighbor id, and the
//! contraction aggregates parallel edges in edge-id order with a sorted
//! flat arena — no hash map, no iteration-order dependence. Two builds
//! from the same inputs are bit-identical, and the `Multilevel` baseline
//! that this code was lifted from is pinned to its historical colorings
//! by `tests/multilevel_golden.rs`.
//!
//! Memory: each level's graph, costs, weights, and map are charged to the
//! thread-local [`Workspace`] as arena bytes while the front is alive, so
//! the scaling bench's RSS proxy (`WorkspaceStats::arena_peak_bytes`)
//! sees the cascade's true footprint. Level sizes decay geometrically (a
//! perfect matching halves the graph), so the whole front costs a small
//! constant factor of the host CSR.

use mmb_graph::workspace::Workspace;
use mmb_graph::{Coloring, Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::api::SolveError;

/// When to stop contracting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoarsenParams {
    /// Stop once the coarsest graph has at most this many vertices.
    pub target_vertices: usize,
    /// Maximum number of contraction levels.
    pub max_levels: usize,
    /// Seed for the matching order (one `StdRng` across all levels).
    pub seed: u64,
}

impl Default for CoarsenParams {
    fn default() -> Self {
        Self {
            target_vertices: 8192,
            max_levels: 40,
            seed: 1,
        }
    }
}

/// One contraction level: the coarse graph plus the map into it.
pub struct CoarseLevel {
    /// Fine vertex → coarse vertex (fine = the previous level's graph, or
    /// the host for the first level).
    pub map: Vec<VertexId>,
    /// The contracted graph.
    pub graph: Graph,
    /// Aggregated edge costs, parallel to `graph.edge_list()`.
    pub costs: Vec<f64>,
    /// Aggregated vertex weights.
    pub weights: Vec<f64>,
}

impl CoarseLevel {
    fn arena_bytes(&self) -> u64 {
        let n = self.graph.num_vertices() as u64;
        let m = self.graph.num_edges() as u64;
        // adj (8 bytes × 2m) + adj_off (4 bytes × (n+1)) + edge list
        // (8 bytes × m) + costs/weights (8 bytes each) + map (4 bytes).
        16 * m + 4 * (n + 1) + 8 * m + 8 * m + 8 * n + 4 * self.map.len() as u64
    }
}

/// A built cascade of contraction levels (see the [module docs](self)).
///
/// The front does not own the host triple; pass it back to
/// [`coarsest`](Self::coarsest) and
/// [`project_to_host`](Self::project_to_host).
pub struct CoarseningFront {
    levels: Vec<CoarseLevel>,
    charged_bytes: u64,
}

impl Drop for CoarseningFront {
    fn drop(&mut self) {
        if self.charged_bytes > 0 {
            Workspace::with_local(|ws| ws.release_arena_bytes(self.charged_bytes));
        }
    }
}

impl CoarseningFront {
    /// Contract `(g, costs, weights)` until `params` says stop.
    ///
    /// The front may be empty (zero levels) when the host is already at or
    /// below the target, or when the first matching makes no progress
    /// (edgeless graph).
    pub fn build(g: &Graph, costs: &[f64], weights: &[f64], params: &CoarsenParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut levels: Vec<CoarseLevel> = Vec::new();
        let mut charged = 0u64;
        loop {
            let (fg, fc, fw) = match levels.last() {
                None => (g, costs, weights),
                Some(l) => (&l.graph, l.costs.as_slice(), l.weights.as_slice()),
            };
            if fg.num_vertices() <= params.target_vertices || levels.len() >= params.max_levels {
                break;
            }
            let (map, coarse_n) = heavy_edge_matching(fg, fc, &mut rng);
            if coarse_n == fg.num_vertices() {
                break; // no contraction possible (edgeless)
            }
            let (graph, ncosts, nweights) = contract(fg, fc, fw, &map, coarse_n);
            let level = CoarseLevel {
                map,
                graph,
                costs: ncosts,
                weights: nweights,
            };
            let bytes = level.arena_bytes();
            Workspace::with_local(|ws| ws.charge_arena_bytes(bytes));
            charged += bytes;
            levels.push(level);
        }
        CoarseningFront {
            levels,
            charged_bytes: charged,
        }
    }

    /// Number of contraction levels (0 = nothing was contracted).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The levels, finest contraction first.
    pub fn levels(&self) -> &[CoarseLevel] {
        &self.levels
    }

    /// The coarsest `(graph, costs, weights)` — the host triple itself
    /// when the front is empty.
    pub fn coarsest<'a>(
        &'a self,
        host: (&'a Graph, &'a [f64], &'a [f64]),
    ) -> (&'a Graph, &'a [f64], &'a [f64]) {
        match self.levels.last() {
            None => host,
            Some(l) => (&l.graph, &l.costs, &l.weights),
        }
    }

    /// Composed host vertex → coarsest vertex map (identity when empty).
    pub fn host_map(&self, host_n: usize) -> Vec<VertexId> {
        let mut map: Vec<VertexId> = (0..host_n as u32).collect();
        for level in &self.levels {
            for c in map.iter_mut() {
                *c = level.map[*c as usize];
            }
        }
        map
    }

    /// Push a host measure through the cascade: coarse vertex value = sum
    /// over its host preimage (identity when empty).
    pub fn coarsen_measure(&self, m: &[f64]) -> Vec<f64> {
        let Some(last) = self.levels.last() else {
            return m.to_vec();
        };
        let map = self.host_map(m.len());
        let mut out = vec![0.0; last.weights.len()];
        for (v, &x) in m.iter().enumerate() {
            out[map[v] as usize] += x;
        }
        out
    }

    /// Project `chi` (a coloring of the coarsest graph) back to the host,
    /// calling `refine_level(fine_graph, fine_costs, fine_weights, chi)`
    /// at every level on the way up — pass a closure returning its input
    /// for plain projection.
    pub fn project_to_host(
        &self,
        host: (&Graph, &[f64], &[f64]),
        mut chi: Coloring,
        mut refine_level: impl FnMut(&Graph, &[f64], &[f64], &Coloring) -> Result<Coloring, SolveError>,
    ) -> Result<Coloring, SolveError> {
        for i in (0..self.levels.len()).rev() {
            let (fg, fc, fw) = if i == 0 {
                host
            } else {
                let l = &self.levels[i - 1];
                (&l.graph, l.costs.as_slice(), l.weights.as_slice())
            };
            let map = &self.levels[i].map;
            let mut fine = Coloring::new_uncolored(fg.num_vertices(), chi.k());
            for v in 0..fg.num_vertices() as u32 {
                if let Some(c) = chi.get(map[v as usize]) {
                    fine.set(v, c);
                }
            }
            chi = refine_level(fg, fc, fw, &fine)?;
        }
        Ok(chi)
    }
}

/// Heavy-edge matching: returns (fine → coarse map, coarse vertex count).
///
/// Vertices are visited in a seeded shuffle order; each unmatched vertex
/// pairs with its heaviest unmatched neighbor (`total_cmp` on edge cost,
/// neighbor-id tie-break, so the matching never depends on adjacency-list
/// order). Coarse ids are assigned in fine-id order, so the map — and
/// everything downstream — is a pure function of `(g, costs, rng state)`.
pub fn heavy_edge_matching(g: &Graph, costs: &[f64], rng: &mut StdRng) -> (Vec<VertexId>, usize) {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut mate = vec![u32::MAX; n];
    for &v in &order {
        if mate[v as usize] != u32::MAX {
            continue;
        }
        let heaviest = g
            .neighbors(v)
            .iter()
            .filter(|&&(nb, _)| mate[nb as usize] == u32::MAX && nb != v)
            // total_cmp + neighbor-id tie-break: matching must not depend
            // on adjacency-list order when edge costs tie.
            .max_by(|a, b| {
                costs[a.1 as usize]
                    .total_cmp(&costs[b.1 as usize])
                    .then(b.0.cmp(&a.0))
            });
        match heaviest {
            Some(&(nb, _)) => {
                mate[v as usize] = nb;
                mate[nb as usize] = v;
            }
            None => mate[v as usize] = v, // singleton
        }
    }
    // Assign coarse ids.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        map[v as usize] = next;
        let m = mate[v as usize];
        if m != u32::MAX && m != v {
            map[m as usize] = next;
        }
        next += 1;
    }
    (map, next as usize)
}

/// Contract according to `map`, summing weights and parallel edge costs.
///
/// Parallel edges are aggregated with a sorted flat arena keyed on
/// `(coarse_u, coarse_v, edge_id)`: costs accumulate per key in ascending
/// edge-id order — the same order the historical `HashMap` version added
/// them in — so the output is bit-identical to it, without a hash map on
/// the million-edge path.
pub fn contract(
    g: &Graph,
    costs: &[f64],
    weights: &[f64],
    map: &[VertexId],
    coarse_n: usize,
) -> (Graph, Vec<f64>, Vec<f64>) {
    let mut coarse_weights = vec![0.0; coarse_n];
    for v in 0..g.num_vertices() {
        coarse_weights[map[v] as usize] += weights[v];
    }
    let mut arcs: Vec<(u32, u32, u32)> = Vec::new();
    for (e, &(u, v)) in g.edge_list().iter().enumerate() {
        let (cu, cv) = (map[u as usize], map[v as usize]);
        if cu == cv {
            continue;
        }
        let key = if cu < cv { (cu, cv) } else { (cv, cu) };
        arcs.push((key.0, key.1, e as u32));
    }
    arcs.sort_unstable();
    let mut builder = GraphBuilder::new(coarse_n);
    let mut coarse_costs: Vec<f64> = Vec::new();
    let mut i = 0;
    while i < arcs.len() {
        let (u, v, _) = arcs[i];
        let mut c = 0.0;
        while i < arcs.len() && arcs[i].0 == u && arcs[i].1 == v {
            c += costs[arcs[i].2 as usize];
            i += 1;
        }
        builder.add_edge(u, v);
        coarse_costs.push(c);
    }
    (builder.build(), coarse_costs, coarse_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;

    fn unit_grid(side: usize) -> (Graph, Vec<f64>, Vec<f64>) {
        let grid = GridGraph::lattice(&[side, side]);
        let m = grid.graph.num_edges();
        let n = grid.graph.num_vertices();
        (grid.graph, vec![1.0; m], vec![1.0; n])
    }

    #[test]
    fn front_reaches_target_and_conserves_weight() {
        let (g, costs, weights) = unit_grid(32);
        let front = CoarseningFront::build(&g, &costs, &weights, &CoarsenParams::default());
        // 1024 vertices, default target 8192: nothing to do.
        assert_eq!(front.num_levels(), 0);

        let params = CoarsenParams {
            target_vertices: 64,
            ..Default::default()
        };
        let front = CoarseningFront::build(&g, &costs, &weights, &params);
        assert!(front.num_levels() >= 1);
        let (cg, _cc, cw) = front.coarsest((&g, &costs, &weights));
        assert!(cg.num_vertices() <= 64);
        let total: f64 = cw.iter().sum();
        assert!(
            (total - 1024.0).abs() < 1e-9,
            "weight not conserved: {total}"
        );
    }

    #[test]
    fn contraction_is_seed_deterministic() {
        let (g, costs, weights) = unit_grid(20);
        let params = CoarsenParams {
            target_vertices: 50,
            seed: 42,
            ..Default::default()
        };
        let a = CoarseningFront::build(&g, &costs, &weights, &params);
        let b = CoarseningFront::build(&g, &costs, &weights, &params);
        assert_eq!(a.num_levels(), b.num_levels());
        for (la, lb) in a.levels().iter().zip(b.levels()) {
            assert_eq!(la.map, lb.map);
            assert_eq!(la.graph.edge_list(), lb.graph.edge_list());
            assert_eq!(la.costs, lb.costs);
            assert_eq!(la.weights, lb.weights);
        }
    }

    #[test]
    fn contract_aggregates_parallel_edges() {
        // Path 0-1-2-3 with map {0,1}→0, {2,3}→1: the two inner-pair
        // edges vanish, the middle edge survives with its cost.
        let g = mmb_graph::gen::misc::path(4);
        let costs = vec![2.0, 5.0, 3.0];
        let weights = vec![1.0, 2.0, 3.0, 4.0];
        let map = vec![0, 0, 1, 1];
        let (cg, cc, cw) = contract(&g, &costs, &weights, &map, 2);
        assert_eq!(cg.num_vertices(), 2);
        assert_eq!(cg.edge_list(), &[(0, 1)]);
        assert_eq!(cc, vec![5.0]);
        assert_eq!(cw, vec![3.0, 7.0]);
    }

    #[test]
    fn projection_roundtrips_class_weights() {
        let (g, costs, weights) = unit_grid(16);
        let params = CoarsenParams {
            target_vertices: 32,
            ..Default::default()
        };
        let front = CoarseningFront::build(&g, &costs, &weights, &params);
        let (cg, _, cw) = front.coarsest((&g, &costs, &weights));
        // Color the coarsest graph by parity of vertex id.
        let chi = Coloring::from_fn(cg.num_vertices(), 2, |v| v % 2);
        let coarse_cm = chi.class_measures(cw);
        let host = front
            .project_to_host((&g, &costs, &weights), chi, |_, _, _, c| Ok(c.clone()))
            .unwrap();
        assert!(host.is_total());
        // Plain projection preserves class weights exactly.
        let host_cm = host.class_measures(&weights);
        for (a, b) in coarse_cm.iter().zip(&host_cm) {
            assert!((a - b).abs() < 1e-9, "{coarse_cm:?} vs {host_cm:?}");
        }
    }

    #[test]
    fn front_charges_and_releases_arena_bytes() {
        let (g, costs, weights) = unit_grid(24);
        let params = CoarsenParams {
            target_vertices: 36,
            ..Default::default()
        };
        Workspace::with_local(|ws| {
            let before = ws.stats().arena_live_bytes;
            let front = CoarseningFront::build(&g, &costs, &weights, &params);
            assert!(front.num_levels() > 0);
            assert!(ws.stats().arena_live_bytes > before);
            drop(front);
            assert_eq!(ws.stats().arena_live_bytes, before);
        });
    }
}
