//! Anytime branch-and-bound solver for the strictly balanced min-max
//! boundary problem — exact solving past the oracle's `n = 16` cap.
//!
//! The engine enumerates colorings as *restricted growth strings* over a
//! fixed vertex order (descending degree, ties by id) — the same
//! symmetry-canonical space the PR-4 oracle searched — but replaces the
//! oracle's bare `‖∂(partial)‖_∞` cutoff with the certified node bound
//! maintained incrementally by [`bounds::IncrementalBounds`]: each
//! `update(vertex, class)` returns
//! `max(‖∂(partial)‖_∞, (cut₂ + packₛ)/k)`, folding the edge-packing
//! certifier of [`crate::lower_bounds::packing`] into every branching
//! decision, and `reset()` pops it again in `O(deg)`.
//!
//! Three more ingredients make the solver *anytime*:
//!
//! * **Seeded incumbent** — the search starts from the
//!   [`Theorem4Pipeline`] coloring, so the result is never worse than
//!   the pipeline's even at node budget 0.
//! * **Root gap** — before searching, the polynomial
//!   [`static_lower_bound`] stack prices the root. If the seed already matches it, the search
//!   is skipped entirely (the seed is proven optimal); otherwise the
//!   root bound is the certified `lower` of any truncated run.
//! * **Deterministic interruption** — [`BnbConfig`] carries a node
//!   budget (and optionally a wall-clock deadline); the stop check runs
//!   *before* a node is counted, so the visited sets of two runs with
//!   budgets `b₁ ≤ b₂` are prefixes of one another and the incumbent —
//!   hence the certified gap ratio — is monotone in the budget.
//!
//! When the search exhausts (`proven_optimal`), the incumbent *is* the
//! optimum, and [`BnbBound`] certifies it as a lower bound with a
//! replayable [`Derivation::BnbOptimal`] — this is what lifts certified
//! gap ratios to exactly 1.0 on instances the oracle refuses.
//!
//! Entry points: [`solve`] / [`solve_with_interrupt`] for direct use,
//! [`BnbPartitioner`] for the `&[&dyn Partitioner]` harness loops, and
//! [`Solver::solve_anytime`](crate::api::Solver::solve_anytime) for the
//! front-door API.

pub mod bounds;

// lint: allow(nondeterminism) — import only; both call sites carry their
// own audited pragmas (deadline checks affect truncation, not the answer).
use std::time::{Duration, Instant};

use mmb_graph::{Coloring, VertexId};

use crate::api::error::SolveError;
use crate::api::instance::Instance;
use crate::api::partitioner::{Partitioner, Theorem4Pipeline};
use crate::lower_bounds::{static_lower_bound, Certificate, CertifiedGap, Derivation, LowerBound};

use bounds::IncrementalBounds;

/// Default node budget of [`BnbConfig::default`]: generous enough to
/// exhaust every `n ≤ 20` corpus instance, small enough to stay
/// interactive on dense `n ≈ 30` hosts.
pub const DEFAULT_NODE_BUDGET: u64 = 500_000;

/// Default wall-clock polling stride of [`BnbConfig::default`]: the
/// deadline is consulted on the first node and every 1024th after, a
/// balance between hot-loop cleanliness and overshoot (≤ 1023 nodes past
/// the wall).
pub const DEFAULT_DEADLINE_POLL_STRIDE: u64 = 1024;

/// Budget configuration of one branch-and-bound run.
///
/// `None` everywhere means *exhaustive*: the search runs until the space
/// is exhausted and the result is the proven optimum. A node budget is
/// the deterministic (seed-stable) way to truncate; the wall-clock
/// deadline exists for interactive callers and is checked on the first
/// node and then every `deadline_poll_stride` nodes, so overshoot past
/// the wall is bounded by `stride − 1` node expansions (plus the one in
/// flight) — shrink the stride when nodes are expensive and the deadline
/// tight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BnbConfig {
    /// Maximum number of search nodes to visit (`None` = unlimited).
    pub node_budget: Option<u64>,
    /// Wall-clock budget (`None` = unlimited). Prefer node budgets in
    /// tests: deadlines are inherently machine-dependent.
    pub time_budget: Option<Duration>,
    /// How often (in visited nodes) the wall-clock deadline is polled;
    /// node 0 is always polled. Values below 1 behave as 1 (poll every
    /// node). Irrelevant without a `time_budget`.
    pub deadline_poll_stride: u64,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            node_budget: Some(DEFAULT_NODE_BUDGET),
            time_budget: None,
            deadline_poll_stride: DEFAULT_DEADLINE_POLL_STRIDE,
        }
    }
}

impl BnbConfig {
    /// No budgets: run to exhaustion, return the proven optimum.
    pub fn exhaustive() -> Self {
        BnbConfig {
            node_budget: None,
            ..Self::default()
        }
    }

    /// Exhaustive except for a node budget of `nodes`.
    pub fn with_node_budget(nodes: u64) -> Self {
        BnbConfig {
            node_budget: Some(nodes),
            time_budget: None,
            deadline_poll_stride: DEFAULT_DEADLINE_POLL_STRIDE,
        }
    }

    /// Exhaustive except for a wall-clock budget of `deadline`, polled
    /// every `stride` nodes.
    pub fn with_time_budget(deadline: Duration, stride: u64) -> Self {
        BnbConfig {
            node_budget: None,
            time_budget: Some(deadline),
            deadline_poll_stride: stride,
        }
    }
}

/// The result of a branch-and-bound run: the best incumbent, whether it
/// is the proven optimum, and the certified gap either way.
#[derive(Clone, Debug)]
pub struct BnbSolution {
    /// The best strictly balanced coloring found (never worse than the
    /// seeding pipeline's).
    pub coloring: Coloring,
    /// Its maximum boundary cost, recomputed from scratch.
    pub max_boundary: f64,
    /// Search nodes visited (0 when the root bound already proved the
    /// seed optimal).
    pub nodes: u64,
    /// Whether the search exhausted the space — in which case
    /// `max_boundary` *is* `OPT`.
    pub proven_optimal: bool,
    /// The certified gap: `(max_boundary, max_boundary, ratio 1.0)` when
    /// proven, `(root static bound, max_boundary)` when truncated.
    pub gap: CertifiedGap,
}

struct Engine<'a, 'f> {
    inst: &'a Instance,
    k: usize,
    order: Vec<VertexId>,
    /// `suffix_w[i]` = total weight of `order[i..]` (deficit prune).
    suffix_w: Vec<f64>,
    lo: f64,
    hi: f64,
    bounds: IncrementalBounds,
    best_cost: f64,
    best: Option<Vec<u32>>,
    nodes: u64,
    truncated: bool,
    /// Stop predicate over the visited-node count; checked *before* the
    /// node is counted so budgeted runs visit exact prefixes.
    stop: &'f mut dyn FnMut(u64) -> bool,
}

impl Engine<'_, '_> {
    /// DFS over `order[i..]`; `used` = number of colors in use so far
    /// (restricted growth: reuse `0..used` or open color `used`).
    fn dfs(&mut self, i: usize, used: usize) {
        if (self.stop)(self.nodes) {
            self.truncated = true;
            return;
        }
        self.nodes += 1;
        if i == self.order.len() {
            if self.bounds.meets_lower(self.lo) {
                let cost = self.bounds.current_max_boundary();
                if cost < self.best_cost {
                    self.best_cost = cost;
                    self.best = Some(self.bounds.colors().to_vec());
                }
            }
            return;
        }
        if self.bounds.lower_deficit(self.lo) > self.suffix_w[i] {
            return;
        }
        let v = self.order[i];
        let wv = self.inst.weights()[v as usize];
        for c in 0..self.k.min(used + 1) {
            if self.bounds.class_weight(c) + wv > self.hi {
                continue;
            }
            let child_bound = self.bounds.update(self.inst, v, c as u32);
            if child_bound < self.best_cost {
                self.dfs(i + 1, used.max(c + 1));
            }
            self.bounds.reset(self.inst);
            if self.truncated {
                return;
            }
        }
    }
}

/// Run the branch-and-bound solver on `(inst, k)` under `cfg`.
///
/// Deterministic: same instance, same `k`, same config, same solution —
/// bit for bit. With [`BnbConfig::exhaustive`] the result is the proven
/// optimum (this is exactly the search the exact oracle delegates to).
pub fn solve(inst: &Instance, k: usize, cfg: &BnbConfig) -> Result<BnbSolution, SolveError> {
    solve_with_interrupt(inst, k, cfg, &mut |_| false)
}

/// [`solve`] with an external interrupt hook: `interrupt(visited)` is
/// polled at every node *before* it is counted, so a deterministic
/// node-count "clock" makes truncation seed-stable (no wall time) — the
/// hook the anytime-interruption tests use.
pub fn solve_with_interrupt(
    inst: &Instance,
    k: usize,
    cfg: &BnbConfig,
    interrupt: &mut dyn FnMut(u64) -> bool,
) -> Result<BnbSolution, SolveError> {
    solve_seeded(inst, k, cfg, None, interrupt)
}

/// Full-control entry: optionally seed the incumbent with a caller
/// coloring (the solver seeds from [`Theorem4Pipeline`] otherwise).
pub(crate) fn solve_seeded(
    inst: &Instance,
    k: usize,
    cfg: &BnbConfig,
    seed: Option<&Coloring>,
    interrupt: &mut dyn FnMut(u64) -> bool,
) -> Result<BnbSolution, SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroColors);
    }
    crate::failpoint::raise("bnb::solve")?;
    let n = inst.num_vertices();
    let weights = inst.weights();
    let avg = inst.total_weight() / k as f64;
    let slack = crate::bounds::strict_slack(k, inst.max_weight());
    // Same scale-invariant tolerance as `Coloring::is_strictly_balanced`.
    let tol = 1e-9 * inst.max_weight().max(1e-300);
    let mut order: Vec<VertexId> = (0..n as u32).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(inst.graph().degree(v)), v));
    let mut suffix_w = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix_w[i] = suffix_w[i + 1] + weights[order[i] as usize];
    }

    // Incumbent: caller seed if strictly balanced, else the pipeline's
    // coloring — so the result is never worse than the pipeline's.
    let mut best_cost = f64::INFINITY;
    let mut best: Option<Vec<u32>> = None;
    let install = |chi: &Coloring, best_cost: &mut f64, best: &mut Option<Vec<u32>>| {
        if chi.strict_balance_defect(weights) <= tol {
            let cost = chi.max_boundary_cost(inst.graph(), inst.costs());
            if cost < *best_cost {
                *best_cost = cost;
                *best = Some((0..n as u32).map(|v| chi.raw(v)).collect());
            }
        }
    };
    if let Some(chi) = seed {
        install(chi, &mut best_cost, &mut best);
    }
    if best.is_none() {
        if let Ok(chi) = Theorem4Pipeline::default().partition(inst, k) {
            install(&chi, &mut best_cost, &mut best);
        }
    }

    // Root gap from the polynomial stack (the full stack would recurse —
    // this engine is itself one of its certifiers).
    let root = static_lower_bound(inst, k);
    let root_lower = root.value();
    let root_certifier = root.winner();

    let mut nodes = 0u64;
    let mut truncated = false;
    // Root early-stop: lower ≤ OPT ≤ best_cost, so equality (or an
    // incumbent at/below the bound) proves the seed optimal without
    // visiting a single node.
    if best.is_none() || best_cost > root_lower {
        let budget = cfg.node_budget.unwrap_or(u64::MAX);
        // lint: allow(nondeterminism) — wall-clock deadline is an explicit,
        // caller-opted time budget; expiry sets `truncated` (reported as
        // such) and never changes an exactness claim.
        let deadline = cfg.time_budget.and_then(|d| Instant::now().checked_add(d));
        let stride = cfg.deadline_poll_stride.max(1);
        let mut stop = |visited: u64| {
            crate::failpoint::raise_any("bnb::node");
            visited >= budget
                || interrupt(visited)
                // lint: allow(nondeterminism) — deadline check, see above.
                // Node 0 always satisfies the stride test, so the very
                // first node is polled and a pre-expired deadline stops
                // the search before any expansion.
                || deadline.is_some_and(|t| visited.is_multiple_of(stride) && Instant::now() >= t)
        };
        let mut engine = Engine {
            inst,
            k,
            bounds: IncrementalBounds::new(inst, k, &order),
            order,
            suffix_w,
            lo: avg - slack - tol,
            hi: avg + slack + tol,
            best_cost,
            best,
            nodes: 0,
            truncated: false,
            stop: &mut stop,
        };
        engine.dfs(0, 0);
        nodes = engine.nodes;
        truncated = engine.truncated;
        best = engine.best;
    }

    let best = best.expect("a strictly balanced coloring always exists (Proposition 12)");
    let coloring = Coloring::from_vec(k, best);
    // Report the cost recomputed from scratch (the incremental search
    // values carry negligible but nonzero fp drift).
    let max_boundary = coloring.max_boundary_cost(inst.graph(), inst.costs());
    let proven_optimal = !truncated;
    let gap = if proven_optimal {
        // Exhausted: the incumbent is OPT, the strongest possible lower
        // bound — ratio exactly 1.0.
        CertifiedGap::new(max_boundary, max_boundary, "bnb")
    } else {
        CertifiedGap::new(root_lower, max_boundary, root_certifier)
    };
    Ok(BnbSolution {
        coloring,
        max_boundary,
        nodes,
        proven_optimal,
        gap,
    })
}

/// The branch-and-bound solver as a [`Partitioner`], so it drops into
/// the harness loops (corpus table, differential suites) next to the
/// pipeline, the baselines and the oracle.
#[derive(Clone, Copy, Debug, Default)]
pub struct BnbPartitioner {
    /// Budgets for each `partition` call.
    pub cfg: BnbConfig,
}

impl Partitioner for BnbPartitioner {
    fn name(&self) -> &str {
        "bnb (anytime)"
    }

    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        solve(inst, k, &self.cfg).map(|s| s.coloring)
    }
}

/// The branch-and-bound engine as a certifier: when its budgeted search
/// exhausts, the incumbent *is* `OPT` and is certified as the (strongest
/// possible) lower bound. A truncated run proves nothing new — the
/// static certifiers already cover that case — so it declines.
#[derive(Clone, Copy, Debug)]
pub struct BnbBound {
    /// Decline instances larger than this (the search would only
    /// truncate and decline anyway; this keeps the stack cheap).
    pub max_vertices: usize,
    /// Node budget of the certification run.
    pub node_budget: u64,
}

impl Default for BnbBound {
    fn default() -> Self {
        BnbBound {
            max_vertices: 24,
            node_budget: 2_000_000,
        }
    }
}

impl LowerBound for BnbBound {
    fn name(&self) -> &'static str {
        "bnb"
    }

    fn certify(&self, inst: &Instance, k: usize) -> Option<Certificate> {
        if k == 0 || inst.num_vertices() > self.max_vertices {
            return None;
        }
        let cfg = BnbConfig::with_node_budget(self.node_budget);
        let s = solve(inst, k, &cfg).ok()?;
        if !s.proven_optimal {
            return None;
        }
        Some(Certificate {
            certifier: self.name(),
            value: s.max_boundary,
            derivation: Derivation::BnbOptimal {
                optimum: s.max_boundary,
                nodes: s.nodes,
                node_budget: self.node_budget,
            },
        })
    }
}

/// Replay a [`Derivation::BnbOptimal`]: re-run the search under the
/// stored node budget and require it to exhaust again at the same
/// optimum.
pub(crate) fn replay_bnb(
    inst: &Instance,
    k: usize,
    optimum: f64,
    node_budget: u64,
) -> Result<f64, String> {
    let cfg = BnbConfig::with_node_budget(node_budget);
    let s = solve(inst, k, &cfg).map_err(|e| e.to_string())?;
    if !s.proven_optimal {
        return Err(format!(
            "bnb replay truncated at budget {node_budget}; certificate claims a proven optimum"
        ));
    }
    if (s.max_boundary - optimum).abs() > 1e-9 * (1.0 + optimum.abs()) {
        return Err(format!(
            "bnb replay proved optimum {}, certificate says {}",
            s.max_boundary, optimum
        ));
    }
    Ok(s.max_boundary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::lattice::hypercube;
    use mmb_graph::gen::misc::{cycle, path};

    fn unit(g: mmb_graph::Graph) -> Instance {
        let (n, m) = (g.num_vertices(), g.num_edges());
        Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap()
    }

    #[test]
    fn exhaustive_run_matches_known_optima() {
        for (inst, k, opt) in [
            (unit(path(6)), 2usize, 1.0),
            (unit(path(6)), 3, 2.0),
            (unit(cycle(8)), 2, 2.0),
            (unit(hypercube(3)), 2, 4.0),
        ] {
            let s = solve(&inst, k, &BnbConfig::exhaustive()).unwrap();
            assert!(s.proven_optimal);
            assert_eq!(s.max_boundary, opt);
            assert_eq!(s.gap.ratio, 1.0);
            assert_eq!(s.gap.certifier, "bnb");
            assert!(s.coloring.is_strictly_balanced(inst.weights()));
        }
    }

    #[test]
    fn solves_past_the_oracle_cap() {
        // n = 18 > ORACLE_MAX_VERTICES: the oracle refuses, the engine
        // exhausts and proves the optimum.
        let inst = unit(path(18));
        assert!(crate::oracle::exact_min_max_boundary(&inst, 2).is_err());
        let s = solve(&inst, 2, &BnbConfig::default()).unwrap();
        assert!(s.proven_optimal, "truncated after {} nodes", s.nodes);
        assert_eq!(s.max_boundary, 1.0);
    }

    #[test]
    fn budget_zero_returns_the_pipeline_seed() {
        let inst = unit(cycle(12));
        let s = solve(&inst, 2, &BnbConfig::with_node_budget(0)).unwrap();
        let pipe = Theorem4Pipeline::default().partition(&inst, 2).unwrap();
        let pipe_cost = pipe.max_boundary_cost(inst.graph(), inst.costs());
        assert!(s.max_boundary <= pipe_cost);
        assert!(s.coloring.is_strictly_balanced(inst.weights()));
        // Truncated (unless the root bound already proved the seed
        // optimal) — either way the gap is sound.
        assert!(s.gap.lower <= s.max_boundary + 1e-12);
    }

    #[test]
    fn root_bound_skips_the_search_when_the_seed_is_optimal() {
        // Bisecting a path cuts exactly one unit edge, and the pipeline
        // finds that; the static stack certifies ≥ 1 (packing/min-cut),
        // so the root check proves optimality with zero nodes visited.
        let inst = unit(path(12));
        let s = solve(&inst, 2, &BnbConfig::exhaustive()).unwrap();
        assert!(s.proven_optimal);
        assert_eq!(s.max_boundary, 1.0);
        assert_eq!(s.nodes, 0, "root bound should have pruned the search");
    }

    #[test]
    fn interrupt_hook_truncates_deterministically() {
        let inst = unit(cycle(14));
        let run = |limit: u64| {
            let mut hook = move |visited: u64| visited >= limit;
            solve_with_interrupt(&inst, 3, &BnbConfig::exhaustive(), &mut hook).unwrap()
        };
        let a = run(50);
        let b = run(50);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.max_boundary.to_bits(), b.max_boundary.to_bits());
        assert!(!a.proven_optimal || a.nodes <= 50);
        assert!(a.coloring.is_strictly_balanced(inst.weights()));
    }

    #[test]
    fn certifier_fires_only_on_proven_optima() {
        let inst = unit(path(18));
        let cert = BnbBound::default().certify(&inst, 2).unwrap();
        assert_eq!(cert.value, 1.0);
        assert!(matches!(cert.derivation, Derivation::BnbOptimal { .. }));
        assert!((cert.derivation.replay(&inst, 2).unwrap() - 1.0).abs() < 1e-12);
        // Over the size cap: decline.
        let big = unit(path(30));
        assert!(BnbBound::default().certify(&big, 2).is_none());
        // Starved budget on a hard instance: decline rather than certify
        // an unproven incumbent.
        let hard = unit(hypercube(4));
        let starved = BnbBound {
            max_vertices: 24,
            node_budget: 3,
        };
        assert!(starved.certify(&hard, 2).is_none());
    }

    #[test]
    fn partitioner_name_and_contract() {
        let p = BnbPartitioner::default();
        assert_eq!(p.name(), "bnb (anytime)");
        let inst = unit(cycle(10));
        let chi = p.partition(&inst, 2).unwrap();
        assert!(chi.is_total());
        assert!(chi.is_strictly_balanced(inst.weights()));
        assert!(p.partition(&inst, 0).is_err());
    }
}
