//! Incremental bound maintenance for the branch-and-bound engine — the
//! push/pop `update`/`reset` discipline.
//!
//! [`IncrementalBounds`] owns the mutable state of a partial
//! restricted-growth assignment and keeps three certified quantities
//! current under `update`/`reset` instead of recomputing certificates
//! from scratch at every node:
//!
//! * **per-class weights** — feed the balance-cap and deficit prunes;
//! * **per-class boundary costs** — boundary costs are monotone in the
//!   partial assignment, so `‖∂(partial)‖_∞` is itself a lower bound on
//!   every completion;
//! * **the packing-aware node bound**
//!   `max(‖∂(partial)‖_∞, (cut₂ + packₛ) / k)` — `cut₂` is the doubled
//!   cost of edges already cut *between assigned vertices* and `packₛ`
//!   the summed edge-packing residual of the unassigned suffix.
//!
//! Soundness of the packing term: for any strictly balanced completion
//! `χ`, the doubled total cut satisfies `2·c(F) = Σ_v cut_v(χ)`. Split
//! the sum: assigned vertices jointly contribute at least `cut₂`
//! (cut edges between assigned pairs are final, counted once per
//! endpoint), and each unassigned `v` contributes
//! `cut_v(χ) = τ(v) − retained_v ≥ mass_v` by the knapsack argument of
//! [`crate::lower_bounds::packing`] — the masses are computed against
//! the *wider* `Window` envelope, so they under-state the cut of the
//! engine's tighter window and stay sound. Since
//! `‖∂χ⁻¹‖_∞ ≥ (Σ_c ∂_c)/k = 2·c(F)/k`, any completion costs at least
//! `(cut₂ + packₛ)/k`.
//!
//! The contract: `update(inst, v, c)` assigns the next vertex of the
//! engine's fixed order and returns the certified child bound;
//! `reset(inst)` undoes exactly one `update` (reverse arithmetic with
//! the same neighbor guard — bit-wise the discipline the PR-4 oracle
//! used, so the fp drift profile is unchanged).

use mmb_graph::coloring::UNCOLORED;
use mmb_graph::measure::norm_inf;
use mmb_graph::VertexId;

use crate::api::instance::Instance;
use crate::lower_bounds::packing::{vertex_masses, PACK_VERTEX_BUDGET};

/// Incrementally maintained bound state of a partial restricted-growth
/// assignment (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct IncrementalBounds {
    k: usize,
    color: Vec<u32>,
    class_w: Vec<f64>,
    class_b: Vec<f64>,
    /// Doubled cost of edges cut between assigned vertices.
    cut2: f64,
    /// `pack_suffix[i]` = Σ of edge-packing masses of `order[i..]`.
    pack_suffix: Vec<f64>,
    /// Assignment trail for [`IncrementalBounds::reset`].
    trail: Vec<(VertexId, u32)>,
}

impl IncrementalBounds {
    /// Fresh bounds for the empty assignment; `order` is the engine's
    /// branching order, along which the packing suffix is accumulated.
    pub fn new(inst: &Instance, k: usize, order: &[VertexId]) -> Self {
        let n = inst.num_vertices();
        let masses = vertex_masses(inst, k, Some(PACK_VERTEX_BUDGET));
        let mut pack_suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            pack_suffix[i] = pack_suffix[i + 1] + masses[order[i] as usize];
        }
        IncrementalBounds {
            k,
            color: vec![UNCOLORED; n],
            class_w: vec![0.0; k],
            class_b: vec![0.0; k],
            cut2: 0.0,
            pack_suffix,
            trail: Vec::with_capacity(n),
        }
    }

    /// Assign `v` — the next vertex in the engine's order — to class `c`
    /// and return a certified lower bound on the cost of any strictly
    /// balanced completion of the resulting partial assignment.
    pub fn update(&mut self, inst: &Instance, v: VertexId, c: u32) -> f64 {
        let wv = inst.weights()[v as usize];
        self.color[v as usize] = c;
        self.class_w[c as usize] += wv;
        for &(nb, e) in inst.graph().neighbors(v) {
            let cn = self.color[nb as usize];
            if cn != UNCOLORED && cn != c {
                let cost = inst.costs()[e as usize];
                self.class_b[c as usize] += cost;
                self.class_b[cn as usize] += cost;
                self.cut2 += 2.0 * cost;
            }
        }
        self.trail.push((v, c));
        let packed = (self.cut2 + self.pack_suffix[self.trail.len()]) / self.k as f64;
        norm_inf(&self.class_b).max(packed)
    }

    /// Undo the most recent [`IncrementalBounds::update`].
    pub fn reset(&mut self, inst: &Instance) {
        let (v, c) = self.trail.pop().expect("reset without a matching update");
        for &(nb, e) in inst.graph().neighbors(v) {
            let cn = self.color[nb as usize];
            if cn != UNCOLORED && cn != c {
                let cost = inst.costs()[e as usize];
                self.class_b[c as usize] -= cost;
                self.class_b[cn as usize] -= cost;
                self.cut2 -= 2.0 * cost;
            }
        }
        self.class_w[c as usize] -= inst.weights()[v as usize];
        self.color[v as usize] = UNCOLORED;
    }

    /// Number of assigned vertices.
    pub fn depth(&self) -> usize {
        self.trail.len()
    }

    /// Current weight of class `c`.
    pub fn class_weight(&self, c: usize) -> f64 {
        self.class_w[c]
    }

    /// `Σ_c max(0, lo − w(c))` — the weight still needed to lift every
    /// class to the lower envelope (deficit prune).
    pub fn lower_deficit(&self, lo: f64) -> f64 {
        self.class_w.iter().map(|&w| (lo - w).max(0.0)).sum()
    }

    /// Whether every class meets the lower envelope (leaf feasibility).
    pub fn meets_lower(&self, lo: f64) -> bool {
        self.class_w.iter().all(|&w| w >= lo)
    }

    /// `‖∂(partial)‖_∞` of the current assignment.
    pub fn current_max_boundary(&self) -> f64 {
        norm_inf(&self.class_b)
    }

    /// The current (partial) color vector, `UNCOLORED` where unassigned.
    pub fn colors(&self) -> &[u32] {
        &self.color
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::misc::{cycle, path};

    fn unit(g: mmb_graph::Graph) -> Instance {
        let (n, m) = (g.num_vertices(), g.num_edges());
        Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap()
    }

    #[test]
    fn update_reset_roundtrips_the_state() {
        let inst = unit(cycle(6));
        let order: Vec<VertexId> = (0..6).collect();
        let mut b = IncrementalBounds::new(&inst, 2, &order);
        let baseline = b.clone();
        b.update(&inst, 0, 0);
        b.update(&inst, 1, 0);
        b.update(&inst, 2, 1);
        assert_eq!(b.depth(), 3);
        assert_eq!(b.class_weight(0), 2.0);
        assert_eq!(b.current_max_boundary(), 1.0); // edge (1,2) is cut
        b.reset(&inst);
        b.reset(&inst);
        b.reset(&inst);
        assert_eq!(b.depth(), 0);
        assert_eq!(b.colors(), baseline.colors());
        assert_eq!(b.class_weight(0).to_bits(), 0.0f64.to_bits());
        assert_eq!(b.current_max_boundary().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn node_bound_sees_the_cut_mass() {
        // Assign the two ends of a 3-path to different classes: the
        // middle vertex is unassigned, but both its edges are already
        // forced toward a cut ≥ the packing floor; the partial boundary
        // alone is still 0.
        let inst = unit(path(3));
        let order: Vec<VertexId> = vec![0, 2, 1];
        let mut b = IncrementalBounds::new(&inst, 2, &order);
        let b0 = b.update(&inst, 0, 0);
        assert!(b0 >= 0.0);
        let b1 = b.update(&inst, 2, 1);
        // No assigned-assigned edge yet: the bound comes only from the
        // (possibly zero) packing suffix — never negative, never above
        // the eventual optimum 1.
        assert!((0.0..=1.0).contains(&b1), "bound = {b1}");
        let b2 = b.update(&inst, 1, 0);
        // Edge (1,2) is now cut: ‖∂‖∞ = 1 and cut₂/k = 1.
        assert!((b2 - 1.0).abs() < 1e-12, "bound = {b2}");
    }

    #[test]
    #[should_panic(expected = "reset without a matching update")]
    fn reset_on_empty_trail_panics() {
        let inst = unit(path(3));
        let order: Vec<VertexId> = (0..3).collect();
        let mut b = IncrementalBounds::new(&inst, 2, &order);
        b.reset(&inst);
    }
}
