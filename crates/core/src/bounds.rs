//! Right-hand sides of the paper's bounds, with unit constants.
//!
//! The theorems are asymptotic (`O_p(·)`); these helpers compute their
//! right-hand sides with constant 1 so experiments can report
//! measured / bound ratios (which must stay bounded across sweeps for a
//! theorem to count as reproduced).

use mmb_graph::measure::dual_exponent;

/// Theorem 4: `σ_p · (k^{−1/p}·‖c‖_p + Δ_c)`.
pub fn theorem4(sigma_p: f64, p: f64, k: usize, c_norm_p: f64, delta_c: f64) -> f64 {
    sigma_p * ((k as f64).powf(-1.0 / p) * c_norm_p + delta_c)
}

/// Theorem 5 (well-behaved instances): `‖c‖_p / k^{1/p} + ‖c‖_∞`.
pub fn theorem5(p: f64, k: usize, c_norm_p: f64, c_max: f64) -> f64 {
    c_norm_p / (k as f64).powf(1.0 / p) + c_max
}

/// The quantity `B = q·k^{−1/p}·σ_p·‖c‖_p` of Lemma 9.
pub fn lemma9_b(sigma_p: f64, p: f64, k: usize, c_norm_p: f64) -> f64 {
    dual_exponent(p) * (k as f64).powf(-1.0 / p) * sigma_p * c_norm_p
}

/// The quantity `B′ = σ_p·(q·k^{−1/p}·‖c‖_p + Δ_c)` of eq. (10).
pub fn b_prime(sigma_p: f64, p: f64, k: usize, c_norm_p: f64, delta_c: f64) -> f64 {
    sigma_p * (dual_exponent(p) * (k as f64).powf(-1.0 / p) * c_norm_p + delta_c)
}

/// Lemma 40's lower bound: `b · k^{−1/p} · ‖c̃‖_p / φ_ℓ`.
pub fn lemma40_lower(b: f64, p: f64, k: usize, c_norm_p: f64, local_fluctuation: f64) -> f64 {
    b * (k as f64).powf(-1.0 / p) * c_norm_p / local_fluctuation.max(1.0)
}

/// Strict balance slack of Definition 1: `(1 − 1/k)·‖w‖_∞`.
pub fn strict_slack(k: usize, w_max: f64) -> f64 {
    (1.0 - 1.0 / k as f64) * w_max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn theorem4_shape() {
        // Doubling k with p = 2 shrinks the norm term by √2.
        let b1 = theorem4(1.0, 2.0, 2, 10.0, 0.0);
        let b2 = theorem4(1.0, 2.0, 4, 10.0, 0.0);
        assert!(close(b1 / b2, 2f64.sqrt()));
        // Δ_c enters additively.
        assert!(close(
            theorem4(2.0, 2.0, 4, 10.0, 3.0),
            2.0 * (10.0 / 2.0 + 3.0)
        ));
    }

    #[test]
    fn b_prime_dominates_lemma9_b() {
        assert!(b_prime(1.5, 2.0, 8, 5.0, 1.0) >= lemma9_b(1.5, 2.0, 8, 5.0));
    }

    #[test]
    fn strict_slack_values() {
        assert!(close(strict_slack(2, 4.0), 2.0));
        assert!(close(strict_slack(4, 4.0), 3.0));
        assert_eq!(strict_slack(1, 4.0), 0.0);
    }

    #[test]
    fn lemma40_guards_fluctuation() {
        // φ_ℓ < 1 must not inflate the lower bound.
        assert!(close(lemma40_lower(1.0, 2.0, 4, 8.0, 0.5), 4.0));
    }
}
