//! Kernighan–Lin-style k-way local refinement.
//!
//! Greedy vertex moves between classes that reduce the total cut cost,
//! subject to a weight-balance envelope. This is the standard engineering
//! post-pass (FM/KL family); it has no worst-case guarantee on either
//! balance tightness or per-class boundary — which is exactly what the E7
//! comparison demonstrates against the Theorem 4 pipeline.
//!
//! Historically this lived in `mmb-baselines`; it moved here when the
//! coarsening cascade ([`crate::coarsen`]) made per-level refinement part
//! of the pipeline's own uncoarsening path. `mmb_baselines::kl` re-exports
//! it unchanged.

use mmb_graph::{Coloring, Graph};

use crate::api::{validate_costs, validate_weights, SolveError};

/// Refinement parameters.
#[derive(Clone, Copy, Debug)]
pub struct KlParams {
    /// Maximum number of full passes over the boundary vertices.
    pub max_passes: usize,
    /// A class may grow to at most `balance_factor × average weight`.
    pub balance_factor: f64,
}

impl Default for KlParams {
    fn default() -> Self {
        Self {
            max_passes: 8,
            balance_factor: 1.1,
        }
    }
}

/// Refine `chi` by greedy gain moves; returns the improved coloring.
pub fn refine(
    g: &Graph,
    costs: &[f64],
    weights: &[f64],
    chi: &Coloring,
    params: &KlParams,
) -> Result<Coloring, SolveError> {
    let order: Vec<u32> = (0..g.num_vertices() as u32).collect();
    refine_over(g, costs, weights, chi, &order, params)
}

/// [`refine`], restricted to a *region*: only `region`'s vertices and
/// their direct neighbors are candidates for moves. The warm-path repair
/// primitive — after an [`InstanceDelta`](crate::api::InstanceDelta)
/// perturbs a few weights or edges, only the touched closure needs KL
/// attention; the rest of the coloring is already converged.
///
/// The balance envelope stays **global** (computed over all colored
/// vertices), so regional moves cannot silently unbalance far-away
/// classes. Vertex ids in `region` must be in range for `g`.
pub fn refine_region(
    g: &Graph,
    costs: &[f64],
    weights: &[f64],
    chi: &Coloring,
    region: &[u32],
    params: &KlParams,
) -> Result<Coloring, SolveError> {
    let mut order: Vec<u32> = Vec::with_capacity(region.len() * 4);
    for &v in region {
        order.push(v);
        for &(nb, _) in g.neighbors(v) {
            order.push(nb);
        }
    }
    order.sort_unstable();
    order.dedup();
    refine_over(g, costs, weights, chi, &order, params)
}

/// The shared pass: greedy gain moves over `order`'s vertices, repeated
/// until a pass moves nothing or `max_passes` is hit. `refine` passes
/// `0..n` (the historical full sweep, bit-identical); `refine_region`
/// passes the touched closure.
fn refine_over(
    g: &Graph,
    costs: &[f64],
    weights: &[f64],
    chi: &Coloring,
    order: &[u32],
    params: &KlParams,
) -> Result<Coloring, SolveError> {
    let n = g.num_vertices();
    let k = chi.k();
    validate_weights(n, weights)?;
    validate_costs(g.num_edges(), costs)?;
    let mut out = chi.clone();
    if k <= 1 {
        return Ok(out);
    }
    let total_w: f64 = (0..n)
        .filter(|&v| out.get(v as u32).is_some())
        .map(|v| weights[v])
        .sum();
    let cap = params.balance_factor * total_w / k as f64;
    let mut load = out.class_measures(weights);

    for _pass in 0..params.max_passes {
        let mut improved = false;
        for &v in order {
            let Some(c) = out.get(v) else { continue };
            // Gains per adjacent class.
            let mut internal = 0.0;
            let mut external: Vec<(u32, f64)> = Vec::new();
            for &(nb, e) in g.neighbors(v) {
                let Some(d) = out.get(nb) else { continue };
                let w = costs[e as usize];
                if d == c {
                    internal += w;
                } else if let Some(entry) = external.iter_mut().find(|(x, _)| *x == d) {
                    entry.1 += w;
                } else {
                    external.push((d, w));
                }
            }
            // total_cmp + class-id tie-break: ties between equally-attractive
            // target classes must not depend on neighbor-list order.
            let Some(&(best_d, best_ext)) = external
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            else {
                continue;
            };
            let gain = best_ext - internal;
            let wv = weights[v as usize];
            if gain > 1e-12 && load[best_d as usize] + wv <= cap && load[c as usize] - wv >= 0.0 {
                out.set(v, best_d);
                load[c as usize] -= wv;
                load[best_d as usize] += wv;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::gen::misc::path;

    fn total_cut(g: &Graph, costs: &[f64], chi: &Coloring) -> f64 {
        chi.boundary_costs(g, costs).iter().sum::<f64>() / 2.0
    }

    #[test]
    fn improves_interleaved_path() {
        let g = path(40);
        let costs = vec![1.0; 39];
        let weights = vec![1.0; 40];
        // Worst possible start: alternating colors.
        let bad = Coloring::from_fn(40, 2, |v| v % 2);
        let refined = refine(&g, &costs, &weights, &bad, &KlParams::default()).unwrap();
        assert!(refined.is_total());
        let before = total_cut(&g, &costs, &bad);
        let after = total_cut(&g, &costs, &refined);
        assert!(after < before, "KL failed to improve: {before} -> {after}");
    }

    #[test]
    fn respects_balance_envelope() {
        let grid = GridGraph::lattice(&[8, 8]);
        let n = 64;
        let costs = vec![1.0; grid.graph.num_edges()];
        let weights = vec![1.0; n];
        let start = Coloring::from_fn(n, 4, |v| v % 4);
        let params = KlParams {
            max_passes: 20,
            balance_factor: 1.25,
        };
        let refined = refine(&grid.graph, &costs, &weights, &start, &params).unwrap();
        let cap = 1.25 * n as f64 / 4.0;
        for c in refined.class_measures(&weights) {
            assert!(c <= cap + 1e-9, "class exceeds envelope: {c} > {cap}");
        }
    }

    #[test]
    fn never_worsens() {
        let grid = GridGraph::lattice(&[10, 10]);
        let n = 100;
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| 1.0 + (e % 3) as f64)
            .collect();
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 2) as f64).collect();
        let start = Coloring::from_fn(n, 5, |v| (v / 20) % 5);
        let refined = refine(&grid.graph, &costs, &weights, &start, &KlParams::default()).unwrap();
        assert!(
            total_cut(&grid.graph, &costs, &refined)
                <= total_cut(&grid.graph, &costs, &start) + 1e-9
        );
    }

    #[test]
    fn full_region_matches_full_refine() {
        let grid = GridGraph::lattice(&[8, 8]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let weights = vec![1.0; 64];
        let start = Coloring::from_fn(64, 4, |v| v % 4);
        let all: Vec<u32> = (0..64).collect();
        let full = refine(&grid.graph, &costs, &weights, &start, &KlParams::default()).unwrap();
        let regional = refine_region(
            &grid.graph,
            &costs,
            &weights,
            &start,
            &all,
            &KlParams::default(),
        )
        .unwrap();
        assert_eq!(full, regional);
    }

    #[test]
    fn empty_region_is_a_noop() {
        let g = path(10);
        let start = Coloring::from_fn(10, 2, |v| v % 2);
        let out =
            refine_region(&g, &[1.0; 9], &[1.0; 10], &start, &[], &KlParams::default()).unwrap();
        assert_eq!(out, start);
    }

    #[test]
    fn regional_moves_stay_near_the_region() {
        // Alternating colors on a path; repair only around vertex 2.
        // Vertices beyond the region's neighbor closure keep their colors.
        let g = path(20);
        let start = Coloring::from_fn(20, 2, |v| v % 2);
        let out = refine_region(
            &g,
            &[1.0; 19],
            &[1.0; 20],
            &start,
            &[2],
            &KlParams::default(),
        )
        .unwrap();
        for v in 5..20u32 {
            assert_eq!(out.get(v), start.get(v), "vertex {v} moved outside region");
        }
    }

    #[test]
    fn k1_noop() {
        let g = path(5);
        let chi = Coloring::monochromatic(5, 1);
        let refined = refine(&g, &[1.0; 4], &[1.0; 5], &chi, &KlParams::default()).unwrap();
        assert_eq!(refined, chi);
    }
}
