//! `BinPack2` (Proposition 12): almost strict → **strictly** balanced.
//!
//! Turns any almost strictly balanced coloring into one satisfying
//! Definition 1's eq. (1) *exactly*:
//!
//! ```text
//! max_i |w(χ⁻¹(i)) − ‖w‖₁/k| ≤ (1 − 1/k)·‖w‖∞
//! ```
//!
//! Overweight classes shed pieces of weight `∈ [‖w‖∞/2, ‖w‖∞]` (a single
//! heavy vertex, or a splitting set over the light vertices — Claim 4 of
//! the appendix); pieces refill classes below the lower envelope and the
//! remainder goes to the lightest classes. The averaging invariants make
//! the loop provably safe: while some class sits below
//! `w* − (1−1/k)‖w‖∞`, uncolored pieces must exist.
//!
//! **Degenerate regime.** The paper assumes `w* ≥ ‖w‖∞/2` and notes the
//! other case is "handled similarly". When `w* < ‖w‖∞/2` (more colors than
//! heavy vertices can fill), splitting sets of the required size do not
//! exist; we fall back to [`greedy_strict`], the classical largest-first
//! greedy assignment, which *always* achieves eq. (1) — at unbounded
//! boundary cost, which is acceptable because in this regime classes are
//! dominated by single vertices anyway.

use mmb_graph::measure::{norm_1, set_max, set_sum};
use mmb_graph::{Coloring, Graph, VertexId, VertexSet};
use mmb_splitters::Splitter;
use rayon::prelude::*;

/// Below this working-set size the per-class carving of `BinPack1/2` runs
/// inline: thread-spawn overhead would exceed the carve work itself on the
/// small sets deep in the shrink recursion.
pub(crate) const PAR_CARVE_MIN_VERTICES: usize = 2048;

/// Shared fan-out of the `BinPack1/2` cut-down step: run `shed` over every
/// carving work item — on the thread pool when the working set is large
/// enough to amortize worker spawn, inline otherwise — and re-assemble the
/// surviving classes and carved pieces in class order, which makes the
/// result bit-identical to the sequential loop for any thread count.
/// Parallel workers re-establish the caller's thread-local scratch mode.
pub(crate) fn carve_classes<T, F>(
    items: impl IntoIterator<Item = T>,
    working_set_len: usize,
    shed: F,
) -> (Vec<VertexSet>, Vec<VertexSet>)
where
    T: Send,
    F: Fn(T) -> (VertexSet, Vec<VertexSet>) + Sync,
{
    let carved: Vec<(VertexSet, Vec<VertexSet>)> = if working_set_len >= PAR_CARVE_MIN_VERTICES {
        let mode = mmb_graph::workspace::scratch_mode();
        items
            .into_par_iter()
            .map(|item| mmb_graph::workspace::with_scratch_mode(mode, || shed(item)))
            .collect()
    } else {
        items.into_iter().map(shed).collect()
    };
    let mut classes = Vec::with_capacity(carved.len());
    let mut buffer = Vec::new();
    for (class, pieces) in carved {
        classes.push(class);
        buffer.extend(pieces);
    }
    (classes, buffer)
}

/// Largest-first greedy assignment: vertices in decreasing weight order,
/// each to the currently lightest class. Satisfies eq. (1) for every input
/// (the pairwise class gap never exceeds `‖w‖∞`).
pub fn greedy_strict(n: usize, k: usize, domain: &VertexSet, weights: &[f64]) -> Coloring {
    let mut order: Vec<VertexId> = domain.iter().collect();
    // `total_cmp`, not `partial_cmp(..).unwrap()`: instance validation
    // rejects NaN today, but this baseline is also called directly on raw
    // weight vectors and must stay deterministic and panic-free on every
    // finite input (subnormals, negative zeros) — and on any future path
    // that forgets to validate.
    order.sort_by(|&a, &b| {
        weights[b as usize]
            .total_cmp(&weights[a as usize])
            .then(a.cmp(&b))
    });
    let mut out = Coloring::new_uncolored(n, k);
    let mut load = vec![0.0f64; k];
    for v in order {
        let i = (0..k)
            .min_by(|&a, &b| load[a].total_cmp(&load[b]))
            .expect("k >= 1 classes");
        out.set(v, i as u32);
        load[i] += weights[v as usize];
    }
    out
}

/// `BinPack2` (Proposition 12): enforce strict balance exactly.
///
/// `chi` must be total on `domain`. The output satisfies eq. (1) up to
/// floating-point tolerance; the boundary cost grows by at most
/// `O(‖∂χ⁻¹‖∞ + ‖πχ⁻¹‖∞^{1/p} + Δ_c)` when the input is almost strict.
pub fn binpack2<S: Splitter + ?Sized>(
    g: &Graph,
    splitter: &S,
    chi: &Coloring,
    domain: &VertexSet,
    weights: &[f64],
) -> Coloring {
    let n = g.num_vertices();
    let k = chi.k();
    if k == 1 {
        return chi.restrict_to(domain);
    }
    let wmax = set_max(weights, domain);
    let total = set_sum(weights, domain);
    let w_star = total / k as f64;
    if wmax <= 0.0 {
        return chi.restrict_to(domain);
    }
    if w_star < wmax / 2.0 {
        // Degenerate regime: see module docs.
        return greedy_strict(n, k, domain, weights);
    }

    let cw = |c: &VertexSet| set_sum(weights, c);

    // Step 2: cut every class down to ≤ w*. Classes are carved
    // independently (the buffer only collects), so [`carve_classes`] fans
    // the cut-down out per class.
    let (mut classes, mut buffer) = carve_classes(
        chi.class_sets_within(domain),
        domain.len(),
        |mut class: VertexSet| {
            let mut pieces = Vec::new();
            while cw(&class) > w_star + 1e-12 * total && !class.is_empty() {
                let x = carve_piece(g, splitter, &class, weights, wmax);
                debug_assert!(!x.is_empty());
                class.difference_with(&x);
                pieces.push(x);
            }
            (class, pieces)
        },
    );

    // Step 3: refill classes below the strict lower envelope. The
    // averaging argument (see module docs) guarantees the buffer cannot be
    // empty while such a class exists.
    let lower = w_star - (1.0 - 1.0 / k as f64) * wmax;
    while let Some(i) = (0..k).find(|&i| cw(&classes[i]) < lower - 1e-12 * (1.0 + total)) {
        let Some(x) = buffer.pop() else {
            debug_assert!(
                false,
                "BinPack2 invariant violated: empty buffer with light class"
            );
            break;
        };
        classes[i].union_with(&x);
    }

    // Step 4: leftovers onto the lightest classes.
    while let Some(x) = buffer.pop() {
        let i = (0..k)
            .min_by(|&a, &b| cw(&classes[a]).total_cmp(&cw(&classes[b])))
            .expect("k >= 1 classes");
        classes[i].union_with(&x);
    }

    let mut out = Coloring::new_uncolored(n, k);
    for (i, class) in classes.iter().enumerate() {
        for v in class.iter() {
            out.set(v, i as u32);
        }
    }
    out
}

/// Claim 4: a piece `X ⊆ class` with `w(X) ∈ [‖w‖∞/2, ‖w‖∞]` — a single
/// heavy vertex if one exists, else a splitting set (all vertices are then
/// lighter than `‖w‖∞/2`, so the contract slack stays within the window).
fn carve_piece<S: Splitter + ?Sized>(
    g: &Graph,
    splitter: &S,
    class: &VertexSet,
    weights: &[f64],
    wmax: f64,
) -> VertexSet {
    let n = g.num_vertices();
    if let Some(v) = class.iter().find(|&v| weights[v as usize] >= wmax / 2.0) {
        return VertexSet::from_iter(n, [v]);
    }
    let class_weight = set_sum(weights, class);
    let target = (0.75 * wmax).min(class_weight);
    let x = splitter.split(class, weights, target);
    if x.is_empty() || set_sum(weights, &x) <= 0.0 {
        // Defensive: all-zero piece; peel the heaviest vertex to guarantee
        // progress.
        let heaviest = class
            .iter()
            .max_by(|&a, &b| weights[a as usize].total_cmp(&weights[b as usize]))
            .expect("class is non-empty");
        return VertexSet::from_iter(n, [heaviest]);
    }
    x
}

/// Convenience: strict-balance defect of a coloring over `weights`
/// (cf. [`mmb_graph::Coloring::strict_balance_defect`], exposed here for
/// pipeline assertions).
pub fn strict_defect(chi: &Coloring, weights: &[f64]) -> f64 {
    let _ = norm_1(weights);
    chi.strict_balance_defect(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_splitters::grid::GridSplitter;

    #[test]
    fn greedy_is_always_strict() {
        for (k, seed) in [(2usize, 1u64), (3, 2), (7, 3), (16, 4)] {
            let n = 50;
            let weights: Vec<f64> = (0..n)
                .map(|v| 1.0 + ((v as u64 * seed * 2654435761) % 97) as f64)
                .collect();
            let domain = VertexSet::full(n);
            let chi = greedy_strict(n, k, &domain, &weights);
            assert!(chi.is_total());
            assert!(chi.is_strictly_balanced(&weights), "k={k} seed={seed}");
        }
    }

    #[test]
    fn binpack2_enforces_eq1_on_grid() {
        let grid = GridGraph::lattice(&[16, 16]);
        let n = 256;
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let k = 5;
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
        // Almost strict-ish but not strict start: stripes.
        let chi = Coloring::from_fn(n, k, |v| ((grid.coord(v)[0] as usize * k) / 16) as u32);
        let out = binpack2(&grid.graph, &sp, &chi, &domain, &weights);
        assert!(out.is_total_on(&domain));
        assert!(
            out.is_strictly_balanced(&weights),
            "defect {}",
            out.strict_balance_defect(&weights)
        );
    }

    #[test]
    fn binpack2_handles_badly_unbalanced_input() {
        // Even a monochromatic input must come out strictly balanced
        // (Proposition 12 only needs almost-strictness for the *cost*
        // guarantee, not for correctness).
        let grid = GridGraph::lattice(&[10, 10]);
        let n = 100;
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + ((v * 13) % 7) as f64).collect();
        let chi = Coloring::monochromatic(n, 8);
        let out = binpack2(&grid.graph, &sp, &chi, &domain, &weights);
        assert!(out.is_strictly_balanced(&weights));
    }

    #[test]
    fn degenerate_heavy_vertex_regime() {
        // One vertex carries almost all the weight and k is large: the
        // greedy fallback must fire and still satisfy eq. (1).
        let grid = GridGraph::lattice(&[4, 4]);
        let n = 16;
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let mut weights = vec![0.01; n];
        weights[5] = 100.0;
        let k = 8; // w* ≈ 12.5 < 50 = wmax/2 → degenerate
        let chi = Coloring::monochromatic(n, k);
        let out = binpack2(&grid.graph, &sp, &chi, &domain, &weights);
        assert!(out.is_strictly_balanced(&weights));
    }

    #[test]
    fn k1_and_zero_weights() {
        let grid = GridGraph::lattice(&[3, 3]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(9);
        let chi1 = Coloring::monochromatic(9, 1);
        let out1 = binpack2(&grid.graph, &sp, &chi1, &domain, &[1.0; 9]);
        assert!(out1.is_strictly_balanced(&[1.0; 9]));
        let chi2 = Coloring::from_fn(9, 3, |v| v % 3);
        let out2 = binpack2(&grid.graph, &sp, &chi2, &domain, &[0.0; 9]);
        assert!(out2.is_strictly_balanced(&[0.0; 9]));
    }

    #[test]
    fn adversarial_finite_weights_are_deterministic_and_panic_free() {
        // Regression for the four `partial_cmp(..).unwrap()` comparators
        // this module used to carry: a weight vector mixing subnormals,
        // negative zeros, exact ties and huge magnitudes must neither
        // panic nor produce run-to-run differences. (`total_cmp` orders
        // −0.0 < +0.0 < subnormal < …, a total order on all finite
        // floats.)
        let grid = GridGraph::lattice(&[6, 6]);
        let n = 36;
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let weights: Vec<f64> = (0..n)
            .map(|v| match v % 6 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::MIN_POSITIVE / 2.0, // subnormal
                3 => f64::MIN_POSITIVE,
                4 => 1e300,
                _ => 1.0,
            })
            .collect();
        for k in [2usize, 3, 5] {
            let greedy_a = greedy_strict(n, k, &domain, &weights);
            let greedy_b = greedy_strict(n, k, &domain, &weights);
            assert_eq!(
                greedy_a, greedy_b,
                "greedy_strict nondeterministic at k={k}"
            );
            assert!(greedy_a.is_strictly_balanced(&weights), "k={k}");
            let chi = Coloring::monochromatic(n, k);
            let out_a = binpack2(&grid.graph, &sp, &chi, &domain, &weights);
            let out_b = binpack2(&grid.graph, &sp, &chi, &domain, &weights);
            assert_eq!(out_a, out_b, "binpack2 nondeterministic at k={k}");
            assert!(out_a.is_total_on(&domain), "k={k}");
            assert!(
                out_a.is_strictly_balanced(&weights),
                "k={k}: defect {}",
                out_a.strict_balance_defect(&weights)
            );
        }
    }

    #[test]
    fn strictness_with_spike_weights() {
        // A few heavy spikes among light vertices.
        let grid = GridGraph::lattice(&[12, 12]);
        let n = 144;
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let mut weights = vec![1.0; n];
        for v in [3usize, 40, 77, 100] {
            weights[v] = 25.0;
        }
        for k in [2usize, 3, 4, 6] {
            let chi = Coloring::from_fn(n, k, |v| (v as usize % k) as u32);
            let out = binpack2(&grid.graph, &sp, &chi, &domain, &weights);
            assert!(
                out.is_strictly_balanced(&weights),
                "k={k}: defect {}",
                out.strict_balance_defect(&weights)
            );
        }
    }
}
