//! The averaging ("volume") bound and its disconnected-host companion.
//!
//! **Averaging bound.** Fix any strictly balanced `k`-coloring `χ` and
//! let `F` be its cut edge set. Every cut edge contributes its cost to
//! the boundary of *both* endpoint classes, so
//! `Σ_i ∂χ⁻¹(i) = 2·c(F)` and therefore `‖∂χ⁻¹‖_∞ ≥ (2/k)·c(F)`.
//! It remains to bound `|F|` from below:
//!
//! * removing `F` leaves monochromatic components, each of weight at
//!   most the upper envelope `hi`, so at least `⌈‖w‖₁/hi⌉` of them —
//!   and removing one edge creates at most one new component, giving
//!   `|F| ≥ ⌈‖w‖₁/hi⌉ − t` on a host with `t` components;
//! * when the lower envelope is positive every class is non-empty and
//!   the quotient graph (one node per class) has at most `t`
//!   components, so `|F| ≥ k − t`.
//!
//! With `r` = the larger of the two counts, `c(F)` is at least the sum
//! of the `r` cheapest edge costs — the certificate records `r`, `t` and
//! those costs, which is what makes the derivation replayable. This is
//! the sound form of the `‖c‖₁/k` volume term implicit in Theorem 5's
//! right-hand side; the naive reading is *not* a lower bound (on a unit
//! path `‖c‖₁/k = (n−1)/2` while `OPT = 1`).
//!
//! **Disconnected hosts.** When `t ≥ k` the averaging count is zero, but
//! a zero-cut coloring must assign *whole components* to classes. If an
//! exhaustive (pruned, budgeted) search proves no such grouping is
//! strictly balanced, every feasible coloring splits some component and
//! cuts at least one edge: `OPT ≥ (2/k)·min_e c_e`.

use crate::api::instance::Instance;
use crate::lower_bounds::{min_edge_cost, Certificate, Derivation, LowerBound, Window};

/// The averaging bound `OPT ≥ (2/k)·Σ(r cheapest edge costs)` (see the
/// [module docs](self)).
#[derive(Clone, Copy, Debug, Default)]
pub struct VolumeBound;

/// The `r` cheapest edge costs of `inst`, ascending.
fn cheapest_costs(inst: &Instance, r: usize) -> Vec<f64> {
    let mut costs = inst.costs().to_vec();
    costs.sort_unstable_by(f64::total_cmp);
    costs.truncate(r);
    costs
}

/// The edge count `r` the averaging argument certifies, together with
/// the host's component count `t`.
fn required_cut_edges(inst: &Instance, k: usize) -> (usize, usize) {
    let (_, t) = inst.graph().components();
    let q = Window::new(inst, k).min_occupied_classes(k);
    (q.saturating_sub(t).min(inst.num_edges()), t)
}

impl LowerBound for VolumeBound {
    fn name(&self) -> &'static str {
        "volume"
    }

    fn certify(&self, inst: &Instance, k: usize) -> Option<Certificate> {
        if k == 0 || inst.num_edges() == 0 {
            return None;
        }
        let (r, t) = required_cut_edges(inst, k);
        let cheapest = cheapest_costs(inst, r);
        let value = 2.0 * cheapest.iter().sum::<f64>() / k as f64;
        Some(Certificate {
            certifier: self.name(),
            value,
            derivation: Derivation::Volume {
                required_cut_edges: r,
                components: t,
                cheapest,
            },
        })
    }
}

/// Replay a [`Derivation::Volume`]: recompute `r` and `t`, re-sort the
/// costs, and cross-check the stored intermediates.
pub(crate) fn replay_volume(
    inst: &Instance,
    k: usize,
    required: usize,
    components: usize,
    cheapest: &[f64],
) -> Result<f64, String> {
    if k == 0 || inst.num_edges() == 0 {
        return Err("volume bound does not apply (k = 0 or edgeless host)".into());
    }
    let (r, t) = required_cut_edges(inst, k);
    if r != required {
        return Err(format!(
            "required cut edges: derived {required}, replay found {r}"
        ));
    }
    if t != components {
        return Err(format!(
            "components: derived {components}, replay found {t}"
        ));
    }
    let fresh = cheapest_costs(inst, r);
    if fresh != cheapest {
        return Err(format!("cheapest costs drifted: {cheapest:?} vs {fresh:?}"));
    }
    Ok(2.0 * fresh.iter().sum::<f64>() / k as f64)
}

/// The component-split bound for disconnected hosts (see the
/// [module docs](self)): fires only when a budgeted exhaustive search
/// proves no strictly balanced grouping of whole components exists.
#[derive(Clone, Copy, Debug)]
pub struct DisconnectedBound {
    /// Refuse hosts with more components than this (the feasibility
    /// search is exponential in the component count).
    pub max_components: usize,
    /// Node budget of the feasibility search; exhausting it makes the
    /// certifier decline (conservative — never unsound).
    pub node_budget: u64,
}

impl Default for DisconnectedBound {
    fn default() -> Self {
        DisconnectedBound {
            max_components: 24,
            node_budget: 2_000_000,
        }
    }
}

/// Total weight per component, largest first (the search converges
/// fastest placing heavy items early).
fn component_weights(inst: &Instance) -> Vec<f64> {
    let (comp_id, t) = inst.graph().components();
    let mut cw = vec![0.0; t];
    for (v, &c) in comp_id.iter().enumerate() {
        cw[c as usize] += inst.weights()[v];
    }
    cw.sort_unstable_by(|a, b| b.total_cmp(a));
    cw
}

/// Exhaustive (pruned) search: can the component weights be grouped into
/// `k` classes with every class sum inside `[lo, hi]`? Returns `None`
/// when the node budget runs out (undecided).
///
/// Recursion depth equals the component count, so item count doubles as a
/// depth guard: both callers bound it via `max_components`, and anything
/// past 64 declines as undecided rather than trusting the caller — a
/// replayed certificate claiming thousands of components must not turn
/// into call-stack depth.
fn grouping_feasible(cw: &[f64], k: usize, lo: f64, hi: f64, budget: &mut u64) -> Option<bool> {
    if cw.len() > 64 {
        return None;
    }
    fn rec(
        cw: &[f64],
        i: usize,
        loads: &mut Vec<f64>,
        suffix: &[f64],
        lo: f64,
        hi: f64,
        budget: &mut u64,
    ) -> Option<bool> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        if i == cw.len() {
            return Some(loads.iter().all(|&l| l >= lo));
        }
        // Deficit prune: the remaining weight must be able to lift every
        // light class to the lower envelope.
        let deficit: f64 = loads.iter().map(|&l| (lo - l).max(0.0)).sum();
        if deficit > suffix[i] {
            return Some(false);
        }
        let mut tried_empty = false;
        for j in 0..loads.len() {
            // Symmetry: identical empty classes are interchangeable.
            if loads[j] == 0.0 {
                if tried_empty {
                    continue;
                }
                tried_empty = true;
            }
            if loads[j] + cw[i] > hi {
                continue;
            }
            loads[j] += cw[i];
            match rec(cw, i + 1, loads, suffix, lo, hi, budget) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            loads[j] -= cw[i];
        }
        Some(false)
    }
    let mut suffix = vec![0.0; cw.len() + 1];
    for i in (0..cw.len()).rev() {
        suffix[i] = suffix[i + 1] + cw[i];
    }
    let mut loads = vec![0.0; k];
    rec(cw, 0, &mut loads, &suffix, lo, hi, budget)
}

impl LowerBound for DisconnectedBound {
    fn name(&self) -> &'static str {
        "split"
    }

    fn certify(&self, inst: &Instance, k: usize) -> Option<Certificate> {
        if k == 0 || inst.num_edges() == 0 {
            return None;
        }
        let cw = component_weights(inst);
        let t = cw.len();
        // On connected hosts the averaging bound already counts `k − 1`
        // edges; this certifier is the disconnected-host specialist.
        if t < 2 || t > self.max_components {
            return None;
        }
        let win = Window::new(inst, k);
        let mut budget = self.node_budget;
        match grouping_feasible(&cw, k, win.lo, win.hi, &mut budget) {
            Some(false) => {
                // No whole-component grouping is strictly balanced, so
                // every feasible coloring splits a component: ≥ 1 cut
                // edge, priced at the cheapest cost.
                let min_cost = min_edge_cost(inst);
                Some(Certificate {
                    certifier: self.name(),
                    value: 2.0 * min_cost / k as f64,
                    derivation: Derivation::Disconnected {
                        components: t,
                        min_cost,
                        node_budget: self.node_budget,
                    },
                })
            }
            // Feasible grouping (nothing proved) or budget exhausted
            // (undecided): decline.
            Some(true) | None => None,
        }
    }
}

/// Replay a [`Derivation::Disconnected`]: re-run the feasibility search
/// (with the budget the certificate was produced under) and re-derive
/// the priced bound.
pub(crate) fn replay_disconnected(
    inst: &Instance,
    k: usize,
    components: usize,
    min_cost: f64,
    node_budget: u64,
) -> Result<f64, String> {
    let cw = component_weights(inst);
    if cw.len() != components {
        return Err(format!(
            "components: derived {components}, replay found {}",
            cw.len()
        ));
    }
    let fresh_min = min_edge_cost(inst);
    if fresh_min != min_cost {
        return Err(format!("min edge cost drifted: {min_cost} vs {fresh_min}"));
    }
    let win = Window::new(inst, k);
    let mut budget = node_budget;
    match grouping_feasible(&cw, k, win.lo, win.hi, &mut budget) {
        Some(false) => Ok(2.0 * min_cost / k as f64),
        Some(true) => Err("replay found a feasible whole-component grouping".into()),
        None => Err("replay exhausted the search budget".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::misc::{cycle, path};
    use mmb_graph::graph::graph_from_edges;

    fn unit(g: mmb_graph::Graph) -> Instance {
        let (n, m) = (g.num_vertices(), g.num_edges());
        Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap()
    }

    #[test]
    fn volume_counts_quotient_edges() {
        // Unit path, k = 2: one cut edge, both classes see it → 2·1/2 = 1.
        let cert = VolumeBound.certify(&unit(path(8)), 2).unwrap();
        assert_eq!(cert.value, 1.0);
        // k = 3: two cut edges → 2·2/3.
        let cert = VolumeBound.certify(&unit(path(9)), 3).unwrap();
        assert!((cert.value - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn volume_uses_cheapest_costs() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let inst = Instance::new(g, vec![5.0, 0.25, 9.0], vec![1.0; 4]).unwrap();
        let cert = VolumeBound.certify(&inst, 2).unwrap();
        assert_eq!(cert.value, 0.25); // 2 · 0.25 / 2
        match &cert.derivation {
            Derivation::Volume {
                required_cut_edges,
                components,
                cheapest,
            } => {
                assert_eq!(*required_cut_edges, 1);
                assert_eq!(*components, 1);
                assert_eq!(cheapest, &[0.25]);
            }
            d => panic!("wrong derivation {d:?}"),
        }
    }

    #[test]
    fn volume_respects_components() {
        // Two disjoint 4-cycles, k = 2: the classes can be the components
        // (zero cut), so the count must be 0.
        let mut edges = Vec::new();
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            edges.push((u, v));
            edges.push((u + 4, v + 4));
        }
        let cert = VolumeBound
            .certify(&unit(graph_from_edges(8, &edges)), 2)
            .unwrap();
        assert_eq!(cert.value, 0.0);
    }

    #[test]
    fn split_bound_fires_exactly_when_no_grouping_exists() {
        // Components of weight 4 and 4 (two 4-cycles), k = 2: grouping
        // feasible → decline.
        let mut edges = Vec::new();
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            edges.push((u, v));
            edges.push((u + 4, v + 4));
        }
        let balanced = unit(graph_from_edges(8, &edges));
        assert!(DisconnectedBound::default().certify(&balanced, 2).is_none());

        // A triangle (weight 3) plus a 5-cycle (weight 5), k = 2 with
        // unit weights: envelopes are 4 ± 0.5, neither 3|5 nor 8|0 fits →
        // some component must split.
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        for (u, v) in [(3u32, 4u32), (4, 5), (5, 6), (6, 7), (7, 3)] {
            edges.push((u, v));
        }
        let skewed = unit(graph_from_edges(8, &edges));
        let cert = DisconnectedBound::default().certify(&skewed, 2).unwrap();
        assert_eq!(cert.value, 1.0); // 2 · 1 / 2
        assert!(matches!(
            cert.derivation,
            Derivation::Disconnected { components: 2, .. }
        ));
        // And the oracle agrees the optimum is positive here.
        let opt = crate::oracle::exact_min_max_boundary(&skewed, 2).unwrap();
        assert!(opt.max_boundary >= cert.value - 1e-12);
    }

    #[test]
    fn replays_match() {
        let inst = unit(cycle(9));
        for k in [2usize, 3] {
            let cert = VolumeBound.certify(&inst, k).unwrap();
            let replayed = cert.derivation.replay(&inst, k).unwrap();
            assert_eq!(replayed, cert.value);
        }
    }
}
