//! Forced-separation cut bound (cf. the Gutin–Yeo survey on min-cut-type
//! bounds for balanced partitioning, arXiv:2104.05536).
//!
//! If two vertices `u, v` satisfy `w(u) + w(v) > hi` — the upper
//! class-weight envelope of Definition 1, widened by the workspace fp
//! tolerance, so the test can only be *harder* to pass than the exact
//! one — then no strictly balanced coloring can place them in the same
//! class. The class containing `u` is then a vertex set separating `u`
//! from `v`, and its boundary cost is at least the `u`–`v` minimum cut:
//!
//! ```text
//! OPT ≥ λ(u, v)   whenever   w(u) + w(v) > hi.
//! ```
//!
//! This sees exactly what the global min-cut bound cannot: on hosts
//! dominated by two heavy hubs, `λ(G, c)` isolates some featherweight
//! leaf while `λ(u, v)` must pay for a real separation. The certifier
//! enumerates the candidate pairs heaviest-sum first (deterministic
//! tie-break by vertex id), prices a bounded number of them with a
//! max-flow/min-cut computation (Edmonds–Karp — the augmentation count
//! is `O(V·E)` regardless of the f64 capacities), and keeps the best
//! bound together with the witnessing source side of the cut.

use std::collections::VecDeque;

use mmb_graph::VertexId;

use crate::api::instance::Instance;
use crate::lower_bounds::packing::price_side;
use crate::lower_bounds::{Certificate, Derivation, LowerBound, Window};

/// The forced-separation cut bound (see the [module docs](self)).
#[derive(Clone, Copy, Debug)]
pub struct CutPairBound {
    /// Refuse hosts with more vertices than this (each candidate pair
    /// costs a max-flow; the pair scan itself is near-linear).
    pub max_vertices: usize,
    /// Price at most this many candidate pairs (heaviest-sum first).
    pub max_flows: usize,
}

impl Default for CutPairBound {
    fn default() -> Self {
        CutPairBound {
            max_vertices: 256,
            max_flows: 12,
        }
    }
}

/// All pairs with `w(u) + w(v) > hi`, ordered by weight sum descending
/// (ties by vertex ids), each normalized to `u < v`.
fn heavy_pairs(inst: &Instance, k: usize) -> Vec<(VertexId, VertexId)> {
    let win = Window::new(inst, k);
    let w = inst.weights();
    let mut by_weight: Vec<VertexId> = (0..inst.num_vertices() as u32).collect();
    by_weight.sort_unstable_by(|&a, &b| w[b as usize].total_cmp(&w[a as usize]).then(a.cmp(&b)));
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    for i in 0..by_weight.len() {
        for j in (i + 1)..by_weight.len() {
            let (a, b) = (by_weight[i], by_weight[j]);
            if w[a as usize] + w[b as usize] > win.hi {
                pairs.push((a.min(b), a.max(b)));
            } else {
                break; // weights descend along j
            }
        }
    }
    pairs.sort_unstable_by(|p, q| {
        let sp = w[p.0 as usize] + w[p.1 as usize];
        let sq = w[q.0 as usize] + w[q.1 as usize];
        sq.total_cmp(&sp).then(p.cmp(q))
    });
    pairs
}

/// Edmonds–Karp max flow between `s` and `t` on the undirected costed
/// host; returns the flow value and the residual-reachable source side
/// (one minimum `s`–`t` cut, sorted by id).
fn max_flow_source_side(inst: &Instance, s: VertexId, t: VertexId) -> (f64, Vec<VertexId>) {
    let n = inst.num_vertices();
    // Arc-pair representation: arc `a` and its reverse `a ^ 1`.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut to: Vec<VertexId> = Vec::with_capacity(2 * inst.num_edges());
    let mut cap: Vec<f64> = Vec::with_capacity(2 * inst.num_edges());
    for (e, &(u, v)) in inst.graph().edge_list().iter().enumerate() {
        let c = inst.costs()[e];
        adj[u as usize].push(to.len());
        to.push(v);
        cap.push(c);
        adj[v as usize].push(to.len());
        to.push(u);
        cap.push(c);
    }
    let mut flow = 0.0;
    let mut pred: Vec<Option<usize>> = vec![None; n];
    loop {
        pred.iter_mut().for_each(|p| *p = None);
        let mut queue = VecDeque::from([s]);
        let mut seen = vec![false; n];
        seen[s as usize] = true;
        while let Some(x) = queue.pop_front() {
            for &a in &adj[x as usize] {
                let y = to[a] as usize;
                if !seen[y] && cap[a] > 0.0 {
                    seen[y] = true;
                    pred[y] = Some(a);
                    queue.push_back(y as VertexId);
                }
            }
        }
        if !seen[t as usize] {
            // Saturated: `seen` is the residual-reachable source side.
            let mut side: Vec<VertexId> = (0..n as u32).filter(|&v| seen[v as usize]).collect();
            side.sort_unstable();
            return (flow, side);
        }
        // Bottleneck along the BFS path, then push it. The bottleneck
        // equals some arc's residual exactly, so that arc saturates to
        // exactly 0.0 — each augmentation kills ≥ 1 arc and Edmonds–Karp
        // terminates in O(V·E) rounds independent of the capacities.
        let mut b = f64::INFINITY;
        let mut x = t as usize;
        while let Some(a) = pred[x] {
            b = b.min(cap[a]);
            x = to[a ^ 1] as usize;
        }
        let mut x = t as usize;
        while let Some(a) = pred[x] {
            cap[a] -= b;
            cap[a ^ 1] += b;
            x = to[a ^ 1] as usize;
        }
        flow += b;
    }
}

impl LowerBound for CutPairBound {
    fn name(&self) -> &'static str {
        "cut-pair"
    }

    fn certify(&self, inst: &Instance, k: usize) -> Option<Certificate> {
        let n = inst.num_vertices();
        if k < 2 || n < 2 || n > self.max_vertices || inst.num_edges() == 0 {
            return None;
        }
        let pairs = heavy_pairs(inst, k);
        let mut best: Option<(f64, VertexId, VertexId, Vec<VertexId>)> = None;
        for &(u, v) in pairs.iter().take(self.max_flows) {
            let (_, side) = max_flow_source_side(inst, u, v);
            let priced = price_side(inst, &side);
            // Relative slack in the sound direction, as everywhere in the
            // stack: the priced cut is only trusted up to fp rounding.
            let value = (priced - 1e-9 * (1.0 + priced)).max(0.0);
            if best.as_ref().is_none_or(|b| value > b.0) {
                best = Some((value, u, v, side));
            }
        }
        let (value, u, v, side) = best?;
        Some(Certificate {
            certifier: self.name(),
            value,
            derivation: Derivation::CutPair {
                u,
                v,
                cut_cost: value,
                side,
            },
        })
    }
}

/// Replay a [`Derivation::CutPair`]: re-check the forcing precondition
/// `w(u) + w(v) > hi`, verify the witness side separates `u` from `v`
/// and prices at a true minimum `u`–`v` cut, and re-derive the
/// slack-discounted value.
pub(crate) fn replay_cut_pair(
    inst: &Instance,
    k: usize,
    u: VertexId,
    v: VertexId,
    cut_cost: f64,
    side: &[VertexId],
) -> Result<f64, String> {
    let n = inst.num_vertices();
    if u as usize >= n || v as usize >= n || u == v {
        return Err(format!(
            "pair ({u}, {v}) is not a pair of distinct vertices"
        ));
    }
    let w = inst.weights();
    let win = Window::new(inst, k);
    if w[u as usize] + w[v as usize] <= win.hi {
        return Err(format!(
            "pair ({u}, {v}) is not forced apart: {} + {} ≤ hi = {}",
            w[u as usize], w[v as usize], win.hi
        ));
    }
    if side.is_empty() || side.len() >= n {
        return Err(format!("witness side of size {} is not proper", side.len()));
    }
    let mut inside = vec![false; n];
    for &x in side {
        if x as usize >= n {
            return Err(format!("witness vertex {x} out of range"));
        }
        inside[x as usize] = true;
    }
    if !inside[u as usize] || inside[v as usize] {
        return Err("witness side does not separate u from v".into());
    }
    let priced = price_side(inst, side);
    let (flow, _) = max_flow_source_side(inst, u, v);
    if (priced - flow).abs() > 1e-9 * (1.0 + flow.abs()) {
        return Err(format!("witness prices at {priced}, but λ(u, v) = {flow}"));
    }
    let value = (priced - 1e-9 * (1.0 + priced)).max(0.0);
    if (value - cut_cost).abs() > 1e-9 * (1.0 + cut_cost.abs()) {
        return Err(format!("cut value drifted: {cut_cost} vs {value}"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::misc::path;
    use mmb_graph::graph::graph_from_edges;

    /// Unit-cost path with two heavy endpoints: the pair is forced apart
    /// and every u–v cut costs exactly one edge.
    fn heavy_ends_path(n: usize) -> Instance {
        let mut w = vec![1.0; n];
        w[0] = 2.0 * n as f64;
        w[n - 1] = 2.0 * n as f64;
        Instance::new(path(n), vec![1.0; n - 1], w).unwrap()
    }

    #[test]
    fn heavy_pair_forces_a_real_cut() {
        let inst = heavy_ends_path(8);
        let cert = CutPairBound::default()
            .certify(&inst, 2)
            .expect("pair must fire");
        assert!((cert.value - 1.0).abs() < 1e-6, "value = {}", cert.value);
        let replayed = cert.derivation.replay(&inst, 2).unwrap();
        assert!((replayed - cert.value).abs() < 1e-12);
        // Sound against the exact optimum.
        let opt = crate::oracle::exact_min_max_boundary(&inst, 2)
            .unwrap()
            .max_boundary;
        assert!(cert.value <= opt + 1e-9);
    }

    #[test]
    fn parallel_paths_price_the_full_separation() {
        // Two vertex-disjoint u–v paths: λ(u, v) = 2, which the global
        // min cut also sees — but with a heavy third hub the forced pair
        // is what certifies it at k = 2.
        let g = graph_from_edges(6, &[(0, 1), (1, 5), (0, 2), (2, 5), (0, 3), (3, 4)]);
        let mut w = vec![1.0; 6];
        w[0] = 20.0;
        w[5] = 20.0;
        let inst = Instance::new(g, vec![1.0; 6], w).unwrap();
        let cert = CutPairBound::default().certify(&inst, 2).unwrap();
        assert!((cert.value - 2.0).abs() < 1e-6, "value = {}", cert.value);
    }

    #[test]
    fn declines_without_a_forced_pair() {
        // Uniform weights: no pair exceeds the envelope at any k ≥ 2.
        let inst = Instance::new(path(8), vec![1.0; 7], vec![1.0; 8]).unwrap();
        assert!(CutPairBound::default().certify(&inst, 2).is_none());
        assert!(CutPairBound::default().certify(&inst, 3).is_none());
        // k = 1: hi ≥ total weight, nothing is ever forced apart.
        let heavy = heavy_ends_path(8);
        assert!(CutPairBound::default().certify(&heavy, 1).is_none());
        // Size cap.
        let capped = CutPairBound {
            max_vertices: 4,
            ..CutPairBound::default()
        };
        assert!(capped.certify(&heavy, 2).is_none());
    }

    #[test]
    fn witness_tampering_is_caught() {
        let inst = heavy_ends_path(8);
        let cert = CutPairBound::default().certify(&inst, 2).unwrap();
        let Derivation::CutPair { u, v, cut_cost, .. } = cert.derivation else {
            panic!("wrong derivation");
        };
        // A side that prices above the minimum cut: caught.
        let fat = Derivation::CutPair {
            u,
            v,
            cut_cost,
            side: vec![0, 2, 4],
        };
        assert!(fat.replay(&inst, 2).is_err());
        // A side that fails to separate the pair: caught.
        let wrong = Derivation::CutPair {
            u,
            v,
            cut_cost,
            side: vec![0, 7],
        };
        assert!(wrong.replay(&inst, 2).is_err());
        // An unforced pair: caught.
        let unforced = Derivation::CutPair {
            u: 2,
            v: 3,
            cut_cost,
            side: vec![0, 1, 2],
        };
        assert!(unforced.replay(&inst, 2).is_err());
    }
}
