//! Certified lower bounds on the min-max boundary cost — the gap engine.
//!
//! PR 4's exact oracle gives ground truth only for `n ≤ 16`; everywhere
//! else the harness could report a Theorem-5 *upper*-bound ratio but no
//! certified distance to the optimum. This module closes that hole with a
//! stack of cheap combinatorial **certifiers**: each one inspects an
//! [`Instance`] and, when its preconditions hold, returns a
//! [`Certificate`] — a provable lower bound on
//!
//! ```text
//! OPT(G, c, w, k) = min { ‖∂χ⁻¹‖_∞ : χ strictly balanced k-coloring }
//! ```
//!
//! together with a machine-checkable [`Derivation`] that
//! [`Derivation::replay`] can re-derive from first principles. The stack
//! ([`standard_certifiers`]):
//!
//! * [`volume::VolumeBound`] — the averaging bound: any strictly balanced
//!   coloring cuts at least `q − t` edges (`q` = a floor on the number of
//!   occupied classes, `t` = connected components), each boundary cost is
//!   counted twice across classes, so
//!   `OPT ≥ (2/k)·Σ(q − t cheapest edge costs)`. This is the sound form
//!   of the volume term implicit in Theorem 5 — note the *naive* reading
//!   `‖c‖₁/k` is **not** a lower bound (a path already refutes it), which
//!   is exactly why the derivation is carried explicitly.
//! * [`volume::DisconnectedBound`] — on disconnected hosts, proves by
//!   exhaustive (pruned) search that no grouping of whole components is
//!   strictly balanced, hence some component must be split and at least
//!   one edge cut.
//! * [`packing::PackingBound`] — the Träff–Wimmer-style boundary-degree
//!   bound (arXiv:1410.0462): per vertex, a fractional knapsack over the
//!   sorted incident costs upper-bounds what a weight-capped class can
//!   retain; the rest is certified cut.
//! * [`packing::EdgePackingBound`] — the Träff–Wimmer refinement that
//!   packs *whole edges*: the per-vertex knapsack is solved as an exact
//!   0/1 problem (budgeted branch-and-bound), so its masses dominate the
//!   fractional ones by construction.
//! * [`packing::MinCutBound`] — the weight-based cut bound (cf. the
//!   Gutin–Yeo survey, arXiv:2104.05536): with ≥ 2 occupied classes on a
//!   connected host every class is a proper non-empty subset, so
//!   `OPT ≥ λ(G, c)`, the global min cut (Stoer–Wagner), with the cut
//!   side kept as the replayable witness.
//! * [`cutpair::CutPairBound`] — the Gutin–Yeo-style forced-separation
//!   bound: two vertices jointly heavier than the class envelope can
//!   never share a class, so `OPT ≥ λ(u, v)` (max-flow, with the cut
//!   side as witness).
//! * [`structure::StructureBound`] — structure-aware bounds routed
//!   through `mmb_graph::recognize`: Harper's exact edge-isoperimetric
//!   inequality on hypercubes, axis-projection bounds on full lattices
//!   and (via [`mmb_graph::recognize::try_torus_dims`]) tori, and the
//!   cheapest-edge bound on connected trees/paths.
//! * [`OracleBound`] — the exact oracle of PR 4, demoted to *just another
//!   certifier*: for `n ≤ 16` it certifies `OPT` itself.
//! * [`crate::bnb::BnbBound`] — the anytime branch-and-bound engine as a
//!   certifier: whenever its budgeted search exhausts, the incumbent *is*
//!   `OPT` and is certified as such (this is what lifts exact lower
//!   bounds past the oracle's `n = 16` cap).
//!
//! The first seven are the [`static_certifiers`] — polynomial-time, no
//! exhaustive search — which double as the B&B engine's root bound (the
//! full stack there would recurse). [`best_lower_bound`] runs the whole
//! [`standard_certifiers`] stack and keeps every certificate;
//! [`certify`] pairs the best one with an achieved cost into a
//! [`CertifiedGap`] `{ lower, upper, ratio }`, which
//! [`Solver::solve_certified`](crate::api::Solver::solve_certified)
//! threads into [`Report`](crate::api::Report), the corpus table
//! (`reproduce corpus` gains a gap column and gate) and the perf
//! baselines (`BENCH_6.json`).
//!
//! ## Soundness discipline
//!
//! Every certifier bounds the optimum over *strictly balanced* colorings
//! only — an unbalanced coloring may be cheaper than every certificate,
//! which is why the differential suite (`tests/lower_bounds.rs`) compares
//! certificates against partitioner outputs **only when those outputs are
//! strictly balanced** (the same exemption the oracle suite uses).
//! Floating-point comparisons are relaxed in the sound direction: balance
//! windows are widened and count conversions slack-rounded, so a
//! certificate can only be weaker than the exact argument, never
//! stronger.

pub mod cutpair;
pub mod packing;
pub mod structure;
pub mod volume;

use mmb_graph::VertexId;

use crate::api::instance::Instance;
use crate::oracle::{exact_min_max_boundary, ORACLE_MAX_VERTICES};

/// One certified lower bound: the certifier that produced it, the bound
/// value, and the machine-checkable derivation.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Short certifier name (`"volume"`, `"packing"`, `"min-cut"`,
    /// `"structure"`, `"oracle"`, …).
    pub certifier: &'static str,
    /// The certified lower bound on `OPT` (≥ 0; 0 is a *trivial*
    /// certificate — the certifier ran but proved nothing positive).
    pub value: f64,
    /// The derivation, replayable via [`Derivation::replay`].
    pub derivation: Derivation,
}

/// The machine-checkable derivation carried by a [`Certificate`].
///
/// Each variant stores the intermediates of its argument;
/// [`Derivation::replay`] recomputes the bound from the instance alone
/// and cross-checks the stored data, so a certificate cannot silently
/// drift from the code that justifies it (property-tested in
/// `tests/lower_bounds.rs`).
#[derive(Clone, Debug)]
pub enum Derivation {
    /// Averaging bound: `2/k ×` the sum of the `required_cut_edges`
    /// cheapest edge costs (see [`volume::VolumeBound`]).
    Volume {
        /// Floor on the number of edges any strictly balanced coloring
        /// cuts (`max(q, ⌈‖w‖₁/hi⌉) − t`, clamped at 0).
        required_cut_edges: usize,
        /// Connected components `t` of the host graph.
        components: usize,
        /// The `required_cut_edges` cheapest edge costs, ascending.
        cheapest: Vec<f64>,
    },
    /// Component-split bound: no strictly balanced grouping of whole
    /// components exists, so ≥ 1 edge is cut
    /// (see [`volume::DisconnectedBound`]).
    Disconnected {
        /// Components of the host graph (≥ 2).
        components: usize,
        /// The cheapest edge cost (the certified cut content).
        min_cost: f64,
        /// Node budget of the feasibility search that produced the
        /// certificate; replay re-runs with the same budget, so a
        /// certificate from a generously configured certifier stays
        /// replayable.
        node_budget: u64,
    },
    /// Boundary-degree packing bound: `Σ_v max(0, τ(v) − knap_v) / k`
    /// (see [`packing::PackingBound`]).
    Packing {
        /// The summed per-vertex certified cut mass
        /// `Σ_v max(0, τ(v) − knap_v)`.
        per_vertex_total: f64,
    },
    /// Global min-cut bound with the witnessing side
    /// (see [`packing::MinCutBound`]).
    MinCut {
        /// The Stoer–Wagner minimum cut value `λ(G, c)`.
        cut_cost: f64,
        /// One side of a minimum cut (proper, non-empty) — the witness
        /// replay re-prices.
        side: Vec<VertexId>,
    },
    /// Structure-aware bound (see [`structure::StructureBound`]).
    Structure {
        /// Which structural family fired (`"hypercube"`, `"lattice"`,
        /// `"torus"`, `"tree"`).
        family: &'static str,
        /// Axis extents of the recognized lattice/torus (empty for
        /// trees).
        extents: Vec<usize>,
        /// Feasible vertex-count range of the heaviest class.
        size_range: (usize, usize),
        /// The cheapest edge cost each counted boundary edge is priced
        /// at.
        min_cost: f64,
        /// The certified minimum number of boundary edges.
        boundary_edges: f64,
    },
    /// The exact optimum (see [`OracleBound`]).
    Oracle {
        /// `OPT` as computed by the exhaustive search.
        optimum: f64,
        /// Search nodes visited (complexity probe, not re-checked).
        nodes: u64,
    },
    /// Whole-edge packing bound (see [`packing::EdgePackingBound`]).
    EdgePacking {
        /// The summed per-vertex certified cut mass with integral
        /// knapsacks, `Σ_v max(0, τ(v) − knap01_v)`.
        per_vertex_total: f64,
        /// Per-vertex node budget of the 0/1 knapsack searches; replay
        /// re-runs with the same budget.
        vertex_budget: u64,
    },
    /// Forced-separation cut bound (see [`cutpair::CutPairBound`]).
    CutPair {
        /// One vertex of the forced pair (`w(u) + w(v) > hi`).
        u: VertexId,
        /// The other vertex of the forced pair.
        v: VertexId,
        /// The certified (slack-discounted) `u`–`v` min-cut value.
        cut_cost: f64,
        /// The source side of a minimum `u`–`v` cut (contains `u`, not
        /// `v`) — the witness replay re-prices.
        side: Vec<VertexId>,
    },
    /// The exact optimum proven by the anytime branch-and-bound engine
    /// running to exhaustion (see [`crate::bnb::BnbBound`]).
    BnbOptimal {
        /// `OPT` as proven by the exhausted search.
        optimum: f64,
        /// Search nodes visited (complexity probe, not re-checked).
        nodes: u64,
        /// Node budget the certifier ran under; replay re-runs with the
        /// same budget, so a certificate from a generously configured
        /// certifier stays replayable.
        node_budget: u64,
    },
}

impl Derivation {
    /// Recompute the bound from `inst`/`k` alone and cross-check the
    /// stored intermediates; returns the re-derived value (which callers
    /// compare against [`Certificate::value`]) or a description of the
    /// first mismatch.
    pub fn replay(&self, inst: &Instance, k: usize) -> Result<f64, String> {
        match self {
            Derivation::Volume {
                required_cut_edges,
                components,
                cheapest,
            } => volume::replay_volume(inst, k, *required_cut_edges, *components, cheapest),
            Derivation::Disconnected {
                components,
                min_cost,
                node_budget,
            } => volume::replay_disconnected(inst, k, *components, *min_cost, *node_budget),
            Derivation::Packing { per_vertex_total } => {
                packing::replay_packing(inst, k, *per_vertex_total)
            }
            Derivation::MinCut { cut_cost, side } => {
                packing::replay_min_cut(inst, k, *cut_cost, side)
            }
            Derivation::Structure {
                family,
                extents,
                size_range,
                min_cost,
                boundary_edges,
            } => structure::replay_structure(
                inst,
                k,
                family,
                extents,
                *size_range,
                *min_cost,
                *boundary_edges,
            ),
            Derivation::Oracle { optimum, .. } => {
                let s = exact_min_max_boundary(inst, k).map_err(|e| e.to_string())?;
                if (s.max_boundary - optimum).abs() > 1e-9 * (1.0 + optimum.abs()) {
                    return Err(format!(
                        "oracle replay found optimum {}, certificate says {}",
                        s.max_boundary, optimum
                    ));
                }
                Ok(s.max_boundary)
            }
            Derivation::EdgePacking {
                per_vertex_total,
                vertex_budget,
            } => packing::replay_edge_packing(inst, k, *per_vertex_total, *vertex_budget),
            Derivation::CutPair {
                u,
                v,
                cut_cost,
                side,
            } => cutpair::replay_cut_pair(inst, k, *u, *v, *cut_cost, side),
            Derivation::BnbOptimal {
                optimum,
                node_budget,
                ..
            } => crate::bnb::replay_bnb(inst, k, *optimum, *node_budget),
        }
    }
}

/// A lower-bound certifier: inspects an instance and either produces a
/// [`Certificate`] or declines (`None`) when its preconditions do not
/// hold. Declining is always sound; every returned value must be a true
/// lower bound on the strictly balanced optimum.
pub trait LowerBound: Sync {
    /// Short certifier name for tables and derivations.
    fn name(&self) -> &'static str;

    /// Certify a lower bound for `(inst, k)`, or decline.
    fn certify(&self, inst: &Instance, k: usize) -> Option<Certificate>;
}

/// The exact oracle as a certifier: for `n ≤ 16` the exhaustive search
/// *is* the optimum, which is simultaneously the strongest possible lower
/// bound. Above the cap it declines (typed refusal inside
/// [`exact_min_max_boundary`], surfaced here as `None`).
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleBound;

impl LowerBound for OracleBound {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn certify(&self, inst: &Instance, k: usize) -> Option<Certificate> {
        if inst.num_vertices() > ORACLE_MAX_VERTICES || k == 0 {
            return None;
        }
        let s = exact_min_max_boundary(inst, k).ok()?;
        Some(Certificate {
            certifier: self.name(),
            value: s.max_boundary,
            derivation: Derivation::Oracle {
                optimum: s.max_boundary,
                nodes: s.nodes,
            },
        })
    }
}

/// The polynomial-time subset of the certifier stack — every certifier
/// except the exhaustive-search ones ([`OracleBound`],
/// [`crate::bnb::BnbBound`]).
///
/// This is the stack the branch-and-bound engine prices its *root* gap
/// with: running the full [`standard_certifiers`] stack inside the
/// engine would recurse (the engine is itself a certifier there).
pub fn static_certifiers() -> Vec<Box<dyn LowerBound>> {
    vec![
        Box::new(volume::VolumeBound),
        Box::new(volume::DisconnectedBound::default()),
        Box::new(packing::PackingBound),
        Box::new(packing::EdgePackingBound::default()),
        Box::new(packing::MinCutBound::default()),
        Box::new(cutpair::CutPairBound::default()),
        Box::new(structure::StructureBound),
    ]
}

/// The standard certifier stack, in evaluation order. One constructor so
/// the solver, the corpus table and the differential suite cannot drift
/// apart when a certifier is added. The exhaustive certifiers come last
/// (and the oracle before the B&B engine, so ties on `n ≤ 16` keep the
/// established winner name).
pub fn standard_certifiers() -> Vec<Box<dyn LowerBound>> {
    let mut stack = static_certifiers();
    stack.push(Box::new(OracleBound));
    stack.push(Box::new(crate::bnb::BnbBound::default()));
    stack
}

/// Every certificate the stack produced for one `(inst, k)`, with the
/// best one designated.
#[derive(Clone, Debug, Default)]
pub struct LowerBoundReport {
    /// All certificates, in certifier order.
    pub certificates: Vec<Certificate>,
}

impl LowerBoundReport {
    /// The strongest certificate (highest value; first wins ties).
    pub fn best(&self) -> Option<&Certificate> {
        let mut best: Option<&Certificate> = None;
        for cert in &self.certificates {
            if best.is_none_or(|b| cert.value > b.value) {
                best = Some(cert);
            }
        }
        best
    }

    /// The best certified lower bound (0 when no certifier fired).
    pub fn value(&self) -> f64 {
        self.best().map_or(0.0, |c| c.value)
    }

    /// Name of the winning certifier (`"none"` when nothing fired).
    pub fn winner(&self) -> &'static str {
        self.best().map_or("none", |c| c.certifier)
    }
}

/// Run a certifier stack on `(inst, k)`, clamping defensively.
fn run_stack(stack: Vec<Box<dyn LowerBound>>, inst: &Instance, k: usize) -> LowerBoundReport {
    let mut report = LowerBoundReport::default();
    for certifier in stack {
        if let Some(mut cert) = certifier.certify(inst, k) {
            // Defensive clamp: a lower bound is never negative (and a
            // NaN from a buggy certifier must not poison the max).
            if cert.value.is_nan() || cert.value < 0.0 {
                cert.value = 0.0;
            }
            report.certificates.push(cert);
        }
    }
    report
}

/// Run the [`standard_certifiers`] stack on `(inst, k)`.
pub fn best_lower_bound(inst: &Instance, k: usize) -> LowerBoundReport {
    run_stack(standard_certifiers(), inst, k)
}

/// Run the [`static_certifiers`] stack on `(inst, k)` — the
/// exhaustive-search-free bound the B&B engine roots its certified gap
/// in.
pub fn static_lower_bound(inst: &Instance, k: usize) -> LowerBoundReport {
    run_stack(static_certifiers(), inst, k)
}

/// A certified optimality gap: the best lower bound, an achieved upper
/// bound (some partitioner's cost), and their ratio.
#[derive(Clone, Debug, PartialEq)]
pub struct CertifiedGap {
    /// Best certified lower bound on `OPT` (≥ 0).
    pub lower: f64,
    /// The achieved max boundary cost (`≥ OPT ≥ lower` for strictly
    /// balanced colorings).
    pub upper: f64,
    /// `upper / lower`; `1.0` when both are 0 (certified optimal at
    /// cost 0), `∞` when only the trivial bound is available.
    pub ratio: f64,
    /// Name of the winning certifier.
    pub certifier: String,
}

impl CertifiedGap {
    /// Assemble a gap from a lower bound and an achieved cost.
    pub fn new(lower: f64, upper: f64, certifier: impl Into<String>) -> Self {
        let ratio = if lower > 0.0 {
            upper / lower
        } else if upper <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
        CertifiedGap {
            lower,
            upper,
            ratio,
            certifier: certifier.into(),
        }
    }

    /// Whether the lower bound is non-trivial (positive, hence the ratio
    /// finite for any finite achieved cost).
    pub fn is_nontrivial(&self) -> bool {
        self.lower > 0.0 || self.upper <= 0.0
    }
}

/// Run the certifier stack and pair its best bound with an achieved
/// cost.
pub fn certify(inst: &Instance, k: usize, upper: f64) -> CertifiedGap {
    let report = best_lower_bound(inst, k);
    CertifiedGap::new(report.value(), upper, report.winner())
}

/// Shared arithmetic of the strict-balance window of Definition 1,
/// relaxed by the workspace-wide scale-invariant tolerance **in the sound
/// direction** (wider window ⇒ weaker, never wrong, bounds).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Window {
    /// `‖w‖₁`.
    pub w_total: f64,
    /// `‖w‖∞`.
    pub w_max: f64,
    /// Upper class-weight envelope `w̄ + (1 − 1/k)·‖w‖∞ + tol`.
    pub hi: f64,
    /// Lower class-weight envelope `w̄ − (1 − 1/k)·‖w‖∞ − tol`.
    pub lo: f64,
}

impl Window {
    pub fn new(inst: &Instance, k: usize) -> Self {
        let w_total = inst.total_weight();
        let w_max = inst.max_weight();
        let avg = w_total / k as f64;
        let slack = crate::bounds::strict_slack(k, w_max);
        // Relative tolerance on the *totals* scale: class weights are
        // sums, so their fp drift scales with ‖w‖₁, not ‖w‖∞.
        let tol = 1e-9 * (1.0 + w_total);
        Window {
            w_total,
            w_max,
            hi: avg + slack + tol,
            lo: avg - slack - tol,
        }
    }

    /// Floor on the number of occupied (non-empty-weight) classes of any
    /// strictly balanced `k`-coloring: all `k` when the lower envelope is
    /// positive, and never fewer than `⌈‖w‖₁ / hi⌉` (each class holds at
    /// most `hi`).
    pub fn min_occupied_classes(&self, k: usize) -> usize {
        let all = if self.lo > 0.0 { k } else { 0 };
        let by_weight = if self.hi > 0.0 && self.w_total > 0.0 {
            // Slack-rounded downward: soundness over sharpness.
            (self.w_total / self.hi - 1e-6).ceil().max(0.0) as usize
        } else {
            0
        };
        all.max(by_weight).min(k)
    }

    /// Feasible vertex-count range `[m_lo, m_hi]` of the **heaviest**
    /// class: it carries weight ≥ `w̄` (pigeonhole), so at least
    /// `⌈w̄/‖w‖∞⌉` vertices, and the other classes jointly carry
    /// ≥ `‖w‖₁ − hi`, so at least `⌈(‖w‖₁ − hi)/‖w‖∞⌉` vertices stay
    /// outside it. `None` when weights are degenerate (all zero).
    pub fn heaviest_class_sizes(&self, n: usize, k: usize) -> Option<(usize, usize)> {
        if self.w_max <= 0.0 || n == 0 || k == 0 {
            return None;
        }
        let avg = self.w_total / k as f64;
        let m_lo = ((avg / self.w_max - 1e-6).ceil().max(1.0) as usize).min(n);
        let others = ((self.w_total - self.hi) / self.w_max - 1e-6)
            .ceil()
            .max(0.0) as usize;
        let m_hi = n.saturating_sub(others);
        (m_lo <= m_hi).then_some((m_lo, m_hi))
    }
}

/// The cheapest edge cost of the instance (`∞` on edgeless graphs — the
/// callers all decline before pricing anything on those).
pub(crate) fn min_edge_cost(inst: &Instance) -> f64 {
    inst.costs().iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::misc::path;

    fn unit_path(n: usize) -> Instance {
        Instance::new(path(n), vec![1.0; n - 1], vec![1.0; n]).unwrap()
    }

    #[test]
    fn window_counts_are_sound_and_sane() {
        let inst = unit_path(8);
        let win = Window::new(&inst, 2);
        // Uniform weights, k = 2: both classes occupied, heaviest class
        // has 4..=4 vertices (slack < one vertex weight… hi = 4.5 →
        // 3.5/1 others → m_hi = 8 − 4 = 4).
        assert_eq!(win.min_occupied_classes(2), 2);
        assert_eq!(win.heaviest_class_sizes(8, 2), Some((4, 4)));
    }

    #[test]
    fn oracle_certifier_fires_only_under_the_cap() {
        let small = unit_path(6);
        let cert = OracleBound.certify(&small, 2).unwrap();
        assert_eq!(cert.value, 1.0);
        assert!(matches!(cert.derivation, Derivation::Oracle { .. }));
        let big = unit_path(ORACLE_MAX_VERTICES + 2);
        assert!(OracleBound.certify(&big, 2).is_none());
    }

    #[test]
    fn certified_gap_ratio_conventions() {
        let g = CertifiedGap::new(2.0, 3.0, "volume");
        assert_eq!(g.ratio, 1.5);
        assert!(g.is_nontrivial());
        let zero = CertifiedGap::new(0.0, 0.0, "none");
        assert_eq!(zero.ratio, 1.0);
        assert!(zero.is_nontrivial());
        let trivial = CertifiedGap::new(0.0, 5.0, "none");
        assert!(trivial.ratio.is_infinite());
        assert!(!trivial.is_nontrivial());
    }

    #[test]
    fn stack_produces_a_positive_bound_on_a_path() {
        let inst = unit_path(10);
        let report = best_lower_bound(&inst, 2);
        assert!(report.value() >= 1.0 - 1e-12, "best = {}", report.value());
        // Oracle fires at this size and is exact, so it must win (or tie).
        assert_eq!(report.value(), 1.0);
        // Every certificate replays to its own value.
        for cert in &report.certificates {
            let replayed = cert.derivation.replay(&inst, 2).unwrap();
            assert!(
                (replayed - cert.value).abs() <= 1e-9 * (1.0 + cert.value),
                "{}: {} vs replay {}",
                cert.certifier,
                cert.value,
                replayed
            );
        }
    }
}
