//! Structure-aware lower bounds, routed through `mmb_graph::recognize`.
//!
//! Where the host graph is a *recognized* family, isoperimetry gives
//! bounds far sharper than averaging or a global min cut. All bounds
//! here follow one template: find the feasible vertex-count range
//! `[m_lo, m_hi]` of the **heaviest** class (pigeonhole: it carries
//! weight ≥ `‖w‖₁/k`), lower-bound the number of boundary *edges* any
//! `m`-vertex subset of the family must have, minimize over the range,
//! and price each edge at the cheapest edge cost — sound for arbitrary
//! weights and costs because both relaxations only weaken the bound.
//!
//! * **Hypercube `Q_d`** (recognized as the all-extents-2 lattice):
//!   Harper's edge-isoperimetric theorem — initial segments of the
//!   binary order maximize inner edges, so any `m`-subset has at least
//!   `m·d − 2·Σ_{i<m} popcount(i)` boundary edges. Exact: at `k = 2`
//!   with uniform weights this certifies the bisection width `2^{d−1}`
//!   itself.
//! * **Full lattices** (any dimension, extents from the verified
//!   embedding): the axis-projection argument. Fix an axis with extent
//!   `e` and `n/e` parallel lines (paths). For a class `S` of size `m`
//!   and its complement `T`: if no line is fully `S`, every line meeting
//!   `S` is mixed and contributes an internal boundary edge —
//!   `≥ ⌈m/e⌉`; symmetrically `≥ ⌈(n−m)/e⌉` if no line is fully `T`;
//!   and if both full lines exist, walking the (connected) projection
//!   from the `S`-full cell to the `T`-full cell telescopes
//!   `Σ|Δ(#S per line)| ≥ e` boundary edges across parallel line pairs
//!   (positions are matched one-to-one between adjacent lines). So
//!   every axis certifies `min(e, ⌈m/e⌉, ⌈(n−m)/e⌉)`; take the best
//!   axis.
//! * **Tori** (via [`try_torus_dims`]): the torus edge set contains the
//!   lattice edge set of the same extents, so the lattice bound applies
//!   verbatim; additionally each mixed line is a *cycle* and alternates
//!   an even number of times, doubling the mixed-line counts for
//!   extents ≥ 3.
//! * **Trees and paths** (`Structure::Forest` / `Structure::Path`,
//!   connected hosts): every proper non-empty subset has a boundary
//!   edge — the cheapest-edge bound. (The averaging bound usually ties
//!   this; it is kept so the family reads uniformly in reports.)

use mmb_graph::gen::grid::GridGraph;
use mmb_graph::recognize::{try_torus_dims, Structure};

use crate::api::instance::Instance;
use crate::lower_bounds::{min_edge_cost, Certificate, Derivation, LowerBound, Window};

/// The structure-aware certifier (see the [module docs](self)).
#[derive(Clone, Copy, Debug, Default)]
pub struct StructureBound;

/// What the structural analysis concluded for one instance.
struct Analysis {
    family: &'static str,
    extents: Vec<usize>,
    size_range: (usize, usize),
    /// Certified minimum number of boundary edges of the heaviest class.
    boundary_edges: f64,
}

/// Extents of a *full box* lattice, or `None` if the embedding is an
/// irregular subset (for which the projection argument is unsound).
///
/// Checks: coordinates occupy the axis-aligned bounding box exactly
/// (`n = Π extents` with all-distinct coordinates), and the edge count
/// matches the full lattice's `Σ_α (e_α − 1)·n/e_α` — together with the
/// constructor-verified "edges join L1-distance-1 points" this pins the
/// edge set to exactly the lattice edges.
fn full_box_extents(gg: &GridGraph) -> Option<Vec<usize>> {
    let n = gg.graph.num_vertices();
    if n == 0 {
        return None;
    }
    let d = gg.dim;
    let mut mins = vec![i64::MAX; d];
    let mut maxs = vec![i64::MIN; d];
    for v in 0..n as u32 {
        for (a, &x) in gg.coord(v).iter().enumerate() {
            mins[a] = mins[a].min(x);
            maxs[a] = maxs[a].max(x);
        }
    }
    let extents: Vec<usize> = mins
        .iter()
        .zip(&maxs)
        .map(|(&lo, &hi)| (hi - lo + 1) as usize)
        .collect();
    if extents.iter().product::<usize>() != n {
        return None;
    }
    let mut seen = std::collections::HashSet::with_capacity(n);
    for v in 0..n as u32 {
        if !seen.insert(gg.coord(v).to_vec()) {
            return None; // duplicate coordinate: not a bijection onto the box
        }
    }
    let expected_edges: usize = extents.iter().map(|&e| (e - 1) * (n / e)).sum();
    (gg.graph.num_edges() == expected_edges).then_some(extents)
}

/// `Σ_{i<m} popcount(i)` — the maximum number of hypercube edges inside
/// an `m`-vertex set (Harper: attained by the initial segment of the
/// binary order).
fn popcount_prefix_sum(m: usize) -> u64 {
    (0..m as u64).map(|i| i.count_ones() as u64).sum()
}

/// Harper's bound: minimum boundary edges of an `m`-subset of `Q_d`.
fn harper_boundary(d: usize, m: usize) -> f64 {
    (m as u64 * d as u64) as f64 - 2.0 * popcount_prefix_sum(m) as f64
}

/// The per-axis projection bound for an `m`-subset of a full lattice
/// (`wrap = false`) or torus (`wrap = true`) with the given extents.
fn projection_boundary(extents: &[usize], n: usize, m: usize, wrap: bool) -> f64 {
    let mut best = 0u64;
    for &e in extents {
        if e < 2 {
            continue;
        }
        // Mixed lines are cycles on a torus axis of extent ≥ 3: each
        // alternates an even number of times.
        let per_line = if wrap && e >= 3 { 2u64 } else { 1 };
        let meeting_s = m.div_ceil(e) as u64 * per_line;
        let meeting_t = (n - m).div_ceil(e) as u64 * per_line;
        let both_full = e as u64;
        best = best.max(both_full.min(meeting_s).min(meeting_t));
    }
    best as f64
}

/// Minimize an edge bound over the feasible size range.
fn min_over_sizes(range: (usize, usize), f: impl Fn(usize) -> f64) -> f64 {
    (range.0..=range.1).map(f).fold(f64::INFINITY, f64::min)
}

fn analyze(inst: &Instance, k: usize) -> Option<Analysis> {
    let n = inst.num_vertices();
    if k < 2 || n < 2 || inst.num_edges() == 0 {
        return None;
    }
    let win = Window::new(inst, k);
    let size_range = win.heaviest_class_sizes(n, k)?;
    match inst.structure() {
        Structure::Grid(gg) => {
            let extents = full_box_extents(gg)?;
            if extents.iter().all(|&e| e == 2) {
                let d = extents.len();
                let boundary_edges = min_over_sizes(size_range, |m| harper_boundary(d, m.min(n)));
                Some(Analysis {
                    family: "hypercube",
                    extents,
                    size_range,
                    boundary_edges,
                })
            } else {
                let boundary_edges = min_over_sizes(size_range, |m| {
                    projection_boundary(&extents, n, m.min(n), false)
                });
                Some(Analysis {
                    family: "lattice",
                    extents,
                    size_range,
                    boundary_edges,
                })
            }
        }
        Structure::Path { .. } | Structure::Forest => {
            // Connected tree/path with ≥ 2 occupied classes: every class
            // is a proper non-empty subset and cuts ≥ 1 edge.
            if inst.graph().is_connected() && win.min_occupied_classes(k) >= 2 {
                Some(Analysis {
                    family: "tree",
                    extents: Vec::new(),
                    size_range,
                    boundary_edges: 1.0,
                })
            } else {
                None
            }
        }
        Structure::Arbitrary => {
            let extents = try_torus_dims(inst.graph())?;
            let boundary_edges = min_over_sizes(size_range, |m| {
                projection_boundary(&extents, n, m.min(n), true)
            });
            Some(Analysis {
                family: "torus",
                extents,
                size_range,
                boundary_edges,
            })
        }
    }
}

impl LowerBound for StructureBound {
    fn name(&self) -> &'static str {
        "structure"
    }

    fn certify(&self, inst: &Instance, k: usize) -> Option<Certificate> {
        let a = analyze(inst, k)?;
        let min_cost = min_edge_cost(inst);
        Some(Certificate {
            certifier: self.name(),
            value: min_cost * a.boundary_edges,
            derivation: Derivation::Structure {
                family: a.family,
                extents: a.extents,
                size_range: a.size_range,
                min_cost,
                boundary_edges: a.boundary_edges,
            },
        })
    }
}

/// Replay a [`Derivation::Structure`]: re-run the structural analysis
/// and cross-check every stored intermediate.
pub(crate) fn replay_structure(
    inst: &Instance,
    k: usize,
    family: &str,
    extents: &[usize],
    size_range: (usize, usize),
    min_cost: f64,
    boundary_edges: f64,
) -> Result<f64, String> {
    let a = analyze(inst, k).ok_or("structural analysis no longer applies")?;
    if a.family != family {
        return Err(format!(
            "family: derived {family}, replay found {}",
            a.family
        ));
    }
    if a.extents != extents {
        return Err(format!("extents drifted: {extents:?} vs {:?}", a.extents));
    }
    if a.size_range != size_range {
        return Err(format!(
            "size range drifted: {size_range:?} vs {:?}",
            a.size_range
        ));
    }
    if a.boundary_edges != boundary_edges {
        return Err(format!(
            "boundary edge count drifted: {boundary_edges} vs {}",
            a.boundary_edges
        ));
    }
    let fresh_min = min_edge_cost(inst);
    if fresh_min != min_cost {
        return Err(format!("min edge cost drifted: {min_cost} vs {fresh_min}"));
    }
    Ok(fresh_min * a.boundary_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::lattice::{hypercube, torus};
    use mmb_graph::gen::misc::path;
    use mmb_graph::gen::tree::random_tree;

    fn unit(g: mmb_graph::Graph) -> Instance {
        let (n, m) = (g.num_vertices(), g.num_edges());
        Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap()
    }

    #[test]
    fn harper_certifies_the_bisection_width() {
        // Q₃, k = 2, uniform: the heaviest class has exactly 4 vertices
        // and Harper gives 4·3 − 2·(0+1+1+2) = 4 = the bisection width —
        // tight against the exact oracle.
        let inst = unit(hypercube(3));
        let cert = StructureBound.certify(&inst, 2).unwrap();
        assert_eq!(cert.value, 4.0);
        let opt = crate::oracle::exact_min_max_boundary(&inst, 2).unwrap();
        assert_eq!(opt.max_boundary, cert.value);
        match &cert.derivation {
            Derivation::Structure {
                family, extents, ..
            } => {
                assert_eq!(*family, "hypercube");
                assert_eq!(extents, &[2, 2, 2]);
            }
            d => panic!("wrong derivation {d:?}"),
        }
    }

    #[test]
    fn harper_values_are_classical() {
        assert_eq!(harper_boundary(3, 1), 3.0);
        assert_eq!(harper_boundary(3, 2), 4.0);
        assert_eq!(harper_boundary(3, 4), 4.0);
        assert_eq!(harper_boundary(4, 8), 8.0); // bisection width of Q₄
        assert_eq!(harper_boundary(6, 32), 32.0); // and of Q₆
    }

    #[test]
    fn lattice_projection_bound_is_positive_and_sound() {
        // 4×4 lattice, k = 2: heaviest class has 8 vertices; per axis
        // min(4, ⌈8/4⌉, ⌈8/4⌉) = 2 → bound 2, ≤ the true optimum 4.
        let inst = unit(GridGraph::lattice(&[4, 4]).graph);
        let cert = StructureBound.certify(&inst, 2).unwrap();
        assert_eq!(cert.value, 2.0);
        let opt = crate::oracle::exact_min_max_boundary(&inst, 2).unwrap();
        assert!(cert.value <= opt.max_boundary + 1e-9);
    }

    #[test]
    fn torus_bound_doubles_mixed_lines() {
        // 3×3 torus, k = 2 (n = 9, heaviest class 5 vertices, complement
        // 4): per axis min(3, 2·⌈5/3⌉, 2·⌈4/3⌉) = 3 → bound 3; the true
        // optimum at n = 9 is ≥ that (oracle-checked).
        let inst = unit(torus(&[3, 3]));
        let cert = StructureBound.certify(&inst, 2).unwrap();
        assert_eq!(cert.value, 3.0);
        match &cert.derivation {
            Derivation::Structure { family, .. } => assert_eq!(*family, "torus"),
            d => panic!("wrong derivation {d:?}"),
        }
        let opt = crate::oracle::exact_min_max_boundary(&inst, 2).unwrap();
        assert!(
            cert.value <= opt.max_boundary + 1e-9,
            "{} vs oracle {}",
            cert.value,
            opt.max_boundary
        );
    }

    #[test]
    fn trees_and_paths_get_the_cheapest_edge() {
        let inst = Instance::new(
            path(9),
            vec![2.0, 0.5, 1.0, 3.0, 1.0, 1.0, 9.0, 2.0],
            vec![1.0; 9],
        )
        .unwrap();
        let cert = StructureBound.certify(&inst, 2).unwrap();
        assert_eq!(cert.value, 0.5);
        let tree = unit(random_tree(12, 3, 7));
        let cert = StructureBound.certify(&tree, 3).unwrap();
        assert_eq!(cert.value, 1.0);
        assert!(matches!(
            cert.derivation,
            Derivation::Structure { family: "tree", .. }
        ));
    }

    #[test]
    fn irregular_grid_subsets_are_refused() {
        // A percolation blob carries grid geometry but is not a full box;
        // the projection argument must decline rather than misfire.
        let grid = GridGraph::percolation(&[6, 6], 0.6, 9);
        let n = grid.graph.num_vertices();
        let m = grid.graph.num_edges();
        if n < 2 || m == 0 {
            return; // degenerate draw — nothing to assert
        }
        let inst = Instance::from_grid(grid, vec![1.0; m], vec![1.0; n]).unwrap();
        let cert = StructureBound.certify(&inst, 2);
        if let Some(c) = &cert {
            // Only a genuinely full box may certify through the lattice
            // family (possible if percolation kept everything).
            assert!(matches!(
                c.derivation,
                Derivation::Structure {
                    family: "lattice" | "hypercube",
                    ..
                }
            ));
            assert_eq!(n, 36, "a non-full blob must be refused");
        }
    }

    #[test]
    fn structure_replay_matches() {
        for (inst, k) in [
            (unit(hypercube(4)), 2usize),
            (unit(GridGraph::lattice(&[5, 4]).graph), 2),
            (unit(torus(&[4, 4])), 3),
            (unit(path(10)), 2),
        ] {
            let Some(cert) = StructureBound.certify(&inst, k) else {
                panic!("certifier declined");
            };
            let replayed = cert.derivation.replay(&inst, k).unwrap();
            assert_eq!(replayed, cert.value);
        }
    }
}
