//! Boundary-degree packing and weight-based cut bounds.
//!
//! **Packing bound** (Träff–Wimmer style, arXiv:1410.0462). Fix a
//! strictly balanced `k`-coloring `χ` and a vertex `v`. The neighbors
//! that share `v`'s class have total weight at most `hi − w(v)` (the
//! class itself is capped at the upper envelope `hi`), so the incident
//! cost `χ` can *retain* (not cut) at `v` is at most the optimum of the
//! fractional knapsack
//!
//! ```text
//! max Σ c_e·x_e   s.t.  Σ w(u_e)·x_e ≤ hi − w(v),  0 ≤ x_e ≤ 1
//! ```
//!
//! over `v`'s incident edges `e = {v, u_e}` — solved exactly by the
//! greedy over costs sorted by `c_e / w(u_e)` (zero-weight neighbors are
//! free and always retained). Everything else is certified cut:
//! `Σ_v cut_v(χ) = 2·c(F)` and `‖∂χ⁻¹‖_∞ ≥ (2/k)·c(F)`, so
//!
//! ```text
//! OPT ≥ (1/k) · Σ_v max(0, τ(v) − knap_v)
//! ```
//!
//! with `τ(v) = c(δ(v))` the cost degree. The bound is vacuous when every
//! neighborhood fits under the envelope (sparse hosts at small `k`) and
//! kicks in exactly when weights crowd the window — the regime the
//! averaging bound cannot see.
//!
//! **Edge-packing refinement** ([`EdgePackingBound`]). A class retains
//! *whole edges*, never fractions of them, so the true per-vertex cap is
//! the 0/1 knapsack over the same items — always ≤ the fractional
//! optimum. [`EdgePackingBound`] solves that integral knapsack exactly
//! (budgeted branch-and-bound over the ratio-sorted items, with the
//! fractional relaxation as the pruning bound) and retains
//! `min(frac, int)` per vertex, so its masses dominate the fractional
//! ones *by construction* — pointwise and, summed in the same order,
//! in exact floating point. When a per-vertex node budget runs out the
//! vertex falls back to the fractional optimum: a truncated
//! *maximization* incumbent would under-state what a class can retain
//! and over-state the certified cut, which is the unsound direction.
//!
//! **Min-cut bound** (the classical weight-based cut bound; cf. the
//! Gutin–Yeo survey, arXiv:2104.05536). On a connected host with at
//! least two occupied classes, every occupied class is a proper
//! non-empty vertex set, so its boundary is a global edge cut:
//! `OPT ≥ λ(G, c)`. Computed by Stoer–Wagner (deterministic `O(n³)`,
//! size-capped), keeping one side of a minimum cut as the replayable
//! witness.

use mmb_graph::VertexId;

use crate::api::instance::Instance;
use crate::lower_bounds::{Certificate, Derivation, LowerBound, Window};

/// The per-vertex fractional-knapsack packing bound (see the
/// [module docs](self)).
#[derive(Clone, Copy, Debug, Default)]
pub struct PackingBound;

/// Default per-vertex node budget of the integral knapsack searches
/// (edge-packing certifier and the B&B engine's suffix bound).
pub(crate) const PACK_VERTEX_BUDGET: u64 = 50_000;

/// Exact 0/1 knapsack over ratio-sorted `(cost, weight)` items: the
/// maximum cost retainable within `cap`. Returns `None` when the node
/// budget runs out before the search is exhausted.
fn integral_retained(items: &[(f64, f64)], cap: f64, budget: &mut u64) -> Option<f64> {
    fn dfs(
        items: &[(f64, f64)],
        idx: usize,
        room: f64,
        value: f64,
        best: &mut f64,
        budget: &mut u64,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        // Fractional completion bound: items are ratio-sorted, so the
        // greedy prefix over the remaining items relaxes the 0/1 optimum.
        let mut bound = value;
        let mut r = room;
        for &(c, w) in &items[idx..] {
            if w == 0.0 || w <= r {
                bound += c;
                r -= w;
            } else {
                if r > 0.0 {
                    bound += c * (r / w);
                }
                break;
            }
        }
        if bound <= *best {
            return true;
        }
        if idx == items.len() {
            *best = value; // bound == value > best at a leaf
            return true;
        }
        let (c, w) = items[idx];
        if w <= room && !dfs(items, idx + 1, room - w, value + c, best, budget) {
            return false;
        }
        dfs(items, idx + 1, room, value, best, budget)
    }
    let mut best = 0.0;
    dfs(items, 0, cap, 0.0, &mut best, budget).then_some(best)
}

/// Per-vertex certified doubled-cut masses `max(0, τ(v) − knap_v − slack)`,
/// indexed by vertex id.
///
/// `knap_v` is the fractional knapsack optimum; with
/// `integral_budget = Some(b)` each vertex additionally solves the exact
/// 0/1 knapsack (≤ `b` search nodes) and retains `min(frac, int)` — so
/// the integral masses dominate the fractional ones pointwise by
/// construction, with the identical slack term (see the
/// [module docs](self) for the soundness of the exhaustion fallback).
pub(crate) fn vertex_masses(inst: &Instance, k: usize, integral_budget: Option<u64>) -> Vec<f64> {
    let win = Window::new(inst, k);
    let g = inst.graph();
    let (costs, weights) = (inst.costs(), inst.weights());
    let mut incident: Vec<(f64, f64)> = Vec::new();
    let mut masses = vec![0.0; inst.num_vertices()];
    for v in g.vertices() {
        let cap = win.hi - weights[v as usize];
        if cap < 0.0 {
            // A vertex heavier than the envelope cannot occur (hi ≥ ‖w‖∞
            // always); treat defensively as "everything retained".
            continue;
        }
        incident.clear();
        let mut tau = 0.0;
        for &(nb, e) in g.neighbors(v) {
            let c = costs[e as usize];
            tau += c;
            incident.push((c, weights[nb as usize]));
        }
        // Greedy fractional knapsack: free (zero-weight) neighbors first,
        // then best cost-per-weight. `total_cmp` keeps the order total on
        // any finite input.
        incident.sort_unstable_by(|a, b| {
            let ra = if a.1 == 0.0 { f64::INFINITY } else { a.0 / a.1 };
            let rb = if b.1 == 0.0 { f64::INFINITY } else { b.0 / b.1 };
            rb.total_cmp(&ra)
        });
        let mut room = cap;
        let mut retained = 0.0;
        for &(c, w) in &incident {
            if w == 0.0 || w <= room {
                retained += c;
                room -= w;
            } else if room > 0.0 {
                retained += c * (room / w);
                room = 0.0;
            } else {
                break;
            }
        }
        if let Some(per_vertex) = integral_budget {
            let mut budget = per_vertex;
            if let Some(int) = integral_retained(&incident, cap, &mut budget) {
                retained = int.min(retained);
            }
        }
        // Relative slack in the sound direction: the knapsack optimum is
        // only trusted up to fp rounding.
        let slack = 1e-9 * (1.0 + tau);
        masses[v as usize] = (tau - retained - slack).max(0.0);
    }
    masses
}

/// `Σ_v max(0, τ(v) − knap_v)` — the certified doubled cut mass.
fn packing_total(inst: &Instance, k: usize) -> f64 {
    vertex_masses(inst, k, None).iter().sum()
}

/// The integral-packing total with a per-vertex budget (the edge-packing
/// certifier's doubled cut mass; same summation order as
/// [`packing_total`], so dominance survives fp addition).
fn edge_packing_total(inst: &Instance, k: usize, vertex_budget: u64) -> f64 {
    vertex_masses(inst, k, Some(vertex_budget)).iter().sum()
}

impl LowerBound for PackingBound {
    fn name(&self) -> &'static str {
        "packing"
    }

    fn certify(&self, inst: &Instance, k: usize) -> Option<Certificate> {
        if k == 0 || inst.num_edges() == 0 {
            return None;
        }
        let total = packing_total(inst, k);
        Some(Certificate {
            certifier: self.name(),
            value: total / k as f64,
            derivation: Derivation::Packing {
                per_vertex_total: total,
            },
        })
    }
}

/// Replay a [`Derivation::Packing`]: recompute the per-vertex knapsacks
/// and cross-check the stored sum.
pub(crate) fn replay_packing(
    inst: &Instance,
    k: usize,
    per_vertex_total: f64,
) -> Result<f64, String> {
    if k == 0 || inst.num_edges() == 0 {
        return Err("packing bound does not apply (k = 0 or edgeless host)".into());
    }
    let fresh = packing_total(inst, k);
    if (fresh - per_vertex_total).abs() > 1e-9 * (1.0 + per_vertex_total.abs()) {
        return Err(format!(
            "per-vertex total drifted: {per_vertex_total} vs {fresh}"
        ));
    }
    Ok(fresh / k as f64)
}

/// The whole-edge (0/1 knapsack) refinement of [`PackingBound`] — see
/// the [module docs](self). Dominates the fractional bound by
/// construction.
#[derive(Clone, Copy, Debug)]
pub struct EdgePackingBound {
    /// Node budget of each per-vertex integral knapsack search; on
    /// exhaustion that vertex falls back to its fractional optimum
    /// (sound, merely weaker).
    pub vertex_budget: u64,
}

impl Default for EdgePackingBound {
    fn default() -> Self {
        EdgePackingBound {
            vertex_budget: PACK_VERTEX_BUDGET,
        }
    }
}

impl LowerBound for EdgePackingBound {
    fn name(&self) -> &'static str {
        "edge-packing"
    }

    fn certify(&self, inst: &Instance, k: usize) -> Option<Certificate> {
        if k == 0 || inst.num_edges() == 0 {
            return None;
        }
        let total = edge_packing_total(inst, k, self.vertex_budget);
        Some(Certificate {
            certifier: self.name(),
            value: total / k as f64,
            derivation: Derivation::EdgePacking {
                per_vertex_total: total,
                vertex_budget: self.vertex_budget,
            },
        })
    }
}

/// Replay a [`Derivation::EdgePacking`]: recompute the per-vertex
/// integral knapsacks with the stored budget and cross-check the sum.
pub(crate) fn replay_edge_packing(
    inst: &Instance,
    k: usize,
    per_vertex_total: f64,
    vertex_budget: u64,
) -> Result<f64, String> {
    if k == 0 || inst.num_edges() == 0 {
        return Err("edge-packing bound does not apply (k = 0 or edgeless host)".into());
    }
    let fresh = edge_packing_total(inst, k, vertex_budget);
    if (fresh - per_vertex_total).abs() > 1e-9 * (1.0 + per_vertex_total.abs()) {
        return Err(format!(
            "per-vertex total drifted: {per_vertex_total} vs {fresh}"
        ));
    }
    Ok(fresh / k as f64)
}

/// The global min-cut bound `OPT ≥ λ(G, c)` (see the [module docs](self)).
#[derive(Clone, Copy, Debug)]
pub struct MinCutBound {
    /// Refuse hosts with more vertices than this (Stoer–Wagner is cubic).
    pub max_vertices: usize,
}

impl Default for MinCutBound {
    fn default() -> Self {
        MinCutBound { max_vertices: 512 }
    }
}

/// Deterministic Stoer–Wagner on a dense cost matrix: the weighted
/// global minimum cut and one side attaining it. Requires `n ≥ 2`.
fn stoer_wagner(inst: &Instance) -> (f64, Vec<VertexId>) {
    let n = inst.num_vertices();
    let mut w = vec![vec![0.0f64; n]; n];
    for (e, &(u, v)) in inst.graph().edge_list().iter().enumerate() {
        w[u as usize][v as usize] += inst.costs()[e];
        w[v as usize][u as usize] += inst.costs()[e];
    }
    let mut groups: Vec<Vec<VertexId>> = (0..n).map(|v| vec![v as VertexId]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    let mut best_side: Vec<VertexId> = Vec::new();
    while active.len() > 1 {
        // One "minimum cut phase": grow A from the first active vertex by
        // most-tightly-connected selection (ties → smallest id, so the
        // whole computation is deterministic).
        let mut in_a = vec![false; n];
        let mut wsum = vec![0.0f64; n];
        let first = active[0];
        in_a[first] = true;
        for &v in &active {
            if v != first {
                wsum[v] = w[first][v];
            }
        }
        let mut prev = first;
        let mut last = first;
        for _ in 1..active.len() {
            let mut sel = usize::MAX;
            for &v in &active {
                if !in_a[v] && (sel == usize::MAX || wsum[v] > wsum[sel]) {
                    sel = v;
                }
            }
            prev = last;
            last = sel;
            in_a[sel] = true;
            for &v in &active {
                if !in_a[v] {
                    wsum[v] += w[sel][v];
                }
            }
        }
        // The cut of the phase separates `last`'s merged group from the
        // rest.
        if wsum[last] < best {
            best = wsum[last];
            best_side = groups[last].clone();
        }
        // Merge `last` into `prev`.
        for &v in &active {
            if v != last && v != prev {
                w[prev][v] += w[last][v];
                w[v][prev] = w[prev][v];
            }
        }
        let moved = std::mem::take(&mut groups[last]);
        groups[prev].extend(moved);
        active.retain(|&v| v != last);
    }
    best_side.sort_unstable();
    (best, best_side)
}

impl LowerBound for MinCutBound {
    fn name(&self) -> &'static str {
        "min-cut"
    }

    fn certify(&self, inst: &Instance, k: usize) -> Option<Certificate> {
        let n = inst.num_vertices();
        if k < 2 || n < 2 || n > self.max_vertices || inst.num_edges() == 0 {
            return None;
        }
        if !inst.graph().is_connected() {
            return None; // λ = 0 proves nothing
        }
        // The argument needs ≥ 2 occupied classes (each then proper).
        if Window::new(inst, k).min_occupied_classes(k) < 2 {
            return None;
        }
        let (cut_cost, side) = stoer_wagner(inst);
        Some(Certificate {
            certifier: self.name(),
            value: cut_cost,
            derivation: Derivation::MinCut { cut_cost, side },
        })
    }
}

/// Price the boundary of `side` directly from the edge list (shared with
/// the cut-pair certifier).
pub(crate) fn price_side(inst: &Instance, side: &[VertexId]) -> f64 {
    let mut inside = vec![false; inst.num_vertices()];
    for &v in side {
        inside[v as usize] = true;
    }
    let mut cut = 0.0;
    for (e, &(u, v)) in inst.graph().edge_list().iter().enumerate() {
        if inside[u as usize] != inside[v as usize] {
            cut += inst.costs()[e];
        }
    }
    cut
}

/// Replay a [`Derivation::MinCut`]: check the witness side is a proper
/// non-empty vertex set whose priced boundary matches, and that the
/// argument's preconditions hold.
pub(crate) fn replay_min_cut(
    inst: &Instance,
    k: usize,
    cut_cost: f64,
    side: &[VertexId],
) -> Result<f64, String> {
    let n = inst.num_vertices();
    if side.is_empty() || side.len() >= n {
        return Err(format!("witness side of size {} is not proper", side.len()));
    }
    if !inst.graph().is_connected() {
        return Err("min-cut bound requires a connected host".into());
    }
    if Window::new(inst, k).min_occupied_classes(k) < 2 {
        return Err("min-cut bound requires ≥ 2 occupied classes".into());
    }
    let priced = price_side(inst, side);
    if (priced - cut_cost).abs() > 1e-9 * (1.0 + cut_cost.abs()) {
        return Err(format!(
            "witness prices at {priced}, certificate says {cut_cost}"
        ));
    }
    // The witness only proves λ ≤ cut_cost; re-run the exact computation
    // so the replayed value is the bound itself.
    let (fresh, _) = stoer_wagner(inst);
    if (fresh - cut_cost).abs() > 1e-9 * (1.0 + cut_cost.abs()) {
        return Err(format!("min cut drifted: {cut_cost} vs {fresh}"));
    }
    Ok(fresh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::gen::misc::{complete, cycle, path};
    use mmb_graph::graph::graph_from_edges;

    fn unit(g: mmb_graph::Graph) -> Instance {
        let (n, m) = (g.num_vertices(), g.num_edges());
        Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap()
    }

    #[test]
    fn min_cut_of_a_cycle_is_two_cheapest_edges() {
        let g = cycle(6);
        let costs = vec![3.0, 1.0, 4.0, 1.5, 9.0, 2.0];
        let inst = Instance::new(g, costs, vec![1.0; 6]).unwrap();
        let cert = MinCutBound::default().certify(&inst, 2).unwrap();
        assert_eq!(cert.value, 2.5); // 1.0 + 1.5 (any two edges split a cycle)
        let replayed = cert.derivation.replay(&inst, 2).unwrap();
        assert_eq!(replayed, 2.5);
    }

    #[test]
    fn min_cut_of_a_path_is_the_cheapest_edge() {
        let inst =
            Instance::new(path(7), vec![2.0, 5.0, 0.5, 3.0, 1.0, 4.0], vec![1.0; 7]).unwrap();
        let cert = MinCutBound::default().certify(&inst, 2).unwrap();
        assert_eq!(cert.value, 0.5);
    }

    #[test]
    fn min_cut_of_a_grid_isolates_a_corner() {
        // Unit 4×4 lattice: the global min cut isolates one corner (2
        // edges) — weaker than the bisection width, but certified.
        let inst = unit(GridGraph::lattice(&[4, 4]).graph);
        let cert = MinCutBound::default().certify(&inst, 2).unwrap();
        assert_eq!(cert.value, 2.0);
        match &cert.derivation {
            Derivation::MinCut { side, .. } => {
                assert!(!side.is_empty() && side.len() < 16);
            }
            d => panic!("wrong derivation {d:?}"),
        }
    }

    #[test]
    fn min_cut_declines_when_it_must() {
        // Disconnected host.
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        assert!(MinCutBound::default().certify(&unit(g), 2).is_none());
        // k = 1 (the single class is everything: no proper subset).
        assert!(MinCutBound::default().certify(&unit(cycle(5)), 1).is_none());
        // Size cap.
        let capped = MinCutBound { max_vertices: 4 };
        assert!(capped.certify(&unit(cycle(6)), 2).is_none());
    }

    #[test]
    fn packing_fires_when_neighborhoods_crowd_the_window() {
        // K₄ with unit weights at k = 4: hi = 1 + 3/4, so a class holds
        // at most one extra ~unit of neighbor weight — each vertex must
        // cut ≥ 2 of its 3 incident edges (fractionally ≥ 2.25… the
        // knapsack retains 0.75 of one edge). Certified:
        // Σ_v (3 − 0.75)/4 = 4·2.25/4 = 2.25.
        let inst = unit(complete(4));
        let cert = PackingBound.certify(&inst, 4).unwrap();
        assert!(cert.value > 2.0, "value = {}", cert.value);
        // Sound against the oracle.
        let opt = crate::oracle::exact_min_max_boundary(&inst, 4).unwrap();
        assert!(cert.value <= opt.max_boundary + 1e-9);
        let replayed = cert.derivation.replay(&inst, 4).unwrap();
        assert!((replayed - cert.value).abs() < 1e-12);
    }

    #[test]
    fn packing_is_vacuous_on_roomy_windows() {
        // Unit path at k = 2: every neighborhood fits under the envelope.
        let cert = PackingBound.certify(&unit(path(8)), 2).unwrap();
        assert_eq!(cert.value, 0.0);
    }

    #[test]
    fn edge_packing_refines_the_fractional_bound_on_k4() {
        // K₄ unit at k = 4: cap = 0.75 per vertex, so a class retains
        // *no* whole unit-weight edge — the integral knapsack certifies
        // the full cost degree 3 per vertex (the fractional bound only
        // 2.25), i.e. the exact optimum 3 (each singleton class has
        // boundary 3).
        let inst = unit(complete(4));
        let frac = PackingBound.certify(&inst, 4).unwrap();
        let edge = EdgePackingBound::default().certify(&inst, 4).unwrap();
        assert!(edge.value > frac.value, "{} vs {}", edge.value, frac.value);
        assert!((edge.value - 3.0).abs() < 1e-6, "value = {}", edge.value);
        let opt = crate::oracle::exact_min_max_boundary(&inst, 4).unwrap();
        assert!(edge.value <= opt.max_boundary + 1e-9);
        let replayed = edge.derivation.replay(&inst, 4).unwrap();
        assert!((replayed - edge.value).abs() < 1e-12);
    }

    #[test]
    fn edge_packing_dominates_pointwise_and_in_total() {
        // The per-vertex masses must dominate the fractional ones *by
        // construction* (min(frac, int) retained, identical slack), on a
        // weighted instance with mixed degrees.
        let g = graph_from_edges(6, &[(0, 1), (0, 2), (0, 3), (1, 2), (3, 4), (4, 5), (2, 5)]);
        let costs = vec![2.0, 1.0, 3.0, 0.5, 1.5, 2.5, 1.0];
        let weights = vec![3.0, 1.0, 2.0, 1.0, 2.0, 3.0];
        let inst = Instance::new(g, costs, weights).unwrap();
        for k in [2usize, 3, 4] {
            let frac = vertex_masses(&inst, k, None);
            let int = vertex_masses(&inst, k, Some(PACK_VERTEX_BUDGET));
            for (v, (f, i)) in frac.iter().zip(&int).enumerate() {
                assert!(i >= f, "vertex {v} at k={k}: {i} < {f}");
            }
            let (tf, ti): (f64, f64) = (frac.iter().sum(), int.iter().sum());
            assert!(ti >= tf, "k={k}: total {ti} < {tf}");
        }
    }

    #[test]
    fn integral_knapsack_budget_exhaustion_falls_back_fractionally() {
        // A one-node budget cannot finish any search: every vertex falls
        // back to its fractional optimum and the two bounds coincide
        // bit-for-bit.
        let inst = unit(complete(4));
        let frac = PackingBound.certify(&inst, 4).unwrap();
        let starved = EdgePackingBound { vertex_budget: 1 }
            .certify(&inst, 4)
            .unwrap();
        assert_eq!(starved.value.to_bits(), frac.value.to_bits());
    }

    #[test]
    fn witness_tampering_is_caught() {
        let inst = unit(cycle(6));
        let cert = MinCutBound::default().certify(&inst, 2).unwrap();
        let Derivation::MinCut { cut_cost, .. } = cert.derivation else {
            panic!("wrong derivation");
        };
        assert_eq!(cut_cost, 2.0);
        // Swap in a side whose boundary prices at 4, not 2: caught.
        let tampered = Derivation::MinCut {
            cut_cost,
            side: vec![0, 2],
        };
        assert!(tampered.replay(&inst, 2).is_err());
        // An empty (non-proper) witness is caught too.
        let empty = Derivation::MinCut {
            cut_cost,
            side: vec![],
        };
        assert!(empty.replay(&inst, 2).is_err());
    }
}
