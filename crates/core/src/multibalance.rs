//! Multi-balanced colorings: Lemma 6 (min-average boundary) and
//! Proposition 7 (min-maximum boundary).
//!
//! * [`multibalance`] builds a coloring balanced with respect to **all**
//!   given measures by induction on their number: the base is the
//!   monochromatic coloring, and each step is one
//!   [`rebalance`](crate::rebalance::rebalance) run that
//!   adds balance in one more measure while degrading the others by at most
//!   a constant factor (Lemma 9).
//! * [`multibalance_minmax`] is Proposition 7: first balance the
//!   splitting-cost measure `π` together with the user measures (Lemma 6),
//!   then balance the *boundary cost* itself by modeling it as the vertex
//!   measure `Ψ(v) = c({uv ∈ E : χ(u) ≠ χ(v)})` and running one more
//!   rebalance, with the dynamic measure `Φ^{(r+1)}` controlling the
//!   χ-monochromatic boundary `∂′` along the move-forest (Claims 8–11).

use mmb_graph::workspace::Workspace;
use mmb_graph::{Coloring, Graph, VertexSet};
use mmb_splitters::Splitter;

use crate::pi::splitting_cost_measure_within;
use crate::rebalance::{rebalance_ws, RebalanceStats, ScratchDynamicMeasureFn};

/// Heavy-threshold coefficient for a rebalance over `r` measures: the
/// paper's `2^r` (capped to keep thresholds meaningful for large `r`).
pub fn heavy_factor(r: usize) -> f64 {
    2f64.powi(r.min(16) as i32)
}

/// Lemma 6: a `k`-coloring of `domain` balanced with respect to every
/// measure in `measures` (later measures are balanced first; all stay
/// balanced up to the lemma's constants).
pub fn multibalance<S: Splitter + ?Sized>(
    splitter: &S,
    k: usize,
    domain: &VertexSet,
    measures: &[&[f64]],
) -> Coloring {
    Workspace::with_local(|ws| multibalance_ws(splitter, k, domain, measures, ws))
}

/// [`multibalance`] against an explicit [`Workspace`] shared by every
/// [`rebalance_ws`] round.
pub fn multibalance_ws<S: Splitter + ?Sized>(
    splitter: &S,
    k: usize,
    domain: &VertexSet,
    measures: &[&[f64]],
    ws: &Workspace,
) -> Coloring {
    let n = domain.universe();
    let mut chi = Coloring::new_uncolored(n, k);
    for v in domain.iter() {
        chi.set(v, 0);
    }
    // Base case r = 0 is the monochromatic coloring; each iteration adds
    // balance in measures[j] while keeping measures[j+1..] balanced.
    for j in (0..measures.len()).rev() {
        let suffix = &measures[j..];
        let (next, _) = rebalance_ws(
            splitter,
            &chi,
            domain,
            suffix,
            heavy_factor(suffix.len()),
            None,
            ws,
        );
        chi = next;
    }
    chi
}

/// Output of Proposition 7.
#[derive(Clone, Debug)]
pub struct MinMaxBalanced {
    /// The final coloring (balanced in boundary cost, `π`, and all user
    /// measures).
    pub coloring: Coloring,
    /// The intermediate Lemma 6 coloring (before boundary balancing) — kept
    /// for the E3/E8 experiments.
    pub intermediate: Coloring,
    /// Stats of the final (boundary-balancing) rebalance.
    pub stats: RebalanceStats,
}

/// Proposition 7: a coloring balanced w.r.t. all `user_measures` whose
/// **maximum** boundary cost is `O_r(σ_p·(q·k^{−1/p}·‖c‖_p + Δ_c))`.
pub fn multibalance_minmax<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    splitter: &S,
    k: usize,
    domain: &VertexSet,
    user_measures: &[&[f64]],
    p: f64,
) -> MinMaxBalanced {
    // Φ^{(2)} := π, the splitting cost measure (Definition 10).
    let pi = splitting_cost_measure_within(g, costs, p, 1.0, domain);
    multibalance_minmax_with_pi(g, costs, splitter, k, domain, user_measures, &pi)
}

/// [`multibalance_minmax`] with the splitting-cost measure `π`
/// precomputed by the caller.
///
/// `π` depends only on `(G, c, p, domain)`, so a reusable
/// [`Solver`](crate::api::Solver) computes it once at build time and
/// amortizes it across solves; this entry point is what makes that
/// possible.
#[allow(clippy::too_many_arguments)] // the paper's procedure parameters plus the cached π
pub fn multibalance_minmax_with_pi<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    splitter: &S,
    k: usize,
    domain: &VertexSet,
    user_measures: &[&[f64]],
    pi: &[f64],
) -> MinMaxBalanced {
    Workspace::with_local(|ws| {
        multibalance_minmax_with_pi_ws(g, costs, splitter, k, domain, user_measures, pi, ws)
    })
}

/// [`multibalance_minmax_with_pi`] against an explicit [`Workspace`]:
/// `Ψ`, the monochromatic-edge marks and every per-`Move` dynamic measure
/// live in reusable scratch buffers (zero per-call allocation beyond the
/// colorings themselves).
#[allow(clippy::too_many_arguments)] // the paper's parameters plus π and the workspace
pub fn multibalance_minmax_with_pi_ws<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    splitter: &S,
    k: usize,
    domain: &VertexSet,
    user_measures: &[&[f64]],
    pi: &[f64],
    ws: &Workspace,
) -> MinMaxBalanced {
    let n = g.num_vertices();
    assert_eq!(costs.len(), g.num_edges(), "cost vector length mismatch");
    assert_eq!(pi.len(), n, "π measure length mismatch");

    // Lemma 6 coloring balanced w.r.t. [π, user measures…].
    let chi = {
        let mut ms: Vec<&[f64]> = vec![pi];
        ms.extend_from_slice(user_measures);
        multibalance_ws(splitter, k, domain, &ms, ws)
    };

    // Ψ(v) = cost of χ-bichromatic edges at v; E′ = monochromatic edges
    // (marked 1.0 in an edge-indexed scratch buffer).
    let mut psi = ws.measure(n);
    let mut mono = ws.measure(g.num_edges());
    for (e, &(u, v)) in g.edge_list().iter().enumerate() {
        if !domain.contains(u) || !domain.contains(v) {
            continue;
        }
        let (cu, cv) = (chi.get(u), chi.get(v));
        if cu == cv {
            mono.set(e as u32, 1.0);
        } else {
            psi.add(u, costs[e]);
            psi.add(v, costs[e]);
        }
    }
    let mono = &mono;

    // Dynamic measure Φ^{(r+1)}: at Move(i) time, the χ-monochromatic
    // boundary cost of Vin(i) attributed to its vertices:
    // Φ(v) = c(δ(v) ∩ δ(Vin(i)) ∩ E′) for v ∈ Vin(i), else 0.
    let mut hook = |_i: u32, vin: &VertexSet, m: &mut mmb_graph::ScratchMeasure<'_>| {
        for v in vin.iter() {
            for &(nb, e) in g.neighbors(v) {
                if mono.get(e) != 0.0 && !vin.contains(nb) {
                    m.add(v, costs[e as usize]);
                }
            }
        }
    };

    // Final rebalance: Φ^{(1)} = Ψ, Φ^{(2)} = π, then the user measures;
    // the dynamic measure is appended per Move. Heavy factor counts all
    // r + 1 measures.
    let measures: Vec<&[f64]> = {
        let mut ms: Vec<&[f64]> = vec![psi.as_slice(), pi];
        ms.extend_from_slice(user_measures);
        ms
    };
    let (coloring, stats) = rebalance_ws(
        splitter,
        &chi,
        domain,
        &measures,
        heavy_factor(measures.len() + 1),
        Some(&mut hook as &mut ScratchDynamicMeasureFn<'_>),
        ws,
    );
    MinMaxBalanced {
        coloring,
        intermediate: chi,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::measure::{norm_1, norm_inf};
    use mmb_splitters::grid::GridSplitter;

    #[test]
    fn multibalance_balances_all_measures() {
        let grid = GridGraph::lattice(&[16, 16]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let k = 8;
        let m1: Vec<f64> = (0..n).map(|v| 1.0 + (v % 5) as f64).collect();
        let m2: Vec<f64> = (0..n as u32)
            .map(|v| if grid.coord(v)[0] < 4 { 9.0 } else { 0.3 })
            .collect();
        let chi = multibalance(&sp, k, &domain, &[&m1, &m2]);
        assert!(chi.is_total());
        for (name, m) in [("m1", &m1), ("m2", &m2)] {
            let avg = norm_1(m) / k as f64;
            let cmax = norm_inf(&chi.class_measures(m));
            // Weak balance: O(avg + max) with the lemma's constants; allow
            // the documented 3·avg + 2^r·max envelope plus the Claim-3
            // constant for the earlier-balanced measure.
            let envelope = 12.0 * avg + 64.0 * norm_inf(m);
            assert!(cmax <= envelope, "{name}: {cmax} > {envelope}");
        }
    }

    #[test]
    fn minmax_bounds_boundary_cost() {
        let grid = GridGraph::lattice(&[20, 20]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let k = 8;
        let w: Vec<f64> = (0..n).map(|v| 1.0 + (v % 4) as f64).collect();
        let out = multibalance_minmax(&grid.graph, &costs, &sp, k, &domain, &[&w], 2.0);
        assert!(out.coloring.is_total());

        // The boundary-balancing step must not leave one class carrying
        // everything: compare max to avg boundary.
        let bc = out.coloring.boundary_costs(&grid.graph, &costs);
        let bmax = norm_inf(&bc);
        let bavg = norm_1(&bc) / k as f64;
        assert!(bmax > 0.0);
        assert!(
            bmax <= 6.0 * bavg + 1e-9,
            "boundary badly concentrated: max {bmax}, avg {bavg}"
        );

        // Weight balance is preserved.
        let wavg = norm_1(&w) / k as f64;
        let wmax_class = norm_inf(&out.coloring.class_measures(&w));
        assert!(wmax_class <= 12.0 * wavg + 64.0 * norm_inf(&w));
    }

    #[test]
    fn minmax_beats_intermediate_on_max_boundary_concentration() {
        // The final rebalance targets ‖∂χ⁻¹‖∞; it should never make the
        // max/avg concentration dramatically worse than the intermediate's.
        let grid = GridGraph::lattice(&[16, 16]);
        let n = grid.graph.num_vertices();
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| 1.0 + ((e * 13) % 7) as f64)
            .collect();
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let w = vec![1.0; n];
        let out = multibalance_minmax(&grid.graph, &costs, &sp, 16, &domain, &[&w], 2.0);
        let final_max = out.coloring.max_boundary_cost(&grid.graph, &costs);
        let inter_max = out.intermediate.max_boundary_cost(&grid.graph, &costs);
        assert!(
            final_max <= 2.0 * inter_max + 1e-9,
            "boundary balancing regressed: {inter_max} -> {final_max}"
        );
    }

    #[test]
    fn single_color_is_trivial() {
        let grid = GridGraph::lattice(&[4, 4]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let w = vec![1.0; n];
        let out = multibalance_minmax(&grid.graph, &costs, &sp, 1, &domain, &[&w], 2.0);
        assert!(out.coloring.is_total());
        assert_eq!(out.coloring.max_boundary_cost(&grid.graph, &costs), 0.0);
    }
}
