//! The rebalancing algorithm of Lemma 9.
//!
//! Input: a `k`-coloring `χ` and measures `Φ^{(1)} = Ψ, Φ^{(2)}, …, Φ^{(r)}`
//! such that `χ` is (weakly) balanced with respect to `Φ^{(2)}..Φ^{(r)}`.
//! Output: a coloring `χ̂` that is additionally Ψ-balanced, with
//!
//! * `‖Ψχ̂⁻¹‖_∞ = O_r(‖Ψ‖_avg + ‖Ψ‖_∞)`,
//! * `‖Φ^{(j)}χ̂⁻¹‖_∞ = O_r(‖Φ^{(j)}χ⁻¹‖_∞ + ‖Φ^{(j)}‖_∞)` for `j ≥ 2`,
//! * average boundary cost increased by `O_r(q·k^{−1/p}·σ_p·‖c‖_p)`.
//!
//! The algorithm maintains *tentative* color classes `tent(i)`, a partition
//! of the colors into `Light / Medium / Heavy` by Ψ-weight and into
//! `Untouched / Pending / Finished` by processing state, and repeatedly
//! applies the `Move` procedure: a pending heavy color donates a splitting
//! set of weight `≈ ‖Ψ‖_avg` to its final class and 2-colors the remainder
//! (Lemma 8) into the incoming sets `Vin(x₁), Vin(x₂)` of two light colors.
//! The induced binary forest `F` has depth `O(log k)` (Claim 5), giving the
//! `O(t(|G|)·log k)` running time of Theorem 4.

use mmb_graph::measure::{set_max, set_sum};
use mmb_graph::workspace::{ScratchMeasure, Workspace};
use mmb_graph::{Coloring, VertexId, VertexSet};
use mmb_splitters::Splitter;

use crate::two_color::two_color;

/// Hook producing the *dynamic* measure `Φ^{(r+1)}` of Proposition 7 at the
/// moment `Move(i)` fires: given the color `i` and its incoming set
/// `Vin(i)`, return a dense measure to include in the Lemma 8 call for
/// `Vout(i)`.
pub type DynamicMeasureFn<'a> = dyn FnMut(u32, &VertexSet) -> Vec<f64> + 'a;

/// Workspace-backed variant of [`DynamicMeasureFn`]: the hook *fills* a
/// zeroed scratch measure instead of allocating a dense vector per `Move`
/// — the hot-path shape used by [`rebalance_ws`].
pub type ScratchDynamicMeasureFn<'a> = dyn FnMut(u32, &VertexSet, &mut ScratchMeasure<'_>) + 'a;

/// Diagnostics of a rebalancing run.
#[derive(Clone, Debug, Default)]
pub struct RebalanceStats {
    /// Number of `Move` invocations that split a heavy color.
    pub moves: u64,
    /// Arcs `(parent color, child color)` of the induced forest `F`.
    pub forest_arcs: Vec<(u32, u32)>,
    /// Depth of the deepest forest component (paper: ≤ log₂(max class / avg)).
    pub forest_depth: u32,
}

/// Lemma 9: rebalance `chi` (total on `domain`) with respect to
/// `measures[0] = Ψ`, preserving the balance of `measures[1..]` up to
/// constants.
///
/// `heavy_factor` is the paper's `2^r` coefficient in the Heavy threshold
/// `3·‖Ψ‖_avg + 2^r·‖Ψ‖_∞`; [`crate::pipeline::PipelineConfig`] sets it to
/// `2^r` by default.
///
/// `dynamic` optionally appends a Move-time measure to each Lemma 8 call
/// (Proposition 7's `Φ^{(r+1)}`).
pub fn rebalance<S: Splitter + ?Sized>(
    splitter: &S,
    chi: &Coloring,
    domain: &VertexSet,
    measures: &[&[f64]],
    heavy_factor: f64,
    mut dynamic: Option<&mut DynamicMeasureFn<'_>>,
) -> (Coloring, RebalanceStats) {
    // Adapt the legacy Vec-returning hook onto the scratch-filling shape;
    // the dense views are identical, so so are the results. This compat
    // path pays the hook's original O(n) allocation *plus* one O(n) copy
    // per Move — fine for its remaining users (tests, external callers of
    // the legacy signature); hot-path callers use `rebalance_ws` with a
    // scratch-filling hook directly.
    let mut adapted = dynamic.as_mut().map(|f| {
        move |i: u32, vin: &VertexSet, sm: &mut ScratchMeasure<'_>| {
            for (v, &x) in f(i, vin).iter().enumerate() {
                if x != 0.0 {
                    sm.set(v as VertexId, x);
                }
            }
        }
    });
    Workspace::with_local(|ws| {
        rebalance_ws(
            splitter,
            chi,
            domain,
            measures,
            heavy_factor,
            adapted
                .as_mut()
                .map(|f| f as &mut ScratchDynamicMeasureFn<'_>),
            ws,
        )
    })
}

/// [`rebalance`] against an explicit [`Workspace`], with the dynamic
/// measure written into a reusable scratch buffer per `Move` instead of a
/// fresh `O(n)` vector.
pub fn rebalance_ws<S: Splitter + ?Sized>(
    splitter: &S,
    chi: &Coloring,
    domain: &VertexSet,
    measures: &[&[f64]],
    heavy_factor: f64,
    mut dynamic: Option<&mut ScratchDynamicMeasureFn<'_>>,
    ws: &Workspace,
) -> (Coloring, RebalanceStats) {
    assert!(!measures.is_empty(), "need at least the measure to balance");
    let k = chi.k();
    let n = chi.num_vertices();
    let psi = measures[0];
    let mut stats = RebalanceStats::default();

    let total = set_sum(psi, domain);
    if total <= 0.0 || k == 1 {
        // Every coloring is Ψ-balanced; nothing to do.
        return (chi.restrict_to(domain), stats);
    }
    let avg = total / k as f64;
    let psi_max = set_max(psi, domain);
    let heavy_threshold = 3.0 * avg + heavy_factor * psi_max;

    // Tentative classes (a partition of `domain` at all times).
    let mut tent: Vec<Vec<VertexId>> = {
        let mut t = vec![Vec::new(); k];
        for v in domain.iter() {
            let c = chi.get(v).expect("chi must be total on the domain");
            t[c as usize].push(v);
        }
        t
    };
    let mut tent_w: Vec<f64> = tent
        .iter()
        .map(|cls| cls.iter().map(|&v| psi[v as usize]).sum())
        .collect();

    // Color-state bookkeeping. Light colors are always untouched, so a
    // simple pop stack never yields stale entries.
    let mut pending: Vec<u32> = (0..k as u32)
        .filter(|&i| tent_w[i as usize] >= heavy_threshold)
        .collect();
    let mut light: Vec<u32> = (0..k as u32)
        .filter(|&i| tent_w[i as usize] < avg)
        .collect();
    let mut is_pending_or_finished = vec![false; k];
    for &i in &pending {
        is_pending_or_finished[i as usize] = true;
    }
    // Forest bookkeeping: Vin per color and the depth of each color's node.
    let mut vin: Vec<VertexSet> = vec![VertexSet::empty(n); k];
    let mut depth = vec![0u32; k];

    let mut chi_hat = Coloring::new_uncolored(n, k);
    let finish = |i: u32, members: &[VertexId], chi_hat: &mut Coloring| {
        for &v in members {
            chi_hat.set(v, i);
        }
    };

    while let Some(i) = pending.pop() {
        let iu = i as usize;
        if tent_w[iu] < heavy_threshold {
            // Medium (or light-ish): freeze the tentative class.
            finish(i, &tent[iu], &mut chi_hat);
            continue;
        }
        // Heavy: Move(i). Claim 1 guarantees two light colors exist; if the
        // caller runs with aggressive (non-paper) constants and the pool is
        // exhausted, freezing `i` keeps the algorithm total (strictness is
        // restored downstream by BinPack2).
        if light.len() < 2 {
            finish(i, &tent[iu], &mut chi_hat);
            continue;
        }
        let x1 = light.pop().expect("light.len() >= 2 checked above");
        let x2 = light.pop().expect("light.len() >= 2 checked above");
        stats.moves += 1;

        let x_members = std::mem::take(&mut tent[iu]);
        let x_set = VertexSet::from_iter(n, x_members.iter().copied());
        // Splitting set with Ψ(U) ∈ [avg, avg + ‖Ψ‖∞] (step 3 of Move).
        let u = splitter.split(&x_set, psi, avg + psi_max / 2.0);
        let w_out = x_set.difference(&u);

        // 2-color Vout(i) by Lemma 8, balancing all measures plus the
        // optional dynamic measure (Proposition 7's Φ^{(r+1)}), filled
        // into a scratch buffer that is re-zeroed after the call.
        let dyn_measure = dynamic.as_mut().map(|f| {
            let mut sm = ws.measure(n);
            f(i, &vin[iu], &mut sm);
            sm
        });
        let halves = {
            let mut ms: Vec<&[f64]> = measures.to_vec();
            if let Some(dm) = dyn_measure.as_ref() {
                ms.push(dm.as_slice());
            }
            two_color(splitter, &w_out, &ms)
        };

        // Finish color i with the splitting set.
        let u_members: Vec<VertexId> = u.iter().collect();
        tent_w[iu] = set_sum(psi, &u);
        finish(i, &u_members, &mut chi_hat);
        tent[iu] = u_members;

        // Hand the halves to the two light colors.
        for (x, half) in [(x1, halves.class1), (x2, halves.class2)] {
            let xu = x as usize;
            debug_assert!(!is_pending_or_finished[xu], "light color was not untouched");
            is_pending_or_finished[xu] = true;
            depth[x as usize] = depth[iu] + 1;
            stats.forest_arcs.push((i, x));
            stats.forest_depth = stats.forest_depth.max(depth[x as usize]);
            for v in half.iter() {
                tent[xu].push(v);
                tent_w[xu] += psi[v as usize];
            }
            vin[xu] = half;
            pending.push(x);
        }
    }

    // Untouched colors keep their original class.
    for (i, members) in tent.iter().enumerate() {
        if !is_pending_or_finished[i] {
            finish(i as u32, members, &mut chi_hat);
        }
    }
    debug_assert_eq!(
        chi_hat.num_colored(),
        domain.len(),
        "classes must partition the domain"
    );
    (chi_hat, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::measure::norm_inf;
    use mmb_splitters::grid::GridSplitter;

    fn grid_setup(side: usize) -> (GridGraph, Vec<f64>) {
        let grid = GridGraph::lattice(&[side, side]);
        let costs = vec![1.0; grid.graph.num_edges()];
        (grid, costs)
    }

    #[test]
    fn balances_from_monochromatic() {
        let (grid, costs) = grid_setup(12);
        let n = grid.graph.num_vertices();
        let sp = GridSplitter::new(&grid, &costs);
        let k = 8;
        let chi = Coloring::monochromatic(n, k);
        let domain = VertexSet::full(n);
        let psi: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
        let (chi_hat, stats) = rebalance(&sp, &chi, &domain, &[&psi], 2.0, None);
        assert!(chi_hat.is_total());
        let avg: f64 = psi.iter().sum::<f64>() / k as f64;
        let maxw = norm_inf(&psi);
        let cm = chi_hat.class_measures(&psi);
        // Heavy threshold is 3·avg + 2·max; every class must end below it.
        for (i, &c) in cm.iter().enumerate() {
            assert!(c < 3.0 * avg + 2.0 * maxw + 1e-9, "class {i} weight {c}");
        }
        assert!(stats.moves >= 1);
        // Forest depth is O(log k) — here the single heavy root spawns a
        // binary tree over at most k colors.
        assert!(stats.forest_depth as usize <= 2 * (k.ilog2() as usize + 1));
    }

    #[test]
    fn preserves_secondary_measure_balance() {
        let (grid, costs) = grid_setup(12);
        let n = grid.graph.num_vertices();
        let sp = GridSplitter::new(&grid, &costs);
        let k = 6;
        let domain = VertexSet::full(n);
        // Secondary measure: already balanced by a row-stripe coloring.
        let phi2: Vec<f64> = vec![1.0; n];
        let chi = Coloring::from_fn(n, k, |v| {
            let row = grid.coord(v)[1] as usize;
            (row * k / 12) as u32
        });
        let before2 = norm_inf(&chi.class_measures(&phi2));
        // Primary measure: concentrated on one stripe, so chi is very
        // unbalanced in psi.
        let psi: Vec<f64> = (0..n as u32)
            .map(|v| if grid.coord(v)[1] < 2 { 10.0 } else { 0.1 })
            .collect();
        let (chi_hat, _) = rebalance(&sp, &chi, &domain, &[&psi, &phi2], 4.0, None);
        assert!(chi_hat.is_total());
        let psi_avg: f64 = psi.iter().sum::<f64>() / k as f64;
        let after1 = norm_inf(&chi_hat.class_measures(&psi));
        assert!(
            after1 <= 3.0 * psi_avg + 4.0 * norm_inf(&psi) + 1e-9,
            "psi not balanced: {after1} vs avg {psi_avg}"
        );
        // Claim 3: the secondary measure degrades by at most 4× plus O(max).
        let after2 = norm_inf(&chi_hat.class_measures(&phi2));
        assert!(
            after2 <= 4.0 * before2 + 8.0 * norm_inf(&phi2) + 1e-9,
            "phi2 blew up: {before2} -> {after2}"
        );
    }

    #[test]
    fn zero_weight_measure_is_noop() {
        let (grid, costs) = grid_setup(4);
        let n = grid.graph.num_vertices();
        let sp = GridSplitter::new(&grid, &costs);
        let chi = Coloring::from_fn(n, 3, |v| v % 3);
        let domain = VertexSet::full(n);
        let psi = vec![0.0; n];
        let (chi_hat, stats) = rebalance(&sp, &chi, &domain, &[&psi], 2.0, None);
        assert_eq!(stats.moves, 0);
        assert_eq!(chi_hat, chi);
    }

    #[test]
    fn dynamic_hook_is_called_per_move() {
        let (grid, costs) = grid_setup(10);
        let n = grid.graph.num_vertices();
        let sp = GridSplitter::new(&grid, &costs);
        let k = 5;
        let chi = Coloring::monochromatic(n, k);
        let domain = VertexSet::full(n);
        let psi = vec![1.0; n];
        let mut calls = 0u32;
        let mut hook = |_i: u32, _vin: &VertexSet| {
            calls += 1;
            vec![0.0; n]
        };
        let (_, stats) = rebalance(&sp, &chi, &domain, &[&psi], 2.0, Some(&mut hook));
        assert_eq!(calls as u64, stats.moves);
        assert!(calls >= 1);
    }

    #[test]
    fn partial_domain() {
        let (grid, costs) = grid_setup(8);
        let n = grid.graph.num_vertices();
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::from_iter(n, (0..n as u32).filter(|v| v % 5 != 0));
        let mut chi = Coloring::new_uncolored(n, 4);
        for v in domain.iter() {
            chi.set(v, 0);
        }
        let psi = vec![1.0; n];
        let (chi_hat, _) = rebalance(&sp, &chi, &domain, &[&psi], 2.0, None);
        assert_eq!(chi_hat.num_colored(), domain.len());
        assert!(chi_hat.is_total_on(&domain));
        // Classes stay within the domain.
        assert!(chi_hat.domain().is_subset_of(&domain));
    }
}
