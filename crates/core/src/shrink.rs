//! The shrinking procedure (Section 5) and the shrink-and-conquer recursion
//! of Proposition 11.
//!
//! Given a weakly balanced coloring `χ` of `W` (`‖wχ⁻¹‖_∞ ≤ M·Ψ*` with
//! `Ψ* = w(W)/k`), [`shrink`] produces two colorings:
//!
//! * `χ₀` on `W₀` — **almost strictly balanced**, every class of weight
//!   `≈ ε·Ψ*` (one *rich* extraction per class, Corollary 18), and
//! * `χ₁` on `W₁ = W \ W₀` — still weakly balanced, with the splitting-cost
//!   measure `π`, the induced degree (≈ subgraph size) and the boundary
//!   cost of every class *geometrically reduced* (Definition 13 b/c).
//!
//! The extraction machinery is Appendix A.1: [`iterative_partition`]
//! (Lemma 28) carves a class into pieces of prescribed `Ψ`-weight with one
//! splitting set each; [`extract_lean`] picks the piece that is cheapest
//! across all protected measures (pigeonhole, Lemma 29 / Corollaries 16–17);
//! [`extract_rich`] unions the per-measure heaviest pieces and tops up
//! (Lemma 30 / Corollary 18).
//!
//! [`almost_strict`] (Proposition 11) recurses: shrink, recursively fix
//! `χ₁`, then re-merge with the conquer bin packing of Lemma 15
//! ([`crate::conquer::binpack1`]). Costs do not accumulate across levels
//! because each level's `χ₁` carries geometrically smaller costs.
//!
//! **Constants.** The paper sets `M = ε⁻⁵` and triggers its base case at
//! `‖w‖_∞ > ε⁵·Ψ*`; these give astronomically large worst-case constants.
//! The code keeps the algorithm *structure* and exposes
//! (`ε`, `M`, base-case ratio) through [`ShrinkParams`] with practical
//! defaults; strictness of the final output never depends on them (BinPack2
//! enforces eq. (1) exactly), only the boundary-cost constant does — which
//! experiment E8 measures. Deviations are flagged with `// paper:` comments.

use mmb_graph::cut::boundary_measure_ws;
use mmb_graph::measure::{induced_degree_measure_ws, set_max, set_sum};
use mmb_graph::workspace::Workspace;
use mmb_graph::{Coloring, Graph, VertexSet};
use mmb_splitters::Splitter;

use crate::conquer::binpack1;
use crate::pi::splitting_cost_measure_within_ws;

/// Tunables of the shrinking procedure.
#[derive(Clone, Copy, Debug)]
pub struct ShrinkParams {
    /// The layer fraction `ε` (paper: "sufficiently small"; default ¼).
    pub epsilon: f64,
    /// Weak-balance envelope `M` (paper: `ε⁻⁵`; default 16 — the input
    /// colorings from Proposition 7 sit well below it).
    pub weak_factor: f64,
    /// Recursion safety valve; the weight argument guarantees termination
    /// long before this.
    pub max_depth: usize,
}

impl Default for ShrinkParams {
    fn default() -> Self {
        Self {
            epsilon: 0.25,
            weak_factor: 16.0,
            max_depth: 512,
        }
    }
}

/// Lemma 28 (`IterativePartition`): partition `U` into pieces of `Ψ`-weight
/// in `[ψ*, ψ* + ‖Ψ|_U‖_∞]` (final remainder up to `3ψ*`), each carved with
/// one splitting set.
pub fn iterative_partition<S: Splitter + ?Sized>(
    splitter: &S,
    u_set: &VertexSet,
    psi: &[f64],
    psi_part: f64,
) -> Vec<VertexSet> {
    let max = set_max(psi, u_set);
    // Pieces below the max weight are unreachable; widen defensively.
    let psi_part = psi_part.max(max);
    let mut x = u_set.clone();
    let mut parts = Vec::new();
    while set_sum(psi, &x) > 3.0 * psi_part && x.len() > 1 {
        let xi = splitter.split(&x, psi, psi_part + set_max(psi, &x) / 2.0);
        if xi.is_empty() || xi.len() >= x.len() {
            break; // defensive: a degenerate splitter must not loop us
        }
        x.difference_with(&xi);
        parts.push(xi);
    }
    if !x.is_empty() {
        parts.push(x);
    }
    parts
}

/// Corollaries 16/17 (`extract_lean`): a piece `X ⊆ U` with
/// `Ψ(X) ∈ [lo, 3·lo]`-ish that is simultaneously cheap in every protected
/// measure (achieved by minimizing the summed measure fractions over a
/// Lemma 28 partition — the pigeonhole of Lemma 29).
pub fn extract_lean<S: Splitter + ?Sized>(
    splitter: &S,
    u_set: &VertexSet,
    psi: &[f64],
    protected: &[&[f64]],
    lo: f64,
) -> VertexSet {
    let parts = iterative_partition(splitter, u_set, psi, lo);
    let totals: Vec<f64> = protected
        .iter()
        .map(|m| set_sum(m, u_set).max(1e-300))
        .collect();
    parts
        .into_iter()
        .min_by(|a, b| {
            let score = |x: &VertexSet| {
                protected
                    .iter()
                    .zip(&totals)
                    .map(|(m, t)| set_sum(m, x) / t)
                    .sum::<f64>()
            };
            // total_cmp; min_by is first-wins, so ties keep the earliest
            // part in `parts`' deterministic construction order.
            score(a).total_cmp(&score(b))
        })
        .unwrap_or_else(|| VertexSet::empty(u_set.universe()))
}

/// Corollary 18 / Lemma 30 (`extract_rich`): a piece `X ⊆ U` with
/// `Ψ(X) ≈ γ·Ψ(U)` containing, for every protected measure, at least an
/// `Ω(γ/r)` fraction of `U`'s measure — so the *remainder* `U \ X` loses a
/// guaranteed fraction of every cost.
pub fn extract_rich<S: Splitter + ?Sized>(
    splitter: &S,
    u_set: &VertexSet,
    psi: &[f64],
    protected: &[&[f64]],
    gamma: f64,
) -> VertexSet {
    let total = set_sum(psi, u_set);
    let r = protected.len().max(1);
    let target = gamma * total;
    let parts = iterative_partition(splitter, u_set, psi, target / (3.0 * r as f64));
    // Union of the per-measure argmax parts.
    let mut x = VertexSet::empty(u_set.universe());
    for m in protected {
        if let Some(best) = parts
            .iter()
            .max_by(|a, b| set_sum(m, a).total_cmp(&set_sum(m, b)))
        {
            x.union_with(best);
        }
    }
    // Top up to the target Ψ-weight from the remainder.
    let have = set_sum(psi, &x);
    if have < target {
        let remainder = u_set.difference(&x);
        let max = set_max(psi, &remainder);
        let s = splitter.split(&remainder, psi, (target - have) + max / 2.0);
        x.union_with(&s);
    }
    x
}

/// Result of one shrinking step.
#[derive(Clone, Debug)]
pub struct ShrinkOutput {
    /// Almost strictly balanced coloring of `w0` (classes ≈ `ε·Ψ*`).
    pub chi0: Coloring,
    /// Its domain `W₀`.
    pub w0: VertexSet,
    /// Weakly balanced coloring of the remainder `W₁`.
    pub chi1: Coloring,
    /// Its domain `W₁ = W \ W₀`.
    pub w1: VertexSet,
}

/// The `Shrink` procedure (Lemma 14): `CutDown` overweight classes into a
/// buffer, `AddTo` underweight classes from the buffer (or from wealthy
/// donors, Corollary 17), `ReduceBuffer` leftovers onto light classes, then
/// extract one rich layer `X_i` per class (Corollary 18) to form `χ₀`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's procedure parameters
pub fn shrink<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    splitter: &S,
    chi: &Coloring,
    domain: &VertexSet,
    weights: &[f64],
    p: f64,
    params: &ShrinkParams,
) -> ShrinkOutput {
    Workspace::with_local(|ws| shrink_ws(g, costs, splitter, chi, domain, weights, p, params, ws))
}

/// [`shrink`] against an explicit [`Workspace`]: every dense measure this
/// level materializes (`π`, `deg_W`, per-class boundary measures) comes
/// from the reusable scratch pool, so one shrink level costs
/// `O(vol(W) + k)` in buffer work instead of `O(n)` per measure.
#[allow(clippy::too_many_arguments)] // the paper's parameters plus the workspace
pub fn shrink_ws<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    splitter: &S,
    chi: &Coloring,
    domain: &VertexSet,
    weights: &[f64],
    p: f64,
    params: &ShrinkParams,
    ws: &Workspace,
) -> ShrinkOutput {
    let n = g.num_vertices();
    let k = chi.k();
    let eps = params.epsilon;
    let m_cap = params.weak_factor;
    let total = set_sum(weights, domain);
    let psi_star = total / k as f64;
    assert!(psi_star > 0.0, "shrink requires positive total weight");

    // Protected measures that must shrink geometrically: π and the induced
    // degree (Definition 13 uses deg_W to control |G[W₁]|); the per-class
    // boundary measure is added per extraction call. All three live in
    // reusable workspace buffers.
    let pi = splitting_cost_measure_within_ws(g, costs, p, 1.0, domain, ws);
    let pi = pi.as_slice();
    let deg_w = induced_degree_measure_ws(g, domain, ws);
    let deg_w = deg_w.as_slice();

    let mut classes: Vec<VertexSet> = chi.class_sets_within(domain);
    let class_w = |c: &VertexSet| set_sum(weights, c);
    let mut buffer: Vec<VertexSet> = Vec::new();

    // CutDown: classes above M/2·Ψ* shed lean pieces of weight ≈ ε·Ψ*.
    while let Some(i) = (0..k).find(|&i| class_w(&classes[i]) > m_cap / 2.0 * psi_star) {
        let bm = boundary_measure_ws(g, costs, &classes[i], ws);
        let protected: [&[f64]; 3] = [pi, deg_w, bm.as_slice()];
        let x = extract_lean(splitter, &classes[i], weights, &protected, eps * psi_star);
        if x.is_empty() || x.len() >= classes[i].len() {
            break; // defensive: no usable piece
        }
        classes[i].difference_with(&x);
        buffer.push(x);
    }

    // AddTo: classes below ε·Ψ* receive a buffered piece, or a lean piece
    // from the currently heaviest donor (Corollary 17 path).
    for i in 0..k {
        if class_w(&classes[i]) >= eps * psi_star {
            continue;
        }
        let x = if let Some(x) = buffer.pop() {
            x
        } else {
            let donor = (0..k)
                .filter(|&j| j != i && class_w(&classes[j]) >= psi_star / 2.0)
                // total_cmp + index tie-break: max_by is last-wins, so
                // `then(b.cmp(&a))` pins ties to the lowest donor index.
                .max_by(|&a, &b| {
                    class_w(&classes[a])
                        .total_cmp(&class_w(&classes[b]))
                        .then(b.cmp(&a))
                });
            let Some(j) = donor else { continue };
            let bm = boundary_measure_ws(g, costs, &classes[j], ws);
            let protected: [&[f64]; 3] = [pi, deg_w, bm.as_slice()];
            let x = extract_lean(splitter, &classes[j], weights, &protected, eps * psi_star);
            if x.is_empty() || x.len() >= classes[j].len() {
                continue;
            }
            classes[j].difference_with(&x);
            x
        };
        classes[i].union_with(&x);
    }

    // ReduceBuffer: park leftovers on the lightest classes.
    while let Some(x) = buffer.pop() {
        // min_by is first-wins on ties → lowest-indexed lightest class.
        let i = (0..k)
            .min_by(|&a, &b| class_w(&classes[a]).total_cmp(&class_w(&classes[b])))
            .expect("k >= 1 classes");
        classes[i].union_with(&x);
    }

    // Rich layer extraction: X_i per class forms χ₀; remainders form χ₁.
    let mut chi0 = Coloring::new_uncolored(n, k);
    let mut chi1 = Coloring::new_uncolored(n, k);
    let mut w0 = VertexSet::empty(n);
    for (i, class) in classes.iter().enumerate() {
        let cw = class_w(class);
        if cw <= 0.0 || class.is_empty() {
            continue;
        }
        let gamma = (eps * psi_star / cw).min(1.0);
        let bm = boundary_measure_ws(g, costs, class, ws);
        let protected: [&[f64]; 3] = [pi, deg_w, bm.as_slice()];
        let x = if gamma >= 1.0 {
            class.clone()
        } else {
            extract_rich(splitter, class, weights, &protected, gamma)
        };
        for v in x.iter() {
            chi0.set(v, i as u32);
            w0.insert(v);
        }
        for v in class.difference(&x).iter() {
            chi1.set(v, i as u32);
        }
    }
    let w1 = domain.difference(&w0);
    ShrinkOutput { chi0, w0, chi1, w1 }
}

/// Proposition 11: transform a weakly `w`-balanced coloring of `domain`
/// into an **almost strictly balanced** one (every class within `2·‖w‖_∞`
/// of the average) without blowing up boundary or splitting costs.
#[allow(clippy::too_many_arguments)] // mirrors the paper's procedure parameters
pub fn almost_strict<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    splitter: &S,
    chi: &Coloring,
    domain: &VertexSet,
    weights: &[f64],
    p: f64,
    params: &ShrinkParams,
) -> Coloring {
    Workspace::with_local(|ws| {
        almost_strict_ws(g, costs, splitter, chi, domain, weights, p, params, ws)
    })
}

/// [`almost_strict`] against an explicit [`Workspace`], shared by **every
/// recursion level**: the shrink-and-conquer descent re-uses the same few
/// scratch buffers from the root call down to the base case, which is what
/// makes a level cost `O(vol(W))` instead of `O(n)`.
#[allow(clippy::too_many_arguments)] // the paper's parameters plus the workspace
pub fn almost_strict_ws<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    splitter: &S,
    chi: &Coloring,
    domain: &VertexSet,
    weights: &[f64],
    p: f64,
    params: &ShrinkParams,
    ws: &Workspace,
) -> Coloring {
    almost_strict_rec(g, costs, splitter, chi, domain, weights, p, params, 0, ws)
}

#[allow(clippy::too_many_arguments)]
fn almost_strict_rec<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    splitter: &S,
    chi: &Coloring,
    domain: &VertexSet,
    weights: &[f64],
    p: f64,
    params: &ShrinkParams,
    depth: usize,
    ws: &Workspace,
) -> Coloring {
    let k = chi.k();
    let total = set_sum(weights, domain);
    if domain.is_empty() || total <= 0.0 {
        return chi.restrict_to(domain);
    }
    let psi_star = total / k as f64;
    let wmax = set_max(weights, domain);

    // Base case (paper: ‖w‖∞ > ε⁵·Ψ*; we trigger at ε/2·Ψ* — the layer
    // machinery needs pieces of weight ε·Ψ* ≥ 2‖w‖∞ to exist).
    if wmax > params.epsilon / 2.0 * psi_star || depth >= params.max_depth {
        let w1 = vec![0.0; k];
        return binpack1(
            g,
            costs,
            splitter,
            &chi.restrict_to(domain),
            domain,
            weights,
            &w1,
            wmax,
        );
    }

    let sh = shrink_ws(g, costs, splitter, chi, domain, weights, p, params, ws);
    if sh.w1.len() >= domain.len() || sh.w0.is_empty() {
        // Defensive: shrink made no progress; fall back to direct packing.
        let w1 = vec![0.0; k];
        return binpack1(
            g,
            costs,
            splitter,
            &chi.restrict_to(domain),
            domain,
            weights,
            &w1,
            wmax,
        );
    }

    let chi1_hat = almost_strict_rec(
        g,
        costs,
        splitter,
        &sh.chi1,
        &sh.w1,
        weights,
        p,
        params,
        depth + 1,
        ws,
    );
    // Conquer (Lemma 15): re-pack χ₀ so that χ̃₀ ⊕ χ̂₁ is almost strict.
    let w1_weights = chi1_hat.class_measures(weights);
    let chi0_tilde = binpack1(
        g,
        costs,
        splitter,
        &sh.chi0,
        &sh.w0,
        weights,
        &w1_weights,
        wmax,
    );
    chi0_tilde.direct_sum(&chi1_hat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::measure::norm_inf;
    use mmb_splitters::grid::GridSplitter;

    fn setup(side: usize) -> (GridGraph, Vec<f64>) {
        let grid = GridGraph::lattice(&[side, side]);
        let costs = vec![1.0; grid.graph.num_edges()];
        (grid, costs)
    }

    #[test]
    fn iterative_partition_covers_and_sizes() {
        let (grid, costs) = setup(10);
        let sp = GridSplitter::new(&grid, &costs);
        let u = VertexSet::full(100);
        let psi: Vec<f64> = (0..100).map(|v| 1.0 + (v % 2) as f64).collect();
        let parts = iterative_partition(&sp, &u, &psi, 15.0);
        // Pieces are disjoint and cover U.
        let mut seen = VertexSet::empty(100);
        for p in &parts {
            assert!(p.is_disjoint(&seen));
            seen.union_with(p);
        }
        assert_eq!(seen, u);
        // All but the final remainder weigh in [ψ*, ψ* + max]; the final
        // one is ≤ 3ψ*.
        for (idx, part) in parts.iter().enumerate() {
            let w = set_sum(&psi, part);
            if idx + 1 < parts.len() {
                assert!((15.0..=15.0 + 2.0 + 1e-9).contains(&w), "piece {idx}: {w}");
            } else {
                assert!(w <= 45.0 + 1e-9, "remainder too heavy: {w}");
            }
        }
    }

    #[test]
    fn extract_lean_is_cheap_in_protected_measures() {
        let (grid, costs) = setup(12);
        let sp = GridSplitter::new(&grid, &costs);
        let n = 144;
        let u = VertexSet::full(n);
        let psi = vec![1.0; n];
        // A protected measure concentrated on the left edge.
        let hot: Vec<f64> = (0..n as u32)
            .map(|v| if grid.coord(v)[0] == 0 { 10.0 } else { 0.0 })
            .collect();
        let protected: [&[f64]; 1] = [&hot];
        let x = extract_lean(&sp, &u, &psi, &protected, 12.0);
        let frac = set_sum(&hot, &x) / set_sum(&hot, &u);
        // The lean piece must dodge the hot column: far below its
        // proportional share would be 12/144 ≈ 8.3%… require ≤ one part's
        // worth of slack.
        assert!(
            frac <= 0.34,
            "lean extraction took {frac} of the hot measure"
        );
        let w = set_sum(&psi, &x);
        assert!((12.0..=36.0 + 1e-9).contains(&w));
    }

    #[test]
    fn extract_rich_takes_its_share() {
        let (grid, costs) = setup(12);
        let sp = GridSplitter::new(&grid, &costs);
        let n = 144;
        let u = VertexSet::full(n);
        let psi = vec![1.0; n];
        let hot: Vec<f64> = (0..n as u32)
            .map(|v| if grid.coord(v)[0] == 11 { 5.0 } else { 0.1 })
            .collect();
        let protected: [&[f64]; 1] = [&hot];
        let gamma = 0.2;
        let x = extract_rich(&sp, &u, &psi, &protected, gamma);
        // Ψ(X) ≈ γ·Ψ(U).
        let w = set_sum(&psi, &x);
        assert!(w >= gamma * n as f64 - 1.0, "rich piece too light: {w}");
        // And it grabbed at least Ω(γ/r) of the hot measure.
        let frac = set_sum(&hot, &x) / set_sum(&hot, &u);
        assert!(frac >= gamma / 3.0 - 1e-9, "rich piece too poor: {frac}");
    }

    #[test]
    fn shrink_layer_properties() {
        let (grid, costs) = setup(16);
        let n = 256;
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let k = 4;
        let weights = vec![1.0; n];
        // Weakly balanced but uneven start: vertical stripes of widths
        // 2/2/4/8 (classes 64·{0.5, 0.5, 1, 2}).
        let chi = Coloring::from_fn(n, k, |v| match grid.coord(v)[0] {
            0..=1 => 0,
            2..=3 => 1,
            4..=7 => 2,
            _ => 3,
        });
        let params = ShrinkParams::default();
        let out = shrink(
            &grid.graph,
            &costs,
            &sp,
            &chi,
            &domain,
            &weights,
            2.0,
            &params,
        );
        // W₀/W₁ partition the domain.
        assert!(out.w0.is_disjoint(&out.w1));
        assert_eq!(out.w0.union(&out.w1), domain);
        assert!(!out.w0.is_empty());
        // χ₀ classes all weigh ≈ ε·Ψ* = 0.25·64 = 16.
        let psi_star = n as f64 / k as f64;
        let eps = params.epsilon;
        let cm0 = out.chi0.class_measures(&weights);
        for (i, &c) in cm0.iter().enumerate() {
            assert!(
                c >= eps * psi_star - 2.0 && c <= 3.0 * eps * psi_star + 2.0,
                "χ₀ class {i} weight {c} outside the ε·Ψ* window"
            );
        }
        // χ₁ stays weakly balanced under M.
        let w1_total = set_sum(&weights, &out.w1);
        let cm1 = out.chi1.class_measures(&weights);
        let m = params.weak_factor;
        for &c in &cm1 {
            assert!(c <= m * w1_total / k as f64 + 1e-9);
        }
    }

    #[test]
    fn almost_strict_reaches_two_wmax() {
        let (grid, costs) = setup(16);
        let n = 256;
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let k = 4;
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + ((v * 7) % 3) as f64).collect();
        // Unbalanced stripes again.
        let chi = Coloring::from_fn(n, k, |v| match grid.coord(v)[0] {
            0..=1 => 0,
            2..=3 => 1,
            4..=7 => 2,
            _ => 3,
        });
        let out = almost_strict(
            &grid.graph,
            &costs,
            &sp,
            &chi,
            &domain,
            &weights,
            2.0,
            &ShrinkParams::default(),
        );
        assert!(out.is_total_on(&domain));
        let total: f64 = domain.iter().map(|v| weights[v as usize]).sum();
        let avg = total / k as f64;
        let wmax = norm_inf(&weights);
        let cm = out.class_measures(&weights);
        for (i, &c) in cm.iter().enumerate() {
            assert!(
                (c - avg).abs() <= 2.0 * wmax + 1e-9,
                "class {i} weight {c} not almost strict (avg {avg}, wmax {wmax})"
            );
        }
    }

    #[test]
    fn almost_strict_zero_weight_domain() {
        let (grid, costs) = setup(4);
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(16);
        let chi = Coloring::monochromatic(16, 2);
        let weights = vec![0.0; 16];
        let out = almost_strict(
            &grid.graph,
            &costs,
            &sp,
            &chi,
            &domain,
            &weights,
            2.0,
            &ShrinkParams::default(),
        );
        assert!(out.is_total_on(&domain));
    }
}
