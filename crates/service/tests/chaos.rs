//! Chaos coverage for the serving layer: the `service::admit`,
//! `service::cache`, and `service::worker` failpoint sites under seeded
//! fault schedules.
//!
//! The serving contract under faults:
//!
//! 1. **No-escape** — no panic crosses `Service::serve`; injected panics
//!    come back as that request's typed `SolveError::Panicked`.
//! 2. **Poisoned-cache** — a fault observed during the cache lookup
//!    evicts the matching entry and the request rebuilds cold; the
//!    poisoned entry is never served again (the next clean lookup is a
//!    `Miss`, not a `Hit`).
//! 3. **Validity** — every successful response is a total coloring with
//!    a consistent serving record.
//! 4. **Anti-vacuous** — the schedules actually fire; a sweep that
//!    injects zero faults tests nothing and fails.
//!
//! Failpoint schedules are thread-local, so every armed serve runs under
//! `rayon::with_num_threads(1, ..)` — the shim executes singleton
//! batches inline on the arming thread.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mmb_core::api::InstanceDelta;
use mmb_core::failpoint::{with_faults, FaultAction, FaultSchedule, SERVICE_SITES};
use mmb_graph::gen::grid::GridGraph;
use mmb_service::{CacheEvent, Request, ServePath, Service, ServiceConfig};

fn grid_solve_request(side: usize, w0: f64) -> Request {
    let grid = GridGraph::lattice(&[side, side]);
    let m = grid.graph.num_edges();
    let n = grid.graph.num_vertices();
    let mut weights = vec![1.0; n];
    weights[0] = w0;
    Request::Solve {
        graph: grid.graph,
        costs: vec![1.0; m],
        weights,
    }
}

/// Serve a batch with a fault schedule armed, inline on this thread.
fn serve_armed(
    service: &Service,
    schedule: &FaultSchedule,
    batch: Vec<Request>,
) -> (Vec<mmb_service::Response>, usize) {
    let (out, log) = rayon::with_num_threads(1, || with_faults(schedule, || service.serve(batch)));
    (out, log.len())
}

#[test]
fn poisoned_cache_entry_is_evicted_never_served() {
    let service = Service::new(ServiceConfig::new(4));

    // Warm the cache with a clean solve.
    let cold = service.serve(vec![grid_solve_request(8, 1.0)]);
    assert_eq!(cold[0].record.cache, CacheEvent::Miss);
    assert!(cold[0].outcome.is_ok());

    // Same topology under a cache fault: the lookup is poisoned, the
    // warm entry must be evicted, and the request rebuilds cold — still
    // served, because a poisoned cache is an internal event, not a
    // client error.
    let schedule = FaultSchedule::new().once("service::cache", 0, FaultAction::Transient);
    let evictions_before = service.cache_stats().evictions;
    let (poisoned, injected) = serve_armed(&service, &schedule, vec![grid_solve_request(8, 2.0)]);
    assert!(injected > 0, "anti-vacuous: the cache fault never fired");
    assert_eq!(poisoned[0].record.cache, CacheEvent::Poisoned);
    let served = poisoned[0]
        .outcome
        .as_ref()
        .expect("poisoned lookup still serves");
    assert!(served.coloring.is_total());
    assert!(
        service.cache_stats().evictions > evictions_before,
        "the poisoned entry must be evicted"
    );

    // Clean traffic after the eviction: the poisoned entry is gone (the
    // lookup misses), and only the freshly inserted entry is served.
    let after = service.serve(vec![grid_solve_request(8, 3.0)]);
    assert_eq!(
        after[0].record.cache,
        CacheEvent::Miss,
        "poisoned entry must not be served as a hit"
    );
    let again = service.serve(vec![grid_solve_request(8, 4.0)]);
    assert_eq!(again[0].record.cache, CacheEvent::Hit);
}

#[test]
fn injected_panics_are_contained_per_request() {
    let service = Service::new(ServiceConfig::new(3));
    for site in SERVICE_SITES {
        let schedule = FaultSchedule::new().once(site, 0, FaultAction::Panic);
        let (out, injected) = serve_armed(&service, &schedule, vec![grid_solve_request(6, 1.0)]);
        assert!(injected > 0, "anti-vacuous: no fault fired at {site}");
        let err = out[0].outcome.as_ref().expect_err("panic must reject");
        assert!(
            matches!(err, mmb_core::api::SolveError::Panicked { .. }),
            "panic at {site} must surface as Panicked, got {err:?}"
        );
        assert_eq!(out[0].record.path, ServePath::Rejected);
        // The service survives: the next clean request serves normally.
        let next = service.serve(vec![grid_solve_request(6, 2.0)]);
        assert!(
            next[0].outcome.is_ok(),
            "service poisoned after {site} panic"
        );
    }
}

#[test]
fn admit_transient_is_a_typed_rejection() {
    let service = Service::new(ServiceConfig::new(2));
    let schedule = FaultSchedule::new().once("service::admit", 0, FaultAction::Transient);
    let (out, injected) = serve_armed(&service, &schedule, vec![grid_solve_request(4, 1.0)]);
    assert!(injected > 0);
    assert!(matches!(
        out[0].outcome,
        Err(mmb_core::api::SolveError::Transient {
            site: "service::admit"
        })
    ));
    assert!(!out[0].record.admitted);
    assert_eq!(out[0].record.cache, CacheEvent::NotConsulted);
}

#[test]
fn seeded_service_chaos_sweep_holds_the_contract() {
    let mut total_injected = 0usize;
    for seed in 0..12u64 {
        let service = Service::new(ServiceConfig::new(4));
        // A clean incumbent so the sweep exercises the mutate path too.
        let cold = service.serve(vec![grid_solve_request(8, 1.0)]);
        let ticket = cold[0].outcome.as_ref().expect("clean solve serves").ticket;

        let schedule = FaultSchedule::chaos_over(seed, SERVICE_SITES);
        let batch = vec![
            grid_solve_request(8, 2.0),
            Request::Mutate {
                base: ticket,
                delta: InstanceDelta::new().set_weight(3, 5.0),
            },
            grid_solve_request(6, 1.0),
            Request::Mutate {
                base: 0x000b_ad71_cce7, // unknown ticket: typed rejection even under faults
                delta: InstanceDelta::new(),
            },
        ];
        // No-escape prong: the whole armed serve must return normally.
        let witness = rayon::with_num_threads(1, || {
            with_faults(&schedule, || {
                catch_unwind(AssertUnwindSafe(|| service.serve(batch)))
            })
        });
        let (outcome, log) = witness;
        total_injected += log.len();
        let responses = outcome.expect("panic escaped Service::serve");
        assert_eq!(responses.len(), 4);
        for resp in &responses {
            match &resp.outcome {
                Ok(served) => {
                    assert!(served.coloring.is_total());
                    assert!(served.max_boundary.is_finite());
                    assert!(
                        !matches!(resp.record.path, ServePath::Rejected),
                        "served response with a Rejected record"
                    );
                }
                Err(_) => {
                    assert_eq!(resp.record.path, ServePath::Rejected);
                }
            }
            assert!(resp.record.elapsed_millis >= 0.0);
        }
    }
    assert!(
        total_injected > 0,
        "anti-vacuous: the seeded sweep injected nothing"
    );
}
