//! Per-request serving records: what path a request took through the
//! service, how the artifact cache behaved, and how long it all took.
//!
//! The serving counterpart of `mmb-core`'s `Resilience` record — one
//! structured observation per request, so a load test (or an operator)
//! can tell cold from warm traffic and spot cache pathologies without
//! scraping logs.

/// How the artifact cache behaved for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheEvent {
    /// Key matched and the exact collision check confirmed: the cached
    /// build artifacts were reused.
    Hit,
    /// Cold lookup; artifacts computed and inserted.
    Miss,
    /// Key matched but the exact check refused the entry (64-bit hash
    /// collision); artifacts recomputed.
    Collision,
    /// A fault fired inside the cache lookup: the matching entry was
    /// evicted and the request rebuilt cold. A poisoned entry is never
    /// served.
    Poisoned,
    /// The request failed before (or without) consulting the cache.
    NotConsulted,
}

/// Which solve path produced the served coloring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServePath {
    /// Fresh solve of a newly admitted instance.
    Cold,
    /// Incumbent repair via `Solver::resolve_delta` survived the
    /// validation gate.
    Warm,
    /// The warm repair was rejected by the gate; the mutated instance
    /// was re-solved from scratch.
    ColdFallback,
    /// Nothing was served (admission failure, unknown ticket, injected
    /// fault, or panic).
    Rejected,
}

/// One request's serving record.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingRecord {
    /// Position of the request in its batch.
    pub index: usize,
    /// Whether admission (typed input validation + the admission
    /// failpoint) passed.
    pub admitted: bool,
    /// Cache behavior.
    pub cache: CacheEvent,
    /// Solve path.
    pub path: ServePath,
    /// Wall-clock serving time, milliseconds. Observational only —
    /// never feeds back into any coloring.
    pub elapsed_millis: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_plain_data() {
        let r = ServingRecord {
            index: 3,
            admitted: true,
            cache: CacheEvent::Hit,
            path: ServePath::Warm,
            elapsed_millis: 0.25,
        };
        assert_eq!(r.clone(), r);
        assert_ne!(CacheEvent::Hit, CacheEvent::Poisoned);
        assert_ne!(ServePath::Warm, ServePath::ColdFallback);
    }
}
