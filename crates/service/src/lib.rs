//! # mmb-service
//!
//! The warm-path serving front end over `mmb-core`'s solver stack: a
//! long-lived [`Service`] that admits raw requests, caches solver
//! construction artifacts across requests, re-solves mutated instances
//! incrementally from their previous colorings, and emits a structured
//! [`ServingRecord`] per request.
//!
//! ## Request model
//!
//! * [`Request::Solve`] — a raw `(graph, costs, weights)` triple.
//!   Admission runs the same typed [`InstanceError`](mmb_core::api::InstanceError) validation the
//!   library's `Instance::new` constructor enforces; malformed input
//!   yields one typed rejection, never a poisoned batch.
//! * [`Request::Mutate`] — a [`InstanceDelta`] against the *ticket* of a
//!   previously served response. The service re-seeds the pipeline from
//!   the incumbent coloring (`Solver::resolve_delta`): KL repair on the
//!   touched region, a strict re-pack only if eq. (1) broke, and the
//!   resilient ladder's validation gate before anything is served.
//!
//! Batches are distributed over the same `rayon` worker pool that backs
//! `solve_many`; each request is isolated — a panic in one becomes that
//! request's typed [`SolveError::Panicked`], not the batch's.
//!
//! ## Cache discipline
//!
//! Construction artifacts (structure recognition, the splitting-cost
//! measure `π`, `‖c‖_p`) are keyed by the **weight-independent** parts of
//! the instance fingerprint, so weight-only churn — the common serving
//! mutation — stays warm. Every hit is confirmed by an exact structural
//! check; a fault observed during the lookup (the `service::cache`
//! failpoint) evicts the matching entry and rebuilds cold: a poisoned
//! entry is never served, and the event is visible as
//! [`CacheEvent::Poisoned`] in the record.
//!
//! ```
//! use mmb_graph::gen::grid::GridGraph;
//! use mmb_service::{Request, Service, ServiceConfig};
//! use mmb_core::api::InstanceDelta;
//!
//! let service = Service::new(ServiceConfig::new(4));
//! let grid = GridGraph::lattice(&[8, 8]);
//! let m = grid.graph.num_edges();
//! let solve = Request::Solve {
//!     graph: grid.graph,
//!     costs: vec![1.0; m],
//!     weights: vec![1.0; 64],
//! };
//! let cold = service.serve(vec![solve]);
//! let ticket = cold[0].outcome.as_ref().unwrap().ticket;
//!
//! // Weight churn against the served ticket: warm re-solve.
//! let mutate = Request::Mutate {
//!     base: ticket,
//!     delta: InstanceDelta::new().set_weight(0, 2.0),
//! };
//! let warm = service.serve(vec![mutate]);
//! assert!(warm[0].outcome.is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod record;

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};

use mmb_core::api::{
    CacheLookup, CacheStats, Instance, InstanceDelta, SolveError, Solver, SolverArtifacts,
    SolverCache,
};
use mmb_core::failpoint;
use mmb_core::pipeline::PipelineConfig;
use mmb_graph::{Coloring, Graph};
use rayon::prelude::*;

pub use record::{CacheEvent, ServePath, ServingRecord};

/// Static configuration of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of decomposition classes `k` served for every request.
    pub k: usize,
    /// Pipeline configuration shared by all solves (in particular the
    /// exponent `p`, which keys the artifact cache).
    pub pipeline: PipelineConfig,
    /// Artifact-cache capacity (LRU entries). 0 disables reuse.
    pub cache_capacity: usize,
}

impl ServiceConfig {
    /// Defaults: the given `k`, [`PipelineConfig::default`], artifact
    /// cache of 16 entries.
    pub fn new(k: usize) -> Self {
        ServiceConfig {
            k,
            pipeline: PipelineConfig::default(),
            cache_capacity: 16,
        }
    }
}

/// One serving request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Solve a raw, not-yet-validated instance cold.
    Solve {
        /// The topology.
        graph: Graph,
        /// Edge costs, indexed by the graph's canonical edge ids.
        costs: Vec<f64>,
        /// Vertex weights.
        weights: Vec<f64>,
    },
    /// Mutate a previously served instance and re-solve warm.
    Mutate {
        /// The ticket of an earlier successful response ([`Served::ticket`]).
        base: u64,
        /// The mutation, expressed against that instance.
        delta: InstanceDelta,
    },
}

/// The payload of a successful response.
#[derive(Clone, Debug)]
pub struct Served {
    /// Handle for follow-up [`Request::Mutate`] requests: the combined
    /// fingerprint of the (post-mutation) instance this coloring is for.
    pub ticket: u64,
    /// The served coloring — total and strictly balanced (eq. (1)),
    /// enforced before anything leaves the service.
    pub coloring: Coloring,
    /// `‖∂χ⁻¹‖_∞` of the served coloring.
    pub max_boundary: f64,
}

/// One request's response: the structured record plus either the served
/// payload or a typed error.
#[derive(Clone, Debug)]
pub struct Response {
    /// What happened, structurally.
    pub record: ServingRecord,
    /// The payload or the typed failure.
    pub outcome: Result<Served, SolveError>,
}

/// A warm incumbent: the instance a ticket refers to and the coloring
/// that was served for it.
struct WarmState {
    instance: Instance,
    coloring: Coloring,
}

/// The long-lived serving front end. See the [module docs](self).
pub struct Service {
    cfg: ServiceConfig,
    cache: Mutex<SolverCache>,
    memo: Mutex<BTreeMap<u64, Arc<WarmState>>>,
}

impl Service {
    /// A fresh service with an empty cache and no known tickets.
    pub fn new(cfg: ServiceConfig) -> Self {
        let cache = SolverCache::new(cfg.cache_capacity);
        Service {
            cfg,
            cache: Mutex::new(cache),
            memo: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Serve a batch. Responses come back in request order; each request
    /// is isolated (its own typed error slot, panic containment at the
    /// request boundary) and carries a [`ServingRecord`].
    pub fn serve(&self, requests: Vec<Request>) -> Vec<Response> {
        let indexed: Vec<(usize, Request)> = requests.into_iter().enumerate().collect();
        indexed
            .into_par_iter()
            .map(|(index, req)| self.serve_one(index, req))
            .collect()
    }

    /// Cumulative artifact-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    /// Number of tickets the service currently remembers.
    pub fn known_tickets(&self) -> usize {
        self.lock_memo().len()
    }

    /// Drop one ticket's warm state. Returns whether it existed.
    pub fn forget(&self, ticket: u64) -> bool {
        self.lock_memo().remove(&ticket).is_some()
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, SolverCache> {
        // A panic while holding the lock is already contained at the
        // request boundary; recover the guard rather than cascading.
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_memo(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, Arc<WarmState>>> {
        self.memo.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn serve_one(&self, index: usize, req: Request) -> Response {
        // lint: allow(nondeterminism) — wall-clock timestamps feed only the
        // record's observational `elapsed_millis`, never a coloring.
        let t0 = std::time::Instant::now();
        let hooked = AssertUnwindSafe(|| self.dispatch(req));
        // lint: allow(catch-unwind) — the request isolation boundary: a
        // panic (injected or genuine) in one request's solve becomes that
        // request's typed error instead of unwinding through the rayon
        // worker and taking down the batch. Shared state is lock-guarded
        // and locks recover from poisoning in `lock_cache`/`lock_memo`.
        let caught = std::panic::catch_unwind(hooked);
        let (outcome, cache, path) = caught.unwrap_or_else(|payload| {
            (
                Err(SolveError::Panicked {
                    context: "service",
                    message: failpoint::panic_message(payload.as_ref()),
                }),
                CacheEvent::NotConsulted,
                ServePath::Rejected,
            )
        });
        let admitted = !matches!(
            outcome,
            Err(SolveError::Instance(_))
                | Err(SolveError::Transient {
                    site: "service::admit"
                })
        );
        Response {
            record: ServingRecord {
                index,
                admitted,
                cache,
                path,
                elapsed_millis: t0.elapsed().as_secs_f64() * 1e3,
            },
            outcome,
        }
    }

    fn dispatch(&self, req: Request) -> (Result<Served, SolveError>, CacheEvent, ServePath) {
        if let Err(e) = failpoint::raise("service::admit") {
            return (Err(e), CacheEvent::NotConsulted, ServePath::Rejected);
        }
        match req {
            Request::Solve {
                graph,
                costs,
                weights,
            } => match Instance::new(graph, costs, weights) {
                Ok(inst) => self.solve_cold(inst),
                Err(e) => (Err(e.into()), CacheEvent::NotConsulted, ServePath::Rejected),
            },
            Request::Mutate { base, delta } => self.mutate(base, &delta),
        }
    }

    /// Consult the artifact cache for `inst`. A fault at the
    /// `service::cache` failpoint poisons the lookup: the matching entry
    /// is evicted and `None` is returned, forcing a cold rebuild —
    /// cached state observed under a fault is never served.
    fn lookup_artifacts(&self, inst: &Instance) -> (Option<Arc<SolverArtifacts>>, CacheEvent) {
        let p = self.cfg.pipeline.p;
        let mut cache = self.lock_cache();
        match failpoint::raise("service::cache") {
            Ok(()) => {
                let (artifacts, lookup) = cache.get_or_compute(inst, p);
                let event = match lookup {
                    CacheLookup::Hit => CacheEvent::Hit,
                    CacheLookup::Miss => CacheEvent::Miss,
                    CacheLookup::Collision => CacheEvent::Collision,
                };
                (Some(artifacts), event)
            }
            Err(_) => {
                cache.evict_for(inst, p);
                (None, CacheEvent::Poisoned)
            }
        }
    }

    fn solve_cold(&self, inst: Instance) -> (Result<Served, SolveError>, CacheEvent, ServePath) {
        let (artifacts, cache_event) = self.lookup_artifacts(&inst);
        if let Err(e) = failpoint::raise("service::worker") {
            return (Err(e), cache_event, ServePath::Rejected);
        }
        let solved = {
            let mut builder = Solver::for_instance(&inst)
                .classes(self.cfg.k)
                .config(self.cfg.pipeline.clone());
            if let Some(a) = artifacts {
                builder = builder.artifacts(a);
            }
            match builder.build() {
                Ok(solver) => {
                    let report = solver.solve();
                    (report.coloring, report.max_boundary)
                }
                Err(e) => return (Err(e), cache_event, ServePath::Rejected),
            }
        };
        let (coloring, max_boundary) = solved;
        // The serving gate: nothing non-strict leaves the service, even
        // if an upstream stage misbehaves.
        if !coloring.is_strictly_balanced(inst.weights()) {
            let defect = coloring.strict_balance_defect(inst.weights());
            return (
                Err(SolveError::NotStrict { defect }),
                cache_event,
                ServePath::Rejected,
            );
        }
        let ticket = inst.fingerprint().combined();
        let served = Served {
            ticket,
            coloring: coloring.clone(),
            max_boundary,
        };
        self.lock_memo().insert(
            ticket,
            Arc::new(WarmState {
                instance: inst,
                coloring,
            }),
        );
        (Ok(served), cache_event, ServePath::Cold)
    }

    fn mutate(
        &self,
        base: u64,
        delta: &InstanceDelta,
    ) -> (Result<Served, SolveError>, CacheEvent, ServePath) {
        let Some(state) = self.lock_memo().get(&base).cloned() else {
            return (
                Err(SolveError::WarmStartMismatch { what: "ticket" }),
                CacheEvent::NotConsulted,
                ServePath::Rejected,
            );
        };
        let (artifacts, cache_event) = self.lookup_artifacts(&state.instance);
        if let Err(e) = failpoint::raise("service::worker") {
            return (Err(e), cache_event, ServePath::Rejected);
        }
        let delta_solve = {
            let mut builder = Solver::for_instance(&state.instance)
                .classes(self.cfg.k)
                .config(self.cfg.pipeline.clone());
            if let Some(a) = artifacts {
                builder = builder.artifacts(a);
            }
            match builder.build() {
                Ok(solver) => match solver.resolve_delta(delta, &state.coloring) {
                    Ok(ds) => ds,
                    Err(e) => return (Err(e), cache_event, ServePath::Rejected),
                },
                Err(e) => return (Err(e), cache_event, ServePath::Rejected),
            }
        };
        let path = if delta_solve.warm {
            ServePath::Warm
        } else {
            ServePath::ColdFallback
        };
        let ticket = delta_solve.instance.fingerprint().combined();
        let served = Served {
            ticket,
            coloring: delta_solve.coloring.clone(),
            max_boundary: delta_solve.max_boundary,
        };
        self.lock_memo().insert(
            ticket,
            Arc::new(WarmState {
                instance: delta_solve.instance,
                coloring: delta_solve.coloring,
            }),
        );
        (Ok(served), cache_event, path)
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("k", &self.cfg.k)
            .field("cache_capacity", &self.cfg.cache_capacity)
            .field("known_tickets", &self.known_tickets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;

    fn grid_solve_request(side: usize, w0: f64) -> Request {
        let grid = GridGraph::lattice(&[side, side]);
        let m = grid.graph.num_edges();
        let n = grid.graph.num_vertices();
        let mut weights = vec![1.0; n];
        weights[0] = w0;
        Request::Solve {
            graph: grid.graph,
            costs: vec![1.0; m],
            weights,
        }
    }

    #[test]
    fn cold_then_warm_roundtrip() {
        let service = Service::new(ServiceConfig::new(4));
        let cold = service.serve(vec![grid_solve_request(8, 1.0)]);
        assert_eq!(cold.len(), 1);
        let served = cold[0].outcome.as_ref().expect("cold solve serves");
        assert_eq!(cold[0].record.path, ServePath::Cold);
        assert_eq!(cold[0].record.cache, CacheEvent::Miss);
        assert!(cold[0].record.admitted);

        let warm = service.serve(vec![Request::Mutate {
            base: served.ticket,
            delta: InstanceDelta::new().set_weight(5, 3.0),
        }]);
        let out = warm[0].outcome.as_ref().expect("mutation serves");
        assert_ne!(out.ticket, served.ticket, "mutation must re-ticket");
        assert!(
            matches!(
                warm[0].record.path,
                ServePath::Warm | ServePath::ColdFallback
            ),
            "mutation must take a delta path, got {:?}",
            warm[0].record.path
        );
        // Weight-only churn keeps the weight-independent artifacts warm.
        assert_eq!(warm[0].record.cache, CacheEvent::Hit);
        assert_eq!(service.known_tickets(), 2);
    }

    #[test]
    fn unknown_ticket_is_a_typed_rejection() {
        let service = Service::new(ServiceConfig::new(2));
        let out = service.serve(vec![Request::Mutate {
            base: 0xdead_beef,
            delta: InstanceDelta::new(),
        }]);
        assert!(matches!(
            out[0].outcome,
            Err(SolveError::WarmStartMismatch { what: "ticket" })
        ));
        assert_eq!(out[0].record.path, ServePath::Rejected);
    }

    #[test]
    fn malformed_input_is_admission_rejected() {
        let grid = GridGraph::lattice(&[4, 4]);
        let m = grid.graph.num_edges();
        let service = Service::new(ServiceConfig::new(2));
        let out = service.serve(vec![Request::Solve {
            graph: grid.graph,
            costs: vec![1.0; m],
            weights: vec![f64::NAN; 16],
        }]);
        assert!(matches!(out[0].outcome, Err(SolveError::Instance(_))));
        assert!(!out[0].record.admitted);
        assert_eq!(out[0].record.path, ServePath::Rejected);
    }

    #[test]
    fn every_served_coloring_is_strict() {
        let service = Service::new(ServiceConfig::new(3));
        let batch: Vec<Request> = (0..4)
            .map(|i| grid_solve_request(6, 1.0 + i as f64))
            .collect();
        for resp in service.serve(batch) {
            let served = resp.outcome.expect("valid grids serve");
            assert!(served.coloring.is_total());
            assert!(served.max_boundary.is_finite());
        }
    }

    #[test]
    fn forget_drops_the_ticket() {
        let service = Service::new(ServiceConfig::new(2));
        let out = service.serve(vec![grid_solve_request(4, 1.0)]);
        let ticket = out[0].outcome.as_ref().expect("serves").ticket;
        assert!(service.forget(ticket));
        assert!(!service.forget(ticket));
        let retry = service.serve(vec![Request::Mutate {
            base: ticket,
            delta: InstanceDelta::new(),
        }]);
        assert!(retry[0].outcome.is_err());
    }
}
