//! Per-file analysis context: file classification, `#[cfg(test)]` region
//! tracking, and the pragma grammar for audited exceptions.

use crate::lexer::{lex, Token, TokenKind};

/// How a file participates in the build — decides which rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`crates/*/src`, the root facade). Full rule set.
    Lib,
    /// Test, bench, example or experiment-harness code (`tests/`,
    /// `benches/`, `examples/`, and the `mmb-bench` harness crate).
    /// Panic/float-eq/nondeterminism rules do not apply: asserting exact
    /// values, unwrapping fresh fixtures and reading wall clocks are what
    /// harness code is *for*. The NaN-comparator, hash-order and unsafe
    /// rules still apply — a nondeterministic comparator is as unsound in
    /// a differential test as in the library.
    Harness,
}

/// A parsed `// lint: allow(<rule>) — <reason>` pragma.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// Rules this pragma allows (comma-separated in the source).
    pub rules: Vec<String>,
    /// The mandatory audit reason (text after the dash separator).
    pub reason: String,
    /// Line the pragma comment sits on.
    pub line: u32,
    /// First following line that carries code (the pragma also covers its
    /// own line, for trailing-comment placement).
    pub covers_line: u32,
}

/// A malformed pragma — itself reported as a finding by the engine.
#[derive(Clone, Debug)]
pub struct BadPragma {
    /// Line of the malformed comment.
    pub line: u32,
    /// What is wrong with it.
    pub why: String,
}

/// Everything the rules need to know about one source file.
#[derive(Debug)]
pub struct FileContext {
    /// Workspace-relative path (used in findings).
    pub path: String,
    /// Library or harness code.
    pub class: FileClass,
    /// Code tokens only (comments stripped), in source order.
    pub code: Vec<Token>,
    /// `in_test[i]` ⇔ `code[i]` lies inside a `#[cfg(test)]` / `#[test]`
    /// item (attribute through matching close brace).
    pub in_test: Vec<bool>,
    /// Well-formed pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas.
    pub bad_pragmas: Vec<BadPragma>,
    /// Raw source lines, for finding snippets (index = line − 1).
    pub lines: Vec<String>,
}

impl FileContext {
    /// Lex and annotate one source file.
    pub fn new(path: &str, src: &str, class: FileClass) -> Self {
        let all = lex(src);
        let code: Vec<Token> = all.iter().filter(|t| !t.is_trivia()).cloned().collect();
        let in_test = mark_test_regions(&code);
        let (pragmas, bad_pragmas) = extract_pragmas(&all, &code);
        FileContext {
            path: path.to_string(),
            class,
            code,
            in_test,
            pragmas,
            bad_pragmas,
            lines: src.lines().map(|l| l.to_string()).collect(),
        }
    }

    /// The trimmed source text of a 1-based line (empty if out of range).
    pub fn snippet(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or("")
    }

    /// Does some pragma allow `rule` on `line`?
    pub fn allowed(&self, rule: &str, line: u32) -> Option<usize> {
        self.pragmas.iter().position(|p| {
            (p.line == line || p.covers_line == line) && p.rules.iter().any(|r| r == rule)
        })
    }
}

/// Mark code-token indices that belong to test-only items.
///
/// An item is test-only when introduced by `#[cfg(test)]` (or any
/// `#[cfg(…)]` whose predicate mentions `test` — `all(test, …)` is
/// test-only, and treating `any(test, …)` the same way merely relaxes the
/// lint) or by `#[test]`. The region runs from the attribute through the
/// item's body: the brace block that opens before any top-level `;`, or
/// the `;` itself for item declarations. Nested `#[cfg(test)]` inside an
/// already-marked region is harmless re-marking.
fn mark_test_regions(code: &[Token]) -> Vec<bool> {
    let n = code.len();
    let mut marked = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if !code[i].is_punct("#") {
            i += 1;
            continue;
        }
        // `#[…]` or `#![…]`.
        let mut j = i + 1;
        if j < n && code[j].is_punct("!") {
            j += 1;
        }
        if j >= n || !code[j].is_punct("[") {
            i += 1;
            continue;
        }
        // Scan the attribute body for `test` under `cfg`, or bare `test`.
        let attr_open = j;
        let mut depth = 0i32;
        let mut saw_cfg = false;
        let mut saw_test = false;
        let mut k = attr_open;
        while k < n {
            let t = &code[k];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("cfg") || t.is_ident("cfg_attr") {
                saw_cfg = true;
            } else if t.is_ident("test") {
                saw_test = true;
            }
            k += 1;
        }
        let attr_close = k; // index of `]` (or n)
        let is_test_attr = saw_test && (saw_cfg || attr_close == attr_open + 2);
        // (`#[test]` is exactly `# [ test ]` ⇒ close == open + 2.)
        if !is_test_attr {
            i = attr_close + 1;
            continue;
        }
        // Find the item body: first `{` before a top-level `;`.
        let mut m = attr_close + 1;
        let mut body_start = None;
        while m < n {
            let t = &code[m];
            if t.is_punct(";") {
                break; // declaration-only item: region = attr..=`;`
            }
            if t.is_punct("{") {
                body_start = Some(m);
                break;
            }
            if t.is_punct("#") {
                // Another attribute: skip it wholesale.
                let mut d = 0i32;
                let mut p = m + 1;
                if p < n && code[p].is_punct("!") {
                    p += 1;
                }
                while p < n {
                    if code[p].is_punct("[") {
                        d += 1;
                    } else if code[p].is_punct("]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    p += 1;
                }
                m = p;
            }
            m += 1;
        }
        let end = match body_start {
            Some(open) => {
                let mut d = 0i32;
                let mut p = open;
                while p < n {
                    if code[p].is_punct("{") {
                        d += 1;
                    } else if code[p].is_punct("}") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    p += 1;
                }
                p
            }
            None => m,
        };
        for flag in marked.iter_mut().take((end + 1).min(n)).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    marked
}

/// Extract pragmas from the trivia stream.
///
/// Grammar (one line comment):
///
/// ```text
/// // lint: allow(<rule>[, <rule>…]) — <non-empty reason>
/// ```
///
/// The dash may be an em dash (`—`), `--`, or `-`. A pragma covers its own
/// line (trailing-comment placement) and the next line that carries code.
/// Comments that *look* like pragmas (`lint:` prefix) but do not parse are
/// returned separately so the engine can flag them — a silently ignored
/// suppression is worse than a missing one.
fn extract_pragmas(all: &[Token], code: &[Token]) -> (Vec<Pragma>, Vec<BadPragma>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for t in all {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        match parse_allow(rest) {
            Ok((rules, reason)) => {
                let covers_line = code
                    .iter()
                    .map(|c| c.line)
                    .find(|&l| l > t.line)
                    .unwrap_or(t.line);
                pragmas.push(Pragma {
                    rules,
                    reason,
                    line: t.line,
                    covers_line,
                });
            }
            Err(why) => bad.push(BadPragma { line: t.line, why }),
        }
    }
    (pragmas, bad)
}

fn parse_allow(rest: &str) -> Result<(Vec<String>, String), String> {
    let Some(args) = rest.strip_prefix("allow") else {
        return Err("expected `allow(<rule>) — <reason>` after `lint:`".into());
    };
    let args = args.trim_start();
    let Some(open) = args.strip_prefix('(') else {
        return Err("expected `(` after `allow`".into());
    };
    let Some(close) = open.find(')') else {
        return Err("unclosed `(` in pragma".into());
    };
    let rules: Vec<String> = open[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("pragma allows no rules".into());
    }
    let tail = open[close + 1..].trim_start();
    let reason = ["—", "--", "-"]
        .iter()
        .find_map(|d| tail.strip_prefix(d))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err("pragma is missing its mandatory reason (`— <why this is sound>`)".into());
    }
    Ok((rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileContext {
        FileContext::new("test.rs", src, FileClass::Lib)
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let c = ctx("fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn tail() { z.unwrap(); }\n");
        let flags: Vec<(String, bool)> = c
            .code
            .iter()
            .zip(&c.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(t, &f)| (t.text.clone(), f))
            .collect();
        assert_eq!(flags.len(), 3);
        assert!(!flags[0].1, "lib unwrap must not be test-marked");
        assert!(
            flags[1].1,
            "unwrap inside #[cfg(test)] mod must be test-marked"
        );
        assert!(
            !flags[2].1,
            "code after the test mod must not be test-marked"
        );
    }

    #[test]
    fn cfg_test_on_single_fn_and_nesting() {
        let c = ctx("#[cfg(test)]\nfn helper() { a.unwrap() }\nfn lib() { b.unwrap() }\n#[cfg(all(test, feature = \"x\"))]\nfn h2() { d.unwrap() }\n");
        let flags: Vec<bool> = c
            .code
            .iter()
            .zip(&c.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &f)| f)
            .collect();
        assert_eq!(flags, [true, false, true]);
    }

    #[test]
    fn test_attr_is_marked_and_cfg_not_test_is_not() {
        let c = ctx("#[test]\nfn t() { a.unwrap() }\n#[cfg(feature = \"testing\")]\nfn f() { b.unwrap() }\n");
        let flags: Vec<bool> = c
            .code
            .iter()
            .zip(&c.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &f)| f)
            .collect();
        // `feature = "testing"` is a *string*, not the `test` ident.
        assert_eq!(flags, [true, false]);
    }

    #[test]
    fn pragma_parses_with_all_dash_styles() {
        for d in ["—", "--", "-"] {
            let c = ctx(&format!(
                "// lint: allow(float-eq) {d} exact dispatch constant\nlet x = p == 1.0;\n"
            ));
            assert_eq!(c.pragmas.len(), 1, "dash {d:?}");
            assert_eq!(c.pragmas[0].rules, ["float-eq"]);
            assert_eq!(c.pragmas[0].reason, "exact dispatch constant");
            assert_eq!(c.pragmas[0].covers_line, 2);
            assert!(c.allowed("float-eq", 2).is_some());
            assert!(c.allowed("nan-unsafe-cmp", 2).is_none());
        }
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let c = ctx("let x = p == 1.0; // lint: allow(float-eq) — exact constant\n");
        assert!(c.allowed("float-eq", 1).is_some());
    }

    #[test]
    fn pragma_without_reason_is_bad() {
        let c = ctx("// lint: allow(float-eq)\nlet x = p == 1.0;\n");
        assert!(c.pragmas.is_empty());
        assert_eq!(c.bad_pragmas.len(), 1);
        assert!(c.bad_pragmas[0].why.contains("reason"));
    }

    #[test]
    fn pragma_with_multiple_rules() {
        let c =
            ctx("// lint: allow(hash-order-leak, nan-unsafe-cmp) — min under a total order\nx;\n");
        assert_eq!(c.pragmas[0].rules.len(), 2);
    }

    #[test]
    fn non_pragma_lint_mention_is_ignored() {
        let c = ctx("// the linter would flag this\nx;\n");
        assert!(c.pragmas.is_empty() && c.bad_pragmas.is_empty());
    }
}
