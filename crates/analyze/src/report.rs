//! Findings report: machine-readable JSON and a human table.
//!
//! The JSON writer is hand-rolled in the same offline spirit as the
//! `mmb-bench` perf machinery — no serde, schema tag `mmb-analyze-1`,
//! deterministic field and finding order so golden-file tests can compare
//! bytes.

use crate::rules::Finding;

/// Result of one workspace (or fixture) scan.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by pragmas (audited exceptions).
    pub suppressed: usize,
}

impl Report {
    /// Did the scan come back clean?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Canonical ordering, applied by the scanners before returning.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
    }

    /// Machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"mmb-analyze-1\",\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        s.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            s.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            s.push_str(&format!("\"line\": {}, ", f.line));
            s.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            s.push_str(&format!("\"snippet\": {}", json_str(&f.snippet)));
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Human-readable table plus a one-line summary.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            out.push_str(&format!(
                "lint clean: {} files scanned, 0 findings ({} audited exception{} \
                 suppressed by pragmas)\n",
                self.files_scanned,
                self.suppressed,
                if self.suppressed == 1 { "" } else { "s" }
            ));
            return out;
        }
        let loc_w = self
            .findings
            .iter()
            .map(|f| f.file.len() + 1 + digits(f.line))
            .max()
            .unwrap_or(8)
            .max("location".len());
        let rule_w = self
            .findings
            .iter()
            .map(|f| f.rule.len())
            .max()
            .unwrap_or(4)
            .max("rule".len());
        out.push_str(&format!(
            "{:<loc_w$}  {:<rule_w$}  finding\n",
            "location", "rule"
        ));
        out.push_str(&format!("{:-<loc_w$}  {:-<rule_w$}  -------\n", "", ""));
        for f in &self.findings {
            let loc = format!("{}:{}", f.file, f.line);
            out.push_str(&format!(
                "{loc:<loc_w$}  {:<rule_w$}  {}\n",
                f.rule, f.message
            ));
            out.push_str(&format!(
                "{:loc_w$}  {:rule_w$}    > {}\n",
                "", "", f.snippet
            ));
        }
        out.push_str(&format!(
            "\n{} finding{} in {} files scanned ({} suppressed by pragmas)\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.files_scanned,
            self.suppressed
        ));
        out
    }
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: "float-eq",
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "exact float comparison against `1.0`".into(),
                snippet: "if p == 1.0 {".into(),
            }],
            files_scanned: 3,
            suppressed: 2,
        }
    }

    #[test]
    fn json_shape_and_escaping() {
        let j = sample().to_json();
        assert!(j.contains("\"schema\": \"mmb-analyze-1\""));
        assert!(j.contains("\"finding_count\": 1"));
        assert!(j.contains("`1.0`"));
        let r = Report {
            findings: vec![Finding {
                rule: "float-eq",
                file: "a.rs".into(),
                line: 1,
                message: "quote \" backslash \\ tab\t".into(),
                snippet: String::new(),
            }],
            files_scanned: 1,
            suppressed: 0,
        };
        assert!(r.to_json().contains(r#"quote \" backslash \\ tab\t"#));
    }

    #[test]
    fn table_lists_location_and_snippet() {
        let t = sample().render_table();
        assert!(t.contains("crates/x/src/lib.rs:7"));
        assert!(t.contains("> if p == 1.0 {"));
        assert!(t.contains("1 finding in 3 files scanned (2 suppressed by pragmas)"));
    }

    #[test]
    fn clean_table_is_one_line() {
        let r = Report {
            findings: vec![],
            files_scanned: 42,
            suppressed: 9,
        };
        assert!(r.render_table().starts_with("lint clean: 42 files"));
    }
}
