//! # mmb-analyze
//!
//! A repo-aware, dependency-free static-analysis pass over the workspace
//! sources — the machine that keeps the NaN-comparator and hash-order bug
//! classes from coming back.
//!
//! ## Why a bespoke linter
//!
//! The certified-gap machinery (`mmb_core::lower_bounds`, DESIGN.md §9) is
//! only as sound as the floating-point comparators and deterministic
//! iteration orders underneath it: a certificate that replays differently
//! run-to-run, or a comparator that panics on an adversarial weight
//! vector, voids the guarantee. Both bug classes have shipped here before
//! (PR 2 fixed a `HashMap`-order leak in `GridSplitter`; PR 5 fixed four
//! NaN-panicking comparators in `strict.rs`) and both keep being easy to
//! reintroduce. Clippy cannot express "this repository orders floats with
//! `total_cmp`, full stop" — so this crate does, in ~1k lines of plain
//! `std`.
//!
//! ## Architecture
//!
//! * [`lexer`] — a small Rust lexer, correct on raw strings, char
//!   literals (`'"'`), nested block comments and numeric-literal
//!   classification; comments stay in the stream as trivia.
//! * [`context`] — per-file annotation: `#[cfg(test)]`/`#[test]` region
//!   tracking, file classification (library vs harness), and the pragma
//!   grammar `// lint: allow(<rule>) — <mandatory reason>`.
//! * [`rules`] — the catalog: `nan-unsafe-cmp`, `hash-order-leak`,
//!   `panic-in-lib`, `float-eq`, `nondeterminism`, `unsafe-forbidden`,
//!   plus the meta rules `bad-pragma` and `unused-pragma` that keep the
//!   exception list itself audited.
//! * [`scan`] — workspace walking (`vendor/` and the fixture corpus
//!   excluded) and [`report`] — JSON (`mmb-analyze-1`) and human output.
//!
//! ## Usage
//!
//! The CI gate is `reproduce lint` (exit 1 on any unpragma'd finding):
//!
//! ```text
//! cargo run -p mmb-bench --bin reproduce --release -- lint
//! ```
//!
//! Library use:
//!
//! ```
//! use mmb_analyze::{scan_workspace, workspace_root};
//!
//! let report = scan_workspace(&workspace_root()).expect("workspace sources readable");
//! assert!(report.is_clean(), "{}", report.render_table());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

pub use context::{FileClass, FileContext};
pub use report::Report;
pub use rules::{check_file, Finding, RuleConfig, RULE_NAMES};
pub use scan::{classify, scan_workspace, scan_workspace_with};

use std::path::PathBuf;

/// The workspace root, located relative to this crate's manifest
/// (`crates/analyze` → two levels up). Compile-time constant, so the
/// linter finds its sources no matter the invocation directory.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// Analyze a single in-memory source file — the entry point the fixture
/// tests drive.
pub fn analyze_source(path: &str, src: &str, class: FileClass, cfg: &RuleConfig) -> Report {
    let ctx = FileContext::new(path, src, class);
    let (findings, suppressed) = check_file(&ctx, cfg);
    let mut report = Report {
        findings,
        files_scanned: 1,
        suppressed,
    };
    report.sort();
    report
}
