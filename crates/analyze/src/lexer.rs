//! A small, self-contained Rust lexer.
//!
//! Produces a flat token stream with line information, correct on the
//! constructs that defeat naive `grep`-style scanning:
//!
//! * string literals (with escapes), byte strings, and **raw strings**
//!   (`r"…"`, `r#"…"#`, any hash count) — `partial_cmp` inside a string
//!   is *text*, not code;
//! * char literals, including `'"'`, `'\''` and `'\u{…}'`, disambiguated
//!   from lifetimes (`'a`, `'static`);
//! * nested block comments (`/* /* … */ */`) and line comments, which are
//!   kept in the stream as trivia so the pragma scanner can see them;
//! * raw identifiers (`r#match`) vs raw strings (`r#"…"#`);
//! * numeric literals classified int vs float (`1.0`, `1e300`, `1_000.5`,
//!   suffixed forms) without misreading ranges (`1..=k`) or tuple field
//!   access (`t.0`).
//!
//! The lexer is intentionally lossless about *placement* (every token
//! carries its 1-based line) and lossy about everything the rules do not
//! need (no keyword table, no operator precedence).

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `r#raw` identifiers).
    Ident,
    /// Lifetime such as `'a` or `'static` (without the tick).
    Lifetime,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// String, raw-string, byte-string or C-string literal.
    Str,
    /// Character literal.
    Char,
    /// `// …` comment (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// Operator or delimiter, possibly multi-character (`==`, `::`, `..=`).
    Punct,
}

/// One lexeme with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Lexeme kind.
    pub kind: TokenKind,
    /// The raw text of the lexeme.
    pub text: String,
    /// 1-based line of the lexeme's first character.
    pub line: u32,
}

impl Token {
    /// Is this token trivia (a comment)?
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this a punct token with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "::", "->", "=>",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lex `src` into a token stream (comments included as trivia).
///
/// Unknown bytes are skipped rather than reported: the linter runs on code
/// that `rustc` already accepted, so anything surprising here is at worst
/// a missed finding, never a crash.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr, $start:expr, $line:expr) => {
            out.push(Token {
                kind: $kind,
                text: src[$start..i].to_string(),
                line: $line,
            })
        };
    }

    while i < b.len() {
        let c = b[i];
        // Newlines and whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;

        // Comments.
        if c == b'/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                push!(TokenKind::LineComment, start, start_line);
                continue;
            }
            if b[i + 1] == b'*' {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                push!(TokenKind::BlockComment, start, start_line);
                continue;
            }
        }

        // Raw strings / raw identifiers / byte strings — all start with a
        // letter prefix, so handle them before plain identifiers.
        if (c == b'r' || c == b'b' || c == b'c') && raw_or_prefixed_string(b, i) {
            // Skip the prefix letters (`r`, `br`, `b`, `c`, `cr`, …).
            while i < b.len() && b[i].is_ascii_alphabetic() {
                i += 1;
            }
            let mut hashes = 0usize;
            while i < b.len() && b[i] == b'#' {
                hashes += 1;
                i += 1;
            }
            debug_assert!(i < b.len() && b[i] == b'"');
            i += 1; // opening quote
                    // Raw strings (hashes > 0 or prefix contains `r`) take no
                    // escapes; plain `b"…"` does.
            let raw = src[start..i].contains('r') || hashes > 0;
            loop {
                if i >= b.len() {
                    break;
                }
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                    continue;
                }
                if !raw && b[i] == b'\\' {
                    // A `\<newline>` continuation still ends a source line.
                    if i + 1 < b.len() && b[i + 1] == b'\n' {
                        line += 1;
                    }
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    let mut j = i + 1;
                    let mut closing = 0usize;
                    while j < b.len() && b[j] == b'#' && closing < hashes {
                        closing += 1;
                        j += 1;
                    }
                    if closing == hashes {
                        i = j;
                        break;
                    }
                }
                i += 1;
            }
            push!(TokenKind::Str, start, start_line);
            continue;
        }

        // `r#ident` raw identifiers.
        if c == b'r' && i + 1 < b.len() && b[i + 1] == b'#' {
            i += 2;
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            push!(TokenKind::Ident, start, start_line);
            continue;
        }

        // Identifiers / keywords.
        if c == b'_' || c.is_ascii_alphabetic() {
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            push!(TokenKind::Ident, start, start_line);
            continue;
        }

        // Plain strings.
        if c == b'"' {
            i += 1;
            while i < b.len() {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'\\' {
                    // A `\<newline>` continuation still ends a source line.
                    if i + 1 < b.len() && b[i + 1] == b'\n' {
                        line += 1;
                    }
                    i += 2;
                } else if b[i] == b'"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            push!(TokenKind::Str, start, start_line);
            continue;
        }

        // Char literal vs lifetime.
        if c == b'\'' {
            if let Some(end) = char_literal_end(b, i) {
                i = end;
                push!(TokenKind::Char, start, start_line);
            } else {
                // Lifetime: tick + identifier.
                i += 1;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                push!(TokenKind::Lifetime, start, start_line);
            }
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut is_float = false;
            // Radix prefixes are integral by construction.
            if c == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
                i += 2;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                push!(TokenKind::Int, start, start_line);
                continue;
            }
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_digit()) {
                i += 1;
            }
            // Fractional part — but not `1..k` (range) and not `1.method()`.
            if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                is_float = true;
                i += 1;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_digit()) {
                    i += 1;
                }
            } else if i < b.len()
                && b[i] == b'.'
                && (i + 1 == b.len() || !(b[i + 1] == b'.' || is_ident_char(b[i + 1])))
            {
                // Trailing-dot float `1.`.
                is_float = true;
                i += 1;
            }
            // Exponent.
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_digit()) {
                        i += 1;
                    }
                }
            }
            // Suffix (`f64`, `u32`, …).
            let suffix_start = i;
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            if src[suffix_start..i].starts_with('f') {
                is_float = true;
            }
            push!(
                if is_float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                },
                start,
                start_line
            );
            continue;
        }

        // Multi-character punctuation, maximal munch.
        let rest = &src[i..];
        if let Some(op) = MULTI_PUNCT.iter().find(|op| rest.starts_with(**op)) {
            i += op.len();
            push!(TokenKind::Punct, start, start_line);
            continue;
        }

        // Single-character punctuation (or an unknown byte, skipped).
        i += 1;
        if c.is_ascii_punctuation() {
            push!(TokenKind::Punct, start, start_line);
        }
    }
    out
}

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Does the source at `i` (which starts with `r`, `b` or `c`) begin a
/// (possibly raw, possibly prefixed) string literal? True for `r"`, `r#"`,
/// `b"`, `br"`, `br#"`, `c"`, `cr#"`, …; false for identifiers like
/// `radius` and raw identifiers like `r#match`.
fn raw_or_prefixed_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < b.len() && b[j].is_ascii_alphabetic() {
        j += 1;
        if j - i > 2 {
            return false; // longest prefix is two letters (`br`, `cr`)
        }
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        // `b#` alone is not a string prefix; `r`/`br`/`cr` take hashes.
        let prefix = &b[i..i + (j - i - hashes)];
        if hashes > 0 {
            prefix.contains(&b'r') || prefix.contains(&b'c')
        } else {
            true
        }
    } else {
        false
    }
}

/// If a char literal starts at `i` (a tick), return the index one past its
/// closing tick; `None` means this tick starts a lifetime.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escaped char: consume the escape then expect the closing tick.
        let mut k = j + 1;
        if k < b.len() && b[k] == b'u' {
            // `\u{…}`
            k += 1;
            if k < b.len() && b[k] == b'{' {
                while k < b.len() && b[k] != b'}' {
                    k += 1;
                }
                k += 1;
            }
        } else if k < b.len() && b[k] == b'x' {
            k += 3; // \xNN
        } else {
            k += 1; // \n, \', \\, …
        }
        if k < b.len() && b[k] == b'\'' {
            return Some(k + 1);
        }
        return None;
    }
    // Unescaped: exactly one character between ticks ⇒ char literal
    // (`'a'`); anything else (`'a`, `'static`) is a lifetime. Multi-byte
    // UTF-8 scalar values are handled by scanning to the next tick within
    // a small window.
    let mut k = j;
    let mut chars = 0;
    while k < b.len() && chars <= 2 {
        if b[k] == b'\'' {
            return if k > j { Some(k + 1) } else { None };
        }
        if b[k] == b'\n' {
            return None;
        }
        // Count UTF-8 scalar starts only.
        if (b[k] & 0xC0) != 0x80 {
            chars += 1;
        }
        if chars > 1 {
            return None; // more than one char before a tick ⇒ lifetime
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "partial_cmp().unwrap()";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("partial_cmp")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "partial_cmp"));
    }

    #[test]
    fn raw_strings_any_hash_count() {
        let src = r####"let s = r#"has "quotes" and partial_cmp"#; let t = r"x";"####;
        let toks = kinds(src);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert!(toks.iter().any(|(_, t)| t == ";"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "partial_cmp"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let toks = kinds(r#"fn f<'a>(x: &'a str) { let q = '"'; let e = '\''; let n = '\n'; }"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
    }

    #[test]
    fn char_quote_does_not_eat_code() {
        // `'"'` must not start a string: the following unwrap is real code.
        let toks = kinds(r#"let q = '"'; x.unwrap();"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ real_ident");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "real_ident"));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("a.0 + 1.0 + 1e300 + 1_000.5 + 2f64 + (1..=k) + 0x1F + t.1.total_cmp");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, ["1.0", "1e300", "1_000.5", "2f64"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == "..="));
    }

    #[test]
    fn multi_punct_and_lines() {
        let toks = lex("a == b\n  c != 0.0");
        assert!(toks.iter().any(|t| t.is_punct("==") && t.line == 1));
        assert!(toks.iter().any(|t| t.is_punct("!=") && t.line == 2));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Float && t.line == 2));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#match = radius;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "radius"));
    }

    #[test]
    fn string_continuation_counts_its_newline() {
        // Regression: `\<newline>` inside a string used to be skipped as a
        // 2-byte escape without bumping the line counter, shifting every
        // later finding's line number up by one per continuation.
        let toks = lex("let s = \"one \\\n two\";\nlet t = \"a\";\nmarker");
        let m = toks.iter().find(|t| t.is_ident("marker")).unwrap();
        assert_eq!(m.line, 4);
    }

    #[test]
    fn line_comments_kept_as_trivia() {
        let toks = lex("x; // lint: allow(float-eq) — dispatch constant\ny;");
        let c: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::LineComment)
            .collect();
        assert_eq!(c.len(), 1);
        assert!(c[0].text.contains("lint: allow"));
        assert_eq!(c[0].line, 1);
    }
}
