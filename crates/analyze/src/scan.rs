//! Workspace walking: which files are scanned, and as what class.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::context::{FileClass, FileContext};
use crate::report::Report;
use crate::rules::{check_file, RuleConfig};

/// Directory names never descended into, at any depth.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Workspace-relative path prefixes excluded from the scan:
///
/// * `vendor/` — offline shims mimicking external crates; they are not
///   this repository's algorithm code and keep the idioms of the crates
///   they stand in for.
/// * `crates/analyze/fixtures/` — the linter's own test corpus, which
///   exists precisely to contain violations.
const SKIP_PREFIXES: &[&str] = &["vendor/", "crates/analyze/fixtures/"];

/// Classify a workspace-relative path.
///
/// `tests/`, `benches/`, `examples/` directories (any crate) and the
/// `mmb-bench` harness crate are [`FileClass::Harness`]; everything else
/// is [`FileClass::Lib`]. See [`FileClass`] for which rules each class
/// gets.
pub fn classify(rel: &str) -> FileClass {
    let harness = rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
        || rel.starts_with("crates/bench/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/");
    if harness {
        FileClass::Harness
    } else {
        FileClass::Lib
    }
}

/// Scan the workspace rooted at `root` under the repo gate policy.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    scan_workspace_with(root, &RuleConfig::repo())
}

/// Scan the workspace rooted at `root` under an explicit policy.
pub fn scan_workspace_with(root: &Path, cfg: &RuleConfig) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    // Deterministic order regardless of directory-entry order.
    files.sort();
    let mut report = Report {
        findings: Vec::new(),
        files_scanned: 0,
        suppressed: 0,
    };
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let ctx = FileContext::new(&rel_str, &src, classify(&rel_str));
        let (findings, suppressed) = check_file(&ctx, cfg);
        report.findings.extend(findings);
        report.suppressed += suppressed;
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel == p.trim_end_matches('/') || rel.starts_with(p))
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/core/src/strict.rs"), FileClass::Lib);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib);
        assert_eq!(classify("crates/analyze/src/rules.rs"), FileClass::Lib);
        assert_eq!(classify("tests/api.rs"), FileClass::Harness);
        assert_eq!(classify("examples/walkthrough.rs"), FileClass::Harness);
        assert_eq!(classify("crates/bench/src/perf.rs"), FileClass::Harness);
        assert_eq!(
            classify("crates/bench/benches/splitters.rs"),
            FileClass::Harness
        );
        assert_eq!(
            classify("crates/graph/tests/generators.rs"),
            FileClass::Harness
        );
    }
}
