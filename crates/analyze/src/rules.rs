//! The soundness-rule catalog.
//!
//! Every rule here maps to a bug class this repository has actually
//! shipped and fixed (see `DESIGN.md` §11 for the full history):
//!
//! | rule | bug class | precedent |
//! |------|-----------|-----------|
//! | `nan-unsafe-cmp` | `partial_cmp().unwrap()` comparators panic on NaN and order ±0.0 inconsistently | PR 5 fixed four in `strict.rs`; this PR fixed ten more |
//! | `hash-order-leak` | `HashMap`/`HashSet` iteration order reaching output | PR 2 fixed `GridSplitter`; this PR fixed `random_blob` |
//! | `panic-in-lib` | `unwrap`/`panic!` in library code turning bad input into aborts | PR 2 moved baselines to `Result` |
//! | `float-eq` | bare `==` on computed floats | tolerance bugs the strict gates exist to prevent |
//! | `nondeterminism` | wall clocks / env reads inside deterministic algorithm code | bit-identical replay is a certificate-soundness requirement |
//! | `unsafe-forbidden` | any `unsafe` at all | all crates `#![forbid(unsafe_code)]` |
//! | `catch-unwind` | unaudited unwind boundaries masking bugs or observing broken state | PR 8's resilient ladder confines `catch_unwind` to justified isolation boundaries |
//!
//! Rules are lexical by design: no type information, no build. That makes
//! the pass instant, dependency-free and robust — and means each rule is a
//! *heuristic* whose false positives are handled by the pragma grammar
//! (`// lint: allow(<rule>) — <reason>`), never by silent special cases.

use crate::context::{FileClass, FileContext};
use crate::lexer::TokenKind;

/// Names of every rule the engine can fire, in catalog order.
pub const RULE_NAMES: &[&str] = &[
    "nan-unsafe-cmp",
    "hash-order-leak",
    "panic-in-lib",
    "float-eq",
    "nondeterminism",
    "unsafe-forbidden",
    "catch-unwind",
    "bad-pragma",
    "unused-pragma",
];

/// Per-scan rule policy. [`RuleConfig::repo`] is the gate configuration;
/// [`RuleConfig::strict`] turns every optional sub-pattern on (used by the
/// fixture tests so each detector is exercised).
#[derive(Clone, Copy, Debug)]
pub struct RuleConfig {
    /// `panic-in-lib` also fires on `.expect(…)`. Off in the repo policy:
    /// `expect` with a message *is* the sanctioned escape hatch — the
    /// message documents the invariant, exactly like a pragma reason.
    pub panic_expect: bool,
    /// `panic-in-lib` also fires on index expressions (`a[i]`). Off in the
    /// repo policy: dense numeric kernels index arrays pervasively, and a
    /// lexical rule cannot see bounds proofs; left available for audits.
    pub panic_index: bool,
    /// `float-eq` also fires on comparisons against zero literals. Off in
    /// the repo policy: `0.0` is exactly representable and is this
    /// codebase's "untouched / not cut" sentinel convention.
    pub float_eq_zero: bool,
}

impl RuleConfig {
    /// The repository gate policy (what `reproduce lint` enforces).
    pub fn repo() -> Self {
        RuleConfig {
            panic_expect: false,
            panic_index: false,
            float_eq_zero: false,
        }
    }

    /// Every optional sub-pattern enabled.
    pub fn strict() -> Self {
        RuleConfig {
            panic_expect: true,
            panic_index: true,
            float_eq_zero: true,
        }
    }
}

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of this occurrence.
    pub message: String,
    /// Trimmed source line.
    pub snippet: String,
}

/// Run every rule over one file, then apply its pragmas.
///
/// Returns `(findings, suppressed_count)`; suppressed findings are counted
/// but dropped, and pragmas that suppressed nothing become `unused-pragma`
/// findings so stale exceptions cannot linger after the code they excused
/// is gone.
pub fn check_file(ctx: &FileContext, cfg: &RuleConfig) -> (Vec<Finding>, usize) {
    let mut raw = Vec::new();
    nan_unsafe_cmp(ctx, &mut raw);
    hash_order_leak(ctx, &mut raw);
    if ctx.class == FileClass::Lib {
        panic_in_lib(ctx, cfg, &mut raw);
        float_eq(ctx, cfg, &mut raw);
        nondeterminism(ctx, &mut raw);
        catch_unwind_boundary(ctx, &mut raw);
    }
    unsafe_forbidden(ctx, &mut raw);

    // Pragma application.
    let mut used = vec![false; ctx.pragmas.len()];
    let mut suppressed = 0usize;
    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        match ctx.allowed(f.rule, f.line) {
            Some(p) => {
                used[p] = true;
                suppressed += 1;
            }
            None => out.push(f),
        }
    }
    for bp in &ctx.bad_pragmas {
        out.push(Finding {
            rule: "bad-pragma",
            file: ctx.path.clone(),
            line: bp.line,
            message: format!("malformed lint pragma: {}", bp.why),
            snippet: ctx.snippet(bp.line).to_string(),
        });
    }
    for (p, was_used) in ctx.pragmas.iter().zip(&used) {
        for r in &p.rules {
            if !RULE_NAMES.contains(&r.as_str()) {
                out.push(Finding {
                    rule: "bad-pragma",
                    file: ctx.path.clone(),
                    line: p.line,
                    message: format!("pragma names unknown rule `{r}`"),
                    snippet: ctx.snippet(p.line).to_string(),
                });
            }
        }
        if !*was_used && p.rules.iter().all(|r| RULE_NAMES.contains(&r.as_str())) {
            out.push(Finding {
                rule: "unused-pragma",
                file: ctx.path.clone(),
                line: p.line,
                message: format!(
                    "pragma allow({}) suppressed nothing — remove it or move it next to \
                     the line it excuses",
                    p.rules.join(", ")
                ),
                snippet: ctx.snippet(p.line).to_string(),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (out, suppressed)
}

fn finding(ctx: &FileContext, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: ctx.path.clone(),
        line,
        message,
        snippet: ctx.snippet(line).to_string(),
    }
}

/// `nan-unsafe-cmp`: any use of `partial_cmp`.
///
/// In Rust the only way to order floats in a `sort_by`/`min_by`/`max_by`
/// comparator is through `PartialOrd` (`f64` is not `Ord`, so `sort`,
/// `max_by_key` etc. on float keys do not compile) — which makes
/// `partial_cmp` occurrences *exactly* the NaN-unsafe comparator surface.
/// The repository convention is `f64::total_cmp`: total on every bit
/// pattern, panic-free, and deterministic on ±0.0. Applies everywhere,
/// tests included — a NaN-panicking comparator in a differential suite is
/// still a flaky suite.
fn nan_unsafe_cmp(ctx: &FileContext, out: &mut Vec<Finding>) {
    for t in &ctx.code {
        if t.is_ident("partial_cmp") {
            out.push(finding(
                ctx,
                "nan-unsafe-cmp",
                t.line,
                "`partial_cmp` comparator: panics (`.unwrap()`) or silently mis-orders \
                 (`unwrap_or`) on NaN — use `f64::total_cmp`, with an explicit index \
                 tie-break where the order reaches output"
                    .to_string(),
            ));
        }
    }
}

/// Iterator-yielding methods whose order is the hash order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// How many code tokens after a hash iteration we search for a `sort*`
/// call before concluding the order escapes unsorted. Covers the
/// collect-then-sort idiom (`let mut v: Vec<_> = map.into_iter()
/// .collect(); v.sort_unstable();`) with room for a long collect
/// expression, while staying local enough that an unrelated sort three
/// functions later does not discharge a real leak.
const SORT_DISCHARGE_WINDOW: usize = 100;

/// `hash-order-leak`: iteration over a `HashMap`/`HashSet` binding with no
/// nearby sort.
///
/// Two lexical passes: first collect every identifier bound with a
/// `HashMap`/`HashSet` type or constructor (lets, params, struct fields);
/// then flag `for … in name` and `name.iter()`-family uses unless a
/// `sort*` call appears within [`SORT_DISCHARGE_WINDOW`] tokens. Sound
/// order-insensitive consumptions (folds into a unique min, say) are
/// pragma territory, with the reason spelling out *why* order cannot
/// reach the output.
fn hash_order_leak(ctx: &FileContext, out: &mut Vec<Finding>) {
    let code = &ctx.code;
    let n = code.len();
    // Pass 1: names bound to hash collections.
    let mut names: Vec<&str> = Vec::new();
    for i in 0..n {
        if !(code[i].is_ident("HashMap") || code[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over path/type syntax to the binding position.
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 8 {
            let p = &code[j - 1];
            let through = p.is_punct("::")
                || p.is_punct("&")
                || p.is_punct("<")
                || p.is_ident("mut")
                || p.is_ident("std")
                || p.is_ident("collections");
            if !through {
                break;
            }
            j -= 1;
            steps += 1;
        }
        if j == 0 {
            continue;
        }
        let before = &code[j - 1];
        if before.is_punct(":") || before.is_punct("=") {
            if j >= 2 && code[j - 2].kind == TokenKind::Ident {
                names.push(code[j - 2].text.as_str());
            } else if j >= 3 && code[j - 3].kind == TokenKind::Ident && code[j - 2].is_ident("mut")
            {
                names.push(code[j - 3].text.as_str());
            }
        }
    }
    if names.is_empty() {
        return;
    }
    // Pass 2: iterations over those names.
    for i in 0..n {
        if code[i].kind != TokenKind::Ident || !names.contains(&code[i].text.as_str()) {
            continue;
        }
        let method_iter = i + 2 < n
            && code[i + 1].is_punct(".")
            && HASH_ITER_METHODS.contains(&code[i + 2].text.as_str());
        let for_iter = {
            let mut j = i;
            while j > 0 && (code[j - 1].is_punct("&") || code[j - 1].is_ident("mut")) {
                j -= 1;
            }
            j > 0 && code[j - 1].is_ident("in")
        };
        if !(method_iter || for_iter) {
            continue;
        }
        let discharged = code[i..n.min(i + SORT_DISCHARGE_WINDOW)]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text.starts_with("sort"));
        if !discharged {
            out.push(finding(
                ctx,
                "hash-order-leak",
                code[i].line,
                format!(
                    "iteration over hash collection `{}` with no nearby sort: hash order \
                     can leak into the output — collect and sort, use a BTree collection, \
                     or pragma with the order-insensitivity argument",
                    code[i].text
                ),
            ));
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "in", "mut", "dyn", "return", "break", "continue", "else", "match", "if", "while", "for",
    "loop", "move", "ref", "as", "where", "let", "unsafe", "pub", "use", "impl", "fn", "struct",
    "enum", "trait", "type", "static", "const", "crate", "mod",
];

/// `panic-in-lib`: aborting constructs in non-test library code.
///
/// Always: bare `.unwrap()`, `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`. Policy-gated: `.expect(…)` (the message documents the
/// invariant — allowed by the repo policy) and index expressions
/// (available for audits via [`RuleConfig::strict`]).
fn panic_in_lib(ctx: &FileContext, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    let code = &ctx.code;
    let n = code.len();
    for i in 0..n {
        if ctx.in_test[i] {
            continue;
        }
        let t = &code[i];
        let next_is = |s: &str| i + 1 < n && code[i + 1].is_punct(s);
        if t.is_ident("unwrap") && next_is("(") {
            out.push(finding(
                ctx,
                "panic-in-lib",
                t.line,
                "bare `.unwrap()` in library code: return a typed error, prove the \
                 invariant with `.expect(\"why this cannot fail\")`, or restructure"
                    .to_string(),
            ));
        } else if cfg.panic_expect && t.is_ident("expect") && next_is("(") {
            out.push(finding(
                ctx,
                "panic-in-lib",
                t.line,
                "`.expect(…)` in library code (strict policy)".to_string(),
            ));
        } else if next_is("!")
            && (t.is_ident("panic")
                || t.is_ident("unreachable")
                || t.is_ident("todo")
                || t.is_ident("unimplemented"))
        {
            out.push(finding(
                ctx,
                "panic-in-lib",
                t.line,
                format!(
                    "`{}!` in library code: return a typed error instead",
                    t.text
                ),
            ));
        } else if cfg.panic_index && t.is_punct("[") && i > 0 {
            let p = &code[i - 1];
            let indexable = (p.kind == TokenKind::Ident
                && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                || p.is_punct(")")
                || p.is_punct("]");
            if indexable {
                out.push(finding(
                    ctx,
                    "panic-in-lib",
                    t.line,
                    "index expression in library code (strict policy): can panic out of \
                     bounds"
                        .to_string(),
                ));
            }
        }
    }
}

/// Is this float literal exactly zero (`0.0`, `-0.0` via the unary minus,
/// `0e0`, `0.0f64`, …)?
fn is_zero_literal(text: &str) -> bool {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned.trim_end_matches("f64").trim_end_matches("f32");
    cleaned.parse::<f64>().map(|v| v == 0.0).unwrap_or(false)
}

/// `float-eq`: `==`/`!=` with a float-literal operand in non-test library
/// code.
///
/// Exact equality on computed floats is almost always a tolerance bug.
/// Comparisons against zero are exempt under the repo policy (exactly
/// representable, and `0.0` is this codebase's "untouched" sentinel);
/// other literals (`p == 1.0` dispatch constants) need a pragma arguing
/// exact representability. Purely lexical: only literal operands are
/// visible — `a == b` on two float *variables* is type information a
/// lexer does not have, which is why the strict gates double-check
/// determinism dynamically.
fn float_eq(ctx: &FileContext, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    let code = &ctx.code;
    let n = code.len();
    for i in 0..n {
        if ctx.in_test[i] || !(code[i].is_punct("==") || code[i].is_punct("!=")) {
            continue;
        }
        // Operand after the op (skipping a unary minus); operand before.
        let mut rhs = i + 1;
        if rhs < n && code[rhs].is_punct("-") {
            rhs += 1;
        }
        let lit = if rhs < n && code[rhs].kind == TokenKind::Float {
            Some(&code[rhs].text)
        } else if i > 0 && code[i - 1].kind == TokenKind::Float {
            Some(&code[i - 1].text)
        } else {
            None
        };
        let Some(lit) = lit else { continue };
        if !cfg.float_eq_zero && is_zero_literal(lit) {
            continue;
        }
        out.push(finding(
            ctx,
            "float-eq",
            code[i].line,
            format!(
                "exact float comparison against `{lit}`: use a tolerance, or pragma with \
                 the exact-representability argument"
            ),
        ));
    }
}

/// `nondeterminism`: wall clocks and environment reads in non-test
/// library code.
///
/// `Instant`/`SystemTime`/`RandomState`/`thread_rng` and `env::var*` make
/// output depend on when/where the process runs — poison for bit-identical
/// replay, which the certificate machinery (DESIGN.md §9) relies on.
/// `env!` (compile-time) is deliberately not flagged: it is a build-time
/// constant, not a runtime read. The `mmb-bench` harness is classified
/// [`FileClass::Harness`] and exempt — measuring wall time is its job.
fn nondeterminism(ctx: &FileContext, out: &mut Vec<Finding>) {
    let code = &ctx.code;
    let n = code.len();
    for i in 0..n {
        if ctx.in_test[i] {
            continue;
        }
        let t = &code[i];
        let named = t.is_ident("Instant")
            || t.is_ident("SystemTime")
            || t.is_ident("RandomState")
            || t.is_ident("thread_rng");
        let env_read = t.is_ident("env")
            && i + 2 < n
            && code[i + 1].is_punct("::")
            && (code[i + 2].is_ident("var")
                || code[i + 2].is_ident("var_os")
                || code[i + 2].is_ident("vars"));
        if named || env_read {
            out.push(finding(
                ctx,
                "nondeterminism",
                t.line,
                format!(
                    "`{}` in deterministic library code: output must not depend on \
                     wall clock or environment — thread the value in from the caller, \
                     or pragma with the proof it never reaches algorithm output",
                    if env_read {
                        "env::var"
                    } else {
                        t.text.as_str()
                    }
                ),
            ));
        }
    }
}

/// `catch-unwind`: `catch_unwind(…)` call sites in non-test library code.
///
/// An unwind boundary silently converts bugs into recoverable values, and
/// `AssertUnwindSafe` is a claim the compiler cannot check. The workspace
/// allows `catch_unwind` only at audited isolation boundaries (the
/// resilient ladder's rung boundary, the batch item boundary); each site
/// needs a pragma whose reason argues why state observed after the unwind
/// is sound — typically that everything the closure touches is rebuilt
/// per call or rolled back on `Drop`. Fires on call sites only (`use`
/// imports are not boundaries).
fn catch_unwind_boundary(ctx: &FileContext, out: &mut Vec<Finding>) {
    let code = &ctx.code;
    let n = code.len();
    for i in 0..n {
        if ctx.in_test[i] {
            continue;
        }
        let t = &code[i];
        if t.is_ident("catch_unwind") && i + 1 < n && code[i + 1].is_punct("(") {
            out.push(finding(
                ctx,
                "catch-unwind",
                t.line,
                "`catch_unwind` in library code: an unaudited unwind boundary can mask \
                 bugs and observe broken invariants — pragma with the argument for why \
                 post-unwind state is sound (what is rebuilt or rolled back)"
                    .to_string(),
            ));
        }
    }
}

/// `unsafe-forbidden`: any `unsafe` token, anywhere.
///
/// Every workspace crate is `#![forbid(unsafe_code)]`; this rule is the
/// linter-side mirror so the gate catches an attribute deletion *and* the
/// new unsafe block in the same run.
fn unsafe_forbidden(ctx: &FileContext, out: &mut Vec<Finding>) {
    for t in &ctx.code {
        if t.is_ident("unsafe") {
            out.push(finding(
                ctx,
                "unsafe-forbidden",
                t.line,
                "`unsafe` is forbidden workspace-wide (no crate needs it; the \
                 `#![forbid(unsafe_code)]` attributes lock that in)"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileClass, FileContext};

    fn run(src: &str, class: FileClass, cfg: RuleConfig) -> Vec<Finding> {
        let ctx = FileContext::new("t.rs", src, class);
        check_file(&ctx, &cfg).0
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn partial_cmp_fires_everywhere_even_tests() {
        let src =
            "#[cfg(test)]\nmod tests { fn t() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); } }\n";
        let f = run(src, FileClass::Lib, RuleConfig::repo());
        assert!(rules_of(&f).contains(&"nan-unsafe-cmp"));
        // … but the unwrap inside cfg(test) is not a panic-in-lib finding.
        assert!(!rules_of(&f).contains(&"panic-in-lib"));
    }

    #[test]
    fn total_cmp_is_clean() {
        let f = run(
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }\n",
            FileClass::Lib,
            RuleConfig::repo(),
        );
        assert!(f.is_empty());
    }

    #[test]
    fn hash_iteration_without_sort_fires() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, f64> = HashMap::new(); for (k, v) in &m { emit(k, v); } }\n";
        let f = run(src, FileClass::Lib, RuleConfig::repo());
        assert_eq!(rules_of(&f), ["hash-order-leak"]);
    }

    #[test]
    fn collect_then_sort_discharges() {
        let src = "fn f(m: std::collections::HashMap<u32, f64>) -> Vec<(u32, f64)> {\n  let mut v: Vec<_> = m.into_iter().collect();\n  v.sort_unstable_by(|a, b| a.0.cmp(&b.0));\n  v\n}\n";
        let f = run(src, FileClass::Lib, RuleConfig::repo());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_in_lib_fires_but_expect_is_policy() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() + y.expect(\"set\") }\n";
        let f = run(src, FileClass::Lib, RuleConfig::repo());
        assert_eq!(
            rules_of(&f),
            ["panic-in-lib"],
            "only the bare unwrap under repo policy"
        );
        let f = run(src, FileClass::Lib, RuleConfig::strict());
        assert_eq!(f.iter().filter(|x| x.rule == "panic-in-lib").count(), 2);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = run(
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
            FileClass::Lib,
            RuleConfig::repo(),
        );
        assert!(f.is_empty());
    }

    #[test]
    fn harness_files_may_unwrap() {
        let f = run(
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            FileClass::Harness,
            RuleConfig::repo(),
        );
        assert!(f.is_empty());
    }

    #[test]
    fn float_eq_zero_exempt_under_repo_policy() {
        let src = "fn f(p: f64) -> bool { p == 0.0 || p == -0.0 }\n";
        assert!(run(src, FileClass::Lib, RuleConfig::repo()).is_empty());
        assert_eq!(run(src, FileClass::Lib, RuleConfig::strict()).len(), 2);
        let src = "fn f(p: f64) -> bool { p == 1.0 }\n";
        assert_eq!(
            rules_of(&run(src, FileClass::Lib, RuleConfig::repo())),
            ["float-eq"]
        );
    }

    #[test]
    fn nondeterminism_fires_on_clocks_not_env_macro() {
        let src = "fn f() { let t = std::time::Instant::now(); let p = env!(\"CARGO_MANIFEST_DIR\"); let v = std::env::var(\"X\"); }\n";
        let f = run(src, FileClass::Lib, RuleConfig::repo());
        assert_eq!(f.iter().filter(|x| x.rule == "nondeterminism").count(), 2);
    }

    #[test]
    fn pragma_suppresses_and_unused_pragma_fires() {
        let src = "// lint: allow(float-eq) — 1.0 is exactly representable\nfn f(p: f64) -> bool { p == 1.0 }\n// lint: allow(unsafe-forbidden) — stale excuse\nfn g() {}\n";
        let ctx = FileContext::new("t.rs", src, FileClass::Lib);
        let (f, suppressed) = check_file(&ctx, &RuleConfig::repo());
        assert_eq!(suppressed, 1);
        assert_eq!(rules_of(&f), ["unused-pragma"]);
    }

    #[test]
    fn unknown_rule_in_pragma_is_bad() {
        let src = "// lint: allow(no-such-rule) — whatever\nfn g() {}\n";
        let f = run(src, FileClass::Lib, RuleConfig::repo());
        assert_eq!(rules_of(&f), ["bad-pragma"]);
    }

    #[test]
    fn indexing_strict_mode() {
        let src = "fn f(a: &[f64], i: usize) -> f64 { a[i] }\n";
        assert!(run(src, FileClass::Lib, RuleConfig::repo()).is_empty());
        assert_eq!(
            rules_of(&run(src, FileClass::Lib, RuleConfig::strict())),
            ["panic-in-lib"]
        );
        // Attributes and slice types must not count as indexing.
        let src = "#[derive(Clone)]\nstruct S { xs: [f64; 4] }\n";
        assert!(run(src, FileClass::Lib, RuleConfig::strict()).is_empty());
    }

    #[test]
    fn catch_unwind_fires_in_lib_but_not_tests_imports_or_harness() {
        let src = "fn f() { let r = std::panic::catch_unwind(|| g()); }\n";
        assert_eq!(
            rules_of(&run(src, FileClass::Lib, RuleConfig::repo())),
            ["catch-unwind"]
        );
        assert!(run(src, FileClass::Harness, RuleConfig::repo()).is_empty());
        // The import is not a boundary; the cfg(test) call site is exempt.
        let src = "use std::panic::catch_unwind;\n#[cfg(test)]\nmod tests { fn t() { let _ = catch_unwind(|| 1); } }\n";
        assert!(run(src, FileClass::Lib, RuleConfig::repo()).is_empty());
        // A pragma with the soundness argument suppresses it.
        let src = "// lint: allow(catch-unwind) — state is rebuilt per call\nfn f() { let r = std::panic::catch_unwind(|| g()); }\n";
        let ctx = FileContext::new("t.rs", src, FileClass::Lib);
        let (f, suppressed) = check_file(&ctx, &RuleConfig::repo());
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn unsafe_fires_everywhere() {
        let src = "#[cfg(test)]\nmod tests { fn t() { unsafe { std::hint::unreachable_unchecked() } } }\n";
        let f = run(src, FileClass::Harness, RuleConfig::repo());
        assert_eq!(rules_of(&f), ["unsafe-forbidden"]);
    }
}
