//! Pragma-grammar fixture: audited suppressions that must hold, plus the
//! two meta-rule triggers (`bad-pragma`, `unused-pragma`). Expected
//! findings: exactly one bad-pragma and one unused-pragma; the three real
//! violations below are all suppressed.

use std::collections::HashMap;

// Suppressed hash iteration (leading-comment placement).
fn reduced(m: &HashMap<u32, f64>) -> f64 {
    // lint: allow(hash-order-leak) — fold into a sum; addition reordering
    // is observationally absorbed by the caller's tolerance.
    m.values().sum()
}

// Suppressed float-eq (trailing-comment placement) and a multi-rule
// pragma covering two rules on the next line.
fn dispatch(p: f64, q: f64) -> f64 {
    let fast = p == 2.0; // lint: allow(float-eq) — exact dispatch constant
    // lint: allow(float-eq, nondeterminism) — exact sentinel; timing is
    // observational only.
    let slow = q == 4.0 && std::time::Instant::now().elapsed().as_nanos() == 0;
    if fast || slow {
        p
    } else {
        q
    }
}

// bad-pragma: looks like a pragma, parses wrong (missing reason).
fn missing_reason(v: &[f64]) -> f64 {
    // lint: allow(panic-in-lib)
    v.iter().sum()
}

// unused-pragma: allows a rule that never fires on the covered line.
fn stale(v: &[f64]) -> f64 {
    // lint: allow(nan-unsafe-cmp) — comparator was rewritten long ago
    v.iter().fold(0.0, |a, &b| a + b)
}
