//! Tricky-negative fixture: everything in here *looks* like a violation
//! to a naive scanner but is clean under the strict policy. Zero findings
//! expected — each block documents the lexer or rule subtlety it guards.

use std::collections::HashMap;

// Strings are not code: `partial_cmp`, `unwrap`, `unsafe` in literals.
fn strings() -> Vec<String> {
    vec![
        "a.partial_cmp(b).unwrap()".to_string(),
        r"raw \ string with unsafe { } and panic!()".to_string(),
        r#"raw-hash "quoted" partial_cmp"#.to_string(),
        "multi-line with a continuation \
         still one string: x.partial_cmp(y)"
            .to_string(),
    ]
}

// A `'"'` char literal must not open a string (which would swallow the
// rest of the file and hide the tokens after it from the rules).
fn quote_char(c: char) -> bool {
    c == '"' || c == '\''
}

/* Nested /* block comments */ hide `partial_cmp` and unsafe { } too. */

// Hash iteration discharged by an adjacent sort (the collect-then-sort
// idiom the rule's discharge window exists for).
fn sorted_hash(m: &HashMap<u32, f64>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

// total_cmp with an index tie-break: the sanctioned comparator shape.
fn total(xs: &mut [(usize, f64)]) {
    xs.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
}

// `env!` reads the environment at *compile* time — deterministic.
fn compile_time_env() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}

// Floats compared through an explicit tolerance, and integer `==`.
fn tolerant(a: f64, b: f64, n: u32) -> bool {
    (a - b).abs() < 1e-12 && n == 3
}

// A lifetime is not a char literal; `1..=k` is not a float.
fn lifetimes<'a>(xs: &'a [u64], k: usize) -> &'a [u64] {
    let _ = (1..=k).count();
    xs.split_at(0).0
}

// `unwrap_or` / `unwrap_or_else` / `unwrap_or_default` are total.
fn total_unwraps(o: Option<f64>) -> f64 {
    o.unwrap_or(0.0).max(o.unwrap_or_else(|| 1.0)) + Option::<f64>::None.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    // Everything the Lib class forbids is fine in tests (except the
    // comparator/hash/unsafe rules, none of which appear here).
    #[test]
    fn exact_assertions_are_test_idiom() {
        let v = vec![1.0f64, 2.0];
        assert!(v[0] == 1.0);
        assert_eq!(v.first().copied().unwrap(), 1.0);
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 3600);
    }
}
