//! Seeded-violation fixture: every rule must fire at least once on this
//! file under the strict policy. Scanned as `FileClass::Lib`; excluded
//! from the real workspace walk (see `scan::SKIP_PREFIXES`) and from
//! compilation (not under `src/`). Each block is labeled with the rule it
//! is there to trigger.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

// nan-unsafe-cmp (+ panic-in-lib for the bare unwrap).
fn nan_unsafe(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

// nan-unsafe-cmp: `unwrap_or` silently mis-orders instead of panicking —
// still the same bug class.
fn nan_unsafe_silent(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

// hash-order-leak: iteration with no sort anywhere near.
fn hash_leak(m: &HashMap<u32, f64>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in m.iter() {
        out.push(*k);
    }
    out
}

// hash-order-leak: `for … in &set` form.
fn hash_leak_for(set: &HashSet<u32>) -> u32 {
    let mut acc = 0;
    for v in set {
        acc ^= acc.rotate_left(1) ^ *v;
    }
    acc
}

// panic-in-lib: aborting macros.
fn panics(flag: bool) {
    if flag {
        panic!("boom");
    }
    unreachable!();
}

// panic-in-lib (strict only): expect and indexing.
fn strict_panics(v: &[f64], m: &HashMap<u32, f64>) -> f64 {
    let x = m.get(&0).copied().expect("key 0 present");
    x + v[3]
}

// float-eq, including the zero-literal form (strict only).
fn float_eqs(a: f64, b: f64) -> bool {
    let exact = a == 1.5;
    let zero = b == 0.0;
    let ne = a != 2.25;
    exact || zero || ne
}

// nondeterminism: wall clock and environment reads.
fn nondet() -> bool {
    let t = Instant::now();
    let e = std::env::var("HOME").is_ok();
    e && t.elapsed().as_nanos() > 0
}

// unsafe-forbidden.
fn unholy(p: *const f64) -> f64 {
    unsafe { *p }
}

// catch-unwind: an unaudited unwind boundary swallowing bugs.
fn swallow(f: impl FnOnce() -> f64 + std::panic::UnwindSafe) -> f64 {
    std::panic::catch_unwind(f).unwrap_or(0.0)
}

// Inside #[cfg(test)], panic/float-eq/nondeterminism rules are off — but
// the NaN-comparator rule still applies (a nondeterministic comparator is
// as unsound in a test as in the library).
#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_and_compare() {
        let v = vec![1.0f64];
        assert!(v[0] == 1.0);
        v.first().unwrap();
        let mut w = vec![2.0f64, 1.0];
        w.sort_by(|a, b| a.partial_cmp(b).unwrap()); // still flagged
    }
}
