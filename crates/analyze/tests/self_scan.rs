//! The linter's own acceptance test: the live workspace scans clean under
//! the repo gate policy. This is the same check `reproduce lint` runs in
//! CI — kept as a plain test too so `cargo test` alone catches a
//! regression (a new NaN-unsafe comparator, an unpragma'd hash iteration)
//! without needing the harness binary.

use mmb_analyze::{scan_workspace, workspace_root};

#[test]
fn live_workspace_is_lint_clean() {
    let report = scan_workspace(&workspace_root()).expect("workspace sources readable");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walker break?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace lint findings:\n{}",
        report.render_table()
    );
    assert!(
        report.suppressed > 0,
        "the audited-exception pragmas should register as suppressions"
    );
}
