//! Fixture-corpus tests: the linter's behavior pinned file by file.
//!
//! * `violations.rs` — every rule fires; the full JSON report is compared
//!   byte-for-byte against the golden `expected_violations.json` (so a
//!   rule that drifts — new line numbers, reworded message, lost finding —
//!   fails loudly with a diffable artifact).
//! * `clean.rs` — tricky negatives; zero findings even under strict.
//! * `pragmas.rs` — suppressions hold, and the meta rules flag the one
//!   malformed and the one stale pragma.

use std::fs;
use std::path::PathBuf;

use mmb_analyze::{analyze_source, FileClass, Report, RuleConfig, RULE_NAMES};

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
    (format!("crates/analyze/fixtures/{name}"), src)
}

fn scan(name: &str, cfg: &RuleConfig) -> Report {
    let (path, src) = fixture(name);
    analyze_source(&path, &src, FileClass::Lib, cfg)
}

#[test]
fn violations_match_golden_json() {
    let report = scan("violations.rs", &RuleConfig::strict());
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/expected_violations.json");
    let golden = fs::read_to_string(&golden_path).expect("golden file present");
    assert_eq!(
        report.to_json(),
        golden,
        "violations.rs findings drifted from the golden file; if the change \
         is intentional, regenerate fixtures/expected_violations.json from \
         Report::to_json()"
    );
}

#[test]
fn every_rule_fires_on_the_seeded_fixtures() {
    let mut fired: Vec<&str> = Vec::new();
    for (name, cfg) in [
        ("violations.rs", RuleConfig::strict()),
        ("pragmas.rs", RuleConfig::strict()),
    ] {
        for f in scan(name, &cfg).findings {
            if !fired.contains(&f.rule) {
                fired.push(f.rule);
            }
        }
    }
    for rule in RULE_NAMES {
        assert!(
            fired.contains(rule),
            "rule `{rule}` never fired on the fixture corpus"
        );
    }
}

#[test]
fn clean_fixture_is_clean_even_under_strict() {
    let report = scan("clean.rs", &RuleConfig::strict());
    assert!(
        report.is_clean(),
        "false positives on clean.rs:\n{}",
        report.render_table()
    );
}

#[test]
fn pragmas_suppress_and_meta_rules_fire() {
    let report = scan("pragmas.rs", &RuleConfig::strict());
    // The three real violations are pragma'd away…
    assert_eq!(
        report.suppressed, 4,
        "hash-order + float-eq ×2 + nondeterminism suppressed"
    );
    // …leaving exactly the two meta findings.
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        ["bad-pragma", "unused-pragma"],
        "{}",
        report.render_table()
    );
    let bad = &report.findings[0];
    assert!(
        bad.message.contains("reason"),
        "bad-pragma names the defect: {}",
        bad.message
    );
}

#[test]
fn test_regions_relax_panics_but_not_comparators() {
    let report = scan("violations.rs", &RuleConfig::strict());
    // The #[cfg(test)] mod at the bottom unwraps and float-compares
    // freely — but its partial_cmp comparator is still caught.
    let in_test_mod: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.line >= 80)
        .map(|f| f.rule)
        .collect();
    assert_eq!(in_test_mod, ["nan-unsafe-cmp"], "{}", report.render_table());
}

#[test]
fn repo_policy_is_strictly_weaker_than_strict() {
    for name in ["violations.rs", "clean.rs", "pragmas.rs"] {
        let strict = scan(name, &RuleConfig::strict());
        let repo = scan(name, &RuleConfig::repo());
        let strict_set: Vec<(u32, &str)> =
            strict.findings.iter().map(|f| (f.line, f.rule)).collect();
        for f in &repo.findings {
            assert!(
                strict_set.contains(&(f.line, f.rule)),
                "{name}: repo policy found {}:{} not found by strict",
                f.rule,
                f.line
            );
        }
        assert!(repo.findings.len() <= strict.findings.len());
    }
}
