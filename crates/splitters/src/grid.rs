//! GridSplit — the separator theorem for `d`-dimensional grid graphs with
//! arbitrary edge costs (Section 6, Theorem 19).
//!
//! The algorithm follows the paper's `GridSplit` procedure exactly:
//!
//! 1. Scale costs so the minimum positive cost is 1 (then the fluctuation is
//!    `φ = ‖c‖_∞`).
//! 2. Pick the cell side `ℓ = max(⌈(‖c‖₁/d)^{1/d}⌉, 1)` and the cheapest of
//!    the `ℓ` shifted coarsenings `ϕ_α^{(ℓ)}(a) = ⌊(a + (α−1)·1)/ℓ⌋`
//!    (Lemma 20: the cheapest has coarse cost `‖c/ϕ‖₁ ≤ ‖c‖₁/ℓ`, because
//!    every grid edge is cut by exactly one shift `α`).
//! 3. Order the cells lexicographically, take whole cells while they fit
//!    under the splitting value (a *monotone* prefix — Lemmas 21–24), and
//!    recurse into the straddling cell with reduced costs
//!    `c′ = (c − 1)/2`, discarding edges of cost ≤ 1.
//! 4. When `ℓ = 1` the coarse graph is the grid itself; a lexicographic
//!    vertex prefix finishes the job.
//!
//! Costs halve per level, so there are `O(log φ)` levels (Lemma 27) and the
//! returned set costs `O(d·log^{1/d}(φ+1)·‖c‖_{d/(d−1)})` (Theorem 19).

use std::cell::RefCell;
use std::collections::HashMap;

use mmb_graph::gen::grid::GridGraph;
use mmb_graph::workspace::{scratch_mode, ScratchMode};
use mmb_graph::{VertexId, VertexSet};

use crate::{prefix_split, Splitter};

/// Reusable per-thread buffers of the fast `split` path: one split call
/// makes `O(levels)` uses of each, and a solve makes thousands of split
/// calls, so pulling these out of the call eliminates the per-call malloc
/// traffic entirely.
#[derive(Default)]
struct SplitScratch {
    members: Vec<VertexId>,
    edges: Vec<(i64, f64)>,
    per_alpha: HashMap<i64, f64>,
    alpha_dense: Vec<f64>,
    keyed: Vec<(u64, u32, VertexId)>,
    keys_buf: Vec<u32>,
    counts: Vec<u32>,
    grouped: Vec<VertexId>,
    extents: Vec<u64>,
    shifts: Vec<u64>,
}

thread_local! {
    static SPLIT_SCRATCH: RefCell<SplitScratch> = RefCell::default();
}

/// `val / ell` for `val < 2^51` via reciprocal multiplication with an
/// exact fixup — the packed-key hot loop's division.
#[inline]
fn udiv_rcp(val: u64, ell: u64, inv: f64) -> u64 {
    let mut q = (val as f64 * inv) as u64;
    // The estimate is within a couple of ulps of the true quotient; the
    // saturating loops make the result exact regardless.
    while (q + 1).saturating_mul(ell) <= val {
        q += 1;
    }
    while q.saturating_mul(ell) > val {
        q -= 1;
    }
    q
}

/// Splitting sets for grid graphs with arbitrary positive edge costs.
pub struct GridSplitter<'g> {
    grid: &'g GridGraph,
    /// Costs scaled so the minimum positive cost is 1 (zero costs stay 0,
    /// they are free to cut and vanish after the first level).
    scaled: Vec<f64>,
    /// Rank of each vertex in the lexicographic coordinate order —
    /// `sort_unstable_by_key(lex_rank)` replaces comparator sorts over
    /// coordinate slices in the hot path.
    lex_rank: Vec<u32>,
    /// Per-axis coordinate minima/maxima of the whole instance.
    mins: Vec<i64>,
    /// See [`GridSplitter::mins`].
    maxs: Vec<i64>,
    /// Global coordinate bounds over all axes (`min(mins)` / `max(maxs)`).
    coord_lo: i64,
    /// See [`GridSplitter::coord_lo`].
    coord_hi: i64,
    /// Whether `Π (max_a − min_a + 2)` fits in `u64`, i.e. cell keys of
    /// every coarsening level pack into one machine word. (False only for
    /// astronomically spread-out point sets; those route to the legacy
    /// path.)
    pack_safe: bool,
    /// `‖scaled‖_∞`: the first level `L` with `(c_max + 1)/2^L − 1 ≤ 0`
    /// has **no** surviving edges, so the fast path can skip its edge scan
    /// (`c1 = 0` exactly) and go straight to the lexicographic prefix.
    max_scaled: f64,
    /// Per edge: the smaller coordinate along the (unique) axis the edge
    /// spans — the `t` of the Lemma 20 shift accounting, precomputed so
    /// the hot scan does one load instead of two coordinate lookups.
    edge_t: Vec<i64>,
    /// Whether every scaled cost is exactly 1.0 (unit-cost instances):
    /// the scan then skips the cost load entirely.
    uniform_cost: bool,
    name: &'static str,
}

impl<'g> GridSplitter<'g> {
    /// Bind to a grid graph and its edge costs.
    pub fn new(grid: &'g GridGraph, costs: &[f64]) -> Self {
        assert_eq!(
            costs.len(),
            grid.graph.num_edges(),
            "cost vector length mismatch"
        );
        assert!(
            costs.iter().all(|&c| c >= 0.0 && c.is_finite()),
            "costs must be finite and >= 0"
        );
        let cmin = costs
            .iter()
            .copied()
            .filter(|&c| c > 0.0)
            .fold(f64::INFINITY, f64::min);
        let scaled = if cmin.is_finite() && cmin > 0.0 {
            costs.iter().map(|&c| c / cmin).collect()
        } else {
            costs.to_vec()
        };
        Self::finish(grid, scaled, "gridsplit")
    }

    /// The naive unit-cost variant: ignores the actual costs when choosing
    /// cuts (the `σ_p(G, c) ≤ σ_p(G, 1)·φ` generalization the paper calls
    /// out as wasteful; ablation experiment E9).
    pub fn unit_cost(grid: &'g GridGraph) -> Self {
        Self::finish(grid, vec![1.0; grid.graph.num_edges()], "gridsplit/unit")
    }

    /// Shared construction tail: precompute the lex ranks and coordinate
    /// bounds the fast path keys off. `O(n log n)` once per splitter,
    /// amortized across every `split` call of a solver's lifetime.
    fn finish(grid: &'g GridGraph, scaled: Vec<f64>, name: &'static str) -> Self {
        let n = grid.graph.num_vertices();
        let d = grid.dim;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| grid.coord(a).cmp(grid.coord(b)));
        let mut lex_rank = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            lex_rank[v as usize] = r as u32;
        }
        let mut mins = vec![i64::MAX; d];
        let mut maxs = vec![i64::MIN; d];
        for v in 0..n as u32 {
            for (a, &x) in grid.coord(v).iter().enumerate() {
                mins[a] = mins[a].min(x);
                maxs[a] = maxs[a].max(x);
            }
        }
        // Fast-path eligibility: per-axis cell ranges must pack into a
        // u64 product, and absolute coordinate magnitudes must leave
        // headroom for the shift arithmetic (`x + α − 1`, `base =
        // (hi/ℓ + 1)·ℓ` with `ℓ ≤ 2^40`) — i64 overflow near the extremes
        // routes to the legacy path instead.
        let pack_safe = n > 0
            && mins
                .iter()
                .zip(&maxs)
                .try_fold(1u128, |acc, (&lo, &hi)| {
                    acc.checked_mul((hi as i128 - lo as i128) as u128 + 2)
                })
                .is_some_and(|p| p <= u64::MAX as u128)
            && mins.iter().all(|&lo| lo > i64::MIN / 4)
            && maxs.iter().all(|&hi| hi < i64::MAX / 4);
        let max_scaled = scaled.iter().copied().fold(0.0f64, f64::max);
        let coord_lo = mins.iter().copied().min().unwrap_or(0);
        let coord_hi = maxs.iter().copied().max().unwrap_or(0);
        let edge_t = grid
            .graph
            .edge_list()
            .iter()
            .map(|&(u, v)| {
                let (cu, cv) = (grid.coord(u), grid.coord(v));
                let axis = (0..d)
                    .find(|&a| cu[a] != cv[a])
                    .expect("edge endpoints share coords");
                cu[axis].min(cv[axis])
            })
            .collect();
        // lint: allow(float-eq) — 1.0 is exactly representable; this is a
        // fast-path dispatch on the scaler's exact sentinel, not arithmetic.
        let uniform_cost = scaled.iter().all(|&c| c == 1.0);
        Self {
            grid,
            scaled,
            lex_rank,
            mins,
            maxs,
            coord_lo,
            coord_hi,
            pack_safe,
            max_scaled,
            edge_t,
            uniform_cost,
            name,
        }
    }

    /// Effective cost of edge `e` at recursion `level`:
    /// `c_L = (c + 1)/2^L − 1`; the edge is present iff `c_L > 0`
    /// (level 0 keeps every edge).
    #[inline]
    fn level_cost(&self, e: u32, level: u32) -> f64 {
        let c = self.scaled[e as usize];
        (c + 1.0) / (1u64 << level.min(62)) as f64 - 1.0
    }

    /// [`GridSplitter::pick_alpha`] over the dense per-shift sums
    /// (`sums[a − 1]` = cut cost of shift `a`; positive costs mean an
    /// untouched shift is exactly `0.0`). Same selection rule: first uncut
    /// shift if any, else cheapest with smallest-α tie-break.
    fn pick_alpha_dense(sums: &[f64]) -> i64 {
        if let Some(i) = sums.iter().position(|&s| s == 0.0) {
            return i as i64 + 1;
        }
        let mut best = 0usize;
        for (i, &s) in sums.iter().enumerate() {
            if s < sums[best] {
                best = i;
            }
        }
        best as i64 + 1
    }

    /// The cheapest shift α (ties to the smallest α so two splitters built
    /// from the same instance always cut identically), or any uncut shift.
    fn pick_alpha(per_alpha: &HashMap<i64, f64>, ell: i64) -> i64 {
        if (per_alpha.len() as i64) < ell {
            // Some shift cuts nothing at all.
            (1..=ell)
                .find(|a| !per_alpha.contains_key(a))
                .expect("len < ell guarantees an uncut shift")
        } else {
            // lint: allow(hash-order-leak) — min under total_cmp with the
            // α tie-break is iteration-order independent.
            *per_alpha
                .iter()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(b.0)))
                .map(|(a, _)| a)
                .expect("ell >= 1 shifts exist in this branch")
        }
    }

    /// The pre-overhaul coarsening (single edge pass into a scratch `Vec`,
    /// HashMap cell grouping with per-member key vectors). Kept verbatim
    /// as the [`ScratchMode::Transient`] reference so perf baselines can
    /// A/B old vs new on identical inputs.
    fn coarsen_legacy(&self, members: &[VertexId], level: u32) -> Option<Vec<Vec<VertexId>>> {
        let d = self.grid.dim;
        let in_s = VertexSet::from_iter(self.grid.graph.num_vertices(), members.iter().copied());

        // Inner edges with positive current cost, described by the axis they
        // span and the smaller coordinate along it.
        let mut c1 = 0.0f64;
        let mut edges: Vec<(i64, f64)> = Vec::new(); // (min coordinate on the differing axis, cost)
        for &v in members {
            for &(nb, e) in self.grid.graph.neighbors(v) {
                if nb <= v || !in_s.contains(nb) {
                    continue;
                }
                let cur = if level == 0 {
                    self.scaled[e as usize]
                } else {
                    self.level_cost(e, level)
                };
                if cur <= 0.0 {
                    continue;
                }
                c1 += cur;
                let (cv, cn) = (self.grid.coord(v), self.grid.coord(nb));
                let axis = (0..d)
                    .find(|&a| cv[a] != cn[a])
                    .expect("edge endpoints share coords");
                edges.push((cv[axis].min(cn[axis]), cur));
            }
        }

        let ell = ((c1 / d as f64).powf(1.0 / d as f64).ceil() as i64).max(1);
        // Guard against pathological cost magnitudes.
        let ell = ell.min(1 << 40);
        if ell <= 1 {
            return None;
        }

        // Lemma 20: each edge is cut by exactly one shift α ∈ [1, ℓ];
        // accumulate per-shift cost sparsely and pick the cheapest.
        let mut per_alpha: HashMap<i64, f64> = HashMap::new();
        for &(t, cost) in edges.iter() {
            let mut alpha = (-t).rem_euclid(ell);
            if alpha == 0 {
                alpha = ell;
            }
            *per_alpha.entry(alpha).or_insert(0.0) += cost;
        }
        let alpha = if (per_alpha.len() as i64) < ell {
            // Some shift cuts nothing at all.
            (1..=ell)
                .find(|a| !per_alpha.contains_key(a))
                .expect("len < ell guarantees an uncut shift")
        } else {
            // Cheapest shift, ties broken by smallest α so two splitters
            // built from the same instance always cut identically.
            // lint: allow(hash-order-leak) — min under total_cmp with the
            // α tie-break is iteration-order independent.
            *per_alpha
                .iter()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(b.0)))
                .map(|(a, _)| a)
                .expect("ell >= 1 shifts exist in this branch")
        };

        // Assign members to cells ϕ_α(x) = ⌊(x + (α−1)·1)/ℓ⌋.
        let mut cell_map: HashMap<Vec<i64>, Vec<VertexId>> = HashMap::new();
        for &v in members {
            let key: Vec<i64> = self
                .grid
                .coord(v)
                .iter()
                .map(|&x| (x + alpha - 1).div_euclid(ell))
                .collect();
            cell_map.entry(key).or_default().push(v);
        }
        let mut keyed: Vec<(Vec<i64>, Vec<VertexId>)> = cell_map.into_iter().collect();
        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Some(keyed.into_iter().map(|(_, vs)| vs).collect())
    }

    /// Lexicographic order of `members` by coordinates (the ℓ = 1 case).
    fn lex_order(&self, members: &mut [VertexId]) {
        members.sort_unstable_by(|&a, &b| self.grid.coord(a).cmp(self.grid.coord(b)));
    }

    /// The pre-overhaul `split` loop over [`GridSplitter::coarsen_legacy`]:
    /// per-level cell materialization with per-member key allocations.
    /// Kept as the [`ScratchMode::Transient`] perf-baseline reference (and
    /// the fallback for point sets whose coordinate spread defeats key
    /// packing).
    fn split_legacy(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        let n = self.grid.graph.num_vertices();
        let mut members: Vec<VertexId> = w_set.iter().collect();
        let total: f64 = members.iter().map(|&v| weights[v as usize]).sum();
        let mut rem = target.clamp(0.0, total);
        let mut taken = VertexSet::empty(n);
        let mut level = 0u32;

        loop {
            match self.coarsen_legacy(&members, level) {
                None => {
                    // ℓ = 1: lexicographic vertex prefix within the cell.
                    self.lex_order(&mut members);
                    let local = prefix_split(n, &members, weights, rem);
                    taken.union_with(&local);
                    return taken;
                }
                Some(cells) => {
                    // Take whole cells in lex order while they fit; recurse
                    // into the straddling cell.
                    let mut straddle: Option<Vec<VertexId>> = None;
                    for cell in cells {
                        let wcell: f64 = cell.iter().map(|&v| weights[v as usize]).sum();
                        if straddle.is_none() && wcell <= rem {
                            rem -= wcell;
                            for &v in &cell {
                                taken.insert(v);
                            }
                        } else if straddle.is_none() {
                            straddle = Some(cell);
                        }
                        // Cells after the straddling one are left out.
                    }
                    match straddle {
                        None => return taken, // everything fit (rem ≈ 0 now)
                        Some(cell) => {
                            members = cell;
                            level += 1;
                        }
                    }
                }
            }
        }
    }

    /// The overhauled `split` loop: counting-sort cell grouping over
    /// packed `u64` keys, thread-local scratch buffers (zero steady-state
    /// allocation beyond the returned set), reciprocal-multiply cell
    /// arithmetic, and dead-level skipping — `O(vol)`-ish per level.
    ///
    /// On the counting-sort grouping path (anything but sparse point sets
    /// spread over astronomically large coordinate ranges) members keep
    /// their id order inside every cell, so cell weight sums accumulate in
    /// **exactly the legacy order** and the returned set is bit-identical
    /// to [`GridSplitter::split_legacy`]. On the comparison-sort fallback
    /// the within-cell order is lexicographic instead, which can flip
    /// floating-point ties on inputs whose partial sums are inexact —
    /// still within the Definition 3 contract.
    fn split_fast(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        SPLIT_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.split_fast_in(&mut scratch, w_set, weights, target),
            // Defensive: if a caller ever re-enters split on this thread,
            // fall back to fresh buffers instead of panicking.
            Err(_) => self.split_fast_in(&mut SplitScratch::default(), w_set, weights, target),
        })
    }

    fn split_fast_in(
        &self,
        scratch: &mut SplitScratch,
        w_set: &VertexSet,
        weights: &[f64],
        target: f64,
    ) -> VertexSet {
        let n = self.grid.graph.num_vertices();
        let d = self.grid.dim;
        let SplitScratch {
            members,
            edges,
            per_alpha,
            alpha_dense,
            keyed,
            keys_buf,
            counts,
            grouped,
            extents,
            shifts,
        } = scratch;
        members.clear();
        members.extend(w_set.iter());
        let total: f64 = members.iter().map(|&v| weights[v as usize]).sum();
        let mut rem = target.clamp(0.0, total);
        let mut taken = VertexSet::empty(n);
        let mut level = 0u32;

        loop {
            if members.is_empty() {
                return taken;
            }
            // Inner edges with positive current cost: total + per-axis
            // minimum coordinate (for the Lemma 20 shift accounting). Once
            // the level's cost reduction has extinguished even the most
            // expensive edge, `c1 = 0` without scanning anything.
            let mut c1 = 0.0f64;
            edges.clear();
            let level_alive =
                level == 0 || (self.max_scaled + 1.0) / (1u64 << level.min(62)) as f64 - 1.0 > 0.0;
            if level_alive {
                // Level 0 works on exactly `w_set`; deeper levels mark the
                // straddling cell in a fresh bitset.
                let owned;
                let in_s = if level == 0 {
                    w_set
                } else {
                    owned = VertexSet::from_iter(n, members.iter().copied());
                    &owned
                };
                let uniform = self.uniform_cost && level == 0;
                for &v in members.iter() {
                    for &(nb, e) in self.grid.graph.neighbors(v) {
                        if nb <= v || !in_s.contains(nb) {
                            continue;
                        }
                        let cur = if uniform {
                            1.0
                        } else if level == 0 {
                            self.scaled[e as usize]
                        } else {
                            self.level_cost(e, level)
                        };
                        if cur <= 0.0 {
                            continue;
                        }
                        c1 += cur;
                        edges.push((self.edge_t[e as usize], cur));
                    }
                }
            }
            let ell = ((c1 / d as f64).powf(1.0 / d as f64).ceil() as i64).max(1);
            let ell = ell.min(1 << 40);
            if ell <= 1 {
                // ℓ = 1: lexicographic vertex prefix within the cell — one
                // u32 key sort instead of a coordinate-comparator sort, and
                // the prefix lands in `taken` directly (the shared
                // [`prefix_cut_len`] decision rule, no intermediate set).
                members.sort_unstable_by_key(|&v| self.lex_rank[v as usize]);
                let cut = crate::prefix_cut_len(members, weights, rem);
                for &v in &members[..cut] {
                    taken.insert(v);
                }
                return taken;
            }
            // Lemma 20 per-shift accounting: a dense (reused) buffer when
            // ℓ is small — direct indexing instead of hashing every edge —
            // with the HashMap as the big-ℓ fallback. Same edge order, so
            // identical sums and the identical α either way. The per-edge
            // `(−t) mod ℓ` runs through the same reciprocal trick as the
            // cell packing when the coordinate magnitudes allow it:
            // `base − t ≥ 0` for `base` the smallest multiple of ℓ above
            // every coordinate, and `(base − t) mod ℓ = (−t) mod ℓ`.
            let ell_u = ell as u64;
            let inv = 1.0 / ell as f64;
            let alpha = if ell <= (1 << 16) {
                alpha_dense.clear();
                alpha_dense.resize(ell as usize, 0.0);
                let base = (self.coord_hi.div_euclid(ell) + 1) * ell;
                if (base - self.coord_lo) < 1 << 51 {
                    for &(t, cost) in edges.iter() {
                        let val = (base - t) as u64;
                        let r = val - udiv_rcp(val, ell_u, inv) * ell_u;
                        let idx = if r == 0 { ell_u - 1 } else { r - 1 };
                        alpha_dense[idx as usize] += cost;
                    }
                } else {
                    for &(t, cost) in edges.iter() {
                        let mut alpha = (-t).rem_euclid(ell);
                        if alpha == 0 {
                            alpha = ell;
                        }
                        alpha_dense[(alpha - 1) as usize] += cost;
                    }
                }
                Self::pick_alpha_dense(alpha_dense)
            } else {
                per_alpha.clear();
                for &(t, cost) in edges.iter() {
                    let mut alpha = (-t).rem_euclid(ell);
                    if alpha == 0 {
                        alpha = ell;
                    }
                    *per_alpha.entry(alpha).or_insert(0.0) += cost;
                }
                Self::pick_alpha(per_alpha, ell)
            };

            // Pack each member's cell ϕ_α(x) = ⌊(x + (α−1)·1)/ℓ⌋, offset
            // to the instance's minimum cell, into one u64 (mixed radix
            // over the per-axis cell ranges; `pack_safe` guaranteed the
            // product fits). The per-axis offset folds into a shifted
            // non-negative division `(x − min_a + r_a) / ℓ`, computed by
            // reciprocal multiplication with an exact fixup when the
            // coordinate span allows it.
            shifts.clear();
            extents.clear();
            let mut rcp_ok = true;
            for a in 0..d {
                shifts.push((self.mins[a] + alpha - 1).rem_euclid(ell) as u64);
                rcp_ok &= ((self.maxs[a] - self.mins[a]) as u64).saturating_add(ell_u) < 1 << 51;
            }
            let cell_of = |x: i64, a: usize| -> u64 {
                let val = (x - self.mins[a]) as u64 + shifts[a];
                if rcp_ok {
                    udiv_rcp(val, ell_u, inv)
                } else {
                    val / ell_u
                }
            };
            let mut cell_count: u128 = 1;
            for a in 0..d {
                let extent = cell_of(self.maxs[a], a) + 1;
                extents.push(extent);
                cell_count = cell_count.saturating_mul(extent as u128);
            }
            let extents = &*extents;
            let pack_key = |v: VertexId| {
                let c = self.grid.coord(v);
                let mut key = 0u64;
                for a in 0..d {
                    key = key * extents[a] + cell_of(c[a], a);
                }
                key
            };

            // Take whole cells (= maximal equal-key runs) in order while
            // they fit; recurse into the straddling cell.
            //
            // Primary grouping is a **counting sort** over the packed
            // keys: stable, so members keep their id order inside every
            // cell — the exact iteration (and f64 summation) order of the
            // legacy HashMap grouping, at `O(vol + cells)`. When the cell
            // universe is too large relative to the member count (sparse
            // point sets over huge coordinate ranges), a comparison sort
            // on (key, lex rank) steps in instead.
            let mut straddle = false;
            if cell_count <= (members.len() * 4 + 64) as u128 && cell_count <= u32::MAX as u128 {
                keys_buf.clear();
                counts.clear();
                counts.resize(cell_count as usize, 0);
                for &v in members.iter() {
                    let k = pack_key(v) as u32;
                    keys_buf.push(k);
                    counts[k as usize] += 1;
                }
                // Prefix-sum into running positions, then stable placement.
                let mut running = 0u32;
                for c in counts.iter_mut() {
                    let here = *c;
                    *c = running;
                    running += here;
                }
                grouped.clear();
                grouped.resize(members.len(), 0);
                for (idx, &v) in members.iter().enumerate() {
                    let k = keys_buf[idx] as usize;
                    grouped[counts[k] as usize] = v;
                    counts[k] += 1;
                }
                // After placement counts[k] is cell k's end offset.
                let mut start = 0usize;
                for &end in counts.iter() {
                    let end = end as usize;
                    if end == start {
                        continue;
                    }
                    let cell = &grouped[start..end];
                    let wcell: f64 = cell.iter().map(|&v| weights[v as usize]).sum();
                    if wcell <= rem {
                        rem -= wcell;
                        for &v in cell {
                            taken.insert(v);
                        }
                        start = end;
                    } else {
                        members.clear();
                        members.extend_from_slice(cell);
                        straddle = true;
                        break;
                    }
                }
            } else {
                keyed.clear();
                for &v in members.iter() {
                    keyed.push((pack_key(v), self.lex_rank[v as usize], v));
                }
                keyed.sort_unstable();
                let mut i = 0usize;
                while i < keyed.len() {
                    let mut j = i + 1;
                    while j < keyed.len() && keyed[j].0 == keyed[i].0 {
                        j += 1;
                    }
                    let wcell: f64 = keyed[i..j]
                        .iter()
                        .map(|&(_, _, v)| weights[v as usize])
                        .sum();
                    if wcell <= rem {
                        rem -= wcell;
                        for &(_, _, v) in &keyed[i..j] {
                            taken.insert(v);
                        }
                        i = j;
                    } else {
                        let run: Vec<VertexId> = keyed[i..j].iter().map(|&(_, _, v)| v).collect();
                        members.clear();
                        members.extend(run);
                        straddle = true;
                        break;
                    }
                }
            }
            if !straddle {
                return taken; // everything fit (rem ≈ 0 now)
            }
            level += 1;
        }
    }
}

impl Splitter for GridSplitter<'_> {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        if self.pack_safe && scratch_mode() == ScratchMode::Reuse {
            self.split_fast(w_set, weights, target)
        } else {
            self.split_legacy(w_set, weights, target)
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Theorem 19's cost bound with unit constant:
/// `d · log^{1/d}(φ + 1) · ‖c|_W‖_{d/(d−1)}` (the `log` term is taken as
/// `max(log₂(φ+1), 1)` so the bound stays positive for φ ≤ 1).
pub fn theorem19_bound(d: usize, fluctuation: f64, c_norm_p: f64) -> f64 {
    let lg = (fluctuation + 1.0).log2().max(1.0);
    d as f64 * lg.powf(1.0 / d as f64) * c_norm_p
}

/// Check that `set` is *monotone* in `within` (Section 6): for every
/// `y ∈ set` and `x ∈ within` with `x ≤ y` componentwise, `x ∈ set`.
/// Quadratic; intended for tests (Lemma 24 verification).
pub fn is_monotone_in(grid: &GridGraph, set: &VertexSet, within: &VertexSet) -> bool {
    let members: Vec<VertexId> = set.iter().collect();
    for x in within.iter() {
        if set.contains(x) {
            continue;
        }
        let cx = grid.coord(x);
        for &y in &members {
            let cy = grid.coord(y);
            if cx.iter().zip(cy).all(|(a, b)| a <= b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::check_split;
    use mmb_graph::cut::boundary_cost_within;
    use mmb_graph::measure::edge_norm_p;

    fn unit_weights(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn contract_on_square_grid() {
        let grid = GridGraph::lattice(&[8, 8]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(64);
        let weights = unit_weights(64);
        for target in [0.0, 1.0, 13.0, 32.0, 63.0, 64.0] {
            let u = sp.split(&w, &weights, target);
            assert!(
                check_split(&w, &u, &weights, target).holds(),
                "target {target}"
            );
        }
    }

    #[test]
    fn contract_on_weighted_3d_grid() {
        let grid = GridGraph::lattice(&[4, 4, 4]);
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| 1.0 + (e % 17) as f64)
            .collect();
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(64);
        let weights: Vec<f64> = (0..64).map(|v| 1.0 + (v % 5) as f64).collect();
        let total: f64 = weights.iter().sum();
        for frac in [0.1, 0.33, 0.5, 0.9] {
            let target = frac * total;
            let u = sp.split(&w, &weights, target);
            assert!(check_split(&w, &u, &weights, target).holds(), "frac {frac}");
        }
    }

    #[test]
    fn cost_respects_theorem19_on_unit_grid() {
        // 16×16 unit grid, bisect. Theorem 19 bound with d = 2, φ = 1.
        let grid = GridGraph::lattice(&[16, 16]);
        let m = grid.graph.num_edges();
        let costs = vec![1.0; m];
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(256);
        let weights = unit_weights(256);
        let u = sp.split(&w, &weights, 128.0);
        let cut = boundary_cost_within(&grid.graph, &costs, &w, &u);
        let bound = theorem19_bound(2, 1.0, edge_norm_p(&grid.graph, &costs, &w, 2.0));
        assert!(
            cut <= 3.0 * bound,
            "cut {cut} exceeds 3× Theorem 19 bound {bound}"
        );
        // And it must be non-trivially good: far below the total cost.
        assert!(cut < 0.2 * m as f64);
    }

    #[test]
    fn splitting_sets_are_monotone() {
        // Lemma 24: GridSplit returns monotone sets.
        let grid = GridGraph::lattice(&[9, 9]);
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| 1.0 + ((e * 7) % 23) as f64)
            .collect();
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(81);
        let weights = unit_weights(81);
        for target in [10.0, 27.0, 40.0, 70.0] {
            let u = sp.split(&w, &weights, target);
            assert!(
                is_monotone_in(&grid, &u, &w),
                "GridSplit set not monotone at target {target}"
            );
        }
    }

    #[test]
    fn handles_subsets_and_disconnection() {
        let grid = GridGraph::percolation(&[12, 12], 0.75, 11);
        let n = grid.graph.num_vertices();
        let costs = vec![2.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        // Split a random sub-subset.
        let w = VertexSet::from_iter(n, (0..n as u32).filter(|v| v % 3 != 0));
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 2) as f64).collect();
        let wsum: f64 = w.iter().map(|v| weights[v as usize]).sum();
        let u = sp.split(&w, &weights, wsum / 2.0);
        assert!(check_split(&w, &u, &weights, wsum / 2.0).holds());
    }

    #[test]
    fn zero_cost_edges_are_fine() {
        let grid = GridGraph::lattice(&[6, 6]);
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| if e % 2 == 0 { 0.0 } else { 3.0 })
            .collect();
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(36);
        let weights = unit_weights(36);
        let u = sp.split(&w, &weights, 18.0);
        assert!(check_split(&w, &u, &weights, 18.0).holds());
    }

    #[test]
    fn one_dimensional_grid_cuts_one_edge() {
        let grid = GridGraph::path(64);
        let costs = vec![1.0; 63];
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(64);
        let weights = unit_weights(64);
        let u = sp.split(&w, &weights, 32.0);
        assert!(check_split(&w, &u, &weights, 32.0).holds());
        // A monotone (prefix) subset of a path cuts exactly one edge.
        assert!(boundary_cost_within(&grid.graph, &costs, &w, &u) <= 1.0 + 1e-9);
    }

    #[test]
    fn fast_and_legacy_coarsening_split_identically() {
        use mmb_graph::workspace::{with_scratch_mode, ScratchMode};
        // Weighted 2D and 3D grids, many targets and subsets: the
        // sort-based fast path must return bit-identical splitting sets to
        // the pre-overhaul HashMap grouping.
        for dims in [vec![13usize, 11], vec![5, 4, 3]] {
            let grid = GridGraph::lattice(&dims);
            let n = grid.graph.num_vertices();
            let costs: Vec<f64> = (0..grid.graph.num_edges())
                .map(|e| 0.5 + ((e * 13) % 29) as f64)
                .collect();
            let sp = GridSplitter::new(&grid, &costs);
            let weights: Vec<f64> = (0..n).map(|v| 1.0 + ((v * 7) % 5) as f64).collect();
            for (mask_mod, frac) in [(1u32, 0.1), (1, 0.5), (1, 0.92), (3, 0.33), (7, 0.6)] {
                let w = VertexSet::from_iter(n, (0..n as u32).filter(|v| v % mask_mod != 1));
                let total: f64 = w.iter().map(|v| weights[v as usize]).sum();
                let target = frac * total;
                let fast = with_scratch_mode(ScratchMode::Reuse, || sp.split(&w, &weights, target));
                let legacy =
                    with_scratch_mode(ScratchMode::Transient, || sp.split(&w, &weights, target));
                assert_eq!(fast, legacy, "dims {dims:?}, mask {mask_mod}, frac {frac}");
            }
        }
    }

    #[test]
    fn sparse_point_sets_exercise_the_fallback_groupings() {
        use mmb_graph::workspace::{with_scratch_mode, ScratchMode};
        // Dominoes (adjacent point pairs) scattered over a wide coordinate
        // range: the cell universe dwarfs the member count, forcing the
        // comparison-sort grouping instead of the counting sort. Unit
        // weights keep every partial sum exact, so fast ≡ legacy bitwise.
        let mut points = Vec::new();
        for i in 0..120i64 {
            let x = (i * 7919) % 1_000_003;
            let y = (i * 104_729) % 999_983;
            points.push(vec![x, y]);
            points.push(vec![x + 1, y]);
        }
        let grid = GridGraph::from_points(2, points);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights = vec![1.0; n];
        let w = VertexSet::full(n);
        for frac in [0.25, 0.5, 0.75] {
            let target = frac * n as f64;
            let fast = with_scratch_mode(ScratchMode::Reuse, || sp.split(&w, &weights, target));
            let legacy =
                with_scratch_mode(ScratchMode::Transient, || sp.split(&w, &weights, target));
            assert_eq!(fast, legacy, "frac {frac}");
            assert!(check_split(&w, &fast, &weights, target).holds());
        }
        // Astronomical spread on two axes defeats u64 key packing; the
        // fast dispatch must fall back to the legacy path and still honor
        // the contract.
        let far = GridGraph::from_points(
            2,
            vec![
                vec![0, 0],
                vec![1, 0],
                vec![4_000_000_000_000_000_000, 4_000_000_000_000_000_000],
                vec![4_000_000_000_000_000_001, 4_000_000_000_000_000_000],
            ],
        );
        let fn_ = far.graph.num_vertices();
        let fcosts = vec![1.0; far.graph.num_edges()];
        let fsp = GridSplitter::new(&far, &fcosts);
        let fw = VertexSet::full(fn_);
        let fweights = vec![1.0; fn_];
        let u = fsp.split(&fw, &fweights, 2.0);
        assert!(check_split(&fw, &u, &fweights, 2.0).holds());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let grid = GridGraph::lattice(&[2, 2]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let empty = VertexSet::empty(4);
        let u = sp.split(&empty, &unit_weights(4), 0.0);
        assert!(u.is_empty());
        let single = VertexSet::from_iter(4, [2u32]);
        let u = sp.split(&single, &unit_weights(4), 1.0);
        assert!(check_split(&single, &u, &unit_weights(4), 1.0).holds());
    }

    #[test]
    fn expensive_column_instance_stays_within_bound() {
        // One enormously expensive column at x = 7→8. The cost-aware
        // splitter must stay within Theorem 19's bound and never do worse
        // than the cost-blind variant (which lex-cuts straight through the
        // expensive column at this target).
        let grid = GridGraph::lattice(&[16, 16]);
        let mut costs = vec![1.0; grid.graph.num_edges()];
        for (e, &(a, b)) in grid.graph.edge_list().iter().enumerate() {
            let (ca, cb) = (grid.coord(a), grid.coord(b));
            if ca[0] != cb[0] && ca[0].min(cb[0]) == 7 {
                costs[e] = 1000.0;
            }
        }
        let w = VertexSet::full(256);
        let weights = unit_weights(256);
        let aware = GridSplitter::new(&grid, &costs);
        let blind = GridSplitter::unit_cost(&grid);
        let ua = aware.split(&w, &weights, 128.0);
        let ub = blind.split(&w, &weights, 128.0);
        let ca = boundary_cost_within(&grid.graph, &costs, &w, &ua);
        let cb = boundary_cost_within(&grid.graph, &costs, &w, &ub);
        assert!(check_split(&w, &ua, &weights, 128.0).holds());
        assert!(check_split(&w, &ub, &weights, 128.0).holds());
        assert!(
            ca <= cb + 1e-9,
            "cost-aware ({ca}) should not lose to cost-blind ({cb})"
        );
        let bound = theorem19_bound(2, 1000.0, edge_norm_p(&grid.graph, &costs, &w, 2.0));
        assert!(
            ca <= 3.0 * bound,
            "cut {ca} exceeds 3× Theorem 19 bound {bound}"
        );
    }
}
