//! GridSplit — the separator theorem for `d`-dimensional grid graphs with
//! arbitrary edge costs (Section 6, Theorem 19).
//!
//! The algorithm follows the paper's `GridSplit` procedure exactly:
//!
//! 1. Scale costs so the minimum positive cost is 1 (then the fluctuation is
//!    `φ = ‖c‖_∞`).
//! 2. Pick the cell side `ℓ = max(⌈(‖c‖₁/d)^{1/d}⌉, 1)` and the cheapest of
//!    the `ℓ` shifted coarsenings `ϕ_α^{(ℓ)}(a) = ⌊(a + (α−1)·1)/ℓ⌋`
//!    (Lemma 20: the cheapest has coarse cost `‖c/ϕ‖₁ ≤ ‖c‖₁/ℓ`, because
//!    every grid edge is cut by exactly one shift `α`).
//! 3. Order the cells lexicographically, take whole cells while they fit
//!    under the splitting value (a *monotone* prefix — Lemmas 21–24), and
//!    recurse into the straddling cell with reduced costs
//!    `c′ = (c − 1)/2`, discarding edges of cost ≤ 1.
//! 4. When `ℓ = 1` the coarse graph is the grid itself; a lexicographic
//!    vertex prefix finishes the job.
//!
//! Costs halve per level, so there are `O(log φ)` levels (Lemma 27) and the
//! returned set costs `O(d·log^{1/d}(φ+1)·‖c‖_{d/(d−1)})` (Theorem 19).

use std::collections::HashMap;

use mmb_graph::gen::grid::GridGraph;
use mmb_graph::{VertexId, VertexSet};

use crate::{prefix_split, Splitter};

/// Splitting sets for grid graphs with arbitrary positive edge costs.
pub struct GridSplitter<'g> {
    grid: &'g GridGraph,
    /// Costs scaled so the minimum positive cost is 1 (zero costs stay 0,
    /// they are free to cut and vanish after the first level).
    scaled: Vec<f64>,
    name: &'static str,
}

impl<'g> GridSplitter<'g> {
    /// Bind to a grid graph and its edge costs.
    pub fn new(grid: &'g GridGraph, costs: &[f64]) -> Self {
        assert_eq!(costs.len(), grid.graph.num_edges(), "cost vector length mismatch");
        assert!(costs.iter().all(|&c| c >= 0.0 && c.is_finite()), "costs must be finite and >= 0");
        let cmin = costs.iter().copied().filter(|&c| c > 0.0).fold(f64::INFINITY, f64::min);
        let scaled = if cmin.is_finite() && cmin > 0.0 {
            costs.iter().map(|&c| c / cmin).collect()
        } else {
            costs.to_vec()
        };
        Self { grid, scaled, name: "gridsplit" }
    }

    /// The naive unit-cost variant: ignores the actual costs when choosing
    /// cuts (the `σ_p(G, c) ≤ σ_p(G, 1)·φ` generalization the paper calls
    /// out as wasteful; ablation experiment E9).
    pub fn unit_cost(grid: &'g GridGraph) -> Self {
        Self {
            grid,
            scaled: vec![1.0; grid.graph.num_edges()],
            name: "gridsplit/unit",
        }
    }

    /// Effective cost of edge `e` at recursion `level`:
    /// `c_L = (c + 1)/2^L − 1`; the edge is present iff `c_L > 0`
    /// (level 0 keeps every edge).
    #[inline]
    fn level_cost(&self, e: u32, level: u32) -> f64 {
        let c = self.scaled[e as usize];
        (c + 1.0) / (1u64 << level.min(62)) as f64 - 1.0
    }

    /// One coarsening level: distribute `members` into ℓ-cells under the
    /// cheapest shift α. Returns `(ordered cells, ℓ)` — cells sorted
    /// lexicographically by cell coordinate — or `None` when `ℓ = 1`
    /// (trivial case).
    fn coarsen(&self, members: &[VertexId], level: u32) -> Option<Vec<Vec<VertexId>>> {
        let d = self.grid.dim;
        let in_s = VertexSet::from_iter(self.grid.graph.num_vertices(), members.iter().copied());

        // Inner edges with positive current cost, described by the axis they
        // span and the smaller coordinate along it.
        let mut c1 = 0.0f64;
        let mut edges: Vec<(i64, f64)> = Vec::new(); // (min coordinate on the differing axis, cost)
        for &v in members {
            for &(nb, e) in self.grid.graph.neighbors(v) {
                if nb <= v || !in_s.contains(nb) {
                    continue;
                }
                let cur = if level == 0 {
                    self.scaled[e as usize]
                } else {
                    self.level_cost(e, level)
                };
                if cur <= 0.0 {
                    continue;
                }
                c1 += cur;
                let (cv, cn) = (self.grid.coord(v), self.grid.coord(nb));
                let axis = (0..d).find(|&a| cv[a] != cn[a]).expect("edge endpoints share coords");
                edges.push((cv[axis].min(cn[axis]), cur));
            }
        }

        let ell = ((c1 / d as f64).powf(1.0 / d as f64).ceil() as i64).max(1);
        // Guard against pathological cost magnitudes.
        let ell = ell.min(1 << 40);
        if ell <= 1 {
            return None;
        }

        // Lemma 20: each edge is cut by exactly one shift α ∈ [1, ℓ];
        // accumulate per-shift cost sparsely and pick the cheapest.
        let mut per_alpha: HashMap<i64, f64> = HashMap::new();
        for &(t, cost) in &edges {
            let mut alpha = (-t).rem_euclid(ell);
            if alpha == 0 {
                alpha = ell;
            }
            *per_alpha.entry(alpha).or_insert(0.0) += cost;
        }
        let alpha = if (per_alpha.len() as i64) < ell {
            // Some shift cuts nothing at all.
            (1..=ell).find(|a| !per_alpha.contains_key(a)).unwrap()
        } else {
            // Cheapest shift, ties broken by smallest α so two splitters
            // built from the same instance always cut identically
            // (HashMap iteration order must not leak into the output).
            *per_alpha
                .iter()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(b.0)))
                .map(|(a, _)| a)
                .unwrap()
        };

        // Assign members to cells ϕ_α(x) = ⌊(x + (α−1)·1)/ℓ⌋.
        let mut cells: HashMap<Vec<i64>, Vec<VertexId>> = HashMap::new();
        for &v in members {
            let key: Vec<i64> = self
                .grid
                .coord(v)
                .iter()
                .map(|&x| (x + alpha - 1).div_euclid(ell))
                .collect();
            cells.entry(key).or_default().push(v);
        }
        let mut keyed: Vec<(Vec<i64>, Vec<VertexId>)> = cells.into_iter().collect();
        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Some(keyed.into_iter().map(|(_, vs)| vs).collect())
    }

    /// Lexicographic order of `members` by coordinates (the ℓ = 1 case).
    fn lex_order(&self, members: &mut [VertexId]) {
        members.sort_unstable_by(|&a, &b| self.grid.coord(a).cmp(self.grid.coord(b)));
    }
}

impl Splitter for GridSplitter<'_> {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        let n = self.grid.graph.num_vertices();
        let mut members: Vec<VertexId> = w_set.iter().collect();
        let total: f64 = members.iter().map(|&v| weights[v as usize]).sum();
        let mut rem = target.clamp(0.0, total);
        let mut taken = VertexSet::empty(n);
        let mut level = 0u32;

        loop {
            match self.coarsen(&members, level) {
                None => {
                    // ℓ = 1: lexicographic vertex prefix within the cell.
                    self.lex_order(&mut members);
                    let local = prefix_split(n, &members, weights, rem);
                    taken.union_with(&local);
                    return taken;
                }
                Some(cells) => {
                    // Take whole cells in lex order while they fit; recurse
                    // into the straddling cell.
                    let mut straddle: Option<Vec<VertexId>> = None;
                    for cell in cells {
                        let wcell: f64 = cell.iter().map(|&v| weights[v as usize]).sum();
                        if straddle.is_none() && wcell <= rem {
                            rem -= wcell;
                            for &v in &cell {
                                taken.insert(v);
                            }
                        } else if straddle.is_none() {
                            straddle = Some(cell);
                        }
                        // Cells after the straddling one are left out.
                    }
                    match straddle {
                        None => return taken, // everything fit (rem ≈ 0 now)
                        Some(cell) => {
                            members = cell;
                            level += 1;
                        }
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Theorem 19's cost bound with unit constant:
/// `d · log^{1/d}(φ + 1) · ‖c|_W‖_{d/(d−1)}` (the `log` term is taken as
/// `max(log₂(φ+1), 1)` so the bound stays positive for φ ≤ 1).
pub fn theorem19_bound(d: usize, fluctuation: f64, c_norm_p: f64) -> f64 {
    let lg = (fluctuation + 1.0).log2().max(1.0);
    d as f64 * lg.powf(1.0 / d as f64) * c_norm_p
}

/// Check that `set` is *monotone* in `within` (Section 6): for every
/// `y ∈ set` and `x ∈ within` with `x ≤ y` componentwise, `x ∈ set`.
/// Quadratic; intended for tests (Lemma 24 verification).
pub fn is_monotone_in(grid: &GridGraph, set: &VertexSet, within: &VertexSet) -> bool {
    let members: Vec<VertexId> = set.iter().collect();
    for x in within.iter() {
        if set.contains(x) {
            continue;
        }
        let cx = grid.coord(x);
        for &y in &members {
            let cy = grid.coord(y);
            if cx.iter().zip(cy).all(|(a, b)| a <= b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::check_split;
    use mmb_graph::cut::boundary_cost_within;
    use mmb_graph::measure::edge_norm_p;

    fn unit_weights(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn contract_on_square_grid() {
        let grid = GridGraph::lattice(&[8, 8]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(64);
        let weights = unit_weights(64);
        for target in [0.0, 1.0, 13.0, 32.0, 63.0, 64.0] {
            let u = sp.split(&w, &weights, target);
            assert!(check_split(&w, &u, &weights, target).holds(), "target {target}");
        }
    }

    #[test]
    fn contract_on_weighted_3d_grid() {
        let grid = GridGraph::lattice(&[4, 4, 4]);
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| 1.0 + (e % 17) as f64)
            .collect();
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(64);
        let weights: Vec<f64> = (0..64).map(|v| 1.0 + (v % 5) as f64).collect();
        let total: f64 = weights.iter().sum();
        for frac in [0.1, 0.33, 0.5, 0.9] {
            let target = frac * total;
            let u = sp.split(&w, &weights, target);
            assert!(check_split(&w, &u, &weights, target).holds(), "frac {frac}");
        }
    }

    #[test]
    fn cost_respects_theorem19_on_unit_grid() {
        // 16×16 unit grid, bisect. Theorem 19 bound with d = 2, φ = 1.
        let grid = GridGraph::lattice(&[16, 16]);
        let m = grid.graph.num_edges();
        let costs = vec![1.0; m];
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(256);
        let weights = unit_weights(256);
        let u = sp.split(&w, &weights, 128.0);
        let cut = boundary_cost_within(&grid.graph, &costs, &w, &u);
        let bound = theorem19_bound(2, 1.0, edge_norm_p(&grid.graph, &costs, &w, 2.0));
        assert!(
            cut <= 3.0 * bound,
            "cut {cut} exceeds 3× Theorem 19 bound {bound}"
        );
        // And it must be non-trivially good: far below the total cost.
        assert!(cut < 0.2 * m as f64);
    }

    #[test]
    fn splitting_sets_are_monotone() {
        // Lemma 24: GridSplit returns monotone sets.
        let grid = GridGraph::lattice(&[9, 9]);
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| 1.0 + ((e * 7) % 23) as f64)
            .collect();
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(81);
        let weights = unit_weights(81);
        for target in [10.0, 27.0, 40.0, 70.0] {
            let u = sp.split(&w, &weights, target);
            assert!(
                is_monotone_in(&grid, &u, &w),
                "GridSplit set not monotone at target {target}"
            );
        }
    }

    #[test]
    fn handles_subsets_and_disconnection() {
        let grid = GridGraph::percolation(&[12, 12], 0.75, 11);
        let n = grid.graph.num_vertices();
        let costs = vec![2.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        // Split a random sub-subset.
        let w = VertexSet::from_iter(n, (0..n as u32).filter(|v| v % 3 != 0));
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 2) as f64).collect();
        let wsum: f64 = w.iter().map(|v| weights[v as usize]).sum();
        let u = sp.split(&w, &weights, wsum / 2.0);
        assert!(check_split(&w, &u, &weights, wsum / 2.0).holds());
    }

    #[test]
    fn zero_cost_edges_are_fine() {
        let grid = GridGraph::lattice(&[6, 6]);
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| if e % 2 == 0 { 0.0 } else { 3.0 })
            .collect();
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(36);
        let weights = unit_weights(36);
        let u = sp.split(&w, &weights, 18.0);
        assert!(check_split(&w, &u, &weights, 18.0).holds());
    }

    #[test]
    fn one_dimensional_grid_cuts_one_edge() {
        let grid = GridGraph::path(64);
        let costs = vec![1.0; 63];
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(64);
        let weights = unit_weights(64);
        let u = sp.split(&w, &weights, 32.0);
        assert!(check_split(&w, &u, &weights, 32.0).holds());
        // A monotone (prefix) subset of a path cuts exactly one edge.
        assert!(boundary_cost_within(&grid.graph, &costs, &w, &u) <= 1.0 + 1e-9);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let grid = GridGraph::lattice(&[2, 2]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let empty = VertexSet::empty(4);
        let u = sp.split(&empty, &unit_weights(4), 0.0);
        assert!(u.is_empty());
        let single = VertexSet::from_iter(4, [2u32]);
        let u = sp.split(&single, &unit_weights(4), 1.0);
        assert!(check_split(&single, &u, &unit_weights(4), 1.0).holds());
    }

    #[test]
    fn expensive_column_instance_stays_within_bound() {
        // One enormously expensive column at x = 7→8. The cost-aware
        // splitter must stay within Theorem 19's bound and never do worse
        // than the cost-blind variant (which lex-cuts straight through the
        // expensive column at this target).
        let grid = GridGraph::lattice(&[16, 16]);
        let mut costs = vec![1.0; grid.graph.num_edges()];
        for (e, &(a, b)) in grid.graph.edge_list().iter().enumerate() {
            let (ca, cb) = (grid.coord(a), grid.coord(b));
            if ca[0] != cb[0] && ca[0].min(cb[0]) == 7 {
                costs[e] = 1000.0;
            }
        }
        let w = VertexSet::full(256);
        let weights = unit_weights(256);
        let aware = GridSplitter::new(&grid, &costs);
        let blind = GridSplitter::unit_cost(&grid);
        let ua = aware.split(&w, &weights, 128.0);
        let ub = blind.split(&w, &weights, 128.0);
        let ca = boundary_cost_within(&grid.graph, &costs, &w, &ua);
        let cb = boundary_cost_within(&grid.graph, &costs, &w, &ub);
        assert!(check_split(&w, &ua, &weights, 128.0).holds());
        assert!(check_split(&w, &ub, &weights, 128.0).holds());
        assert!(
            ca <= cb + 1e-9,
            "cost-aware ({ca}) should not lose to cost-blind ({cb})"
        );
        let bound = theorem19_bound(
            2,
            1000.0,
            edge_norm_p(&grid.graph, &costs, &w, 2.0),
        );
        assert!(ca <= 3.0 * bound, "cut {ca} exceeds 3× Theorem 19 bound {bound}");
    }
}
