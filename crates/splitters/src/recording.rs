//! Instrumentation wrapper: records how a splitter is exercised.
//!
//! The running-time and quality analyses of Theorem 4 are phrased in terms
//! of the number and cost of splitting-set computations; the harness wraps
//! splitters in a [`RecordingSplitter`] to measure exactly those
//! quantities. Counters are atomics (and a mutex for the float
//! aggregates), so the wrapper satisfies the [`Splitter`] trait's `Sync`
//! requirement and keeps counting correctly when the pipeline calls it
//! from parallel per-class workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mmb_graph::cut::boundary_cost_within;
use mmb_graph::{Graph, VertexSet};

use crate::Splitter;

/// Statistics gathered by [`RecordingSplitter`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SplitStats {
    /// Number of `split` calls.
    pub calls: u64,
    /// Total vertices across all queried subsets (∝ the paper's `t(|G[W]|)`).
    pub total_subset_size: u64,
    /// Sum of relative boundary costs `∂_W U` of all returned sets.
    pub total_cut_cost: f64,
    /// Maximum relative boundary cost of a returned set.
    pub max_cut_cost: f64,
}

/// Wraps a splitter and records call counts and cut costs.
pub struct RecordingSplitter<'a, S: Splitter> {
    inner: S,
    graph: &'a Graph,
    costs: &'a [f64],
    calls: AtomicU64,
    total_subset_size: AtomicU64,
    cut: Mutex<(f64, f64)>, // (total, max)
}

impl<'a, S: Splitter> RecordingSplitter<'a, S> {
    /// Wrap `inner`, measuring cut costs against `(graph, costs)`.
    pub fn new(inner: S, graph: &'a Graph, costs: &'a [f64]) -> Self {
        assert_eq!(
            graph.num_edges(),
            costs.len(),
            "cost vector length mismatch"
        );
        Self {
            inner,
            graph,
            costs,
            calls: AtomicU64::new(0),
            total_subset_size: AtomicU64::new(0),
            cut: Mutex::new((0.0, 0.0)),
        }
    }

    /// Snapshot of the collected statistics.
    pub fn stats(&self) -> SplitStats {
        let (total, max) = *self.cut.lock().expect("stats mutex poisoned");
        SplitStats {
            calls: self.calls.load(Ordering::Relaxed),
            total_subset_size: self.total_subset_size.load(Ordering::Relaxed),
            total_cut_cost: total,
            max_cut_cost: max,
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.total_subset_size.store(0, Ordering::Relaxed);
        *self.cut.lock().expect("stats mutex poisoned") = (0.0, 0.0);
    }
}

impl<S: Splitter> Splitter for RecordingSplitter<'_, S> {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        let u = self.inner.split(w_set, weights, target);
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_subset_size
            .fetch_add(w_set.len() as u64, Ordering::Relaxed);
        let cost = boundary_cost_within(self.graph, self.costs, w_set, &u);
        let mut cut = self.cut.lock().expect("stats mutex poisoned");
        cut.0 += cost;
        cut.1 = cut.1.max(cost);
        u
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderSplitter;
    use mmb_graph::gen::misc::path;

    #[test]
    fn records_calls_and_costs() {
        let g = path(10);
        let costs = vec![1.0; 9];
        let rec = RecordingSplitter::new(OrderSplitter::by_id(&g), &g, &costs);
        let w = VertexSet::full(10);
        let weights = vec![1.0; 10];
        let _ = rec.split(&w, &weights, 5.0);
        let _ = rec.split(&w, &weights, 2.0);
        let s = rec.stats();
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_subset_size, 20);
        assert!(s.total_cut_cost >= 2.0 - 1e-9); // each prefix cuts one unit edge
        assert!(s.max_cut_cost <= 1.0 + 1e-9);
        rec.reset();
        assert_eq!(rec.stats(), SplitStats::default());
    }

    #[test]
    fn recording_splitter_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<RecordingSplitter<'static, OrderSplitter>>();
    }
}
