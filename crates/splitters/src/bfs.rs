//! Greedy BFS splitter — the "no theory" engineering baseline.
//!
//! Grows a breadth-first region from the lowest-id member of `W` and takes
//! the best prefix. On nicely-clustered graphs BFS order has decent
//! locality; the paper's point is precisely that such heuristics carry *no*
//! worst-case boundary guarantee, which experiment E7 demonstrates.

use mmb_graph::{Graph, VertexId, VertexSet};

use crate::{prefix_split, Splitter};

/// BFS-order prefix splitter.
pub struct BfsSplitter<'g> {
    graph: &'g Graph,
}

impl<'g> BfsSplitter<'g> {
    /// Bind to a host graph.
    pub fn new(graph: &'g Graph) -> Self {
        Self { graph }
    }

    /// BFS order of `W` (component by component, increasing seed id).
    pub fn bfs_order(&self, w_set: &VertexSet) -> Vec<VertexId> {
        let mut order = Vec::with_capacity(w_set.len());
        let mut seen = VertexSet::empty(self.graph.num_vertices());
        let mut queue = std::collections::VecDeque::new();
        for seed in w_set.iter() {
            if seen.contains(seed) {
                continue;
            }
            seen.insert(seed);
            queue.push_back(seed);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                for &(nb, _) in self.graph.neighbors(v) {
                    if w_set.contains(nb) && seen.insert(nb) {
                        queue.push_back(nb);
                    }
                }
            }
        }
        order
    }
}

impl Splitter for BfsSplitter<'_> {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        let order = self.bfs_order(w_set);
        prefix_split(self.graph.num_vertices(), &order, weights, target)
    }

    fn name(&self) -> &str {
        "bfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::check_split;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::gen::misc::{cycle, path};

    #[test]
    fn contract_on_cycle() {
        let g = cycle(12);
        let sp = BfsSplitter::new(&g);
        let w = VertexSet::full(12);
        let weights: Vec<f64> = (0..12).map(|i| 1.0 + (i % 3) as f64).collect();
        for target in [0.0, 5.0, 11.0, 100.0] {
            let u = sp.split(&w, &weights, target);
            assert!(
                check_split(&w, &u, &weights, target).holds(),
                "target {target}"
            );
        }
    }

    #[test]
    fn covers_disconnected_subsets() {
        let g = path(10);
        let sp = BfsSplitter::new(&g);
        let w = VertexSet::from_iter(10, [0u32, 1, 5, 6, 7]);
        let order = sp.bfs_order(&w);
        assert_eq!(order.len(), 5);
        let weights = vec![1.0; 10];
        let u = sp.split(&w, &weights, 2.5);
        assert!(check_split(&w, &u, &weights, 2.5).holds());
    }

    #[test]
    fn bfs_region_is_contiguous_on_grid() {
        let grid = GridGraph::lattice(&[6, 6]);
        let sp = BfsSplitter::new(&grid.graph);
        let w = VertexSet::full(36);
        let weights = vec![1.0; 36];
        let u = sp.split(&w, &weights, 18.0);
        assert!(check_split(&w, &u, &weights, 18.0).holds());
        // The BFS ball from a corner is connected.
        let pts: Vec<Vec<i64>> = u.iter().map(|v| grid.coord(v).to_vec()).collect();
        let sub = GridGraph::from_points(2, pts);
        assert!(sub.graph.is_connected());
    }
}
