//! Failure-injection splitter.
//!
//! Returns sets that satisfy the Definition-3 balance contract **exactly**
//! but are as fragmented as possible (a pseudo-random interleaving order),
//! so their boundary cost is terrible. The decomposition pipeline must
//! still deliver strict balance when driven by this splitter — only the
//! boundary-cost guarantee degrades — which the integration tests verify.

use mmb_graph::{VertexId, VertexSet};

use crate::{prefix_split, Splitter};

/// Deliberately low-quality (but contract-honoring) splitter.
pub struct AdversarialSplitter {
    universe: usize,
    salt: u64,
}

impl AdversarialSplitter {
    /// Create with a salt controlling the scrambling order.
    pub fn new(universe: usize, salt: u64) -> Self {
        Self { universe, salt }
    }

    fn scramble(&self, v: VertexId) -> u64 {
        // SplitMix64: good avalanche, cheap, deterministic.
        let mut z = (v as u64)
            .wrapping_add(self.salt)
            .wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl Splitter for AdversarialSplitter {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        let mut order: Vec<VertexId> = w_set.iter().collect();
        order.sort_by_key(|&v| self.scramble(v));
        prefix_split(self.universe, &order, weights, target)
    }

    fn name(&self) -> &str {
        "adversarial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::check_split;
    use mmb_graph::cut::boundary_cost_within;
    use mmb_graph::gen::misc::path;

    #[test]
    fn contract_still_holds() {
        let sp = AdversarialSplitter::new(20, 7);
        let w = VertexSet::full(20);
        let weights: Vec<f64> = (0..20).map(|i| 1.0 + (i % 4) as f64).collect();
        for target in [0.0, 10.0, 25.0] {
            let u = sp.split(&w, &weights, target);
            assert!(check_split(&w, &u, &weights, target).holds());
        }
    }

    #[test]
    fn quality_is_much_worse_than_order_splitter() {
        let g = path(200);
        let costs = vec![1.0; 199];
        let w = VertexSet::full(200);
        let weights = vec![1.0; 200];
        let adv = AdversarialSplitter::new(200, 3);
        let u = adv.split(&w, &weights, 100.0);
        let bad = boundary_cost_within(&g, &costs, &w, &u);
        // An interleaved half of a 200-path cuts a huge number of edges.
        assert!(bad > 20.0, "adversarial cut unexpectedly cheap: {bad}");
    }
}
