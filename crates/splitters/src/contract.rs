//! Machine-checkable splitting contract (Definition 3).
//!
//! Used as a debug assertion by the decomposition algorithms and as the
//! oracle of the property-test suites.

use mmb_graph::measure::{set_max, set_sum};
use mmb_graph::VertexSet;

/// Result of checking a splitting set against Definition 3.
#[derive(Clone, Debug, PartialEq)]
pub struct ContractReport {
    /// `Ψ(U)`.
    pub got: f64,
    /// The clamped target.
    pub target: f64,
    /// Allowed slack `‖Ψ|_W‖_∞ / 2`.
    pub slack: f64,
    /// Whether `U ⊆ W`.
    pub subset_ok: bool,
}

impl ContractReport {
    /// Whether the contract holds (with a small relative tolerance).
    pub fn holds(&self) -> bool {
        let tol = 1e-9 * (1.0 + self.target.abs() + self.got.abs());
        self.subset_ok && (self.got - self.target).abs() <= self.slack + tol
    }
}

/// Check that `u_set` is a `target`-splitting set of `w_set` under `weights`.
///
/// The degenerate all-zero-weights case is treated as always balanced, as
/// documented on [`crate::Splitter::split`].
pub fn check_split(
    w_set: &VertexSet,
    u_set: &VertexSet,
    weights: &[f64],
    target: f64,
) -> ContractReport {
    let total = set_sum(weights, w_set);
    let target = target.clamp(0.0, total);
    ContractReport {
        got: set_sum(weights, u_set),
        target,
        slack: set_max(weights, w_set) / 2.0,
        subset_ok: u_set.is_subset_of(w_set),
    }
}

/// Assert the contract (used in `debug_assert!` positions).
#[track_caller]
pub fn assert_split(w_set: &VertexSet, u_set: &VertexSet, weights: &[f64], target: f64) {
    let r = check_split(w_set, u_set, weights, target);
    assert!(
        r.holds(),
        "splitting contract violated: got {} target {} slack {} subset_ok {}",
        r.got,
        r.target,
        r.slack,
        r.subset_ok
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_judgement() {
        let w = vec![1.0, 2.0, 3.0, 4.0];
        let wset = VertexSet::full(4);
        let good = VertexSet::from_iter(4, [0u32, 1]); // Ψ(U) = 3
        assert!(check_split(&wset, &good, &w, 4.0).holds()); // slack 2
        assert!(!check_split(&wset, &good, &w, 6.0).holds());
        // Non-subset fails even if balanced.
        let wsmall = VertexSet::from_iter(4, [0u32, 1, 2]);
        let outside = VertexSet::from_iter(4, [3u32]);
        assert!(!check_split(&wsmall, &outside, &w, 4.0).holds());
    }

    #[test]
    fn target_clamped_to_total() {
        let w = vec![1.0, 1.0];
        let wset = VertexSet::full(2);
        let all = VertexSet::full(2);
        assert!(check_split(&wset, &all, &w, 100.0).holds());
    }
}
