//! Splitting via a fixed linear arrangement.
//!
//! Taking prefixes of a linear vertex order is the simplest way to satisfy
//! the splitting contract. On a path graph ordered by position this is the
//! *optimal* splitter: any prefix of the positions cuts at most one edge of
//! each maximal sub-path of `W`, so `σ_p ≤ 2` with respect to any `p`. On
//! other graphs the quality depends entirely on how well the order respects
//! locality (which is why [`crate::adversarial::AdversarialSplitter`] uses a
//! deliberately bad order).

use mmb_graph::{Graph, VertexId, VertexSet};

use crate::{prefix_split, Splitter};

/// Splitter that orders `W` by a fixed per-vertex key and takes prefixes.
pub struct OrderSplitter {
    universe: usize,
    key: Vec<i64>,
    name: String,
}

impl OrderSplitter {
    /// Order vertices by an arbitrary integer key (ties broken by id).
    pub fn by_key(universe: usize, key: Vec<i64>, name: impl Into<String>) -> Self {
        assert_eq!(key.len(), universe, "key length mismatch");
        Self {
            universe,
            key,
            name: name.into(),
        }
    }

    /// Order by vertex id — correct for [`mmb_graph::gen::misc::path`],
    /// whose ids are positions.
    pub fn by_id(g: &Graph) -> Self {
        let n = g.num_vertices();
        Self::by_key(n, (0..n as i64).collect(), "order/id")
    }

    /// Order by one coordinate of a grid graph (a sweep-plane splitter).
    pub fn by_axis(grid: &mmb_graph::gen::grid::GridGraph, axis: usize) -> Self {
        assert!(axis < grid.dim, "axis out of range");
        let n = grid.graph.num_vertices();
        let key = (0..n as u32).map(|v| grid.coord(v)[axis]).collect();
        Self::by_key(n, key, format!("order/axis{axis}"))
    }
}

impl Splitter for OrderSplitter {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        let mut order: Vec<VertexId> = w_set.iter().collect();
        order.sort_by_key(|&v| (self.key[v as usize], v));
        prefix_split(self.universe, &order, weights, target)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::check_split;
    use mmb_graph::cut::boundary_cost_within;
    use mmb_graph::gen::misc::path;

    #[test]
    fn path_prefix_cuts_one_edge() {
        let g = path(10);
        let costs = vec![1.0; 9];
        let sp = OrderSplitter::by_id(&g);
        let w = VertexSet::full(10);
        let weights = vec![1.0; 10];
        let u = sp.split(&w, &weights, 5.0);
        assert!(check_split(&w, &u, &weights, 5.0).holds());
        assert_eq!(boundary_cost_within(&g, &costs, &w, &u), 1.0);
    }

    #[test]
    fn fragmented_subset_still_cheap() {
        // W = two disjoint intervals of the path; a prefix cuts at most one
        // inner edge per interval it straddles.
        let g = path(10);
        let costs = vec![1.0; 9];
        let sp = OrderSplitter::by_id(&g);
        let w = VertexSet::from_iter(10, [0u32, 1, 2, 6, 7, 8, 9]);
        let weights = vec![1.0; 10];
        let u = sp.split(&w, &weights, 3.5);
        assert!(check_split(&w, &u, &weights, 3.5).holds());
        assert!(boundary_cost_within(&g, &costs, &w, &u) <= 1.0);
    }

    #[test]
    fn respects_weights_not_counts() {
        let g = path(4);
        let sp = OrderSplitter::by_id(&g);
        let w = VertexSet::full(4);
        let weights = vec![10.0, 1.0, 1.0, 1.0];
        let u = sp.split(&w, &weights, 10.0);
        let got: f64 = u.iter().map(|v| weights[v as usize]).sum();
        assert!((got - 10.0).abs() <= 5.0);
    }

    #[test]
    fn axis_splitter_on_grid() {
        let grid = mmb_graph::gen::grid::GridGraph::lattice(&[4, 4]);
        let sp = OrderSplitter::by_axis(&grid, 1);
        let w = VertexSet::full(16);
        let weights = vec![1.0; 16];
        let u = sp.split(&w, &weights, 8.0);
        assert!(check_split(&w, &u, &weights, 8.0).holds());
        // A half-plane cut of the 4×4 grid cuts exactly 4 unit edges.
        let costs = vec![1.0; grid.graph.num_edges()];
        assert_eq!(boundary_cost_within(&grid.graph, &costs, &w, &u), 4.0);
    }
}
