//! Balanced separations and the separator → splitter reduction.
//!
//! Appendix A.3 of the paper relates the splitting-set framework to the
//! classical notion of balanced separators:
//!
//! * A **separation** of `G[W]` is a pair `(A, B)` with `A ∪ B = W` and no
//!   edge joining `A \ B` and `B \ A`; it is *balanced* w.r.t. weights `w`
//!   when `max{w(A\B), w(B\A)} ≤ ⅔·w(W)` (Definition 34).
//! * The **`Split` procedure** (Lemma 37, part 2) converts any provider of
//!   balanced separations into a [`Splitter`]: recursively separate with
//!   respect to the separating-cost measure `π(v) = τ(v)^p`
//!   (`τ(v) = c(δ(v) ∩ E(W))`), descend into the side containing the
//!   splitting value, and finish by taking a prefix of the collected
//!   separator vertices.
//!
//! Two providers are included: a centroid-based one for forests and a
//! median-slab one for grid graphs; both satisfy the ⅔-balance contract for
//! every weight function.

use mmb_graph::gen::grid::GridGraph;
use mmb_graph::measure::set_sum;
use mmb_graph::{Graph, VertexId, VertexSet};

use crate::{prefix_split, Splitter};

/// A separation `(A, B)` of a vertex set, stored as the three disjoint
/// blocks `A\B`, `A∩B`, `B\A`.
#[derive(Clone, Debug)]
pub struct Separation {
    /// `A \ B`.
    pub a_only: Vec<VertexId>,
    /// The separator `A ∩ B`.
    pub sep: Vec<VertexId>,
    /// `B \ A`.
    pub b_only: Vec<VertexId>,
}

impl Separation {
    /// Verify the structural contract on `G[W]`: the three blocks partition
    /// `W` and no inner edge joins `a_only` to `b_only`. Balance is checked
    /// against `balance` weights. Intended for tests/debug assertions.
    pub fn check(&self, g: &Graph, w_set: &VertexSet, balance: &[f64]) -> bool {
        let n = g.num_vertices();
        let a = VertexSet::from_iter(n, self.a_only.iter().copied());
        let s = VertexSet::from_iter(n, self.sep.iter().copied());
        let b = VertexSet::from_iter(n, self.b_only.iter().copied());
        if a.len() + s.len() + b.len() != w_set.len() {
            return false;
        }
        let union = a.union(&s).union(&b);
        if union != *w_set || !a.is_disjoint(&s) || !a.is_disjoint(&b) || !s.is_disjoint(&b) {
            return false;
        }
        for v in a.iter() {
            for &(nb, _) in g.neighbors(v) {
                if b.contains(nb) {
                    return false;
                }
            }
        }
        let total = set_sum(balance, w_set);
        let tol = 1e-9 * (1.0 + total);
        set_sum(balance, &a) <= 2.0 / 3.0 * total + tol
            && set_sum(balance, &b) <= 2.0 / 3.0 * total + tol
    }
}

/// A provider of weight-balanced separations on induced subgraphs.
pub trait SeparatorProvider: Sync {
    /// Produce a separation of `G[w_set]` balanced w.r.t. `balance`.
    fn separate(&self, w_set: &VertexSet, balance: &[f64]) -> Separation;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "separator"
    }
}

/// Group pieces (given as `(piece, weight)` with every weight ≤ ½·total)
/// into two sides, both of weight ≤ ⅔·total (the classic Lipton–Tarjan
/// grouping). Returns a boolean side assignment per piece.
fn two_thirds_grouping(weights: &[f64]) -> Vec<bool> {
    let total: f64 = weights.iter().sum();
    let mut side = vec![false; weights.len()];
    if weights.is_empty() || total <= 0.0 {
        return side;
    }
    let mut idx: Vec<usize> = (0..weights.len()).collect();
    // total_cmp + index tie-break: the grouping walks `idx` in order, so
    // ties between equal-weight pieces must break deterministically.
    idx.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    let largest = idx[0];
    if weights[largest] >= total / 3.0 {
        // Largest piece alone on side A; everything else on side B.
        side[largest] = true;
    } else {
        // All pieces < total/3: fill side A until it reaches total/3.
        let mut acc = 0.0;
        for &i in &idx {
            if acc >= total / 3.0 {
                break;
            }
            side[i] = true;
            acc += weights[i];
        }
    }
    side
}

/// Centroid-based balanced separations for forests.
pub struct TreeCentroidSeparator<'g> {
    graph: &'g Graph,
}

impl<'g> TreeCentroidSeparator<'g> {
    /// Bind to a forest.
    ///
    /// # Panics
    /// Panics if `graph` contains a cycle.
    pub fn new(graph: &'g Graph) -> Self {
        let (_, components) = graph.components();
        assert_eq!(
            graph.num_edges() + components,
            graph.num_vertices(),
            "TreeCentroidSeparator requires a forest"
        );
        Self { graph }
    }

    /// Connected components of `G[w_set]` as vertex lists.
    fn induced_components(&self, w_set: &VertexSet) -> Vec<Vec<VertexId>> {
        let n = self.graph.num_vertices();
        let mut seen = VertexSet::empty(n);
        let mut comps = Vec::new();
        for seed in w_set.iter() {
            if seen.contains(seed) {
                continue;
            }
            let mut comp = vec![seed];
            seen.insert(seed);
            let mut stack = vec![seed];
            while let Some(v) = stack.pop() {
                for &(nb, _) in self.graph.neighbors(v) {
                    if w_set.contains(nb) && seen.insert(nb) {
                        comp.push(nb);
                        stack.push(nb);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }

    /// Weighted centroid of a tree component: a vertex whose removal leaves
    /// pieces of weight ≤ half the component weight.
    fn centroid(&self, comp: &[VertexId], w_set: &VertexSet, balance: &[f64]) -> VertexId {
        let n = self.graph.num_vertices();
        let in_comp = VertexSet::from_iter(n, comp.iter().copied());
        let total: f64 = comp.iter().map(|&v| balance[v as usize]).sum();
        let root = comp[0];
        // Subtree weights by iterative post-order.
        let mut sub = vec![0.0f64; n];
        let mut stack = vec![(root, root, false)];
        let mut order = Vec::with_capacity(comp.len());
        while let Some((v, parent, expanded)) = stack.pop() {
            if expanded {
                let mut s = balance[v as usize];
                for &(nb, _) in self.graph.neighbors(v) {
                    if nb != parent && in_comp.contains(nb) && w_set.contains(nb) {
                        s += sub[nb as usize];
                    }
                }
                sub[v as usize] = s;
                order.push((v, parent));
            } else {
                stack.push((v, parent, true));
                for &(nb, _) in self.graph.neighbors(v) {
                    if nb != parent && in_comp.contains(nb) {
                        stack.push((nb, v, false));
                    }
                }
            }
        }
        // The centroid minimizes the heaviest piece after removal.
        let mut best = (f64::INFINITY, root);
        for &(v, parent) in &order {
            let mut heaviest = total - sub[v as usize]; // the "upward" piece
            for &(nb, _) in self.graph.neighbors(v) {
                if nb != parent && in_comp.contains(nb) {
                    heaviest = heaviest.max(sub[nb as usize]);
                }
            }
            if heaviest < best.0 {
                best = (heaviest, v);
            }
        }
        best.1
    }
}

impl SeparatorProvider for TreeCentroidSeparator<'_> {
    fn separate(&self, w_set: &VertexSet, balance: &[f64]) -> Separation {
        let n = self.graph.num_vertices();
        let total = set_sum(balance, w_set);
        let comps = self.induced_components(w_set);
        if comps.is_empty() {
            return Separation {
                a_only: vec![],
                sep: vec![],
                b_only: vec![],
            };
        }

        // If every component already weighs ≤ ½·total we can group them
        // with an empty separator; otherwise split the heavy component at
        // its centroid first.
        let comp_weight = |c: &Vec<VertexId>| c.iter().map(|&v| balance[v as usize]).sum::<f64>();
        let heavy = comps
            .iter()
            .position(|c| comp_weight(c) > total / 2.0 && c.len() > 1);

        let mut pieces: Vec<Vec<VertexId>> = Vec::new();
        let mut sep: Vec<VertexId> = Vec::new();
        for (i, comp) in comps.into_iter().enumerate() {
            if Some(i) == heavy {
                let c = self.centroid(&comp, w_set, balance);
                sep.push(c);
                // Pieces = components of comp − c.
                let mut sub = w_set.clone();
                sub.intersect_with(&VertexSet::from_iter(n, comp.iter().copied()));
                sub.remove(c);
                let sub_comps = self.induced_components(&sub);
                pieces.extend(sub_comps);
            } else {
                pieces.push(comp);
            }
        }
        let piece_weights: Vec<f64> = pieces.iter().map(comp_weight).collect();
        let sides = two_thirds_grouping(&piece_weights);
        let mut a_only = Vec::new();
        let mut b_only = Vec::new();
        for (piece, &is_a) in pieces.iter().zip(&sides) {
            if is_a {
                a_only.extend_from_slice(piece);
            } else {
                b_only.extend_from_slice(piece);
            }
        }
        Separation {
            a_only,
            sep,
            b_only,
        }
    }

    fn name(&self) -> &str {
        "tree-centroid"
    }
}

/// Median-slab separations for grid graphs: cut perpendicular to the widest
/// axis at the weighted median coordinate.
pub struct GridSlabSeparator<'g> {
    grid: &'g GridGraph,
}

impl<'g> GridSlabSeparator<'g> {
    /// Bind to a grid graph.
    pub fn new(grid: &'g GridGraph) -> Self {
        Self { grid }
    }
}

impl SeparatorProvider for GridSlabSeparator<'_> {
    fn separate(&self, w_set: &VertexSet, balance: &[f64]) -> Separation {
        let members: Vec<VertexId> = w_set.iter().collect();
        if members.is_empty() {
            return Separation {
                a_only: vec![],
                sep: vec![],
                b_only: vec![],
            };
        }
        // Pick the axis with the widest extent.
        let d = self.grid.dim;
        let mut best_axis = 0;
        let mut best_extent = i64::MIN;
        for axis in 0..d {
            let (lo, hi) = members.iter().fold((i64::MAX, i64::MIN), |(lo, hi), &v| {
                let x = self.grid.coord(v)[axis];
                (lo.min(x), hi.max(x))
            });
            if hi - lo > best_extent {
                best_extent = hi - lo;
                best_axis = axis;
            }
        }
        // Weighted median coordinate along that axis.
        let mut by_coord: Vec<(i64, VertexId)> = members
            .iter()
            .map(|&v| (self.grid.coord(v)[best_axis], v))
            .collect();
        by_coord.sort_unstable();
        let total: f64 = members.iter().map(|&v| balance[v as usize]).sum();
        let mut acc = 0.0;
        let mut median = by_coord[0].0;
        for &(x, v) in &by_coord {
            acc += balance[v as usize];
            if acc >= total / 2.0 {
                median = x;
                break;
            }
        }
        let mut a_only = Vec::new();
        let mut sep = Vec::new();
        let mut b_only = Vec::new();
        for &(x, v) in &by_coord {
            match x.cmp(&median) {
                std::cmp::Ordering::Less => a_only.push(v),
                std::cmp::Ordering::Equal => sep.push(v),
                std::cmp::Ordering::Greater => b_only.push(v),
            }
        }
        Separation {
            a_only,
            sep,
            b_only,
        }
    }

    fn name(&self) -> &str {
        "grid-slab"
    }
}

/// The `Split` procedure of Lemma 37: a [`Splitter`] built from any
/// [`SeparatorProvider`].
pub struct SeparatorSplitter<'g, P> {
    graph: &'g Graph,
    costs: &'g [f64],
    provider: P,
    /// The `p` of the separating-cost measure `π(v) = τ(v)^p`.
    pub p: f64,
}

impl<'g, P: SeparatorProvider> SeparatorSplitter<'g, P> {
    /// Bind the reduction to an instance and a provider.
    pub fn new(graph: &'g Graph, costs: &'g [f64], provider: P, p: f64) -> Self {
        assert_eq!(
            costs.len(),
            graph.num_edges(),
            "cost vector length mismatch"
        );
        assert!(p >= 1.0, "p must be at least 1");
        Self {
            graph,
            costs,
            provider,
            p,
        }
    }

    /// `τ_W(v) = c(δ(v) ∩ E(W))` for every `v ∈ W` (0 outside).
    fn tau_within(&self, w_set: &VertexSet) -> Vec<f64> {
        let mut tau = vec![0.0; self.graph.num_vertices()];
        for v in w_set.iter() {
            tau[v as usize] = self
                .graph
                .neighbors(v)
                .iter()
                .filter(|&&(nb, _)| w_set.contains(nb))
                .map(|&(_, e)| self.costs[e as usize])
                .sum();
        }
        tau
    }

    /// The `Split` procedure: returns `(core, ordered separator vertices)`
    /// such that `w(core) ≤ target − w_max/2 ≤ w(core) + w(sep)` whenever
    /// reachable, and `∂_W(core + any sep prefix)` only involves edges
    /// incident to collected separator vertices.
    ///
    /// The descent is a linear chain (each level recurses into exactly one
    /// side), so it runs as a loop with two LIFO accumulators instead of
    /// call-stack recursion — a path graph at `n = 10^6` would otherwise
    /// blow the stack long before the ⅔-balance contract stops helping.
    /// Popping the accumulators reassembles the exact innermost-first
    /// concatenation order of the recursive formulation.
    fn split_rec(
        &self,
        w_set: &VertexSet,
        weights: &[f64],
        target: f64,
        wmax: f64,
    ) -> (Vec<VertexId>, Vec<VertexId>) {
        let n = self.graph.num_vertices();
        let mut w_set = w_set.clone();
        let mut target = target;
        // Case-3 levels prepend `a_only ++ sep` to the core *after* the
        // inner result; case-1 levels append `sep` after the inner
        // separator. Pushed outermost-first, popped innermost-first.
        let mut core_tail: Vec<Vec<VertexId>> = Vec::new();
        let mut sep_tail: Vec<Vec<VertexId>> = Vec::new();
        let mut depth = 0usize;
        let (base_core, base_sep) = loop {
            // Trivial case: no costly inner structure, or the descent got
            // stuck — every vertex may serve as separator at zero relative
            // cost.
            let tau = self.tau_within(&w_set);
            let pi_total: f64 = w_set.iter().map(|v| tau[v as usize].powf(self.p)).sum();
            if pi_total <= 0.0 || depth > 64 + 2 * n {
                break (Vec::new(), w_set.iter().collect());
            }
            let pi: Vec<f64> = tau.iter().map(|&t| t.powf(self.p)).collect();
            let separation = self.provider.separate(&w_set, &pi);
            let Separation {
                a_only,
                sep,
                b_only,
            } = separation;
            if a_only.len() + sep.len() < w_set.len() && a_only.is_empty() && sep.is_empty() {
                // Degenerate provider output; bail out to the trivial case.
                break (Vec::new(), w_set.iter().collect());
            }
            let w_of = |vs: &[VertexId]| vs.iter().map(|&v| weights[v as usize]).sum::<f64>();
            let wa_only = w_of(&a_only);
            let wa = wa_only + w_of(&sep);

            if target - wmax / 2.0 < wa_only {
                // Descend into A \ B, same target.
                sep_tail.push(sep);
                w_set = VertexSet::from_iter(n, a_only.iter().copied());
            } else if target - wmax / 2.0 <= wa {
                // The splitting value lands inside the separator.
                break (a_only, sep);
            } else {
                // Take all of A, descend into B \ A with the residual target.
                let mut piece = a_only;
                piece.extend(sep);
                core_tail.push(piece);
                w_set = VertexSet::from_iter(n, b_only.iter().copied());
                target -= wa;
            }
            depth += 1;
        };
        let mut core = base_core;
        while let Some(piece) = core_tail.pop() {
            core.extend(piece);
        }
        let mut sep = base_sep;
        while let Some(s) = sep_tail.pop() {
            sep.extend(s);
        }
        (core, sep)
    }
}

impl<P: SeparatorProvider> Splitter for SeparatorSplitter<'_, P> {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        let total = set_sum(weights, w_set);
        let target = target.clamp(0.0, total);
        let wmax = mmb_graph::measure::set_max(weights, w_set);
        let (core, sep) = self.split_rec(w_set, weights, target, wmax);
        // w(core) < target (invariant), so the best prefix of core ++ sep
        // never stops inside core; prefix_split gives the exact contract.
        let mut order = core;
        order.extend(sep);
        prefix_split(self.graph.num_vertices(), &order, weights, target)
    }

    fn name(&self) -> &str {
        "separator-split"
    }
}

/// Total vertex cost `τ(S) = Σ_{s∈S} c(δ(s) ∩ E(W))` of a separator inside
/// `G[W]` — the cost notion of Definition 34/35.
pub fn separator_cost(g: &Graph, costs: &[f64], w_set: &VertexSet, sep: &[VertexId]) -> f64 {
    sep.iter()
        .map(|&v| {
            g.neighbors(v)
                .iter()
                .filter(|&&(nb, _)| w_set.contains(nb))
                .map(|&(_, e)| costs[e as usize])
                .sum::<f64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::check_split;
    use mmb_graph::cut::boundary_cost_within;
    use mmb_graph::gen::tree::{complete_binary_tree, random_tree};

    #[test]
    fn grouping_respects_two_thirds() {
        // Precondition of the grouping lemma: every piece ≤ ½ · total.
        for weights in [
            vec![1.0, 1.0, 1.0],
            vec![5.0, 3.0, 2.0, 1.0],
            vec![0.5, 0.5],
            vec![4.0, 4.0, 4.0],
            vec![3.0, 3.0, 1.0, 1.0, 1.0, 1.0],
        ] {
            let total: f64 = weights.iter().sum();
            let sides = two_thirds_grouping(&weights);
            let a: f64 = weights
                .iter()
                .zip(&sides)
                .filter(|(_, &s)| s)
                .map(|(w, _)| w)
                .sum();
            let b = total - a;
            assert!(a <= 2.0 / 3.0 * total + 1e-9, "{weights:?}");
            assert!(b <= 2.0 / 3.0 * total + 1e-9, "{weights:?}");
        }
    }

    #[test]
    fn centroid_separation_is_balanced() {
        let g = complete_binary_tree(7); // 127 vertices
        let n = g.num_vertices();
        let sepp = TreeCentroidSeparator::new(&g);
        let w = VertexSet::full(n);
        for skew in [0u64, 1, 2] {
            let balance: Vec<f64> = (0..n)
                .map(|v| 1.0 + ((v as u64 + skew) % 5) as f64)
                .collect();
            let s = sepp.separate(&w, &balance);
            assert!(s.check(&g, &w, &balance), "separation contract violated");
        }
    }

    #[test]
    fn centroid_handles_point_masses() {
        // All weight on one vertex: that vertex must end up in the
        // separator or alone on a side — balance still holds because the
        // other side has zero weight… 2/3 of total requires the heavy
        // vertex to be the centroid.
        let g = complete_binary_tree(5);
        let n = g.num_vertices();
        let sepp = TreeCentroidSeparator::new(&g);
        let w = VertexSet::full(n);
        let mut balance = vec![0.0; n];
        balance[13] = 100.0;
        let s = sepp.separate(&w, &balance);
        assert!(s.check(&g, &w, &balance));
    }

    #[test]
    fn grid_slab_separation_is_balanced() {
        let grid = GridGraph::lattice(&[9, 5]);
        let n = grid.graph.num_vertices();
        let sepp = GridSlabSeparator::new(&grid);
        let w = VertexSet::full(n);
        let balance: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
        let s = sepp.separate(&w, &balance);
        assert!(s.check(&grid.graph, &w, &balance));
        assert!(!s.sep.is_empty());
    }

    #[test]
    fn separator_splitter_contract_on_trees() {
        let g = random_tree(150, 3, 21);
        let n = g.num_vertices();
        let costs: Vec<f64> = (0..g.num_edges()).map(|e| 1.0 + (e % 4) as f64).collect();
        let sp = SeparatorSplitter::new(&g, &costs, TreeCentroidSeparator::new(&g), 2.0);
        let w = VertexSet::full(n);
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 6) as f64).collect();
        let total: f64 = weights.iter().sum();
        for frac in [0.1, 0.3, 0.5, 0.7, 0.95] {
            let target = frac * total;
            let u = sp.split(&w, &weights, target);
            assert!(check_split(&w, &u, &weights, target).holds(), "frac {frac}");
        }
    }

    #[test]
    fn separator_splitter_cost_tracks_separators() {
        // On a complete binary tree the Split reduction should produce cuts
        // of logarithmic cost, like the direct tree splitter.
        let g = complete_binary_tree(10); // 1023 vertices
        let n = g.num_vertices();
        let costs = vec![1.0; g.num_edges()];
        let sp = SeparatorSplitter::new(&g, &costs, TreeCentroidSeparator::new(&g), 2.0);
        let w = VertexSet::full(n);
        let weights = vec![1.0; n];
        let u = sp.split(&w, &weights, n as f64 / 2.0);
        assert!(check_split(&w, &u, &weights, n as f64 / 2.0).holds());
        let cut = boundary_cost_within(&g, &costs, &w, &u);
        assert!(cut <= 60.0, "Split-reduction cut {cut} too expensive");
    }

    #[test]
    fn separator_splitter_on_grid_slabs() {
        let grid = GridGraph::lattice(&[12, 12]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = SeparatorSplitter::new(&grid.graph, &costs, GridSlabSeparator::new(&grid), 2.0);
        let w = VertexSet::full(n);
        let weights = vec![1.0; n];
        let u = sp.split(&w, &weights, 72.0);
        assert!(check_split(&w, &u, &weights, 72.0).holds());
        let cut = boundary_cost_within(&grid.graph, &costs, &w, &u);
        // Slab-based cuts should be O(side) on a square grid.
        assert!(cut <= 4.0 * 12.0, "slab cut {cut} too expensive");
    }

    #[test]
    fn separator_cost_helper() {
        let g = complete_binary_tree(3);
        let costs = vec![2.0; g.num_edges()];
        let w = VertexSet::full(g.num_vertices());
        // Root has degree 2 inside W.
        assert_eq!(separator_cost(&g, &costs, &w, &[0]), 4.0);
    }
}
