//! # mmb-splitters
//!
//! Splitting sets and separator theorems — the engine room of the min-max
//! boundary decomposition algorithms.
//!
//! ## The splitting contract (Definition 3)
//!
//! For a splitting value `w*` with `0 ≤ w* ≤ Ψ(W)`, a vertex set `U ⊆ W` is
//! **`w*`-splitting** if `|Ψ(U) − w*| ≤ ‖Ψ|_W‖_∞ / 2`. The
//! *p-splittability* `σ_p(G, c)` is the least number such that every induced
//! subgraph `G[W]`, every weight function and every splitting value admit a
//! splitting set of relative boundary cost `∂_W U ≤ σ_p · ‖c|_W‖_p`.
//!
//! Implementations of [`Splitter`] must always satisfy the balance half of
//! the contract **exactly** (it is machine-checkable and the correctness of
//! every downstream algorithm rests on it); their *quality* is the boundary
//! cost, which differs per family:
//!
//! | splitter | graph family | boundary guarantee |
//! |----------|--------------|--------------------|
//! | [`grid::GridSplitter`] | d-dim grid graphs, arbitrary costs | `O(d·log^{1/d}(φ+1)·‖c|_W‖_{d/(d−1)})` (Theorem 19) |
//! | [`order::OrderSplitter`] | paths / linear arrangements | ≤ 2 cut edges on paths (`σ_p ≤ 2`) |
//! | [`tree::TreeSplitter`] | forests | `O(Δ·log|W|)` cut edges |
//! | [`bfs::BfsSplitter`] | any | none (engineering baseline) |
//! | [`separator::SeparatorSplitter`] | any with a balanced-separator provider | `O_p(τ(sep))` via Lemma 37's `Split` |
//! | [`adversarial::AdversarialSplitter`] | any | *deliberately bad* (failure injection) |
//!
//! All splitters are bound to a `(graph, costs)` pair at construction; the
//! decomposition algorithms call them with varying vertex subsets, measures
//! and targets.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod bfs;
pub mod contract;
pub mod estimate;
pub mod grid;
pub mod order;
pub mod recording;
pub mod separator;
pub mod tree;

use mmb_graph::{VertexId, VertexSet};

/// A provider of splitting sets on a fixed instance `(G, c)`.
///
/// `Sync` is a supertrait: the decomposition pipeline fans independent
/// per-class splitting work out over threads (conquer bin packing, layer
/// extraction, `solve_many` batches), so a splitter must be safe to call
/// from several workers at once. All splitters in this crate qualify —
/// they hold only shared references and per-call state; the
/// instrumentation wrapper ([`recording::RecordingSplitter`]) uses atomic
/// counters.
pub trait Splitter: Sync {
    /// Compute a `target`-splitting set `U ⊆ w_set` with respect to the
    /// dense vertex measure `weights`.
    ///
    /// Contract (Definition 3): `|Ψ(U) − target| ≤ ‖Ψ|_W‖_∞ / 2`, where the
    /// target is clamped into `[0, Ψ(W)]` first. If `Ψ|_W ≡ 0` every subset
    /// satisfies the contract; implementations then return roughly half of
    /// `W` by vertex count so that callers that carve pieces iteratively
    /// still make progress.
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "splitter"
    }
}

impl<T: Splitter + ?Sized> Splitter for &T {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        (**self).split(w_set, weights, target)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<T: Splitter + ?Sized> Splitter for Box<T> {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        (**self).split(w_set, weights, target)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<T: Splitter + Send + ?Sized> Splitter for std::sync::Arc<T> {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        (**self).split(w_set, weights, target)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Take the best prefix of `order` (which must enumerate exactly the members
/// of the intended `W`) with respect to `weights` and `target`.
///
/// Returns the prefix whose weight is nearest to the (clamped) target; the
/// deviation is at most half the largest weight in the order, which is
/// exactly the Definition-3 contract. If all weights are zero, returns the
/// first `⌈len/2⌉` elements.
pub fn prefix_split(
    universe: usize,
    order: &[VertexId],
    weights: &[f64],
    target: f64,
) -> VertexSet {
    VertexSet::from_iter(
        universe,
        order[..prefix_cut_len(order, weights, target)]
            .iter()
            .copied(),
    )
}

/// The decision rule behind [`prefix_split`]: the length of the best
/// prefix of `order` for the (clamped) `target`. Shared with the grid
/// splitter's allocation-free fast path so the two can never drift.
pub fn prefix_cut_len(order: &[VertexId], weights: &[f64], target: f64) -> usize {
    let total: f64 = order.iter().map(|&v| weights[v as usize]).sum();
    let target = target.clamp(0.0, total);
    if total <= 0.0 {
        return order.len().div_ceil(2);
    }
    // Walk prefixes; stop at the first prefix whose weight reaches the
    // target, then decide whether dropping the last element is closer.
    let mut acc = 0.0;
    let mut cut = order.len();
    for (i, &v) in order.iter().enumerate() {
        let next = acc + weights[v as usize];
        if next >= target {
            // Prefix of length i has weight acc (< target ≤ next).
            cut = if target - acc <= next - target {
                i
            } else {
                i + 1
            };
            break;
        }
        acc = next;
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_split_hits_target_within_half_max() {
        let order: Vec<u32> = (0..6).collect();
        let w = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        for target in [0.0, 1.0, 7.5, 10.0, 21.0, 100.0] {
            let u = prefix_split(6, &order, &w, target);
            let got: f64 = u.iter().map(|v| w[v as usize]).sum();
            let clamped = target.clamp(0.0, 21.0);
            assert!(
                (got - clamped).abs() <= 3.0 + 1e-12,
                "target {target}: got {got}"
            );
        }
    }

    #[test]
    fn prefix_split_zero_weights_returns_half() {
        let order: Vec<u32> = (0..5).collect();
        let w = vec![0.0; 5];
        let u = prefix_split(5, &order, &w, 0.0);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn prefix_split_empty_order() {
        let u = prefix_split(4, &[], &[1.0; 4], 0.0);
        assert!(u.is_empty());
    }

    #[test]
    fn prefix_split_prefers_exact() {
        let order: Vec<u32> = (0..4).collect();
        let w = vec![2.0, 2.0, 2.0, 2.0];
        let u = prefix_split(4, &order, &w, 4.0);
        let got: f64 = u.iter().map(|v| w[v as usize]).sum();
        assert_eq!(got, 4.0);
    }
}
