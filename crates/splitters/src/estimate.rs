//! Empirical splittability estimation.
//!
//! `σ_p(G, c)` (Definition 3) is a supremum over all induced subgraphs,
//! weight functions and splitting values — not computable exactly, but the
//! paper's introduction argues it is the quantity that "predicts the
//! scalability" of a scientific-computing application. This module
//! estimates it by adversarial sampling: random vertex subsets (BFS balls,
//! random induced subsets, and the full graph), random weight profiles
//! (flat, skewed, point-mass-diluted) and a spread of splitting values,
//! reporting the largest observed `∂_W U / ‖c|_W‖_p`.
//!
//! The estimate is a **lower bound** on `σ_p` with respect to the given
//! splitter (the true supremum may be larger), and an upper-bound
//! *certificate of quality* for the splitter on the sampled workloads.

use mmb_graph::cut::boundary_cost_within;
use mmb_graph::measure::edge_norm_p;
use mmb_graph::{Graph, VertexSet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Splitter;

/// Result of a sampling run.
#[derive(Clone, Debug)]
pub struct SigmaEstimate {
    /// Largest observed `∂_W U / ‖c|_W‖_p`.
    pub sigma: f64,
    /// Number of (subset, weights, target) triples evaluated.
    pub samples: usize,
    /// The subset size at which the worst ratio occurred.
    pub worst_subset_size: usize,
}

/// Estimate `σ_p` of `(g, costs)` under `splitter` from `rounds` sampled
/// subgraph/weight/target triples.
pub fn estimate_sigma<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    splitter: &S,
    p: f64,
    rounds: usize,
    seed: u64,
) -> SigmaEstimate {
    assert!(p >= 1.0, "p must be at least 1");
    assert_eq!(costs.len(), g.num_edges(), "cost vector length mismatch");
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545F4914F6CDD1D);
    let mut est = SigmaEstimate {
        sigma: 0.0,
        samples: 0,
        worst_subset_size: 0,
    };
    if n == 0 {
        return est;
    }

    for round in 0..rounds {
        // Subset: alternate between the full set, a BFS ball, and an iid
        // random subset.
        let w_set = match round % 3 {
            0 => VertexSet::full(n),
            1 => bfs_ball(g, rng.random_range(0..n as u32), rng.random_range(1..=n), n),
            _ => {
                let keep = 0.3 + 0.6 * rng.random::<f64>();
                let s =
                    VertexSet::from_iter(n, (0..n as u32).filter(|_| rng.random::<f64>() < keep));
                if s.is_empty() {
                    VertexSet::full(n)
                } else {
                    s
                }
            }
        };
        // Weights: flat, geometric skew, or diluted point masses.
        let weights: Vec<f64> = match round % 4 {
            0 => vec![1.0; n],
            1 => (0..n).map(|v| 1.02f64.powi((v % 512) as i32)).collect(),
            2 => (0..n)
                .map(|_| {
                    if rng.random::<f64>() < 0.05 {
                        10.0
                    } else {
                        0.1
                    }
                })
                .collect(),
            _ => (0..n).map(|_| rng.random::<f64>()).collect(),
        };
        let total: f64 = w_set.iter().map(|v| weights[v as usize]).sum();
        let target = total * rng.random::<f64>();
        let u = splitter.split(&w_set, &weights, target);
        let norm = edge_norm_p(g, costs, &w_set, p);
        est.samples += 1;
        if norm > 0.0 {
            let ratio = boundary_cost_within(g, costs, &w_set, &u) / norm;
            if ratio > est.sigma {
                est.sigma = ratio;
                est.worst_subset_size = w_set.len();
            }
        }
    }
    est
}

fn bfs_ball(g: &Graph, seed: u32, cap: usize, n: usize) -> VertexSet {
    let mut out = VertexSet::empty(n);
    let mut queue = std::collections::VecDeque::from([seed]);
    out.insert(seed);
    while let Some(v) = queue.pop_front() {
        if out.len() >= cap {
            break;
        }
        for &(nb, _) in g.neighbors(v) {
            if out.len() >= cap {
                break;
            }
            if out.insert(nb) {
                queue.push_back(nb);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSplitter;
    use crate::order::OrderSplitter;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::gen::misc::path;

    #[test]
    fn paths_have_tiny_sigma() {
        // Interval splitting: ∂_W U ≤ 2·‖c‖∞ ≤ 2·‖c|W‖_p; σ estimate must
        // come out ≤ 2.
        let g = path(256);
        let costs = vec![1.0; 255];
        let sp = OrderSplitter::by_id(&g);
        let est = estimate_sigma(&g, &costs, &sp, 2.0, 60, 7);
        assert!(est.samples == 60);
        assert!(est.sigma <= 2.0 + 1e-9, "path sigma {}", est.sigma);
        assert!(est.sigma > 0.0);
    }

    #[test]
    fn grids_have_moderate_sigma() {
        let grid = GridGraph::lattice(&[16, 16]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let est = estimate_sigma(&grid.graph, &costs, &sp, 2.0, 45, 11);
        // ‖c‖₂ = √480 ≈ 21.9; a bisection cut is ~16–32 edges → σ ≈ 1–2.
        assert!(
            est.sigma < 5.0,
            "grid sigma estimate too large: {}",
            est.sigma
        );
        assert!(est.worst_subset_size > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let grid = GridGraph::lattice(&[8, 8]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let a = estimate_sigma(&grid.graph, &costs, &sp, 2.0, 20, 3);
        let b = estimate_sigma(&grid.graph, &costs, &sp, 2.0, 20, 3);
        assert_eq!(a.sigma, b.sigma);
        assert_eq!(a.worst_subset_size, b.worst_subset_size);
    }

    #[test]
    fn empty_graph() {
        let g = mmb_graph::graph::graph_from_edges(0, &[]);
        let sp = OrderSplitter::by_key(0, vec![], "noop");
        let est = estimate_sigma(&g, &[], &sp, 2.0, 5, 1);
        assert_eq!(est.sigma, 0.0);
    }
}
