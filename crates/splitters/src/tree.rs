//! Splitting sets for forests.
//!
//! Trees are the simplest nontrivial family with good splitting sets: a DFS
//! preorder that always descends into the **smallest** child subtree first
//! has the property that every preorder prefix cuts `O(Δ·log|W|)` edges.
//! (At any moment, each DFS-stack vertex that still has an unvisited child
//! is exploring a child no larger than that unvisited subtree, so the
//! subtree sizes along the stack at such vertices at least double going up —
//! there are at most `log₂|W|` of them, each contributing ≤ Δ frontier
//! edges.) This matches the `Θ(log n)` balanced-cut lower bound of complete
//! binary trees up to the `Δ` factor.

use mmb_graph::{Graph, VertexId, VertexSet};

use crate::{prefix_split, Splitter};

/// Smallest-subtree-first DFS prefix splitter for forests.
pub struct TreeSplitter<'g> {
    graph: &'g Graph,
}

impl<'g> TreeSplitter<'g> {
    /// Bind to a forest.
    ///
    /// # Panics
    /// Panics if `graph` contains a cycle.
    pub fn new(graph: &'g Graph) -> Self {
        let (_, components) = graph.components();
        assert_eq!(
            graph.num_edges() + components,
            graph.num_vertices(),
            "TreeSplitter requires a forest"
        );
        Self { graph }
    }

    /// Smallest-subtree-first preorder of the forest induced by `W`.
    pub fn preorder(&self, w_set: &VertexSet) -> Vec<VertexId> {
        let n = self.graph.num_vertices();
        let mut order = Vec::with_capacity(w_set.len());
        let mut visited = VertexSet::empty(n);
        let mut subtree = vec![0u32; n];

        for root in w_set.iter() {
            if visited.contains(root) {
                continue;
            }
            // Pass 1: subtree sizes via iterative post-order.
            let mut stack = vec![(root, root, false)]; // (vertex, parent, expanded)
            while let Some((v, parent, expanded)) = stack.pop() {
                if expanded {
                    let mut size = 1u32;
                    for &(nb, _) in self.graph.neighbors(v) {
                        if nb != parent && w_set.contains(nb) {
                            size += subtree[nb as usize];
                        }
                    }
                    subtree[v as usize] = size;
                } else {
                    stack.push((v, parent, true));
                    for &(nb, _) in self.graph.neighbors(v) {
                        if nb != parent && w_set.contains(nb) {
                            stack.push((nb, v, false));
                        }
                    }
                }
            }
            // Pass 2: preorder, smallest child subtree first.
            let mut stack = vec![(root, root)];
            visited.insert(root);
            while let Some((v, parent)) = stack.pop() {
                order.push(v);
                let mut children: Vec<VertexId> = self
                    .graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&(nb, _)| nb != parent && w_set.contains(nb))
                    .map(|&(nb, _)| nb)
                    .collect();
                // Stack pops in reverse, so push the largest first to visit
                // the smallest subtree first.
                children.sort_unstable_by_key(|&c| std::cmp::Reverse(subtree[c as usize]));
                for c in children {
                    visited.insert(c);
                    stack.push((c, v));
                }
            }
        }
        order
    }
}

impl Splitter for TreeSplitter<'_> {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        let order = self.preorder(w_set);
        prefix_split(self.graph.num_vertices(), &order, weights, target)
    }

    fn name(&self) -> &str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::check_split;
    use mmb_graph::cut::cut_size_within;
    use mmb_graph::gen::tree::{caterpillar, complete_binary_tree, random_tree};

    #[test]
    fn contract_on_binary_tree() {
        let g = complete_binary_tree(6); // 63 vertices
        let sp = TreeSplitter::new(&g);
        let w = VertexSet::full(63);
        let weights: Vec<f64> = (0..63).map(|v| 1.0 + (v % 4) as f64).collect();
        let total: f64 = weights.iter().sum();
        for frac in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let target = frac * total;
            let u = sp.split(&w, &weights, target);
            assert!(check_split(&w, &u, &weights, target).holds(), "frac {frac}");
        }
    }

    #[test]
    fn logarithmic_cut_on_binary_tree() {
        // Split a complete binary tree in half: the preorder prefix must cut
        // O(Δ·log n) = O(3·levels) edges.
        let levels = 12;
        let g = complete_binary_tree(levels); // 4095 vertices
        let n = g.num_vertices();
        let sp = TreeSplitter::new(&g);
        let w = VertexSet::full(n);
        let weights = vec![1.0; n];
        let u = sp.split(&w, &weights, n as f64 / 2.0);
        assert!(check_split(&w, &u, &weights, n as f64 / 2.0).holds());
        let cut = cut_size_within(&g, &w, &u);
        let bound = 3 * (levels as usize + 1);
        assert!(cut <= bound, "cut {cut} exceeds O(Δ log n) bound {bound}");
    }

    #[test]
    fn caterpillar_cuts_are_constant() {
        // Smallest-first visits legs before advancing the spine, so any
        // prefix cuts O(Δ) edges.
        let g = caterpillar(100, 3);
        let n = g.num_vertices();
        let sp = TreeSplitter::new(&g);
        let w = VertexSet::full(n);
        let weights = vec![1.0; n];
        for frac in [0.25, 0.5, 0.75] {
            let target = frac * n as f64;
            let u = sp.split(&w, &weights, target);
            assert!(check_split(&w, &u, &weights, target).holds());
            let cut = cut_size_within(&g, &w, &u);
            assert!(cut <= 6, "caterpillar prefix cut {cut} too large");
        }
    }

    #[test]
    fn works_on_sub_forests() {
        let g = random_tree(300, 4, 5);
        let n = g.num_vertices();
        let sp = TreeSplitter::new(&g);
        // An arbitrary subset induces a forest with many components.
        let w = VertexSet::from_iter(n, (0..n as u32).filter(|v| v % 7 != 0));
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
        let wsum: f64 = w.iter().map(|v| weights[v as usize]).sum();
        let u = sp.split(&w, &weights, wsum * 0.4);
        assert!(check_split(&w, &u, &weights, wsum * 0.4).holds());
        let order = sp.preorder(&w);
        assert_eq!(order.len(), w.len());
    }

    #[test]
    #[should_panic(expected = "forest")]
    fn rejects_cyclic_graphs() {
        let g = mmb_graph::gen::misc::cycle(5);
        let _ = TreeSplitter::new(&g);
    }
}
