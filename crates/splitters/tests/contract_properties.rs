//! Property tests: every splitter honors the Definition-3 contract on
//! arbitrary subsets, weights, and targets.

use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::tree::random_tree;
use mmb_graph::VertexSet;
use mmb_splitters::adversarial::AdversarialSplitter;
use mmb_splitters::bfs::BfsSplitter;
use mmb_splitters::contract::check_split;
use mmb_splitters::grid::{is_monotone_in, GridSplitter};
use mmb_splitters::order::OrderSplitter;
use mmb_splitters::separator::{SeparatorSplitter, TreeCentroidSeparator};
use mmb_splitters::tree::TreeSplitter;
use mmb_splitters::Splitter;
use proptest::prelude::*;

fn arb_weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10.0, n..=n)
}

fn subset_from_mask(n: usize, mask: u64) -> VertexSet {
    VertexSet::from_iter(n, (0..n as u32).filter(|v| (mask >> (v % 64)) & 1 == 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_splitter_contract(
        side in 2usize..9,
        mask in any::<u64>(),
        weights_seed in any::<u64>(),
        frac in 0.0f64..1.0,
        cost_scale in 0.1f64..100.0,
    ) {
        let grid = GridGraph::lattice(&[side, side]);
        let n = grid.graph.num_vertices();
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| cost_scale * (1.0 + (e % 9) as f64))
            .collect();
        let sp = GridSplitter::new(&grid, &costs);
        let w = subset_from_mask(n, mask | 1);
        let weights: Vec<f64> = (0..n)
            .map(|v| ((weights_seed >> (v % 48)) & 7) as f64)
            .collect();
        let total: f64 = w.iter().map(|v| weights[v as usize]).sum();
        let target = frac * total;
        let u = sp.split(&w, &weights, target);
        prop_assert!(check_split(&w, &u, &weights, target).holds());
    }

    #[test]
    fn grid_splitter_monotone(
        side in 3usize..8,
        frac in 0.05f64..0.95,
    ) {
        // Lemma 24 on the full lattice with varied targets.
        let grid = GridGraph::lattice(&[side, side]);
        let n = grid.graph.num_vertices();
        let costs: Vec<f64> = (0..grid.graph.num_edges()).map(|e| 1.0 + (e % 5) as f64).collect();
        let sp = GridSplitter::new(&grid, &costs);
        let w = VertexSet::full(n);
        let weights = vec![1.0; n];
        let u = sp.split(&w, &weights, frac * n as f64);
        prop_assert!(is_monotone_in(&grid, &u, &w));
    }

    #[test]
    fn tree_splitter_contract(
        n in 2usize..120,
        seed in any::<u64>(),
        mask in any::<u64>(),
        frac in 0.0f64..1.0,
        weights in arb_weights(120),
    ) {
        let g = random_tree(n, 3, seed);
        let sp = TreeSplitter::new(&g);
        let w = subset_from_mask(n, mask | 1);
        let total: f64 = w.iter().map(|v| weights[v as usize]).sum();
        let target = frac * total;
        let u = sp.split(&w, &weights, target);
        prop_assert!(check_split(&w, &u, &weights, target).holds());
    }

    #[test]
    fn separator_splitter_contract(
        n in 2usize..100,
        seed in any::<u64>(),
        frac in 0.0f64..1.0,
        weights in arb_weights(100),
    ) {
        let g = random_tree(n, 4, seed);
        let costs: Vec<f64> = (0..g.num_edges()).map(|e| 1.0 + (e % 3) as f64).collect();
        let sp = SeparatorSplitter::new(&g, &costs, TreeCentroidSeparator::new(&g), 2.0);
        let w = VertexSet::full(n);
        let total: f64 = w.iter().map(|v| weights[v as usize]).sum();
        let target = frac * total;
        let u = sp.split(&w, &weights, target);
        prop_assert!(check_split(&w, &u, &weights, target).holds());
    }

    #[test]
    fn order_bfs_adversarial_contract(
        side in 2usize..8,
        mask in any::<u64>(),
        frac in 0.0f64..1.0,
        weights in arb_weights(64),
    ) {
        let grid = GridGraph::lattice(&[side, side]);
        let n = grid.graph.num_vertices();
        let w = subset_from_mask(n, mask | 1);
        let total: f64 = w.iter().map(|v| weights[v as usize]).sum();
        let target = frac * total;
        let splitters: Vec<Box<dyn Splitter>> = vec![
            Box::new(OrderSplitter::by_axis(&grid, 0)),
            Box::new(BfsSplitter::new(&grid.graph)),
            Box::new(AdversarialSplitter::new(n, mask)),
        ];
        for sp in &splitters {
            let u = sp.split(&w, &weights, target);
            prop_assert!(
                check_split(&w, &u, &weights, target).holds(),
                "{} violated the contract", sp.name()
            );
        }
    }
}
