//! Canonical, seeded-deterministic fingerprints for graphs and instances.
//!
//! A [`Fingerprint`] is the cache key of the warm solve path (`mmb-core`'s
//! `SolverCache`, the `mmb-service` front end): three 64-bit digests — one
//! over the graph *structure* (vertex count, edge count, canonical edge
//! list), one over the edge costs, one over the vertex weights — computed
//! by a fixed-seed splitmix64 stream fold. The split matters downstream:
//! solver artifacts (recognition result, the splitting-cost measure `π`,
//! `‖c‖_p`) depend only on structure and costs, so a weight-only mutation
//! keeps a cache entry hot.
//!
//! ## Canonicality
//!
//! [`Graph`] stores its edges canonically — `u < v`, sorted, deduplicated —
//! so two graphs built from the same edge multiset in any insertion order
//! share one [`Graph::edge_list`] bit for bit, and therefore one structure
//! digest. In particular a METIS serialize → re-ingest round-trip is
//! fingerprint-stable by construction (tested in `tests/fingerprint.rs` at
//! the workspace root).
//!
//! ## Determinism
//!
//! The digest is a fixed-seed stream: no `RandomState`, no per-process
//! keys, no pointer identity. Same inputs, same fingerprint — across
//! threads, processes and scratch policies. Floats contribute their exact
//! IEEE-754 bit patterns ([`f64::to_bits`]), so digests distinguish `0.0`
//! from `-0.0` and never hit NaN comparison traps.
//!
//! A fingerprint is a *filter*, not a proof: 64-bit digests can collide,
//! so every cache consumer confirms a hit by full comparison against the
//! stored graph and cost vector before reusing anything (see
//! `SolverArtifacts::matches` in `mmb-core`).

use crate::graph::Graph;

/// Fixed digest seed ("mmb-fp01" as ASCII); bump to invalidate every
/// persisted fingerprint if the digest scheme ever changes.
const SEED: u64 = 0x6d6d_622d_6670_3031;

/// A seeded streaming hash: splitmix64 applied to `state ^ word` per
/// 64-bit word. Not cryptographic — a fast scatter whose collisions are
/// caught by the full comparison cache hits always perform.
#[derive(Clone, Copy, Debug)]
struct Digest {
    state: u64,
}

impl Digest {
    fn new(domain: u64) -> Self {
        Digest {
            state: SEED ^ domain,
        }
    }

    fn mix(&mut self, word: u64) {
        // splitmix64 (Steele, Lea & Flood 2014) — the same tiny mixer the
        // failpoint chaos schedules use.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15 ^ word);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.state = z ^ (z >> 31);
    }

    fn finish(self) -> u64 {
        let mut d = self;
        d.mix(0x6669_6e69_7368_6564); // "finished"
        d.state
    }
}

/// The canonical fingerprint of a weighted instance: structure, cost and
/// weight digests, separable so consumers can key on exactly the parts
/// their cached data depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// Digest of `(n, m, canonical edge list)`.
    pub structure: u64,
    /// Digest of the edge-cost vector (exact IEEE-754 bits).
    pub costs: u64,
    /// Digest of the vertex-weight vector (exact IEEE-754 bits).
    pub weights: u64,
}

impl Fingerprint {
    /// Fingerprint a full instance triple. `O(n + m)`.
    pub fn of_parts(g: &Graph, costs: &[f64], weights: &[f64]) -> Self {
        Fingerprint {
            structure: structure_digest(g),
            costs: measure_digest(1, costs),
            weights: measure_digest(2, weights),
        }
    }

    /// The structure-and-costs key solver artifacts are cached under:
    /// weight mutations leave it unchanged, so weight-churn traffic keeps
    /// hitting the same cache entry.
    pub fn artifact_key(&self) -> u64 {
        let mut d = Digest::new(3);
        d.mix(self.structure);
        d.mix(self.costs);
        d.finish()
    }

    /// All three digests folded into one word — the "whole instance"
    /// identity a serving layer can hand out as a ticket.
    pub fn combined(&self) -> u64 {
        let mut d = Digest::new(4);
        d.mix(self.structure);
        d.mix(self.costs);
        d.mix(self.weights);
        d.finish()
    }
}

/// Digest of the graph structure alone: `n`, `m`, then every canonical
/// edge as one packed word. `O(m)`.
pub fn structure_digest(g: &Graph) -> u64 {
    let mut d = Digest::new(0);
    d.mix(g.num_vertices() as u64);
    d.mix(g.num_edges() as u64);
    for &(u, v) in g.edge_list() {
        d.mix(((u as u64) << 32) | v as u64);
    }
    d.finish()
}

/// Digest of one measure vector (costs, weights, or an extra measure),
/// domain-tagged so equal vectors in different roles do not collide
/// trivially.
pub fn measure_digest(domain: u64, xs: &[f64]) -> u64 {
    let mut d = Digest::new(domain);
    d.mix(xs.len() as u64);
    for &x in xs {
        d.mix(x.to_bits());
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::GridGraph;
    use crate::gen::misc::path;
    use crate::graph::{graph_from_edges, GraphBuilder};

    #[test]
    fn identical_inputs_share_a_fingerprint() {
        let g = path(12);
        let costs = vec![1.5; 11];
        let weights: Vec<f64> = (0..12).map(|v| v as f64).collect();
        assert_eq!(
            Fingerprint::of_parts(&g, &costs, &weights),
            Fingerprint::of_parts(&g, &costs, &weights)
        );
    }

    #[test]
    fn insertion_order_cannot_change_the_structure_digest() {
        // CSR canonicalization makes this hold by construction; the test
        // pins it against a representation change.
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (0, 3)];
        let fwd = graph_from_edges(4, &edges);
        let mut b = GraphBuilder::new(4);
        for &(u, v) in edges.iter().rev() {
            b.add_edge(v, u); // reversed order AND swapped endpoints
        }
        assert_eq!(structure_digest(&fwd), structure_digest(&b.build()));
    }

    #[test]
    fn each_component_responds_only_to_its_input() {
        let g = GridGraph::lattice(&[4, 4]).graph;
        let m = g.num_edges();
        let costs = vec![1.0; m];
        let weights = vec![1.0; 16];
        let base = Fingerprint::of_parts(&g, &costs, &weights);

        let mut w2 = weights.clone();
        w2[3] = 7.0;
        let fp_w = Fingerprint::of_parts(&g, &costs, &w2);
        assert_eq!(fp_w.structure, base.structure);
        assert_eq!(fp_w.costs, base.costs);
        assert_ne!(fp_w.weights, base.weights);
        assert_eq!(fp_w.artifact_key(), base.artifact_key());
        assert_ne!(fp_w.combined(), base.combined());

        let mut c2 = costs.clone();
        c2[0] = 2.0;
        let fp_c = Fingerprint::of_parts(&g, &c2, &weights);
        assert_eq!(fp_c.structure, base.structure);
        assert_ne!(fp_c.costs, base.costs);
        assert_ne!(fp_c.artifact_key(), base.artifact_key());
    }

    #[test]
    fn distinct_structures_get_distinct_digests() {
        // Not a collision-resistance proof — a smoke check over a family
        // sweep that the digest actually uses its input.
        let mut seen = std::collections::BTreeSet::new();
        for dims in [[2usize, 2], [2, 3], [3, 3], [4, 4], [2, 8], [8, 2]] {
            assert!(seen.insert(structure_digest(&GridGraph::lattice(&dims).graph)));
        }
        for n in [3usize, 5, 9, 17] {
            assert!(seen.insert(structure_digest(&path(n))));
        }
    }

    #[test]
    fn float_bit_patterns_are_distinguished() {
        assert_ne!(measure_digest(1, &[0.0]), measure_digest(1, &[-0.0]));
        assert_ne!(
            measure_digest(1, &[1.0, 2.0]),
            measure_digest(1, &[2.0, 1.0])
        );
        assert_ne!(measure_digest(1, &[]), measure_digest(1, &[0.0]));
    }
}
