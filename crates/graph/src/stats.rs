//! Instance statistics: the "well-behavedness" quantities of the paper.
//!
//! An instance `(G, c)` is *well-behaved* (Section 2) if the maximum degree
//! `Δ(G)` is bounded and the local fluctuation
//! `φ_ℓ(c) = max_{u ∈ e} τ(u)/c(e)` (with `τ(u) = c(δ(u))`) is bounded.
//! The tightness results and the separator↔splitter equivalence
//! (Lemma 37) are stated for well-behaved instances, so the harness reports
//! these quantities for every instance it runs.

use crate::graph::Graph;
use crate::measure::cost_degree_measure;

/// Summary statistics of an instance `(G, c)`.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceStats {
    /// `|V|`.
    pub n: usize,
    /// `|E|`.
    pub m: usize,
    /// Maximum degree `Δ(G)`.
    pub max_degree: usize,
    /// Maximum cost-weighted degree `Δ_c = max_v c(δ(v))`.
    pub max_cost_degree: f64,
    /// Local fluctuation `φ_ℓ(c) = max_v max_{e ∋ v} c(δ(v))/c(e)`
    /// (`∞` if some positive-degree vertex has a zero-cost edge).
    pub local_fluctuation: f64,
    /// Global fluctuation `φ = max_e c_e / min_e c_e`
    /// (1 for edgeless graphs; `∞` if some edge has zero cost).
    pub fluctuation: f64,
    /// Minimum positive edge cost (`∞` if there is none).
    pub min_cost: f64,
    /// Maximum edge cost.
    pub max_cost: f64,
}

impl InstanceStats {
    /// Compute all statistics in `O(n + m)`.
    pub fn compute(g: &Graph, costs: &[f64]) -> Self {
        assert_eq!(costs.len(), g.num_edges(), "cost vector length mismatch");
        let tau = cost_degree_measure(g, costs);
        let mut local_fluct = 0.0f64;
        for v in g.vertices() {
            for &(_, e) in g.neighbors(v) {
                let c = costs[e as usize];
                let ratio = if c > 0.0 {
                    tau[v as usize] / c
                } else if tau[v as usize] > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                local_fluct = local_fluct.max(ratio);
            }
        }
        let max_cost = costs.iter().copied().fold(0.0, f64::max);
        let min_cost = costs.iter().copied().fold(f64::INFINITY, f64::min);
        let fluctuation = if costs.is_empty() {
            1.0
        } else if min_cost > 0.0 {
            max_cost / min_cost
        } else if max_cost > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        InstanceStats {
            n: g.num_vertices(),
            m: g.num_edges(),
            max_degree: g.max_degree(),
            max_cost_degree: tau.iter().copied().fold(0.0, f64::max),
            local_fluctuation: local_fluct,
            fluctuation,
            min_cost: if costs.is_empty() {
                f64::INFINITY
            } else {
                min_cost
            },
            max_cost,
        }
    }

    /// Heuristic well-behavedness check against explicit thresholds.
    pub fn is_well_behaved(&self, max_degree: usize, max_local_fluctuation: f64) -> bool {
        self.max_degree <= max_degree && self.local_fluctuation <= max_local_fluctuation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn path_stats() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let costs = vec![1.0, 2.0, 4.0];
        let s = InstanceStats::compute(&g, &costs);
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 3);
        assert_eq!(s.max_degree, 2);
        assert!(close(s.max_cost_degree, 6.0)); // vertex 2: 2 + 4
        assert!(close(s.fluctuation, 4.0));
        // Vertex 2 has τ = 6 and cheapest incident edge 2 → local ratio 3.
        assert!(close(s.local_fluctuation, 3.0));
        assert!(s.is_well_behaved(2, 3.0));
        assert!(!s.is_well_behaved(1, 3.0));
    }

    #[test]
    fn unit_costs_local_fluctuation_is_degree() {
        // With c ≡ 1 the local fluctuation equals the max degree (paper
        // remark after Lemma 37).
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let costs = vec![1.0; 4];
        let s = InstanceStats::compute(&g, &costs);
        assert!(close(s.local_fluctuation, s.max_degree as f64));
    }

    #[test]
    fn zero_cost_edge_blows_up_fluctuation() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let costs = vec![0.0, 1.0];
        let s = InstanceStats::compute(&g, &costs);
        assert!(s.fluctuation.is_infinite());
        assert!(s.local_fluctuation.is_infinite());
    }

    #[test]
    fn edgeless_graph() {
        let g = graph_from_edges(3, &[]);
        let s = InstanceStats::compute(&g, &[]);
        assert_eq!(s.fluctuation, 1.0);
        assert_eq!(s.local_fluctuation, 0.0);
        assert_eq!(s.max_cost_degree, 0.0);
    }
}
