//! Reusable scratch workspaces for the decomposition hot path.
//!
//! The divide-and-conquer algorithms (shrink recursion of Section 5,
//! `BinPack1/2`, the rebalance loop) repeatedly materialize dense vertex
//! measures — boundary measures, the splitting-cost measure `π`, induced
//! degrees — over working sets `W` that shrink geometrically. Allocating
//! and zeroing a `vec![0.0; n]` for each of those costs `O(n)` per call
//! even when `vol(W)` is tiny, which is what made the implementation
//! super-linear in practice despite Theorem 4's linear-time statement.
//!
//! A [`Workspace`] fixes this with *epoch-stamped dense scratch vectors*:
//!
//! * a pool of buffers, each a dense `f64` vector kept **all-zero between
//!   uses**, plus a `u32` stamp vector and a sparse *touched list*;
//! * checking a buffer out ([`Workspace::measure`]) bumps its epoch and
//!   clears the touched list — `O(1)`;
//! * writes ([`ScratchMeasure::add`] / [`ScratchMeasure::set`]) record the
//!   first touch of each index via the epoch stamp, so the touched list
//!   stays duplicate-free;
//! * dropping the [`ScratchMeasure`] guard zeroes **only the touched
//!   entries** — `O(touched)`, not `O(n)` — and returns the buffer to the
//!   pool.
//!
//! Because untouched entries are genuinely `0.0` (not stale), a checked-out
//! buffer exposes a plain dense [`ScratchMeasure::as_slice`] view that
//! drops into every existing `&[f64]`-consuming measure function
//! unchanged; the accumulation order — and therefore every downstream
//! floating-point result — is bit-identical to the allocating path.
//!
//! A `Workspace` is single-threaded (`!Sync`, interior mutability via
//! `RefCell`) by design: parallel callers use one workspace per worker,
//! most conveniently the per-thread instance behind
//! [`Workspace::with_local`]. [`Workspace::transient`] builds a
//! non-pooling workspace that allocates fresh buffers per checkout — the
//! pre-workspace cost profile, kept so benchmarks can A/B the two paths on
//! identical code.

use std::cell::{Cell, RefCell};

use crate::graph::VertexId;

/// The ambient per-thread scratch mode: which implementation family the
/// hot path should use.
///
/// [`ScratchMode::Reuse`] (the default) selects the overhauled path —
/// pooled workspace buffers plus the allocation-free inner loops that
/// came with them (e.g. GridSplit's sort-based cell grouping).
/// [`ScratchMode::Transient`] selects the **pre-overhaul reference
/// implementations** (fresh buffers and per-call allocation), kept so the
/// perf baselines can report old-vs-new side by side on identical inputs.
/// Both modes produce bit-identical results; only cost profiles differ.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScratchMode {
    /// Overhauled hot path: pooled buffers, allocation-free inner loops.
    #[default]
    Reuse,
    /// Pre-overhaul reference: allocate per call (benchmark baseline).
    Transient,
}

thread_local! {
    static MODE: Cell<ScratchMode> = const { Cell::new(ScratchMode::Reuse) };
}

/// The current thread's ambient [`ScratchMode`].
pub fn scratch_mode() -> ScratchMode {
    MODE.with(Cell::get)
}

/// Run `f` with the ambient [`ScratchMode`] set to `mode` on this thread,
/// restoring the previous mode afterwards — including on unwind, so a
/// caught panic cannot leave the thread stuck in the wrong mode.
pub fn with_scratch_mode<R>(mode: ScratchMode, f: impl FnOnce() -> R) -> R {
    struct Restore(ScratchMode);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE.with(|m| m.set(self.0));
        }
    }
    let _restore = Restore(MODE.with(|m| m.replace(mode)));
    f()
}

/// Allocation / reuse counters of a [`Workspace`] — the "RSS proxy" the
/// perf baselines record (`BENCH_6.json`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Buffer checkouts ([`Workspace::measure`] calls).
    pub acquires: u64,
    /// Checkouts that had to allocate because the pool was empty; the
    /// allocating path pays this on **every** acquire.
    pub fresh_allocs: u64,
    /// Total entries written (and later re-zeroed) across all checkouts —
    /// the `O(vol(W))` work the workspace path actually does.
    pub cells_touched: u64,
    /// Total dense entries the allocating path would have zeroed
    /// (`Σ` universe size per checkout) — the `O(n)` work avoided.
    pub cells_dense: u64,
    /// High-water mark of concurrently checked-out buffers.
    pub peak_live: usize,
    /// Currently checked-out buffers.
    pub live: usize,
    /// Bytes currently charged by flat-arena users (streaming METIS
    /// ingestion, the coarsening cascade) via
    /// [`Workspace::charge_arena_bytes`].
    pub arena_live_bytes: u64,
    /// High-water mark of [`arena_live_bytes`](Self::arena_live_bytes) —
    /// the ingestion + coarsening component of the RSS proxy.
    pub arena_peak_bytes: u64,
}

impl WorkspaceStats {
    /// Bytes the live high-water mark pins per vertex of universe `n`:
    /// `peak_live × n × (8 + 4)` (values + stamps).
    pub fn peak_bytes(&self, n: usize) -> u64 {
        self.peak_live as u64 * n as u64 * 12
    }

    /// Full RSS proxy: scratch-buffer high water for universe `n` plus the
    /// arena high water charged by ingestion and coarsening.
    pub fn peak_total_bytes(&self, n: usize) -> u64 {
        self.peak_bytes(n) + self.arena_peak_bytes
    }
}

/// One pooled buffer: dense values (all-zero between uses), epoch stamps,
/// and the touched list of the current checkout.
#[derive(Default)]
struct ScratchData {
    vals: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<VertexId>,
}

/// A pool of reusable scratch buffers (see the [module docs](self)).
#[derive(Default)]
pub struct Workspace {
    pool: RefCell<Vec<ScratchData>>,
    stats: RefCell<WorkspaceStats>,
    /// When false, buffers are dropped instead of pooled and every acquire
    /// allocates — the benchmark reference mode.
    pooling: bool,
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats.borrow();
        f.debug_struct("Workspace")
            .field("pooling", &self.pooling)
            .field("pooled", &self.pool.borrow().len())
            .field("stats", &*stats)
            .finish()
    }
}

thread_local! {
    static LOCAL: Workspace = Workspace::new();
}

impl Workspace {
    /// A fresh pooling workspace.
    pub fn new() -> Self {
        Workspace {
            pool: RefCell::new(Vec::new()),
            stats: RefCell::default(),
            pooling: true,
        }
    }

    /// A non-pooling workspace: every checkout allocates fresh buffers and
    /// drops them afterwards, reproducing the cost profile of the old
    /// allocate-per-call code path (for A/B benchmarks; see
    /// `ScratchPolicy` in `mmb-core`).
    pub fn transient() -> Self {
        Workspace {
            pooling: false,
            ..Self::new()
        }
    }

    /// Run `f` against this thread's shared workspace. The instance lives
    /// for the thread's lifetime, so buffers are amortized across *all*
    /// solves on the thread — including every item a `solve_many` worker
    /// processes.
    pub fn with_local<R>(f: impl FnOnce(&Workspace) -> R) -> R {
        LOCAL.with(f)
    }

    /// Check out a dense scratch measure over universe `0..n`, all-zero.
    pub fn measure(&self, n: usize) -> ScratchMeasure<'_> {
        let mut d = if self.pooling {
            self.pool.borrow_mut().pop().unwrap_or_default()
        } else {
            ScratchData::default()
        };
        let fresh = d.vals.is_empty() && d.vals.capacity() == 0;
        if d.vals.len() < n {
            d.vals.resize(n, 0.0);
            d.stamp.resize(n, 0);
        }
        d.epoch = d.epoch.wrapping_add(1);
        if d.epoch == 0 {
            d.stamp.fill(0);
            d.epoch = 1;
        }
        d.touched.clear();
        {
            let mut s = self.stats.borrow_mut();
            s.acquires += 1;
            if fresh {
                s.fresh_allocs += 1;
            }
            s.cells_dense += n as u64;
            s.live += 1;
            s.peak_live = s.peak_live.max(s.live);
        }
        ScratchMeasure {
            ws: self,
            data: d,
            n,
        }
    }

    /// Snapshot of the allocation/reuse counters.
    pub fn stats(&self) -> WorkspaceStats {
        *self.stats.borrow()
    }

    /// Zero all counters (buffers stay pooled). Currently-live checkouts
    /// and arena charges carry over as the new baseline.
    pub fn reset_stats(&self) {
        let (live, arena_live) = {
            let s = self.stats.borrow();
            (s.live, s.arena_live_bytes)
        };
        *self.stats.borrow_mut() = WorkspaceStats {
            live,
            peak_live: live,
            arena_live_bytes: arena_live,
            arena_peak_bytes: arena_live,
            ..Default::default()
        };
    }

    /// Charge `bytes` of flat-arena memory (streaming ingestion buffers, a
    /// coarsening level's contracted graph) against this workspace's RSS
    /// proxy. Pair with [`release_arena_bytes`](Self::release_arena_bytes)
    /// when the arena is dropped; the high water lands in
    /// [`WorkspaceStats::arena_peak_bytes`].
    pub fn charge_arena_bytes(&self, bytes: u64) {
        let mut s = self.stats.borrow_mut();
        s.arena_live_bytes += bytes;
        s.arena_peak_bytes = s.arena_peak_bytes.max(s.arena_live_bytes);
    }

    /// Release a previous [`charge_arena_bytes`](Self::charge_arena_bytes).
    pub fn release_arena_bytes(&self, bytes: u64) {
        let mut s = self.stats.borrow_mut();
        s.arena_live_bytes = s.arena_live_bytes.saturating_sub(bytes);
    }

    /// Record a transient arena high water: charge and immediately release,
    /// so only [`WorkspaceStats::arena_peak_bytes`] moves. Used by the
    /// streaming METIS parser, whose arenas die before it returns.
    pub fn note_transient_arena_bytes(&self, bytes: u64) {
        self.charge_arena_bytes(bytes);
        self.release_arena_bytes(bytes);
    }

    /// Test hook: pin the epoch of every pooled buffer, so the
    /// wraparound path (`wrapping_add` → `epoch == 0` → stamp refill) can
    /// be exercised without 2³² checkouts.
    #[cfg(test)]
    fn set_pool_epochs(&self, epoch: u32) {
        for d in self.pool.borrow_mut().iter_mut() {
            d.epoch = epoch;
        }
    }

    fn give_back(&self, mut d: ScratchData, touched_now: u64) {
        {
            let mut s = self.stats.borrow_mut();
            s.cells_touched += touched_now;
            s.live -= 1;
        }
        if self.pooling {
            for &v in &d.touched {
                d.vals[v as usize] = 0.0;
            }
            d.touched.clear();
            self.pool.borrow_mut().push(d);
        }
        // Non-pooling: drop, like the old per-call Vec.
    }
}

/// A checked-out dense scratch measure over `0..n`; zeroes its touched
/// entries and returns to the pool on drop. See the [module docs](self).
pub struct ScratchMeasure<'ws> {
    ws: &'ws Workspace,
    data: ScratchData,
    n: usize,
}

impl ScratchMeasure<'_> {
    /// Universe size `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn touch(&mut self, i: usize) {
        // Hard assert: a pooled buffer can be longer than the current
        // universe, so an out-of-range write would otherwise land in the
        // slack silently (the allocating path it replaces panicked here).
        assert!(i < self.n, "index {i} outside scratch universe {}", self.n);
        if self.data.stamp[i] != self.data.epoch {
            self.data.stamp[i] = self.data.epoch;
            self.data.touched.push(i as VertexId);
        }
    }

    /// Accumulate `x` into entry `v`.
    #[inline]
    pub fn add(&mut self, v: VertexId, x: f64) {
        self.touch(v as usize);
        self.data.vals[v as usize] += x;
    }

    /// Overwrite entry `v` with `x`.
    #[inline]
    pub fn set(&mut self, v: VertexId, x: f64) {
        self.touch(v as usize);
        self.data.vals[v as usize] = x;
    }

    /// Read entry `v` (0.0 if never written this checkout).
    #[inline]
    pub fn get(&self, v: VertexId) -> f64 {
        assert!(
            (v as usize) < self.n,
            "index {v} outside scratch universe {}",
            self.n
        );
        self.data.vals[v as usize]
    }

    /// The dense view `&[f64]` of length `n`; untouched entries are `0.0`,
    /// so this is exactly the vector the allocating path would have built.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data.vals[..self.n]
    }

    /// Indices written this checkout, in first-touch order,
    /// duplicate-free.
    pub fn touched(&self) -> &[VertexId] {
        &self.data.touched
    }

    /// Clone the dense view into an owned measure (the legacy return
    /// shape).
    pub fn to_measure(&self) -> Vec<f64> {
        self.as_slice().to_vec()
    }
}

impl Drop for ScratchMeasure<'_> {
    fn drop(&mut self) {
        let d = std::mem::take(&mut self.data);
        let touched = d.touched.len() as u64;
        self.ws.give_back(d, touched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_view_matches_allocating_semantics() {
        let ws = Workspace::new();
        let mut m = ws.measure(8);
        m.add(2, 1.5);
        m.add(2, 0.5);
        m.set(5, 7.0);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0, 0.0, 0.0, 7.0, 0.0, 0.0]);
        assert_eq!(m.get(2), 2.0);
        assert_eq!(m.get(0), 0.0);
        assert_eq!(m.touched(), &[2, 5]); // duplicate-free, first-touch order
        assert_eq!(m.to_measure(), vec![0.0, 0.0, 2.0, 0.0, 0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn buffers_are_reused_and_rezeroed() {
        let ws = Workspace::new();
        {
            let mut m = ws.measure(100);
            for v in 0..50u32 {
                m.add(v, 1.0);
            }
        }
        {
            let m = ws.measure(100);
            assert!(
                m.as_slice().iter().all(|&x| x == 0.0),
                "stale data survived"
            );
        }
        let s = ws.stats();
        assert_eq!(s.acquires, 2);
        assert_eq!(
            s.fresh_allocs, 1,
            "second checkout must reuse the pooled buffer"
        );
        assert_eq!(s.cells_touched, 50);
        assert_eq!(s.cells_dense, 200);
    }

    #[test]
    fn concurrent_checkouts_use_distinct_buffers() {
        let ws = Workspace::new();
        let mut a = ws.measure(10);
        let mut b = ws.measure(10);
        a.add(3, 1.0);
        b.add(3, 2.0);
        assert_eq!(a.get(3), 1.0);
        assert_eq!(b.get(3), 2.0);
        assert_eq!(ws.stats().peak_live, 2);
        drop(a);
        drop(b);
        assert_eq!(ws.stats().live, 0);
    }

    #[test]
    fn growing_universe_is_fine() {
        let ws = Workspace::new();
        {
            let mut m = ws.measure(4);
            m.add(3, 1.0);
        }
        {
            let mut m = ws.measure(16);
            assert_eq!(m.len(), 16);
            assert!(m.as_slice().iter().all(|&x| x == 0.0));
            m.add(15, 2.0);
            assert_eq!(m.get(15), 2.0);
        }
        // Shrinking view over a larger pooled buffer.
        {
            let m = ws.measure(2);
            assert_eq!(m.as_slice().len(), 2);
        }
    }

    #[test]
    fn transient_workspace_never_pools() {
        let ws = Workspace::transient();
        {
            let mut m = ws.measure(10);
            m.add(1, 1.0);
        }
        let _ = ws.measure(10);
        let s = ws.stats();
        assert_eq!(s.acquires, 2);
        assert_eq!(
            s.fresh_allocs, 2,
            "transient mode must allocate per checkout"
        );
    }

    #[test]
    fn thread_local_workspace_is_shared_within_a_thread() {
        Workspace::with_local(|ws| ws.reset_stats());
        Workspace::with_local(|ws| {
            let mut m = ws.measure(10);
            m.add(0, 1.0);
        });
        let allocs = Workspace::with_local(|ws| {
            let _m = ws.measure(10);
            ws.stats().fresh_allocs
        });
        assert_eq!(allocs, 1, "second local checkout must hit the pool");
    }

    #[test]
    fn epoch_wraparound_keeps_the_buffer_clean() {
        // Audit of the `wrapping_add` → `epoch == 0` re-zero path: a
        // buffer whose epoch is at `u32::MAX` wraps on the next checkout.
        // The stamps then hold values from *old* epochs (here 1 — exactly
        // the value the post-wrap epoch restarts at), so without the
        // stamp refill a stale stamp would alias the new epoch, writes
        // would go unrecorded in the touched list, and their values would
        // leak into later checkouts.
        let ws = Workspace::new();
        {
            let mut m = ws.measure(16);
            for v in 0..8u32 {
                m.add(v, 1.0); // stamps[0..8] = 1
            }
        }
        ws.set_pool_epochs(u32::MAX);
        {
            let mut m = ws.measure(16); // wraps: stamps refilled, epoch = 1
            assert!(
                m.as_slice().iter().all(|&x| x == 0.0),
                "dense view not all-zero after wrap"
            );
            assert!(m.touched().is_empty(), "touched list not empty after wrap");
            // Index 3 carried stamp 1 before the refill; its write must
            // still be recorded exactly once.
            m.add(3, 2.0);
            m.add(3, 0.5);
            assert_eq!(m.touched(), &[3], "stale stamp aliased the post-wrap epoch");
            assert_eq!(m.get(3), 2.5);
        }
        // The recorded touch was re-zeroed on drop: the next checkout is
        // clean again.
        {
            let m = ws.measure(16);
            assert!(
                m.as_slice().iter().all(|&x| x == 0.0),
                "post-wrap write leaked"
            );
            assert!(m.touched().is_empty());
        }
    }

    #[test]
    fn reset_stats_keeps_live_buffers_consistent() {
        let ws = Workspace::new();
        let guard = ws.measure(5);
        ws.reset_stats();
        assert_eq!(ws.stats().live, 1);
        drop(guard);
        assert_eq!(ws.stats().live, 0);
    }
}
