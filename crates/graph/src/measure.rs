//! Vertex measures and the paper's norm notation.
//!
//! A *measure* `Φ : V → R+` is stored as a dense `Vec<f64>` indexed by
//! vertex id (the paper extends `Φ` to sets by `Φ(U) = Σ_{u∈U} Φ(u)`).
//! This module provides
//!
//! * set sums `Φ(U)`, restricted maxima `‖Φ|_W‖_∞`,
//! * the `p`-norms `‖f‖_p = (Σ f_x^p)^{1/p}` and their edge-cost variants
//!   `‖c|_W‖_p` over the edges `E(W)` running inside an induced subgraph,
//! * the dual exponent `q` with `1/p + 1/q = 1` (Hölder).
//!
//! Everything here is a thin, allocation-free layer; hot loops iterate a
//! [`VertexSet`] once.

use crate::graph::Graph;
use crate::vertex_set::VertexSet;
use crate::workspace::{ScratchMeasure, Workspace};

/// A vertex measure `Φ : V → R+`, dense over vertex ids.
pub type Measure = Vec<f64>;

/// `x^p` for `x ≥ 0`, with fast paths for the exponents the pipeline
/// actually uses: `p = 1` (identity), `p = 2` (one multiply), small
/// integer `p` (`powi`), falling back to `powf`.
///
/// The fast paths agree with `powf` to well below `1e-12` relative error
/// (`p = 1` and `p = 2` are exact; `powi` differs from the correctly
/// rounded `powf` by at most a few ulps) — property-tested below. Every
/// caller in the workspace routes through this single function, so
/// alternative code paths (workspace vs allocating) stay bit-identical to
/// *each other*.
#[inline]
pub fn pow_p(x: f64, p: f64) -> f64 {
    // lint: allow(float-eq) — 1.0 is exactly representable; this is a
    // dispatch constant, not computed arithmetic (same for 2.0 below).
    if p == 1.0 {
        x
    }
    // lint: allow(float-eq) — 2.0 is exactly representable; dispatch
    // constant, not computed arithmetic.
    else if p == 2.0 {
        x * x
    } else if p.fract() == 0.0 && (1.0..=32.0).contains(&p) {
        x.powi(p as i32)
    } else {
        x.powf(p)
    }
}

/// `Φ(U) = Σ_{u∈U} Φ(u)`.
pub fn set_sum(phi: &[f64], set: &VertexSet) -> f64 {
    set.iter().map(|v| phi[v as usize]).sum()
}

/// `‖Φ|_U‖_∞ = max_{u∈U} Φ(u)` (0 for the empty set).
pub fn set_max(phi: &[f64], set: &VertexSet) -> f64 {
    set.iter().map(|v| phi[v as usize]).fold(0.0, f64::max)
}

/// `‖f‖_1` over the full domain.
pub fn norm_1(f: &[f64]) -> f64 {
    f.iter().sum()
}

/// `‖f‖_∞` over the full domain (0 for an empty slice).
pub fn norm_inf(f: &[f64]) -> f64 {
    f.iter().copied().fold(0.0, f64::max)
}

/// `‖f‖_p = (Σ f_x^p)^{1/p}` over the full domain. Requires `p ≥ 1`.
pub fn norm_p(f: &[f64], p: f64) -> f64 {
    assert!(p >= 1.0, "p-norm requires p >= 1, got {p}");
    if f.is_empty() {
        return 0.0;
    }
    if p.is_infinite() {
        return norm_inf(f);
    }
    // Scale by the max for numerical stability on wide dynamic ranges.
    let m = norm_inf(f);
    if m == 0.0 {
        return 0.0;
    }
    let s: f64 = f.iter().map(|&x| pow_p(x / m, p)).sum();
    m * s.powf(1.0 / p)
}

/// The Hölder-dual exponent `q` with `1/p + 1/q = 1`.
///
/// `p = 1 → q = ∞`; `p = ∞ → q = 1`.
pub fn dual_exponent(p: f64) -> f64 {
    assert!(p >= 1.0, "dual exponent requires p >= 1, got {p}");
    // lint: allow(float-eq) — 1.0 is exactly representable; `p = 1` is the
    // documented special case, so the comparison must be exact.
    if p == 1.0 {
        f64::INFINITY
    } else if p.is_infinite() {
        1.0
    } else {
        p / (p - 1.0)
    }
}

/// `‖c|_W‖_p^p = Σ_{e ∈ E(W)} c_e^p`: the `p`-th power sum of the costs of
/// edges running inside `W` (both endpoints in `W`).
///
/// Cost is `O(vol(W))` — each member's adjacency is scanned once and each
/// inner edge counted at its smaller endpoint.
pub fn edge_norm_p_pow(g: &Graph, costs: &[f64], w_set: &VertexSet, p: f64) -> f64 {
    assert!(p >= 1.0, "p-norm requires p >= 1, got {p}");
    let mut s = 0.0;
    for v in w_set.iter() {
        for &(nb, e) in g.neighbors(v) {
            if nb > v && w_set.contains(nb) {
                s += pow_p(costs[e as usize], p);
            }
        }
    }
    s
}

/// `‖c|_W‖_p = (Σ_{e∈E(W)} c_e^p)^{1/p}`.
pub fn edge_norm_p(g: &Graph, costs: &[f64], w_set: &VertexSet, p: f64) -> f64 {
    if p.is_infinite() {
        return edge_norm_inf(g, costs, w_set);
    }
    edge_norm_p_pow(g, costs, w_set, p).powf(1.0 / p)
}

/// `‖c|_W‖_∞ = max_{e∈E(W)} c_e` (0 if no inner edge).
pub fn edge_norm_inf(g: &Graph, costs: &[f64], w_set: &VertexSet) -> f64 {
    let mut m = 0.0f64;
    for v in w_set.iter() {
        for &(nb, e) in g.neighbors(v) {
            if nb > v && w_set.contains(nb) {
                m = m.max(costs[e as usize]);
            }
        }
    }
    m
}

/// `‖c‖_p` over **all** edges of the graph.
pub fn total_edge_norm_p(g: &Graph, costs: &[f64], p: f64) -> f64 {
    assert_eq!(costs.len(), g.num_edges(), "cost vector length mismatch");
    norm_p(costs, p)
}

/// Restriction `Φ|_U` materialized as a dense measure (0 outside `U`).
pub fn restrict(phi: &[f64], set: &VertexSet) -> Measure {
    let mut out = vec![0.0; phi.len()];
    for v in set.iter() {
        out[v as usize] = phi[v as usize];
    }
    out
}

/// Pointwise sum `f + g` of two dense measures of equal length.
pub fn add(f: &[f64], g: &[f64]) -> Measure {
    assert_eq!(f.len(), g.len(), "measure length mismatch");
    f.iter().zip(g).map(|(a, b)| a + b).collect()
}

/// The constant-one measure `1_V` on `n` vertices.
pub fn ones(n: usize) -> Measure {
    vec![1.0; n]
}

/// The degree measure `deg_W(v)` of the induced subgraph `G[W]`
/// (0 outside `W`). Used by the shrinking procedure of Section 5 to control
/// `|G[W₁]|`.
pub fn induced_degree_measure(g: &Graph, w_set: &VertexSet) -> Measure {
    Workspace::with_local(|ws| induced_degree_measure_ws(g, w_set, ws).to_measure())
}

/// [`induced_degree_measure`] into a reusable [`Workspace`] buffer:
/// `O(vol(W))` with zero allocation; the dense view is bit-identical to
/// the allocating variant.
pub fn induced_degree_measure_ws<'ws>(
    g: &Graph,
    w_set: &VertexSet,
    ws: &'ws Workspace,
) -> ScratchMeasure<'ws> {
    let mut out = ws.measure(g.num_vertices());
    for v in w_set.iter() {
        let d = g
            .neighbors(v)
            .iter()
            .filter(|&&(nb, _)| w_set.contains(nb))
            .count();
        out.set(v, d as f64);
    }
    out
}

/// The cost-weighted degree `τ(v) = c(δ(v))` of every vertex, i.e. the
/// natural translation of edge costs into vertex costs (Appendix A.3).
pub fn cost_degree_measure(g: &Graph, costs: &[f64]) -> Measure {
    let mut tau = vec![0.0; g.num_vertices()];
    for v in g.vertices() {
        tau[v as usize] = g.neighbors(v).iter().map(|&(_, e)| costs[e as usize]).sum();
    }
    tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn basic_norms() {
        let f = vec![3.0, 4.0];
        assert!(close(norm_p(&f, 2.0), 5.0));
        assert!(close(norm_p(&f, 1.0), 7.0));
        assert!(close(norm_inf(&f), 4.0));
        assert!(close(norm_p(&f, f64::INFINITY), 4.0));
        assert_eq!(norm_p(&[], 2.0), 0.0);
        assert_eq!(norm_p(&[0.0, 0.0], 2.0), 0.0);
    }

    #[test]
    fn p_norm_monotone_in_p() {
        // ‖f‖_p is non-increasing in p.
        let f = vec![1.0, 2.0, 3.0, 0.5];
        let mut prev = f64::INFINITY;
        for p in [1.0, 1.5, 2.0, 3.0, 10.0] {
            let np = norm_p(&f, p);
            assert!(np <= prev + 1e-12, "p-norm should decrease with p");
            prev = np;
        }
        assert!(prev >= norm_inf(&f) - 1e-12);
    }

    #[test]
    fn dual_exponents() {
        assert!(close(dual_exponent(2.0), 2.0));
        assert!(close(dual_exponent(1.5), 3.0));
        assert_eq!(dual_exponent(1.0), f64::INFINITY);
        assert_eq!(dual_exponent(f64::INFINITY), 1.0);
    }

    #[test]
    fn set_sums_and_maxima() {
        let phi = vec![1.0, 2.0, 4.0, 8.0];
        let s = VertexSet::from_iter(4, [1u32, 3]);
        assert!(close(set_sum(&phi, &s), 10.0));
        assert!(close(set_max(&phi, &s), 8.0));
        let e = VertexSet::empty(4);
        assert_eq!(set_sum(&phi, &e), 0.0);
        assert_eq!(set_max(&phi, &e), 0.0);
    }

    #[test]
    fn edge_norms_respect_subset() {
        // Path 0-1-2-3 with costs 1, 2, 3.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let costs = vec![1.0, 2.0, 3.0];
        let all = VertexSet::full(4);
        assert!(close(edge_norm_p(&g, &costs, &all, 1.0), 6.0));
        assert!(close(edge_norm_p(&g, &costs, &all, 2.0), (14.0f64).sqrt()));
        assert!(close(edge_norm_inf(&g, &costs, &all), 3.0));
        // W = {0,1,2}: only edges 0-1, 1-2 run inside.
        let w = VertexSet::from_iter(4, [0u32, 1, 2]);
        assert!(close(edge_norm_p(&g, &costs, &w, 1.0), 3.0));
        assert!(close(edge_norm_inf(&g, &costs, &w), 2.0));
        // W = {0, 2}: no inner edges.
        let w02 = VertexSet::from_iter(4, [0u32, 2]);
        assert_eq!(edge_norm_p(&g, &costs, &w02, 2.0), 0.0);
    }

    #[test]
    fn cost_degree_and_induced_degree() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let costs = vec![1.0, 2.0, 3.0];
        let tau = cost_degree_measure(&g, &costs);
        assert!(close(tau[0], 1.0));
        assert!(close(tau[1], 3.0));
        assert!(close(tau[2], 5.0));
        assert!(close(tau[3], 3.0));
        let w = VertexSet::from_iter(4, [0u32, 1, 2]);
        let d = induced_degree_measure(&g, &w);
        assert_eq!(d, vec![1.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn restrict_and_add() {
        let phi = vec![1.0, 2.0, 3.0];
        let s = VertexSet::from_iter(3, [2u32]);
        assert_eq!(restrict(&phi, &s), vec![0.0, 0.0, 3.0]);
        assert_eq!(add(&phi, &[1.0, 1.0, 1.0]), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn stability_on_wide_dynamic_range() {
        // Without max-scaling this overflows to inf for p = 4.
        let f = vec![1e80, 1e80];
        let np = norm_p(&f, 4.0);
        assert!(np.is_finite());
        assert!(close(np / 1e80, 2.0f64.powf(0.25)));
    }
}
