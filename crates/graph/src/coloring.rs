//! `k`-colorings `χ : V → [k]` and their quality functionals.
//!
//! The paper formulates partitions as colorings (Section 2). A [`Coloring`]
//! may be *partial* (vertices can be uncolored while an algorithm is mid
//! flight); the final outputs of the pipeline are total colorings of the
//! instance's vertex set.
//!
//! Quality functionals implemented here:
//!
//! * class measures `Φχ⁻¹(i)` and the vector thereof,
//! * boundary-cost vector `∂χ⁻¹` (cost of `δ(χ⁻¹(i))` per class), its max
//!   `‖∂χ⁻¹‖_∞` and average `‖∂χ⁻¹‖_avg`,
//! * strict balance per Definition 1, eq. (1):
//!   `max_i |w(χ⁻¹(i)) − ‖w‖₁/k| ≤ (1 − 1/k)·‖w‖∞`.

use crate::graph::{Graph, VertexId};
use crate::measure::{norm_1, norm_inf};
use crate::vertex_set::VertexSet;

/// Sentinel for "not yet colored".
pub const UNCOLORED: u32 = u32::MAX;

/// A (possibly partial) `k`-coloring of the vertices `0..n`.
#[derive(Clone, PartialEq)]
pub struct Coloring {
    k: usize,
    color: Vec<u32>,
}

impl std::fmt::Debug for Coloring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Coloring(k={}, n={}, colored={})",
            self.k,
            self.color.len(),
            self.num_colored()
        )
    }
}

impl Coloring {
    /// All-uncolored coloring over `n` vertices with `k` colors.
    pub fn new_uncolored(n: usize, k: usize) -> Self {
        assert!(k >= 1, "need at least one color");
        assert!(k <= u32::MAX as usize, "k exceeds u32 range");
        Self {
            k,
            color: vec![UNCOLORED; n],
        }
    }

    /// Coloring that puts every vertex in class 0 (the trivial coloring used
    /// as the induction base of Lemma 6).
    pub fn monochromatic(n: usize, k: usize) -> Self {
        assert!(k >= 1, "need at least one color");
        Self {
            k,
            color: vec![0; n],
        }
    }

    /// Build from an explicit color vector (`UNCOLORED` allowed).
    ///
    /// # Panics
    /// Panics if any assigned color is `≥ k`.
    pub fn from_vec(k: usize, color: Vec<u32>) -> Self {
        assert!(k >= 1, "need at least one color");
        for (v, &c) in color.iter().enumerate() {
            assert!(
                c == UNCOLORED || (c as usize) < k,
                "vertex {v} has color {c} >= k = {k}"
            );
        }
        Self { k, color }
    }

    /// Build by evaluating `f` on each vertex id.
    pub fn from_fn(n: usize, k: usize, f: impl FnMut(VertexId) -> u32) -> Self {
        Self::from_vec(k, (0..n as u32).map(f).collect())
    }

    /// Number of colors `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices in the underlying universe.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.color.len()
    }

    /// Color of `v`, or `None` if uncolored.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<u32> {
        let c = self.color[v as usize];
        (c != UNCOLORED).then_some(c)
    }

    /// Raw color of `v` (`UNCOLORED` sentinel possible).
    #[inline]
    pub fn raw(&self, v: VertexId) -> u32 {
        self.color[v as usize]
    }

    /// Assign color `c` to vertex `v`.
    #[inline]
    pub fn set(&mut self, v: VertexId, c: u32) {
        debug_assert!((c as usize) < self.k, "color {c} out of range");
        self.color[v as usize] = c;
    }

    /// Remove the color of `v`.
    #[inline]
    pub fn unset(&mut self, v: VertexId) {
        self.color[v as usize] = UNCOLORED;
    }

    /// Number of currently colored vertices.
    pub fn num_colored(&self) -> usize {
        self.color.iter().filter(|&&c| c != UNCOLORED).count()
    }

    /// Whether every vertex of `set` is colored.
    pub fn is_total_on(&self, set: &VertexSet) -> bool {
        set.iter().all(|v| self.color[v as usize] != UNCOLORED)
    }

    /// Whether every vertex `0..n` is colored.
    pub fn is_total(&self) -> bool {
        self.color.iter().all(|&c| c != UNCOLORED)
    }

    /// Members of class `i` as a vector.
    pub fn class_members(&self, i: u32) -> Vec<VertexId> {
        self.color
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == i)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Members of class `i` as a [`VertexSet`].
    pub fn class_set(&self, i: u32) -> VertexSet {
        VertexSet::from_iter(self.color.len(), self.class_members(i))
    }

    /// All classes restricted to `domain` as [`VertexSet`]s, indexed by
    /// color — a single pass over the domain, `O(|domain| + k·n/64)`,
    /// replacing the `O(n·k)` pattern of calling
    /// [`Coloring::class_set`]`.intersection(domain)` per class in the
    /// pipeline hot path. Identical sets, identical order.
    pub fn class_sets_within(&self, domain: &VertexSet) -> Vec<VertexSet> {
        let n = self.color.len();
        let mut out = vec![VertexSet::empty(n); self.k];
        for v in domain.iter() {
            let c = self.color[v as usize];
            if c != UNCOLORED {
                out[c as usize].insert(v);
            }
        }
        out
    }

    /// All classes as vectors, indexed by color.
    pub fn classes(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.k];
        for (v, &c) in self.color.iter().enumerate() {
            if c != UNCOLORED {
                out[c as usize].push(v as VertexId);
            }
        }
        out
    }

    /// Class measure vector `Φχ⁻¹ : [k] → R+`, i.e. `Φ`-weight per class.
    pub fn class_measures(&self, phi: &[f64]) -> Vec<f64> {
        assert_eq!(phi.len(), self.color.len(), "measure length mismatch");
        let mut out = vec![0.0; self.k];
        for (v, &c) in self.color.iter().enumerate() {
            if c != UNCOLORED {
                out[c as usize] += phi[v];
            }
        }
        out
    }

    /// Maximum class measure `‖Φχ⁻¹‖_∞`.
    pub fn max_class_measure(&self, phi: &[f64]) -> f64 {
        norm_inf(&self.class_measures(phi))
    }

    /// Boundary-cost vector `∂χ⁻¹ : [k] → R+`.
    ///
    /// Each edge whose endpoints are colored differently (or exactly one of
    /// them is colored) contributes its cost to the boundary of each colored
    /// endpoint's class. `O(m)`.
    pub fn boundary_costs(&self, g: &Graph, costs: &[f64]) -> Vec<f64> {
        assert_eq!(
            g.num_vertices(),
            self.color.len(),
            "graph/coloring mismatch"
        );
        assert_eq!(g.num_edges(), costs.len(), "cost vector length mismatch");
        let mut out = vec![0.0; self.k];
        for (e, &(u, v)) in g.edge_list().iter().enumerate() {
            let cu = self.color[u as usize];
            let cv = self.color[v as usize];
            if cu == cv {
                continue;
            }
            if cu != UNCOLORED {
                out[cu as usize] += costs[e];
            }
            if cv != UNCOLORED {
                out[cv as usize] += costs[e];
            }
        }
        out
    }

    /// Maximum boundary cost `‖∂χ⁻¹‖_∞` (Definition 1).
    pub fn max_boundary_cost(&self, g: &Graph, costs: &[f64]) -> f64 {
        norm_inf(&self.boundary_costs(g, costs))
    }

    /// Average boundary cost `‖∂χ⁻¹‖_avg = ‖∂χ⁻¹‖₁ / k`.
    pub fn avg_boundary_cost(&self, g: &Graph, costs: &[f64]) -> f64 {
        norm_1(&self.boundary_costs(g, costs)) / self.k as f64
    }

    /// Strict-balance defect: `max_i |w(χ⁻¹(i)) − ‖w‖₁/k|` minus the allowed
    /// slack `(1 − 1/k)·‖w‖∞`, restricted to the colored vertices.
    ///
    /// `≤ 0` (up to rounding) means the coloring is *strictly balanced* in
    /// the sense of Definition 1, eq. (1).
    pub fn strict_balance_defect(&self, weights: &[f64]) -> f64 {
        let cm = self.class_measures(weights);
        let total: f64 = cm.iter().sum();
        let avg = total / self.k as f64;
        let wmax = self
            .color
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != UNCOLORED)
            .map(|(v, _)| weights[v])
            .fold(0.0, f64::max);
        let dev = cm.iter().map(|&x| (x - avg).abs()).fold(0.0, f64::max);
        dev - (1.0 - 1.0 / self.k as f64) * wmax
    }

    /// Whether the coloring satisfies eq. (1) up to a relative tolerance.
    pub fn is_strictly_balanced(&self, weights: &[f64]) -> bool {
        let scale = norm_inf(weights).max(1e-300);
        self.strict_balance_defect(weights) <= 1e-9 * scale
    }

    /// Direct sum: overlay `other`'s colored vertices onto `self`
    /// (the `χ₀ ⊕ χ₁` of the paper; domains must be disjoint).
    ///
    /// # Panics
    /// Panics if a vertex is colored in both.
    pub fn direct_sum(&self, other: &Coloring) -> Coloring {
        assert_eq!(self.k, other.k, "color count mismatch");
        assert_eq!(self.color.len(), other.color.len(), "universe mismatch");
        let mut out = self.clone();
        for (v, &c) in other.color.iter().enumerate() {
            if c != UNCOLORED {
                assert_eq!(
                    out.color[v], UNCOLORED,
                    "direct sum requires disjoint domains (vertex {v} colored twice)"
                );
                out.color[v] = c;
            }
        }
        out
    }

    /// Restrict to `set`: vertices outside become uncolored.
    pub fn restrict_to(&self, set: &VertexSet) -> Coloring {
        let mut out = Coloring::new_uncolored(self.color.len(), self.k);
        for v in set.iter() {
            out.color[v as usize] = self.color[v as usize];
        }
        out
    }

    /// The set of colored vertices.
    pub fn domain(&self) -> VertexSet {
        VertexSet::from_iter(
            self.color.len(),
            self.color
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c != UNCOLORED)
                .map(|(v, _)| v as VertexId),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn construction_and_access() {
        let mut c = Coloring::new_uncolored(4, 2);
        assert_eq!(c.get(0), None);
        assert!(!c.is_total());
        c.set(0, 1);
        assert_eq!(c.get(0), Some(1));
        assert_eq!(c.num_colored(), 1);
        c.unset(0);
        assert_eq!(c.num_colored(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    #[cfg(debug_assertions)] // `set` checks colors with debug_assert only
    fn set_rejects_bad_color() {
        let mut c = Coloring::new_uncolored(2, 2);
        c.set(0, 2);
    }

    #[test]
    fn class_measures_and_boundaries() {
        // Path 0-1-2-3, colors [0,0,1,1].
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let costs = vec![1.0, 5.0, 1.0];
        let chi = Coloring::from_vec(2, vec![0, 0, 1, 1]);
        let w = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(chi.class_measures(&w), vec![3.0, 7.0]);
        let bc = chi.boundary_costs(&g, &costs);
        assert!(close(bc[0], 5.0));
        assert!(close(bc[1], 5.0));
        assert!(close(chi.max_boundary_cost(&g, &costs), 5.0));
        assert!(close(chi.avg_boundary_cost(&g, &costs), 5.0));
    }

    #[test]
    fn boundary_with_uncolored_vertices() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let costs = vec![1.0, 1.0];
        let chi = Coloring::from_vec(2, vec![0, UNCOLORED, 1]);
        let bc = chi.boundary_costs(&g, &costs);
        // Edge 0-1 counts only for class 0; edge 1-2 only for class 1.
        assert!(close(bc[0], 1.0));
        assert!(close(bc[1], 1.0));
    }

    #[test]
    fn strict_balance_judgement() {
        // k = 2, weights summing to 10, ‖w‖∞ = 4, slack = 0.5·4 = 2.
        let w = vec![4.0, 1.0, 2.0, 3.0];
        // Classes {4,1}=5, {2,3}=5 — perfectly balanced.
        let chi = Coloring::from_vec(2, vec![0, 0, 1, 1]);
        assert!(chi.is_strictly_balanced(&w));
        // Classes {4,3}=7, {1,2}=3 — deviation 2 = slack, still balanced.
        let chi2 = Coloring::from_vec(2, vec![0, 1, 1, 0]);
        assert!(chi2.is_strictly_balanced(&w));
        assert!(close(chi2.strict_balance_defect(&w), 0.0));
        // Classes {4,3,2}=9, {1}=1 — deviation 4 > 2.
        let chi3 = Coloring::from_vec(2, vec![0, 1, 0, 0]);
        assert!(!chi3.is_strictly_balanced(&w));
    }

    #[test]
    fn direct_sum_combines_disjoint() {
        let a = Coloring::from_vec(2, vec![0, UNCOLORED, UNCOLORED]);
        let b = Coloring::from_vec(2, vec![UNCOLORED, 1, UNCOLORED]);
        let s = a.direct_sum(&b);
        assert_eq!(s.get(0), Some(0));
        assert_eq!(s.get(1), Some(1));
        assert_eq!(s.get(2), None);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn direct_sum_rejects_overlap() {
        let a = Coloring::from_vec(2, vec![0]);
        let b = Coloring::from_vec(2, vec![1]);
        let _ = a.direct_sum(&b);
    }

    #[test]
    fn restrict_and_domain() {
        let chi = Coloring::from_vec(2, vec![0, 1, 0, 1]);
        let s = VertexSet::from_iter(4, [1u32, 2]);
        let r = chi.restrict_to(&s);
        assert_eq!(r.num_colored(), 2);
        assert_eq!(r.domain().to_vec(), vec![1, 2]);
        assert_eq!(r.get(0), None);
        assert_eq!(r.get(1), Some(1));
    }

    #[test]
    fn class_sets_within_matches_per_class_intersection() {
        let chi = Coloring::from_vec(3, vec![0, 1, 2, 0, UNCOLORED, 1, 2, 0]);
        let domain = VertexSet::from_iter(8, [0u32, 1, 3, 4, 6, 7]);
        let fast = chi.class_sets_within(&domain);
        for (i, set) in fast.iter().enumerate() {
            let slow = chi.class_set(i as u32).intersection(&domain);
            assert_eq!(set, &slow, "class {i}");
        }
    }

    #[test]
    fn monochromatic_base() {
        let chi = Coloring::monochromatic(5, 3);
        assert!(chi.is_total());
        let w = vec![1.0; 5];
        assert_eq!(chi.class_measures(&w), vec![5.0, 0.0, 0.0]);
    }
}
