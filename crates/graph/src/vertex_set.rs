//! Dense bitsets over a graph's vertex ids.
//!
//! Every algorithm in the paper works on induced subgraphs `G[W]`; a
//! [`VertexSet`] is the `W`. The representation is a plain `u64` bitset with
//! a cached cardinality, giving `O(1)` membership tests (the inner loop of
//! every boundary-cost computation) and `O(n/64)` iteration.

use crate::graph::VertexId;

/// A subset of `0..universe` vertex ids, stored as a bitset.
#[derive(Clone, PartialEq, Eq)]
pub struct VertexSet {
    words: Vec<u64>,
    len: usize,
    universe: usize,
}

impl std::fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VertexSet(len={}, universe={})", self.len, self.universe)
    }
}

impl VertexSet {
    /// Empty subset of `0..universe`.
    pub fn empty(universe: usize) -> Self {
        Self {
            words: vec![0; universe.div_ceil(64)],
            len: 0,
            universe,
        }
    }

    /// The full set `{0, …, universe−1}`.
    pub fn full(universe: usize) -> Self {
        let mut words = vec![u64::MAX; universe.div_ceil(64)];
        if !universe.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (universe % 64)) - 1;
            }
        }
        Self {
            words,
            len: universe,
            universe,
        }
    }

    /// Build from an iterator of vertex ids (duplicates are fine).
    pub fn from_iter(universe: usize, iter: impl IntoIterator<Item = VertexId>) -> Self {
        let mut s = Self::empty(universe);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Size of the ambient universe (the graph's `n`).
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Cardinality `|W|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        let v = v as usize;
        debug_assert!(
            v < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        self.words[v / 64] >> (v % 64) & 1 == 1
    }

    /// Insert `v`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        let i = v as usize;
        assert!(
            i < self.universe,
            "vertex {i} outside universe {}",
            self.universe
        );
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Remove `v`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: VertexId) -> bool {
        let i = v as usize;
        assert!(
            i < self.universe,
            "vertex {i} outside universe {}",
            self.universe
        );
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Iterate members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = (wi * 64) as u32;
            BitIter { word: w, base }
        })
    }

    /// Members collected into a `Vec` (increasing id order).
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.iter().collect()
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &VertexSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// In-place set difference `self \ other`.
    pub fn difference_with(&mut self, other: &VertexSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &VertexSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// New set `self \ other`.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// New set `self ∪ other`.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// New set `self ∩ other`.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Whether `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &VertexSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset_of(&self, other: &VertexSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl FromIterator<VertexId> for VertexSet {
    /// Builds a set whose universe is `max id + 1`; prefer
    /// [`VertexSet::from_iter`] with an explicit universe in library code.
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        let ids: Vec<VertexId> = iter.into_iter().collect();
        let universe = ids.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        VertexSet::from_iter(universe, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = VertexSet::empty(70);
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        let f = VertexSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.contains(69));
        assert_eq!(f.iter().count(), 70);
        let f64b = VertexSet::full(64);
        assert_eq!(f64b.len(), 64);
        assert_eq!(f64b.iter().max(), Some(63));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = VertexSet::empty(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(!s.contains(5));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn iteration_order() {
        let s = VertexSet::from_iter(200, [150u32, 3, 64, 63, 65]);
        assert_eq!(s.to_vec(), vec![3, 63, 64, 65, 150]);
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_iter(10, [1u32, 2, 3]);
        let b = VertexSet::from_iter(10, [3u32, 4]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 2]);
        assert_eq!(a.intersection(&b).to_vec(), vec![3]);
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
        assert!(a.intersection(&b).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn cardinality_tracked_through_algebra() {
        let mut a = VertexSet::from_iter(130, (0u32..100).filter(|v| v % 3 == 0));
        let b = VertexSet::from_iter(130, (0u32..100).filter(|v| v % 2 == 0));
        let expected_union = (0..100).filter(|v| v % 3 == 0 || v % 2 == 0).count();
        a.union_with(&b);
        assert_eq!(a.len(), expected_union);
        assert_eq!(a.iter().count(), expected_union);
    }

    #[test]
    fn clear_resets() {
        let mut s = VertexSet::from_iter(20, [1u32, 2]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
