//! Cuts and boundary costs.
//!
//! For `U ⊆ V` the paper writes `δ(U) = {e ∈ E : |e ∩ U| = 1}` for the cut
//! induced by `U` and `∂U = c(δ(U))` for its boundary cost. The algorithms
//! also need the *relative* boundary `∂_W U` of `U` inside an induced
//! subgraph `G[W]` (edges of `E(W)` with exactly one endpoint in `U`).

use crate::graph::{EdgeId, Graph};
use crate::vertex_set::VertexSet;
use crate::workspace::{ScratchMeasure, Workspace};

/// Boundary cost `∂U = c(δ(U))` of `U` in the host graph.
///
/// `O(vol(U))`: scans the adjacency of each member once.
pub fn boundary_cost(g: &Graph, costs: &[f64], u_set: &VertexSet) -> f64 {
    let mut s = 0.0;
    for v in u_set.iter() {
        for &(nb, e) in g.neighbors(v) {
            if !u_set.contains(nb) {
                s += costs[e as usize];
            }
        }
    }
    s
}

/// Relative boundary cost `∂_W U` of `U` inside the induced subgraph `G[W]`:
/// total cost of edges with one endpoint in `U` and the other in `W \ U`.
///
/// `U` need not be a subset of `W`; only its members inside `W` contribute.
pub fn boundary_cost_within(g: &Graph, costs: &[f64], w_set: &VertexSet, u_set: &VertexSet) -> f64 {
    let mut s = 0.0;
    for v in u_set.iter() {
        if !w_set.contains(v) {
            continue;
        }
        for &(nb, e) in g.neighbors(v) {
            if w_set.contains(nb) && !u_set.contains(nb) {
                s += costs[e as usize];
            }
        }
    }
    s
}

/// The cut `δ(U)` as a list of edge ids (host graph).
pub fn cut_edges(g: &Graph, u_set: &VertexSet) -> Vec<EdgeId> {
    let mut out = Vec::new();
    for v in u_set.iter() {
        for &(nb, e) in g.neighbors(v) {
            if !u_set.contains(nb) {
                out.push(e);
            }
        }
    }
    out
}

/// Number of edges in the relative cut `δ_{G[W]}(U)`.
pub fn cut_size_within(g: &Graph, w_set: &VertexSet, u_set: &VertexSet) -> usize {
    let mut s = 0;
    for v in u_set.iter() {
        if !w_set.contains(v) {
            continue;
        }
        for &(nb, _) in g.neighbors(v) {
            if w_set.contains(nb) && !u_set.contains(nb) {
                s += 1;
            }
        }
    }
    s
}

/// Per-vertex boundary measure of a set `U`: `v ↦ c(δ(v) ∩ δ(U))`.
///
/// The paper repeatedly "models the boundary cost function as a vertex
/// measure" (Section 5, Appendix A.1: the choice `Φ^{(r)}(v) = c(δ(v)∩δ(U))`);
/// this helper materializes that measure. Each cut edge contributes its cost
/// to **both** endpoints, so `Σ_v measure(v) = 2·∂U`.
pub fn boundary_measure(g: &Graph, costs: &[f64], u_set: &VertexSet) -> Vec<f64> {
    Workspace::with_local(|ws| boundary_measure_ws(g, costs, u_set, ws).to_measure())
}

/// [`boundary_measure`] into a reusable [`Workspace`] buffer: accumulates
/// only over `vol(U)` with zero allocation, returning a dense scratch view
/// whose slice is bit-identical to the allocating variant's vector.
pub fn boundary_measure_ws<'ws>(
    g: &Graph,
    costs: &[f64],
    u_set: &VertexSet,
    ws: &'ws Workspace,
) -> ScratchMeasure<'ws> {
    let mut out = ws.measure(g.num_vertices());
    for v in u_set.iter() {
        for &(nb, e) in g.neighbors(v) {
            if !u_set.contains(nb) {
                out.add(v, costs[e as usize]);
                out.add(nb, costs[e as usize]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn path_boundaries() {
        // 0 -1- 1 -2- 2 -3- 3
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let costs = vec![1.0, 2.0, 3.0];
        let u = VertexSet::from_iter(4, [0u32, 1]);
        assert!(close(boundary_cost(&g, &costs, &u), 2.0));
        assert_eq!(cut_edges(&g, &u).len(), 1);
        let empty = VertexSet::empty(4);
        assert_eq!(boundary_cost(&g, &costs, &empty), 0.0);
        let full = VertexSet::full(4);
        assert_eq!(boundary_cost(&g, &costs, &full), 0.0);
    }

    #[test]
    fn relative_boundary_ignores_outside_edges() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let costs = vec![1.0, 2.0, 3.0];
        // W = {1,2,3}; U = {1}. Edge 0-1 leaves W so it must not count.
        let w = VertexSet::from_iter(4, [1u32, 2, 3]);
        let u = VertexSet::from_iter(4, [1u32]);
        assert!(close(boundary_cost_within(&g, &costs, &w, &u), 2.0));
        assert!(close(boundary_cost(&g, &costs, &u), 3.0));
        assert_eq!(cut_size_within(&g, &w, &u), 1);
    }

    #[test]
    fn boundary_measure_sums_to_twice_cut() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let costs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let u = VertexSet::from_iter(5, [0u32, 1]);
        let m = boundary_measure(&g, &costs, &u);
        let cut = boundary_cost(&g, &costs, &u);
        assert!(close(m.iter().sum::<f64>(), 2.0 * cut));
        // Edge ids are canonical-sorted: (0,1)=1, (0,4)=2, (1,2)=3, ….
        // Vertex 2 touches only edge (1,2), which carries cost 3.
        assert!(close(m[2], 3.0));
    }

    #[test]
    fn workspace_boundary_measure_is_bit_identical() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let costs: Vec<f64> = (0..7).map(|e| 0.1 + (e as f64) * 1.7).collect();
        let ws = Workspace::new();
        for mask in 0u32..64 {
            let u = VertexSet::from_iter(6, (0..6u32).filter(|v| mask >> v & 1 == 1));
            let alloc = boundary_measure(&g, &costs, &u);
            let scratch = boundary_measure_ws(&g, &costs, &u, &ws);
            for (a, b) in alloc.iter().zip(scratch.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "mask {mask}");
            }
        }
        // Every checkout after the first reuses the pooled buffer.
        assert_eq!(ws.stats().fresh_allocs, 1);
    }

    #[test]
    fn star_cut() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let costs = vec![1.0; 4];
        let center = VertexSet::from_iter(5, [0u32]);
        assert!(close(boundary_cost(&g, &costs, &center), 4.0));
        let leaf = VertexSet::from_iter(5, [1u32]);
        assert!(close(boundary_cost(&g, &costs, &leaf), 1.0));
    }
}
